//! # oopp-repro — umbrella crate
//!
//! Re-exports the whole workspace of the *Object-Oriented Parallel
//! Programming* reproduction so examples and integration tests can reach
//! every layer through one dependency:
//!
//! * [`oopp`] — the paper's contribution: objects as processes, remote
//!   method invocation, groups, persistence, live migration;
//! * [`simnet`] — the simulated cluster substrate;
//! * [`wire`] — the RMI wire format;
//! * [`pagestore`] — §2–§3 page devices;
//! * [`distarray`] — §5 distributed arrays;
//! * [`fft`] — §4 Fourier transforms (local and distributed);
//! * [`mplite`] — the MPI-like message-passing baseline;
//! * [`placement`] — adaptive placement: the balancer that live-migrates
//!   hot objects to idle machines (DESIGN §9);
//! * [`supervision`] — self-healing: heartbeat failure detection,
//!   epoch-fenced leases, automatic reactivation of lost objects
//!   (DESIGN §10);
//! * [`replica`] — coherent read replication: replica sets for read-hot
//!   objects, write-through / bounded-staleness coherence, CAS-fenced
//!   failover (DESIGN §11);
//! * [`dirsvc`] — the sharded control plane's management plane: seats,
//!   replicates, and supervises the `DirShard` fleet behind
//!   `ClusterBuilder::dir_shards(n)` (DESIGN §14);
//! * [`workload`] — the macro-workload serving scenario and SLO
//!   harness: a social-graph session store driven by a closed-loop
//!   deterministic load generator, judged against latency/goodput
//!   objectives with error-budget burn accounting (DESIGN §16).
//!
//! This crate exists *only* as that aggregation point: `examples/` and
//! `tests/` at the workspace root attach to it, so one `cargo run
//! --example`/`cargo test` invocation can exercise cross-crate scenarios
//! without each example declaring seven path dependencies. It adds no
//! code of its own and is not meant to be depended on by the member
//! crates.

pub use dirsvc;
pub use distarray;
pub use fft;
pub use mplite;
pub use oopp;
pub use pagestore;
pub use placement;
pub use replica;
pub use simnet;
pub use supervision;
pub use wire;
pub use workload;
