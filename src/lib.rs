//! # oopp-repro — umbrella crate
//!
//! Re-exports the whole workspace of the *Object-Oriented Parallel
//! Programming* reproduction so examples and integration tests can reach
//! every layer through one dependency:
//!
//! * [`oopp`] — the paper's contribution: objects as processes, remote
//!   method invocation, groups, persistence;
//! * [`simnet`] — the simulated cluster substrate;
//! * [`wire`] — the RMI wire format;
//! * [`pagestore`] — §2–§3 page devices;
//! * [`distarray`] — §5 distributed arrays;
//! * [`fft`] — §4 Fourier transforms (local and distributed);
//! * [`mplite`] — the MPI-like message-passing baseline.

pub use distarray;
pub use fft;
pub use mplite;
pub use oopp;
pub use pagestore;
pub use simnet;
pub use wire;
