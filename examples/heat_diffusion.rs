//! Explicit 3-D heat diffusion over a distributed array: the classic
//! halo-exchange pattern expressed with §5's `Domain` reads — each step
//! reads a slab *plus one ghost layer*, computes locally, and writes the
//! interior back to a second array (ping-pong buffers).
//!
//! ```text
//! cargo run --release --example heat_diffusion
//! ```

use distarray::{register_classes, Array, BlockStorage, Domain, PageMap};
use oopp::{ClusterBuilder, Driver};

const N: u64 = 16;
const ALPHA: f64 = 0.1;

fn build_array(driver: &mut Driver, name: &str, devices: u64) -> Array {
    let p = [4u64, 8, 8];
    let grid = [N / p[0], N / p[1], N / p[2]];
    let map = PageMap::round_robin(grid, devices);
    let storage = BlockStorage::create(
        driver,
        name,
        devices as usize,
        map.pages_per_device(),
        p[0],
        p[1],
        p[2],
        1,
    )
    .expect("create storage");
    Array::new([N, N, N], p, storage, map).expect("assemble array")
}

/// One Jacobi step for the slab `[lo, hi)` along axis 0: reads the slab
/// plus ghost planes from `src`, writes the new interior into `dst`.
fn step_slab(driver: &mut Driver, src: &Array, dst: &Array, lo: u64, hi: u64) {
    let glo = lo.saturating_sub(1);
    let ghi = (hi + 1).min(N);
    let halo = Domain::new(glo, ghi, 0, N, 0, N);
    let buf = src.read(driver, &halo).expect("read slab+halo");
    let ext = halo.extent();
    let at =
        |i: u64, j: u64, k: u64| -> f64 { buf[(((i - glo) * ext[1] + j) * ext[2] + k) as usize] };

    let mut out = Vec::with_capacity(((hi - lo) * N * N) as usize);
    for i in lo..hi {
        for j in 0..N {
            for k in 0..N {
                // Dirichlet boundary: faces stay at their current value.
                if i == 0 || i == N - 1 || j == 0 || j == N - 1 || k == 0 || k == N - 1 {
                    out.push(at(i, j, k));
                    continue;
                }
                let center = at(i, j, k);
                let neighbours = at(i - 1, j, k)
                    + at(i + 1, j, k)
                    + at(i, j - 1, k)
                    + at(i, j + 1, k)
                    + at(i, j, k - 1)
                    + at(i, j, k + 1);
                out.push(center + ALPHA * (neighbours - 6.0 * center));
            }
        }
    }
    dst.write(driver, &Domain::new(lo, hi, 0, N, 0, N), &out)
        .expect("write slab");
}

fn main() {
    let devices = 4u64;
    let (cluster, mut driver) = register_classes(ClusterBuilder::new(4)).build();
    let a = build_array(&mut driver, "heat_a", devices);
    let b = build_array(&mut driver, "heat_b", devices);

    // Initial condition: one hot plate at i = 0 (value 100), cold elsewhere.
    a.fill(&mut driver, &a.whole(), 0.0).unwrap();
    a.fill(&mut driver, &Domain::new(0, 1, 0, N, 0, N), 100.0)
        .unwrap();
    b.fill(&mut driver, &b.whole(), 0.0).unwrap();
    b.fill(&mut driver, &Domain::new(0, 1, 0, N, 0, N), 100.0)
        .unwrap();

    println!("3-D heat diffusion, {N}^3 grid over {devices} devices");
    let probe =
        |driver: &mut Driver, arr: &Array, i: u64| arr.get(driver, i, N / 2, N / 2).unwrap();

    let (mut src, mut dst) = (&a, &b);
    let mut prev_probe = probe(&mut driver, src, 2);
    for step_no in 1..=20 {
        // Four slabs per step; each reads its halo, computes, writes.
        for slab in src.whole().split_axis0(4) {
            step_slab(&mut driver, src, dst, slab.a[0], slab.b[0]);
        }
        std::mem::swap(&mut src, &mut dst);
        if step_no % 5 == 0 {
            let t = probe(&mut driver, src, 2);
            println!(
                "step {step_no:>2}: T(2, mid, mid) = {t:>7.4}   max = {:>7.3}",
                src.max(&mut driver, &src.whole()).unwrap()
            );
            assert!(
                t >= prev_probe,
                "heat must flow toward the probe monotonically"
            );
            prev_probe = t;
        }
    }

    // Physical sanity: temperatures stay within the initial bounds and the
    // hot plate is still the maximum.
    let max = src.max(&mut driver, &src.whole()).unwrap();
    let min = src.min(&mut driver, &src.whole()).unwrap();
    assert!((0.0..=100.0).contains(&min) && (0.0..=100.0).contains(&max));
    assert_eq!(
        src.max(&mut driver, &Domain::new(0, 1, 0, N, 0, N))
            .unwrap(),
        100.0
    );
    println!("bounds hold: {min:.3} ..= {max:.3}; hot plate intact");
    cluster.shutdown(driver);
}
