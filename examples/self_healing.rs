//! Self-healing end to end (DESIGN §10): a supervised cluster detects a
//! crashed machine by heartbeat silence, reactivates its objects from
//! replicated snapshots on a survivor at a bumped epoch, and heals stale
//! pointers transparently — the old client reference keeps working.
//!
//! ```text
//! cargo run --release --example self_healing
//! ```

use std::time::{Duration, Instant};

use oopp::{symbolic_addr, Backoff, CallPolicy, ClusterBuilder, DoubleBlockClient, RemoteClient};
use simnet::ClusterConfig;
use supervision::{DetectorConfig, RestartPolicy, Supervisor, SupervisorConfig};

fn main() {
    // Three workers; machine 0 hosts the naming directory. Calls into a
    // dead machine must fail faster than the lease, or a blocked driver
    // would starve its own heartbeat pump.
    let policy = CallPolicy::reliable(Duration::from_millis(100))
        .with_max_retries(2)
        .with_backoff(Backoff::fixed(Duration::from_millis(5)));
    let (cluster, mut driver) = ClusterBuilder::new(3)
        .sim_config(ClusterConfig::zero_cost(0))
        .call_policy(policy)
        .build();
    let dir = driver.directory();

    // The supervisor lives in the driver and is stepped cooperatively: it
    // pumps lease-renewing heartbeats to machines 1 and 2 and judges
    // silence with a phi-accrual detector.
    let config = SupervisorConfig {
        heartbeat_interval: Duration::from_millis(10),
        lease_ttl: Duration::from_millis(150),
        detector: DetectorConfig {
            expected_interval: Duration::from_millis(10),
            ..DetectorConfig::default()
        },
        restart: RestartPolicy::Retries {
            max_retries: 2,
            backoff: Backoff::fixed(Duration::from_millis(10)),
        },
    };
    let mut sup = Supervisor::new(config, vec![1, 2], dir).with_metrics(cluster.metrics().clone());

    // A block on machine 1, registered for supervision with machine 2 as
    // its snapshot backup. Registration binds the name at epoch 1 and
    // replicates the first snapshot.
    let addr = symbolic_addr(&["demo", "block"]);
    let block = DoubleBlockClient::new_on(&mut driver, 1, 64).unwrap();
    sup.register(&mut driver, &addr, &block, &[2]).unwrap();
    for i in 0..64 {
        block.set(&mut driver, i, i as f64).unwrap();
    }
    // Checkpoint so the replica carries the writes we just acknowledged.
    assert_eq!(sup.checkpoint(&mut driver), 1);
    println!(
        "block live on machine {} at epoch 1, snapshot replicated to machine 2",
        block.machine()
    );

    // Let the detector build an inter-arrival history, then kill the home.
    let warm = Instant::now() + Duration::from_millis(120);
    while Instant::now() < warm {
        sup.step(&mut driver).unwrap();
        driver.serve_for(Duration::from_millis(5));
    }
    cluster.sim().faults().crash(1);
    println!("machine 1 crashed; supervisor is listening to the silence...");

    // Step until the supervisor declares the machine dead (silence past
    // the lease TTL) and completes the takeover.
    let mut recoveries = Vec::new();
    while recoveries.is_empty() {
        recoveries.extend(sup.step(&mut driver).unwrap());
        driver.serve_for(Duration::from_millis(2));
    }
    let r = &recoveries[0];
    println!(
        "recovered {} onto machine {} at epoch {}: detect {:.1?}, reactivate {:.1?}",
        r.name,
        r.to.machine,
        r.epoch,
        r.detect,
        r.total - r.detect,
    );
    assert_eq!(r.to.machine, 2);
    assert_eq!(r.epoch, 2);

    // The takeover incarnation carries the checkpointed state.
    let revived = DoubleBlockClient::from_ref(r.to);
    let x = revived.get(&mut driver, 7).unwrap();
    println!("state survived the crash: block[7] = {x}");
    assert_eq!(x, 7.0);

    // The machine comes back blank. The supervisor sees it answer probes,
    // re-fences its dead incarnation into a forwarder, and readmits it.
    cluster.sim().faults().restart(1);
    while sup.is_dead(1) {
        sup.step(&mut driver).unwrap();
        driver.serve_for(Duration::from_millis(2));
    }
    println!("machine 1 restarted and readmitted");

    // Now the old client pointer heals itself: the call reaches the
    // forwarder on machine 1, chases the Moved answer to machine 2, and
    // succeeds — no application-level re-resolution needed.
    let y = block.get(&mut driver, 9).unwrap();
    println!("stale pointer healed itself: block[9] = {y}");
    assert_eq!(y, 9.0);

    let stats = sup.stats();
    println!(
        "supervisor stats: {} declared dead, {} reactivated, {} false suspicions, {} poisoned",
        stats.machines_declared_dead,
        stats.objects_reactivated,
        stats.false_suspicions,
        stats.names_poisoned,
    );
    let snap = cluster.snapshot();
    println!(
        "substrate accounting: mean MTTR {:.1} ms over {} recoveries",
        snap.mean_mttr_nanos() as f64 / 1e6,
        snap.recoveries,
    );

    cluster.shutdown(driver);
    println!("clean shutdown");
}
