//! Out-of-core array analytics (§3 + §5): a 3-D dataset spread over many
//! devices, reduced both ways — moving the data to the computation and
//! moving the computation to the data — and then with parallel clients.
//!
//! ```text
//! cargo run --release --example out_of_core_stats
//! ```

use std::time::Instant;

use distarray::{parallel_sum, register_classes, Array, BlockStorage, PageMap};
use oopp::ClusterBuilder;
use simnet::{ClusterConfig, NetCost, TopologySpec};

fn main() {
    // A costed network so the two strategies differ measurably.
    let workers = 4;
    let config = ClusterConfig {
        machines: 0,                                             // overridden by the builder
        topology: TopologySpec::Uniform(NetCost::lan(50, 10.0)), // 50µs, 10 Gb/s
        disk: simnet::DiskConfig::nvme(),
        disks_per_machine: 1,
        disk_capacity: 256 << 20,
        faults: simnet::FaultPlan::none(),
        time: simnet::TimeMode::Real { spin_tail: true },
    };
    let (cluster, mut driver) = register_classes(ClusterBuilder::new(workers))
        .sim_config(config)
        .build();

    // A 64 x 64 x 64 array in 16³ pages over 8 devices (2 per machine).
    let n = [64u64, 64, 64];
    let p = [16u64, 16, 16];
    let grid = [4u64, 4, 4];
    let devices = 4u64;
    let map = PageMap::round_robin(grid, devices);
    let storage = BlockStorage::create(
        &mut driver,
        "dataset",
        devices as usize,
        map.pages_per_device(),
        p[0],
        p[1],
        p[2],
        1,
    )
    .expect("create block storage");
    let array = Array::new(n, p, storage, map).expect("assemble array");
    println!(
        "dataset: {}x{}x{} doubles ({} MiB) over {} devices",
        n[0],
        n[1],
        n[2],
        n[0] * n[1] * n[2] * 8 / (1 << 20),
        devices
    );

    // Load a synthetic field: f(i,j,k) varies so reductions are checkable.
    let whole = array.whole();
    let data: Vec<f64> = (0..array.len())
        .map(|i| ((i % 1000) as f64) / 100.0)
        .collect();
    let t = Instant::now();
    array
        .write(&mut driver, &whole, &data)
        .expect("load dataset");
    println!("loaded in {:?}", t.elapsed());
    let expected: f64 = data.iter().sum();

    // Strategy A (§3): move the computation to the data — device-side
    // partial sums, 8 bytes back per page.
    let t = Instant::now();
    let device_side = array.sum(&mut driver, &whole).expect("device-side sum");
    let ta = t.elapsed();

    // Strategy B: move the data to the computation — ship every page to
    // the driver and sum locally.
    let t = Instant::now();
    let client_side = array
        .sum_by_moving_data(&mut driver, &whole)
        .expect("client-side sum");
    let tb = t.elapsed();

    assert!((device_side - expected).abs() < 1e-6);
    assert!((client_side - expected).abs() < 1e-6);
    println!("sum = {device_side:.3}");
    println!("  computation -> data (device-side sums): {ta:?}");
    println!("  data -> computation (ship every page):  {tb:?}");
    println!(
        "  moving the computation is {:.1}x faster here",
        tb.as_secs_f64() / ta.as_secs_f64()
    );

    // §5: "deploying multiple Array clients in parallel".
    for clients in [1usize, 2, 4] {
        let t = Instant::now();
        let s = parallel_sum(&mut driver, &array, &whole, clients).expect("parallel sum");
        assert!((s - expected).abs() < 1e-6);
        println!(
            "  parallel sum with {clients} Array client(s): {:?}",
            t.elapsed()
        );
    }

    let m = cluster.snapshot();
    println!(
        "traffic: {} messages, {:.1} MiB; disk: {} reads / {} writes on {} active disks",
        m.messages_sent,
        m.bytes_sent as f64 / (1 << 20) as f64,
        m.disk_reads,
        m.disk_writes,
        cluster.sim().active_disks()
    );
    cluster.shutdown(driver);
}
