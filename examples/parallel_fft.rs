//! The paper's §4 parallel FFT, both ways: as a group of oopp
//! object-processes and as the hand-written message-passing baseline, on
//! identical simulated hardware.
//!
//! ```text
//! cargo run --release --example parallel_fft
//! ```

use std::time::Instant;

use fft::{c64, max_error, Complex, Direction, DistributedFft3, Fft3, Grid3};
use mplite::apps::fft_run;
use oopp::ClusterBuilder;
use simnet::ClusterConfig;

fn sample(shape: [usize; 3]) -> Vec<Complex> {
    let n = shape[0] * shape[1] * shape[2];
    (0..n)
        .map(|i| c64((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn main() {
    let shape = [32usize, 32, 32];
    let data = sample(shape);
    println!(
        "3-D FFT of a {}x{}x{} complex grid ({} KiB)",
        shape[0],
        shape[1],
        shape[2],
        shape.iter().product::<usize>() * 16 / 1024
    );

    // Ground truth: single-node transform.
    let t = Instant::now();
    let local = Fft3::new(shape).transform(&Grid3::new(shape, data.clone()), Direction::Forward);
    println!("local single-node:        {:?}", t.elapsed());

    for parts in [2usize, 4, 8] {
        // --- oopp: the paper's FFT process group.
        let (cluster, mut driver) = DistributedFft3::register(ClusterBuilder::new(parts)).build();
        let dfft = DistributedFft3::new(
            &mut driver,
            [shape[0] as u64, shape[1] as u64, shape[2] as u64],
            parts,
        )
        .expect("create FFT group");
        dfft.scatter(&mut driver, &data).expect("scatter");
        let t = Instant::now();
        dfft.transform(&mut driver, Direction::Forward)
            .expect("transform");
        let oopp_time = t.elapsed();
        let got = dfft.gather(&mut driver).expect("gather");
        let err = max_error(&got, local.data());
        assert!(err < 1e-9, "oopp parts={parts}: error {err}");
        cluster.shutdown(driver);

        // --- mplite: the same algorithm, hand-written message passing.
        let t = Instant::now();
        let got = fft_run(
            ClusterConfig::zero_cost(parts),
            shape,
            data.clone(),
            Direction::Forward,
        );
        let mpi_time = t.elapsed();
        let err = max_error(&got, local.data());
        assert!(err < 1e-9, "mplite parts={parts}: error {err}");

        println!("{parts} processes:  oopp RMI {oopp_time:?}   message-passing {mpi_time:?}");
    }

    // Roundtrip sanity: forward then inverse restores the input.
    let (cluster, mut driver) = DistributedFft3::register(ClusterBuilder::new(4)).build();
    let dfft = DistributedFft3::new(&mut driver, [32, 32, 32], 4).unwrap();
    dfft.scatter(&mut driver, &data).unwrap();
    dfft.transform(&mut driver, Direction::Forward).unwrap();
    dfft.transform(&mut driver, Direction::Inverse).unwrap();
    let back = dfft.gather(&mut driver).unwrap();
    println!(
        "forward+inverse roundtrip max error: {:.3e}",
        max_error(&back, &data)
    );
    cluster.shutdown(driver);
}
