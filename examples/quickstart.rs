#![allow(clippy::approx_constant)] // 3.1415 is the paper’s own literal

//! Quickstart: the paper's §2 listings, line for line.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use oopp::{ClusterBuilder, DoubleBlockClient};
use pagestore::{Page, PageDevice, PageDeviceClient};

fn main() {
    // "Consider now the situation where multiple computers machine 0,
    //  machine 1, machine 2, etc. are available..."
    let (cluster, mut driver) = ClusterBuilder::new(3).register::<PageDevice>().build();
    println!("cluster up: {} machines + driver", cluster.workers());

    // int NumberOfPages = 10;  int PageSize = 1024;
    let number_of_pages = 10u64;
    let page_size = 1024u64;

    // PageDevice *PageStore = new(machine 1)
    //     PageDevice("pagefile", NumberOfPages, PageSize);
    let page_store = PageDeviceClient::new_on(
        &mut driver,
        1,
        "pagefile".to_string(),
        number_of_pages,
        page_size,
        0, // which of machine 1's disks backs the device
    )
    .expect("create PageDevice on machine 1");
    println!(
        "PageDevice \"pagefile\" created on machine 1: {} pages x {} bytes",
        number_of_pages, page_size
    );

    // Page *page = GenerateDataPage();
    let page = Page::generate(page_size as usize, 17);

    // int PageAddress = 17;  PageStore->write(page, PageAddress % 10);
    let page_address = 17 % number_of_pages;
    page_store
        .write(&mut driver, page_address, page.clone().into_bytes())
        .expect("remote write");
    println!("wrote a generated page to address {page_address}");

    // ... and read it back.
    let back = Page::from_bytes(
        page_store
            .read(&mut driver, page_address)
            .expect("remote read"),
    );
    assert_eq!(back, page);
    println!("read it back: {} bytes, identical", back.len());

    // "Process semantics extend naturally to simple objects:"
    // double *data = new(machine 2) double[1024];
    let data = DoubleBlockClient::new_on(&mut driver, 2, 1024).expect("remote new double[1024]");
    // data[7] = 3.1415;
    data.set(&mut driver, 7, 3.1415).expect("remote store");
    // double x = data[2];
    let x = data.get(&mut driver, 2).expect("remote load");
    println!("data[7] = 3.1415 stored on machine 2; data[2] read back as {x}");
    assert_eq!(x, 0.0);
    assert_eq!(data.get(&mut driver, 7).unwrap(), 3.1415);

    // "destruction of a remote object causes termination of the remote
    //  process":  delete data;
    data.destroy(&mut driver).expect("remote delete");
    match data.get(&mut driver, 7) {
        Err(e) => println!("after delete, dereferencing fails as expected: {e}"),
        Ok(_) => unreachable!("destroyed object must not answer"),
    }

    page_store.destroy(&mut driver).unwrap();
    cluster.shutdown(driver);
    println!("cluster shut down cleanly");
}
