//! Map-reduce on object-processes — the paper's §6 claim that the
//! framework "is rich enough to include … other programming models
//! (client-server applications, map-reduce, etc.)".
//!
//! A word-count: mapper processes tokenize document shards and push
//! `(word, count)` pairs to reducer processes chosen by hash; reducers
//! aggregate; the driver collects. Every arrow is a remote method call.
//!
//! ```text
//! cargo run --release --example map_reduce
//! ```

use std::collections::HashMap;

use oopp::{join, remote_class, ClusterBuilder, NodeCtx, RemoteError, RemoteResult};

/// Reducer: owns one shard of the key space.
#[derive(Debug, Default)]
pub struct Reducer {
    counts: HashMap<String, u64>,
}

remote_class! {
    class Reducer {
        ctor();
        /// Absorb a batch of (word, count) pairs.
        fn absorb(&mut self, pairs: Vec<(String, u64)>) -> ();
        /// Emit the aggregated counts (sorted by word).
        fn emit(&mut self) -> Vec<(String, u64)>;
    }
}

impl Reducer {
    fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(Reducer::default())
    }
    fn absorb(&mut self, _ctx: &mut NodeCtx, pairs: Vec<(String, u64)>) -> RemoteResult<()> {
        for (word, n) in pairs {
            *self.counts.entry(word).or_insert(0) += n;
        }
        Ok(())
    }
    fn emit(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<Vec<(String, u64)>> {
        let mut v: Vec<_> = self.counts.iter().map(|(w, n)| (w.clone(), *n)).collect();
        v.sort();
        Ok(v)
    }
}

/// Mapper: tokenizes shards and shuffles pairs to the reducers it was
/// introduced to (the paper's `SetGroup` pattern, deep copy).
#[derive(Debug, Default)]
pub struct Mapper {
    reducers: Vec<ReducerClient>,
}

remote_class! {
    class Mapper {
        ctor();
        /// Deep-copy the reducer table into this process (§4 SetGroup).
        fn set_reducers(&mut self, reducers: Vec<ReducerClient>) -> ();
        /// Map one document shard and shuffle the pairs to the reducers.
        /// Returns the number of tokens processed.
        fn map_shard(&mut self, text: String) -> u64;
    }
}

fn key_hash(word: &str) -> u64 {
    // FNV-1a, stable across runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in word.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Mapper {
    fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(Mapper::default())
    }
    fn set_reducers(
        &mut self,
        _ctx: &mut NodeCtx,
        reducers: Vec<ReducerClient>,
    ) -> RemoteResult<()> {
        self.reducers = reducers;
        Ok(())
    }
    fn map_shard(&mut self, ctx: &mut NodeCtx, text: String) -> RemoteResult<u64> {
        if self.reducers.is_empty() {
            return Err(RemoteError::app("set_reducers must run before map_shard"));
        }
        // Local combine before the shuffle (the classic optimization).
        let mut local: HashMap<String, u64> = HashMap::new();
        let mut tokens = 0u64;
        for word in text.split_whitespace() {
            let w: String = word
                .chars()
                .filter(|c| c.is_alphanumeric())
                .flat_map(|c| c.to_lowercase())
                .collect();
            if w.is_empty() {
                continue;
            }
            tokens += 1;
            *local.entry(w).or_insert(0) += 1;
        }
        // Shuffle: one batch per reducer, all pushed with the split loop.
        let r = self.reducers.len() as u64;
        let mut batches: Vec<Vec<(String, u64)>> = vec![Vec::new(); r as usize];
        for (w, n) in local {
            batches[(key_hash(&w) % r) as usize].push((w, n));
        }
        let mut pending = Vec::new();
        for (reducer, batch) in self.reducers.iter().zip(batches) {
            if !batch.is_empty() {
                pending.push(reducer.absorb_async(ctx, batch)?);
            }
        }
        join(ctx, pending)?;
        Ok(tokens)
    }
}

fn main() {
    let mappers_n = 3;
    let reducers_n = 2;
    let (cluster, mut driver) = ClusterBuilder::new(4)
        .register::<Mapper>()
        .register::<Reducer>()
        .build();

    // Deploy reducers and mappers round-robin over the machines.
    let reducers: Vec<_> = (0..reducers_n)
        .map(|i| ReducerClient::new_on(&mut driver, i % 4).unwrap())
        .collect();
    let mappers: Vec<_> = (0..mappers_n)
        .map(|i| MapperClient::new_on(&mut driver, (reducers_n + i) % 4).unwrap())
        .collect();
    for m in &mappers {
        m.set_reducers(&mut driver, reducers.clone()).unwrap();
    }
    println!("{mappers_n} mappers and {reducers_n} reducers deployed");

    // The corpus, sharded one document per mapper call.
    let shards = [
        "objects are processes and processes are objects",
        "the compiler generates the protocol, the runtime moves the data",
        "move the computation to the data or move the data to the computation",
        "a parallel program is a collection of persistent processes",
        "processes communicate by executing methods on remote objects",
        "the page map determines the degree of parallelism of the computation",
    ];
    // Map phase: shards dealt to mappers, all in flight at once.
    let pending: Vec<_> = shards
        .iter()
        .enumerate()
        .map(|(i, text)| {
            mappers[i % mappers_n]
                .map_shard_async(&mut driver, text.to_string())
                .unwrap()
        })
        .collect();
    let tokens: u64 = join(&mut driver, pending).unwrap().into_iter().sum();
    println!(
        "map phase done: {tokens} tokens across {} shards",
        shards.len()
    );

    // Reduce phase: collect.
    let mut all: Vec<(String, u64)> = Vec::new();
    for r in &reducers {
        all.extend(r.emit(&mut driver).unwrap());
    }
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    println!("top words:");
    for (word, n) in all.iter().take(8) {
        println!("  {n:>3}  {word}");
    }
    let total: u64 = all.iter().map(|(_, n)| n).sum();
    assert_eq!(total, tokens, "every token counted exactly once");
    println!("total {total} == mapped tokens: exact");
    cluster.shutdown(driver);
}
