//! Fault tolerance end to end (DESIGN §6): a lossy fabric, a mid-run
//! machine crash, and recovery through §5 persistence — replicated
//! snapshots plus supervised symbolic-address resolution.
//!
//! ```text
//! cargo run --release --example chaos_recovery
//! ```

use oopp::{
    resolve_or_activate_supervised, symbolic_addr, Backoff, CallPolicy, ClusterBuilder,
    DoubleBlockClient, RemoteClient, RemoteError,
};
use simnet::{ClusterConfig, FaultPlan};

fn main() {
    // Three workers on a fabric that drops 5% of all packets, seeded so
    // every run of this example behaves identically.
    let workers = 3;
    let plan = FaultPlan::seeded(0xC4A05).with_drop(0.05);
    let policy = CallPolicy::reliable(std::time::Duration::from_millis(80))
        .with_max_retries(4)
        .with_backoff(Backoff::fixed(std::time::Duration::from_millis(5)));
    let (cluster, mut driver) = ClusterBuilder::new(workers)
        .sim_config(ClusterConfig::zero_cost(0).with_faults(plan))
        .call_policy(policy)
        .build();
    let dir = driver.directory();

    // A process on machine 1, reachable by symbolic address (§5).
    let addr = symbolic_addr(&["demo", "block"]);
    let block = DoubleBlockClient::new_on(&mut driver, 1, 64).unwrap();
    dir.bind(&mut driver, addr.clone(), block.obj_ref())
        .unwrap();
    for i in 0..64 {
        block.set(&mut driver, i, i as f64).unwrap();
    }
    // Replicate its snapshot to machine 2 so a crash is survivable.
    driver.replicate_snapshot(&block, &addr, &[2]).unwrap();
    println!(
        "block live on machine {}, snapshot replicated to machine 2",
        block.machine()
    );

    // The crash: machine 1 goes network-dark mid-run.
    cluster.sim().faults().crash(1);
    match block.get(&mut driver, 7) {
        Err(RemoteError::Timeout {
            machine,
            attempts,
            millis,
            ..
        }) => println!(
            "call failed after {attempts} attempts over {millis} ms: machine {machine} is down"
        ),
        other => panic!("expected a timeout against the crashed machine, got {other:?}"),
    }

    // Recovery: re-resolve the symbolic address; the supervisor skips the
    // dead machine and reactivates the process from the replica.
    let revived: DoubleBlockClient =
        resolve_or_activate_supervised(&mut driver, &dir, &addr, &[1, 2]).unwrap();
    println!(
        "reactivated on machine {} from its snapshot",
        revived.machine()
    );
    let x = revived.get(&mut driver, 7).unwrap();
    println!("state survived the crash: block[7] = {x}");
    assert_eq!(x, 7.0);

    let stats = driver.local_stats();
    println!(
        "driver rode out the loss: {} calls retried (fabric dropped {} frames)",
        stats.calls_retried,
        cluster.snapshot().total_fault_drops(),
    );

    // Quiesce the fault plan so shutdown frames cannot be dropped, and
    // restart the crashed machine so its thread can hear the shutdown.
    cluster.sim().faults().restart(1);
    cluster.sim().faults().calm();
    cluster.shutdown(driver);
    println!("clean shutdown");
}
