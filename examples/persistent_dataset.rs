//! Persistent processes and symbolic addresses (§5): build a dataset,
//! publish it under `oopp://` names, deactivate it, then have a "second
//! program" find and reactivate it by name — plus the §5 copy-constructor
//! from a live process.
//!
//! ```text
//! cargo run --release --example persistent_dataset
//! ```

use oopp::{symbolic_addr, ClusterBuilder, RemoteClient};
use pagestore::{ArrayPage, ArrayPageDevice, ArrayPageDeviceClient, PageDevice};

fn main() {
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .register::<PageDevice>()
        .register::<ArrayPageDevice>()
        .build();
    let dir = driver.directory();

    // --- Program 1: build and publish a dataset.
    let device = ArrayPageDeviceClient::new_on(
        &mut driver,
        0,
        "climate_blocks".into(),
        4, // pages
        8,
        8,
        8, // 8x8x8 doubles per page
        0,
        None,
    )
    .expect("create dataset device");
    for page in 0..4 {
        device
            .write_array(
                &mut driver,
                page,
                ArrayPage::generate(8, 8, 8, page).into_f64s(),
            )
            .expect("write page");
    }
    let sums: Vec<f64> = (0..4)
        .map(|p| device.sum(&mut driver, p).unwrap())
        .collect();
    println!("dataset built; per-page sums: {sums:?}");

    // Publish under a DAP-style symbolic address...
    let name = symbolic_addr(&["data", "set", "ArrayPageDevice", "34"]);
    dir.bind(&mut driver, name.clone(), device.obj_ref())
        .unwrap();
    println!("published as {name}");

    // ... and deactivate the live process (its pages stay on the disk).
    let snapshot_key = symbolic_addr(&["snapshots", "climate_blocks"]);
    driver.deactivate(device.obj_ref(), &snapshot_key).unwrap();
    dir.unbind(&mut driver, name.clone()).unwrap();
    println!("process deactivated to snapshot {snapshot_key}");

    // --- Program 2 (later): reactivate by symbolic address.
    let revived: ArrayPageDeviceClient = driver
        .activate(0, &snapshot_key)
        .expect("reactivate dataset");
    dir.bind(&mut driver, name.clone(), revived.obj_ref())
        .unwrap();
    let resolved = dir
        .lookup(&mut driver, name.clone())
        .unwrap()
        .expect("name resolves");
    let handle = ArrayPageDeviceClient::from_ref(resolved);
    let sums2: Vec<f64> = (0..4)
        .map(|p| handle.sum(&mut driver, p).unwrap())
        .collect();
    assert_eq!(sums, sums2, "reactivated process sees the same data");
    println!("reactivated via {name}; sums match");

    // --- §5's inheritance + persistence combo: copy-construct a new
    // device from the live process, then shut the original down.
    let copy = ArrayPageDeviceClient::new_on(
        &mut driver,
        1,
        "climate_blocks_copy".into(),
        4,
        8,
        8,
        8,
        0,
        Some(handle.as_base()),
    )
    .expect("copy-construct from live process");
    handle.destroy(&mut driver).unwrap(); // delete page_device;
    let sums3: Vec<f64> = (0..4).map(|p| copy.sum(&mut driver, p).unwrap()).collect();
    assert_eq!(sums, sums3);
    println!("copy-constructed replica on machine 1 verified; original deleted");

    println!(
        "directory now holds {} name(s): {:?}",
        dir.len(&mut driver).unwrap(),
        dir.list(&mut driver, "oopp://".into()).unwrap()
    );
    cluster.shutdown(driver);
}
