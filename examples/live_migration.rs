//! Live object migration and adaptive placement (DESIGN §9): move a hot
//! object to an idle machine while callers keep calling it.
//!
//! ```text
//! cargo run --release --example live_migration
//! ```

use oopp::{
    migrate_bound, symbolic_addr, Backoff, CallPolicy, ClusterBuilder, DoubleBlockClient,
    RemoteClient,
};
use placement::{Balancer, PlacementPolicy};

fn main() {
    let policy = CallPolicy::reliable(std::time::Duration::from_millis(100))
        .with_max_retries(4)
        .with_backoff(Backoff::fixed(std::time::Duration::from_millis(5)));
    let (cluster, mut driver) = ClusterBuilder::new(3).call_policy(policy).build();

    // The paper's static placement: the object is born on machine 0 and
    // would stay there for its whole lifetime.
    let block = DoubleBlockClient::new_on(&mut driver, 0, 256).unwrap();
    block.fill(&mut driver, 1.5).unwrap();
    let before = block.sum_range(&mut driver, 0, 256).unwrap();
    println!("block born on machine {}, sum = {before}", block.machine());

    // One explicit live migration: quiesce → transfer → commit. The old
    // address keeps a forwarding stub, so a stale client still works —
    // its first call chases one `Moved` redirect, then goes direct. The
    // driver coordinated this move, so make it forget what it learned and
    // act like any other stale caller in the cluster.
    let new_ref = driver.migrate(block.obj_ref(), 2).unwrap();
    println!(
        "migrated to machine {} (fresh id {})",
        new_ref.machine, new_ref.object
    );
    driver.forget_move(block.obj_ref());
    let after = block.sum_range(&mut driver, 0, 256).unwrap();
    assert_eq!(before, after, "state must survive the move bit-for-bit");
    println!("stale pointer chased the forward: sum still {after}");

    // Symbolic addresses move too: migrate_bound re-binds the directory
    // entry so resolvers never see the stub.
    let dir = driver.directory();
    let addr = symbolic_addr(&["demo", "hot", "block"]);
    dir.bind(&mut driver, addr.clone(), block.obj_ref())
        .unwrap();
    let bound = migrate_bound(&mut driver, &dir, &addr, 1).unwrap();
    println!(
        "migrate_bound moved it to machine {} and re-bound '{addr}'",
        bound.machine
    );

    // The closed loop: a balancer watches per-machine load and moves hot
    // objects off the busy machine by itself.
    let hot: Vec<_> = (0..4)
        .map(|_| DoubleBlockClient::new_on(&mut driver, 0, 256).unwrap())
        .collect();
    let mut balancer = Balancer::new(
        PlacementPolicy::GreedyRebalance {
            imbalance_ratio: 1.2,
            max_moves_per_round: 2,
        },
        vec![0, 1, 2],
    )
    .with_cooldown(1);
    balancer.pin(dir.obj_ref());
    for round in 0..6 {
        for b in &hot {
            for i in 0..8 {
                b.set(&mut driver, i, round as f64).unwrap();
            }
        }
        let moved = balancer
            .step(&mut driver, Some(&cluster.snapshot()))
            .unwrap();
        for plan in &moved {
            println!(
                "round {round}: balancer moved object {} (load {}) to machine {}",
                plan.object.object, plan.load, plan.target
            );
        }
    }
    println!(
        "balancer executed {} migrations total",
        balancer.moves_executed()
    );

    let stats = driver.stats_of(0).unwrap();
    println!(
        "machine 0 now forwards stale callers: {} calls redirected so far",
        stats.calls_forwarded
    );
    cluster.shutdown(driver);
}
