//! Quick pool-scheduler smoke: real-time and virtual-time, a few objects,
//! async fan-out so several mailboxes are live at once.
use oopp::simnet::ClusterConfig;
use oopp::{join, ClusterBuilder, DoubleBlockClient};

fn run(virtual_time: bool) {
    let cfg = if virtual_time {
        ClusterConfig::zero_cost(0).with_virtual_time(7)
    } else {
        ClusterConfig::zero_cost(0)
    };
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .sched_workers(2)
        .sim_config(cfg)
        .build();
    let blocks: Vec<_> = (0..8)
        .map(|i| DoubleBlockClient::new_on(&mut driver, i % 2, 64).unwrap())
        .collect();
    for round in 0..3 {
        let pending: Vec<_> = blocks
            .iter()
            .map(|b| b.fill_async(&mut driver, round as f64).unwrap())
            .collect();
        join(&mut driver, pending).unwrap();
    }
    for b in &blocks {
        assert_eq!(b.get(&mut driver, 3).unwrap(), 2.0);
    }
    cluster.shutdown(driver);
    println!("pool smoke OK (virtual_time={virtual_time})");
}

fn main() {
    run(false);
    run(true);
}
