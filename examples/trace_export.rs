//! Flight recorder end to end (DESIGN §8): run a chaotic split-loop
//! workload with tracing enabled, export the merged trace as Chrome
//! `trace_event` JSON (loadable in Perfetto / `chrome://tracing`), and
//! print the per-method latency account.
//!
//! ```text
//! OOPP_TRACE=out.json cargo run --release --example trace_export
//! ```
//!
//! Without `OOPP_TRACE` the trace is written to `trace_out.json` in the
//! current directory.

use oopp::wire::collections::F64s;
use oopp::{join, Backoff, CallPolicy, ClusterBuilder, DoubleBlockClient, EventKind};
use simnet::{ClusterConfig, FaultPlan};

fn main() {
    let out_path = std::env::var("OOPP_TRACE").unwrap_or_else(|_| "trace_out.json".to_string());

    // A lossy, duplicating fabric with a seeded plan: every run of this
    // example records the identical span tree.
    let workers = 3;
    let n = 64;
    let plan = FaultPlan::seeded(0x7ACE).with_drop(0.08).with_dup(0.03);
    let policy = CallPolicy::reliable(std::time::Duration::from_millis(150))
        .with_max_retries(6)
        .with_backoff(Backoff::fixed(std::time::Duration::from_millis(8)));
    let (cluster, mut driver) = ClusterBuilder::new(workers)
        .sim_config(ClusterConfig::zero_cost(0).with_faults(plan))
        .call_policy(policy)
        .tracing(true)
        .build();

    // The E3 split loop: one block per worker, async axpy rounds, gather.
    let blocks: Vec<_> = (0..workers)
        .map(|m| DoubleBlockClient::new_on(&mut driver, m, n).unwrap())
        .collect();
    for (i, b) in blocks.iter().enumerate() {
        b.fill(&mut driver, i as f64).unwrap();
    }
    for round in 1..=4 {
        let addend = F64s((0..n).map(|j| (round * j) as f64).collect());
        let pending: Vec<_> = blocks
            .iter()
            .map(|b| {
                b.axpy_range_async(&mut driver, 0, 0.5, addend.clone())
                    .unwrap()
            })
            .collect();
        join(&mut driver, pending).unwrap();
    }
    let mut checksum = 0.0;
    for b in &blocks {
        checksum += b
            .read_range(&mut driver, 0, n)
            .unwrap()
            .0
            .iter()
            .sum::<f64>();
    }

    // Keep the recorder alive past shutdown, then merge all machine rings.
    let recorder = cluster.recorder().expect("tracing was enabled");
    let retried = driver.local_stats().calls_retried;
    let dropped = cluster.snapshot().total_fault_drops();
    cluster.sim().faults().calm();
    cluster.shutdown(driver);
    let trace = recorder.merge();

    println!("workload checksum {checksum:.1}; fabric dropped {dropped} frames, driver retried {retried} calls");
    println!(
        "{} span events ({} sends, {} retransmits, {} dedup replays); causal check: {}",
        trace.events.len(),
        trace.count(EventKind::ClientSend),
        trace.retransmits(),
        trace.count(EventKind::ServerAdmitDone),
        if trace.causal_violations().is_empty() {
            "ok"
        } else {
            "VIOLATED"
        },
    );
    assert!(
        trace.causal_violations().is_empty(),
        "trace must be causally sound"
    );

    println!("\nper-method flight-recorder account:");
    println!(
        "{:<14} {:>6} {:>9} {:>5} {:>9} {:>9}",
        "method", "calls", "attempts", "retx", "p50 us", "p99 us"
    );
    for s in trace.method_stats() {
        println!(
            "{:<14} {:>6} {:>9} {:>5} {:>9} {:>9}",
            s.method, s.calls, s.attempts, s.retransmits, s.p50_micros, s.p99_micros
        );
    }

    std::fs::write(&out_path, trace.to_chrome_json()).expect("write trace JSON");
    println!(
        "\nwrote Chrome trace_event JSON to {out_path} — open it in Perfetto or chrome://tracing"
    );
}
