//! Integration tests for the macro-workload harness (`crates/workload`):
//! the E16 composition — sharded naming, replication, placement,
//! overload protection, and fault injection all running under one
//! closed-loop load generator — must survive its chaos schedule with
//! green SLO gates and replay byte-identically from one seed.

use oopp_repro::workload::{
    config::ScenarioSpec,
    loadgen::ArrivalCurve,
    runner::{self, RunArtifacts},
};

/// A small but fully-armed scenario: diurnal arrivals, a crash that
/// kills the hot feed's home mid-run, and a latency spike on the
/// replica that inherits its reads.
fn chaos_spec() -> ScenarioSpec {
    ScenarioSpec {
        users: 8,
        sessions: 8,
        feeds: 6,
        clients: 8,
        requests: 1200,
        curve: ArrivalCurve::Diurnal {
            period_ms: 200,
            trough: 0.5,
        },
        crash_at_ms: 6,
        spike_at_ms: 12,
        spike_dur_ms: 3,
        spike_extra_ms: 1,
        ..ScenarioSpec::default()
    }
}

#[test]
fn calm_run_meets_slos_with_replicas_serving_reads() {
    let spec = ScenarioSpec {
        users: 8,
        sessions: 8,
        feeds: 6,
        clients: 8,
        requests: 300,
        curve: ArrivalCurve::Steady,
        ..ScenarioSpec::default()
    };
    let a = runner::run(&spec);
    assert!(
        a.report.passed(),
        "calm run must meet every SLO gate:\n{}",
        a.report.render()
    );
    assert_eq!(a.ledger.total_issued(), 300);
    assert_eq!(a.promotions, 0, "nothing crashed, nothing promotes");
    assert!(
        a.account.replica_hits > 0,
        "replicas must serve hot-feed reads"
    );
}

#[test]
fn chaos_run_promotes_survives_and_replays_byte_identically() {
    let spec = chaos_spec();
    let a: RunArtifacts = runner::run(&spec);
    let b: RunArtifacts = runner::run(&spec);

    // Same seed, same schedule: the judged report — tables, percentiles,
    // verdicts — replays byte for byte.
    assert_eq!(
        a.report.render(),
        b.report.render(),
        "same-seed runs must produce identical reports"
    );
    assert_eq!(a.ledger.to_csv(), b.ledger.to_csv());

    // The crash episode ran: the dead primary's replica was promoted,
    // and the run still met its objectives through the outage + spike.
    assert_eq!(a.promotions, 1, "dead hot-feed home must promote once");
    assert!(
        a.report.passed(),
        "SLO gates must hold through crash + spike:\n{}",
        a.report.render()
    );
    assert_eq!(a.ledger.total_issued(), spec.requests as u64);

    // Recorder cross-check: when no trace events were lost, the
    // span-derived ledger sees exactly the completions the client-side
    // ledger counted (it cannot see fast-fails or lost replies).
    if a.account.dropped_events == 0 {
        let ok_client = a.ledger.read.ok + a.ledger.write.ok;
        let ok_trace = a.trace_ledger.read.ok + a.trace_ledger.write.ok;
        assert_eq!(
            ok_trace, ok_client,
            "trace-derived completions must match the client ledger"
        );
    }
}
