//! Virtual-time determinism cross-checks (DESIGN.md §12).
//!
//! Under `TimeMode::Virtual` the cluster runs on a discrete-event clock:
//! execution is serialized by the event loop, every delay is modeled, and
//! the whole run is a pure function of the seed. These tests pin the two
//! halves of that contract: the *same* seed replays a chaotic multi-machine
//! run byte-for-byte (identical flight-recorder export, identical virtual
//! timestamps, identical [`SimSchedule`]), while *different* seeds permute
//! same-time event ties and genuinely explore distinct interleavings.

use std::collections::HashSet;
use std::time::Duration;

use oopp_repro::oopp::wire::collections::F64s;
use oopp_repro::oopp::{
    join, symbolic_addr, Backoff, CallPolicy, ClusterBuilder, DoubleBlockClient, ObjRef,
};
use oopp_repro::simnet::{ClusterConfig, FaultPlan, SimSchedule};

fn chaos_policy() -> CallPolicy {
    CallPolicy::reliable(Duration::from_millis(150))
        .with_max_retries(6)
        .with_backoff(Backoff::fixed(Duration::from_millis(8)))
}

/// The E3-style split-loop workload under a lossy fabric and a virtual
/// clock, flight recorder on. The async fan-out rounds give the event loop
/// genuine same-virtual-time ties to permute. Returns the gathered data,
/// the full Chrome-JSON trace export (virtual timestamps included), the
/// driver's retransmission counter, and the run's recorded schedule.
fn traced_virtual_run(seed: u64) -> (Vec<f64>, String, u64, SimSchedule) {
    traced_virtual_run_pooled(seed, 0)
}

/// `traced_virtual_run` with an M:N execution pool of `sched_workers`
/// lanes per machine (0 = the classic single-threaded engine).
fn traced_virtual_run_pooled(
    seed: u64,
    sched_workers: usize,
) -> (Vec<f64>, String, u64, SimSchedule) {
    const WORKERS: usize = 4;
    const N: usize = 48;
    let plan = FaultPlan::seeded(seed ^ 0xFA_0175)
        .with_drop(0.06)
        .with_dup(0.02);
    let (cluster, mut driver) = ClusterBuilder::new(WORKERS)
        .sched_workers(sched_workers)
        .sim_config(
            ClusterConfig::zero_cost(0)
                .with_faults(plan)
                .with_virtual_time(seed),
        )
        .call_policy(chaos_policy())
        .tracing(true)
        .build();
    let clock = cluster.sim().clock().clone();

    let blocks: Vec<_> = (0..WORKERS)
        .map(|m| DoubleBlockClient::new_on(&mut driver, m, N).unwrap())
        .collect();
    for (i, b) in blocks.iter().enumerate() {
        b.fill(&mut driver, i as f64).unwrap();
    }
    for round in 1..=3 {
        let addend = F64s((0..N).map(|j| (round * j) as f64).collect());
        let pending: Vec<_> = blocks
            .iter()
            .map(|b| {
                b.axpy_range_async(&mut driver, 0, 0.5, addend.clone())
                    .unwrap()
            })
            .collect();
        join(&mut driver, pending).unwrap();
    }
    let mut out = Vec::with_capacity(WORKERS * N);
    for b in &blocks {
        out.extend(b.read_range(&mut driver, 0, N).unwrap().0);
    }

    let retried = driver.local_stats().calls_retried;
    let recorder = cluster.recorder().expect("tracing enabled");
    cluster.sim().faults().calm();
    cluster.shutdown(driver);
    let schedule = clock.schedule().expect("virtual clock records a schedule");
    (out, recorder.merge().to_chrome_json(), retried, schedule)
}

/// Same seed, twice: the flight-recorder export must match byte for byte —
/// same spans, same event order, same *virtual* timestamps — and the
/// recorded schedules must be identical (same event count, same digest).
#[test]
fn same_seed_replays_byte_identical_traces() {
    let (data_a, trace_a, retried_a, sched_a) = traced_virtual_run(0xD5EED);
    let (data_b, trace_b, retried_b, sched_b) = traced_virtual_run(0xD5EED);

    assert_eq!(data_a, data_b, "same seed, different results");
    assert_eq!(retried_a, retried_b, "same seed, different retry counts");
    assert_eq!(sched_a, sched_b, "same seed, different event schedules");
    assert_eq!(
        trace_a, trace_b,
        "same seed, byte-divergent trace exports (schedule {sched_a})"
    );
    assert!(retried_a > 0, "a 6% loss plan must force retransmissions");
    assert!(sched_a.events > 0);
}

/// Eight distinct seeds must explore at least two distinct interleavings:
/// the seed keys the tie-break hash over same-virtual-time events, so
/// different seeds permute delivery order where the model allows it.
#[test]
fn distinct_seeds_explore_distinct_interleavings() {
    let digests: HashSet<u64> = (0..8u64)
        .map(|i| traced_virtual_run(0x1000 + i).3.digest)
        .collect();
    assert!(
        digests.len() >= 2,
        "8 seeds produced only {} distinct schedule digest(s)",
        digests.len()
    );
}

/// The M:N scheduler must not cost determinism: with a 4-lane pool on
/// every machine, the same seed still replays byte-for-byte — worker
/// wakeups and steal order ride the same seeded virtual clock as
/// everything else (DESIGN.md §13).
#[test]
fn same_seed_replays_byte_identical_traces_with_pool() {
    let (data_a, trace_a, retried_a, sched_a) = traced_virtual_run_pooled(0xB00_57EA1, 4);
    let (data_b, trace_b, retried_b, sched_b) = traced_virtual_run_pooled(0xB00_57EA1, 4);

    assert_eq!(data_a, data_b, "same seed, different results under pool");
    assert_eq!(retried_a, retried_b, "same seed, different retry counts");
    assert_eq!(sched_a, sched_b, "same seed, different event schedules");
    assert_eq!(
        trace_a, trace_b,
        "same seed, byte-divergent trace exports under a 4-lane pool"
    );
    assert!(sched_a.events > 0);
}

/// A sharded-control-plane churn workload on a 4-lane pool under a lossy
/// virtual fabric: bind/claim/unbind traffic routed across four
/// `DirShard` partitions, then a full read-back. Returns the observable
/// directory state, the trace export, the retry counter, and the
/// schedule.
fn sharded_virtual_run(seed: u64) -> (Vec<String>, String, u64, SimSchedule) {
    const WORKERS: usize = 4;
    let plan = FaultPlan::seeded(seed ^ 0xD1_F5C0)
        .with_drop(0.04)
        .with_dup(0.02);
    let (cluster, mut driver) = ClusterBuilder::new(WORKERS)
        .sched_workers(4)
        .dir_shards(4)
        .sim_config(
            ClusterConfig::zero_cost(0)
                .with_faults(plan)
                .with_virtual_time(seed),
        )
        .call_policy(chaos_policy())
        .tracing(true)
        .build();
    let clock = cluster.sim().clock().clone();
    let ns = driver.directory();

    let names: Vec<String> = (0..24)
        .map(|i| symbolic_addr(&["det", "obj", &i.to_string()]))
        .collect();
    for (i, name) in names.iter().enumerate() {
        let target = ObjRef {
            machine: i % WORKERS,
            object: 500 + i as u64,
        };
        ns.bind(&mut driver, name.clone(), target).unwrap();
    }
    for (i, name) in names.iter().enumerate() {
        if i % 3 == 0 {
            ns.claim(&mut driver, name.clone(), 0).unwrap();
        }
        if i % 4 == 0 {
            ns.unbind(&mut driver, name.clone()).unwrap();
        }
    }

    let mut out = Vec::new();
    for name in &names {
        let lease = ns.lease_of(&mut driver, name.clone()).unwrap();
        out.push(format!("{name} => {lease:?}"));
    }
    out.push(format!(
        "list {:?}",
        ns.list(&mut driver, "oopp://det/".into()).unwrap()
    ));
    out.push(format!("len {}", ns.len(&mut driver).unwrap()));

    let retried = driver.local_stats().calls_retried;
    let recorder = cluster.recorder().expect("tracing enabled");
    cluster.sim().faults().calm();
    cluster.shutdown(driver);
    let schedule = clock.schedule().expect("virtual clock records a schedule");
    (out, recorder.merge().to_chrome_json(), retried, schedule)
}

/// The sharded control plane must not cost determinism either: directory
/// churn routed across 4 shards on a 4-lane pool replays byte-for-byte
/// under the same seed — routing, retries, and shard service order all
/// ride the seeded virtual clock (DESIGN.md §14).
#[test]
fn same_seed_replays_byte_identical_sharded_directory_runs() {
    let (state_a, trace_a, retried_a, sched_a) = sharded_virtual_run(0xD1F5_5EED);
    let (state_b, trace_b, retried_b, sched_b) = sharded_virtual_run(0xD1F5_5EED);

    assert_eq!(state_a, state_b, "same seed, different directory state");
    assert_eq!(retried_a, retried_b, "same seed, different retry counts");
    assert_eq!(sched_a, sched_b, "same seed, different event schedules");
    assert_eq!(
        trace_a, trace_b,
        "same seed, byte-divergent traces of a sharded run"
    );
    assert!(sched_a.events > 0);
}

/// Different seeds must explore different pooled interleavings: the steal
/// order is a seeded permutation, so two seeds that agree on everything
/// else still schedule mailboxes differently.
#[test]
fn distinct_seeds_explore_distinct_steal_orders() {
    let digests: HashSet<u64> = (0..8u64)
        .map(|i| traced_virtual_run_pooled(0x5EA1 + i, 4).3.digest)
        .collect();
    assert!(
        digests.len() >= 2,
        "8 seeds produced only {} distinct pooled schedule digest(s)",
        digests.len()
    );
}
