//! Lease-record edge cases in the naming directory (DESIGN.md §10–§11).
//!
//! The directory is the cluster's sole arbiter: incarnation takeovers
//! (`claim`/`bind_fenced`) and replica-set membership (`set_replicas`/
//! `purge_replicas_on`) are all CAS operations on one `LeaseRecord`.
//! These tests pin the refusal edges — poisoned names, stale epochs —
//! and property-test arbitrary interleavings of racing claimers,
//! membership updates, and declare-dead purges against a sequential
//! model of the record.

use std::time::Duration;

use oopp_repro::oopp::{
    shard_addr, shard_of_name, symbolic_addr, Backoff, CallPolicy, Cluster, ClusterBuilder, Driver,
    NameService, ObjRef, DIRSVC_PREFIX,
};
use oopp_repro::simnet::ClusterConfig;
use proptest::prelude::*;

fn build() -> (Cluster, Driver, NameService) {
    build_sharded(0)
}

fn build_sharded(shards: u32) -> (Cluster, Driver, NameService) {
    let (cluster, driver) = ClusterBuilder::new(2)
        .dir_shards(shards)
        .sim_config(ClusterConfig::zero_cost(0))
        .call_policy(
            CallPolicy::reliable(Duration::from_millis(200))
                .with_max_retries(2)
                .with_backoff(Backoff::fixed(Duration::from_millis(5))),
        )
        .build();
    let dir = driver.directory();
    (cluster, driver, dir)
}

/// The first `want.len()` names of the form `oopp://naming/<tag>/<i>`
/// that hash to the wanted shards, in `want` order.
fn names_on_shards(tag: &str, shards: u32, want: &[u32]) -> Vec<String> {
    let mut out = vec![String::new(); want.len()];
    let mut missing: Vec<usize> = (0..want.len()).collect();
    for i in 0..10_000u32 {
        let n = symbolic_addr(&["naming", tag, &i.to_string()]);
        let s = shard_of_name(&n, shards);
        if let Some(pos) = missing.iter().position(|&w| want[w] == s) {
            out[missing.remove(pos)] = n;
            if missing.is_empty() {
                return out;
            }
        }
    }
    panic!("no names found for shards {want:?} of {shards}");
}

fn obj(machine: usize, object: u64) -> ObjRef {
    ObjRef { machine, object }
}

/// A poisoned name refuses every CAS — claim and set_replicas alike —
/// until a fenced rebind revives it at a higher epoch.
#[test]
fn poisoned_names_refuse_claims_and_membership_updates() {
    let (cluster, mut driver, dir) = build();
    let name = symbolic_addr(&["naming", "poisoned"]);
    dir.bind(&mut driver, name.clone(), obj(0, 10)).unwrap();
    assert_eq!(dir.claim(&mut driver, name.clone(), 0).unwrap(), Some(1));
    dir.poison(&mut driver, name.clone()).unwrap();

    assert_eq!(
        dir.lease_of(&mut driver, name.clone()).unwrap(),
        Some((obj(0, 10), 1, true))
    );
    // The record is untouchable while poisoned: the epoch that *would*
    // match is refused, and so is a membership install.
    assert_eq!(dir.claim(&mut driver, name.clone(), 1).unwrap(), None);
    assert_eq!(
        dir.set_replicas(&mut driver, name.clone(), vec![obj(1, 11)], 0)
            .unwrap(),
        None
    );

    // A fenced rebind at (or above) the record's epoch revives it.
    assert!(dir
        .bind_fenced(&mut driver, name.clone(), obj(1, 12), 2)
        .unwrap());
    assert_eq!(
        dir.lease_of(&mut driver, name.clone()).unwrap(),
        Some((obj(1, 12), 2, false))
    );
    assert_eq!(dir.claim(&mut driver, name.clone(), 2).unwrap(), Some(3));
    cluster.shutdown(driver);
}

/// A claim must present the exact current epoch: stale claimers lose,
/// exactly one of two racers at the same epoch wins, and the loser's
/// retry at the new epoch succeeds (the supervisor's recovery-race rule).
#[test]
fn claims_at_stale_epochs_lose_the_cas() {
    let (cluster, mut driver, dir) = build();
    let name = symbolic_addr(&["naming", "race"]);
    dir.bind(&mut driver, name.clone(), obj(0, 10)).unwrap();

    // Two racers, both believing epoch 0: first wins, second loses.
    assert_eq!(dir.claim(&mut driver, name.clone(), 0).unwrap(), Some(1));
    assert_eq!(dir.claim(&mut driver, name.clone(), 0).unwrap(), None);
    // The loser re-reads and retries at the taught epoch.
    assert_eq!(
        dir.lease_of(&mut driver, name.clone()).unwrap(),
        Some((obj(0, 10), 1, false))
    );
    assert_eq!(dir.claim(&mut driver, name.clone(), 1).unwrap(), Some(2));
    // Claims on names that were never bound land nowhere.
    assert_eq!(
        dir.claim(&mut driver, "oopp://naming/ghost".into(), 0)
            .unwrap(),
        None
    );
    cluster.shutdown(driver);
}

/// Replica-set membership is fenced the same way: the CAS needs the
/// current rs_epoch, rebinding drops the set, and a fenced rebind bumps
/// the rs_epoch so routes built against the old set self-invalidate.
#[test]
fn replica_membership_is_cas_fenced_and_dropped_on_rebind() {
    let (cluster, mut driver, dir) = build();
    let name = symbolic_addr(&["naming", "set"]);
    dir.bind(&mut driver, name.clone(), obj(0, 10)).unwrap();
    assert_eq!(
        dir.replica_set(&mut driver, name.clone()).unwrap(),
        Some((vec![], 0))
    );

    assert_eq!(
        dir.set_replicas(&mut driver, name.clone(), vec![obj(1, 11)], 1)
            .unwrap(),
        None,
        "stale rs_epoch must lose"
    );
    assert_eq!(
        dir.set_replicas(&mut driver, name.clone(), vec![obj(1, 11)], 0)
            .unwrap(),
        Some(1)
    );

    // A plain rebind is a fresh incarnation: the mirrored set is gone.
    dir.bind(&mut driver, name.clone(), obj(1, 12)).unwrap();
    assert_eq!(
        dir.replica_set(&mut driver, name.clone()).unwrap(),
        Some((vec![], 0)),
        "rebinding must drop the replica set"
    );

    // A fenced rebind also clears the set but *bumps* the rs_epoch.
    assert_eq!(
        dir.set_replicas(&mut driver, name.clone(), vec![obj(0, 13)], 0)
            .unwrap(),
        Some(1)
    );
    assert!(dir
        .bind_fenced(&mut driver, name.clone(), obj(0, 14), 5)
        .unwrap());
    assert_eq!(
        dir.replica_set(&mut driver, name.clone()).unwrap(),
        Some((vec![], 2)),
        "takeover must clear the set and fence the epoch"
    );
    cluster.shutdown(driver);
}

/// The declare-dead purge touches exactly the records advertising a
/// replica on the corpse, bumping each one's rs_epoch once.
#[test]
fn purge_scrubs_only_records_on_the_dead_machine() {
    let (cluster, mut driver, dir) = build();
    let a = symbolic_addr(&["naming", "a"]);
    let b = symbolic_addr(&["naming", "b"]);
    dir.bind(&mut driver, a.clone(), obj(0, 10)).unwrap();
    dir.bind(&mut driver, b.clone(), obj(0, 20)).unwrap();
    dir.set_replicas(&mut driver, a.clone(), vec![obj(1, 11), obj(0, 12)], 0)
        .unwrap()
        .unwrap();
    dir.set_replicas(&mut driver, b.clone(), vec![obj(0, 21)], 0)
        .unwrap()
        .unwrap();

    assert_eq!(dir.purge_replicas_on(&mut driver, 1).unwrap(), 1);
    assert_eq!(
        dir.replica_set(&mut driver, a.clone()).unwrap(),
        Some((vec![obj(0, 12)], 2)),
        "machine-1 replica scrubbed, epoch fenced"
    );
    assert_eq!(
        dir.replica_set(&mut driver, b.clone()).unwrap(),
        Some((vec![obj(0, 21)], 1)),
        "untouched record keeps its epoch"
    );
    // Idempotent: a second purge finds nothing to change.
    assert_eq!(dir.purge_replicas_on(&mut driver, 1).unwrap(), 0);
    cluster.shutdown(driver);
}

// ---------------------------------------------------------------------
// Property: arbitrary interleavings against a sequential model
// ---------------------------------------------------------------------

/// Sequential model of one `LeaseRecord`, mirroring naming.rs semantics.
#[derive(Clone, Debug, PartialEq)]
struct ModelRec {
    target: ObjRef,
    epoch: u64,
    poisoned: bool,
    replicas: Vec<ObjRef>,
    rs_epoch: u64,
}

impl ModelRec {
    fn fresh(target: ObjRef, epoch: u64) -> Self {
        ModelRec {
            target,
            epoch,
            poisoned: false,
            replicas: Vec::new(),
            rs_epoch: 0,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any interleaving of claimers, membership CASes, poisons, fenced
    /// rebinds, and declare-dead purges — two logical actors over two
    /// names — leaves the directory in exactly the state the sequential
    /// model predicts, with epochs and rs_epochs never regressing.
    #[test]
    fn interleaved_claims_and_purges_match_the_sequential_model(
        ops in proptest::collection::vec((0u8..6u8, 0usize..2usize, 0u64..4u64, 0usize..2usize), 1..24)
    ) {
        let (cluster, mut driver, dir) = build();
        let names = [
            symbolic_addr(&["naming", "p", "0"]),
            symbolic_addr(&["naming", "p", "1"]),
        ];
        let mut model: Vec<ModelRec> = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let target = obj(0, 100 + i as u64);
            dir.bind(&mut driver, name.clone(), target).unwrap();
            model.push(ModelRec::fresh(target, 0));
        }

        for (kind, n, e, m) in ops {
            let name = names[n].clone();
            let rec = &mut model[n];
            match kind {
                // claim(expect = e)
                0 => {
                    let got = dir.claim(&mut driver, name, e).unwrap();
                    let want = if !rec.poisoned && rec.epoch == e {
                        rec.epoch += 1;
                        Some(rec.epoch)
                    } else {
                        None
                    };
                    prop_assert_eq!(got, want);
                }
                // set_replicas([replica on machine m], expect = e)
                1 => {
                    let replicas = vec![obj(m, 200 + m as u64)];
                    let got = dir.set_replicas(&mut driver, name, replicas.clone(), e).unwrap();
                    let want = if !rec.poisoned && rec.rs_epoch == e {
                        rec.replicas = replicas;
                        rec.rs_epoch += 1;
                        Some(rec.rs_epoch)
                    } else {
                        None
                    };
                    prop_assert_eq!(got, want);
                }
                // purge_replicas_on(m) — sweeps every record
                2 => {
                    let got = dir.purge_replicas_on(&mut driver, m).unwrap();
                    let mut want = 0;
                    for r in model.iter_mut() {
                        let before = r.replicas.len();
                        r.replicas.retain(|rep| rep.machine != m);
                        if r.replicas.len() != before {
                            r.rs_epoch += 1;
                            want += 1;
                        }
                    }
                    prop_assert_eq!(got, want);
                }
                // poison
                3 => {
                    dir.poison(&mut driver, name).unwrap();
                    rec.poisoned = true;
                }
                // bind_fenced(target, epoch = e)
                4 => {
                    let target = obj(m, 300 + e);
                    let got = dir.bind_fenced(&mut driver, name, target, e).unwrap();
                    let want = if rec.epoch <= e {
                        rec.target = target;
                        rec.epoch = e;
                        rec.poisoned = false;
                        rec.replicas.clear();
                        rec.rs_epoch += 1;
                        true
                    } else {
                        false
                    };
                    prop_assert_eq!(got, want);
                }
                // plain bind: fresh incarnation at the old epoch, set gone
                _ => {
                    let target = obj(m, 400 + e);
                    dir.bind(&mut driver, name, target).unwrap();
                    *rec = ModelRec::fresh(target, rec.epoch);
                }
            }

            // The directory must agree with the model after every op.
            for (i, name) in names.iter().enumerate() {
                let r = &model[i];
                prop_assert_eq!(
                    dir.lease_of(&mut driver, name.clone()).unwrap(),
                    Some((r.target, r.epoch, r.poisoned))
                );
                prop_assert_eq!(
                    dir.replica_set(&mut driver, name.clone()).unwrap(),
                    Some((r.replicas.clone(), r.rs_epoch))
                );
            }
        }
        cluster.shutdown(driver);
    }

    /// The same interleavings against the *sharded* control plane — one
    /// name per shard of a 2-shard map, so every op exercises the routing
    /// facade — must match the same sequential model: partitioning the
    /// records cannot change a single record's CAS semantics.
    #[test]
    fn sharded_interleavings_match_the_sequential_model(
        ops in proptest::collection::vec((0u8..6u8, 0usize..2usize, 0u64..4u64, 0usize..2usize), 1..24)
    ) {
        let (cluster, mut driver, dir) = build_sharded(2);
        let names = names_on_shards("prop", 2, &[0, 1]);
        let mut model: Vec<ModelRec> = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let target = obj(0, 100 + i as u64);
            dir.bind(&mut driver, name.clone(), target).unwrap();
            model.push(ModelRec::fresh(target, 0));
        }

        for (kind, n, e, m) in ops {
            let name = names[n].clone();
            let rec = &mut model[n];
            match kind {
                0 => {
                    let got = dir.claim(&mut driver, name, e).unwrap();
                    let want = if !rec.poisoned && rec.epoch == e {
                        rec.epoch += 1;
                        Some(rec.epoch)
                    } else {
                        None
                    };
                    prop_assert_eq!(got, want);
                }
                1 => {
                    let replicas = vec![obj(m, 200 + m as u64)];
                    let got = dir.set_replicas(&mut driver, name, replicas.clone(), e).unwrap();
                    let want = if !rec.poisoned && rec.rs_epoch == e {
                        rec.replicas = replicas;
                        rec.rs_epoch += 1;
                        Some(rec.rs_epoch)
                    } else {
                        None
                    };
                    prop_assert_eq!(got, want);
                }
                2 => {
                    let got = dir.purge_replicas_on(&mut driver, m).unwrap();
                    let mut want = 0;
                    for r in model.iter_mut() {
                        let before = r.replicas.len();
                        r.replicas.retain(|rep| rep.machine != m);
                        if r.replicas.len() != before {
                            r.rs_epoch += 1;
                            want += 1;
                        }
                    }
                    prop_assert_eq!(got, want);
                }
                3 => {
                    dir.poison(&mut driver, name).unwrap();
                    rec.poisoned = true;
                }
                4 => {
                    let target = obj(m, 300 + e);
                    let got = dir.bind_fenced(&mut driver, name, target, e).unwrap();
                    let want = if rec.epoch <= e {
                        rec.target = target;
                        rec.epoch = e;
                        rec.poisoned = false;
                        rec.replicas.clear();
                        rec.rs_epoch += 1;
                        true
                    } else {
                        false
                    };
                    prop_assert_eq!(got, want);
                }
                _ => {
                    let target = obj(m, 400 + e);
                    dir.bind(&mut driver, name, target).unwrap();
                    *rec = ModelRec::fresh(target, rec.epoch);
                }
            }

            for (i, name) in names.iter().enumerate() {
                let r = &model[i];
                prop_assert_eq!(
                    dir.lease_of(&mut driver, name.clone()).unwrap(),
                    Some((r.target, r.epoch, r.poisoned))
                );
                prop_assert_eq!(
                    dir.replica_set(&mut driver, name.clone()).unwrap(),
                    Some((r.replicas.clone(), r.rs_epoch))
                );
            }
        }
        cluster.shutdown(driver);
    }
}

// ---------------------------------------------------------------------
// Sharded control plane: routing edges (DESIGN.md §14)
// ---------------------------------------------------------------------

/// Keys hashing to the same shard coexist as independent records, and
/// the facade's aggregate views (`list`, `len`) see every partition
/// while hiding the control plane's own seat names.
#[test]
fn same_shard_collisions_stay_independent_records() {
    let (cluster, mut driver, dir) = build_sharded(4);
    assert_eq!(dir.shards(), 4);

    // Two names on the same shard, one on a different shard.
    let pair = names_on_shards("coll", 4, &[2, 2]);
    let other = names_on_shards("coll-other", 4, &[3]);
    dir.bind(&mut driver, pair[0].clone(), obj(0, 10)).unwrap();
    dir.bind(&mut driver, pair[1].clone(), obj(1, 11)).unwrap();
    dir.bind(&mut driver, other[0].clone(), obj(1, 12)).unwrap();

    assert_eq!(
        dir.lookup(&mut driver, pair[0].clone()).unwrap(),
        Some(obj(0, 10))
    );
    assert_eq!(
        dir.lookup(&mut driver, pair[1].clone()).unwrap(),
        Some(obj(1, 11))
    );
    // Unbinding one colliding key leaves its shard-mate untouched.
    assert!(dir.unbind(&mut driver, pair[0].clone()).unwrap());
    assert_eq!(dir.lookup(&mut driver, pair[0].clone()).unwrap(), None);
    assert_eq!(
        dir.lookup(&mut driver, pair[1].clone()).unwrap(),
        Some(obj(1, 11))
    );

    // Aggregates span partitions but hide the `_dirsvc` seats…
    let all = dir.list(&mut driver, "oopp://".into()).unwrap();
    assert_eq!(all, {
        let mut want = vec![pair[1].clone(), other[0].clone()];
        want.sort();
        want
    });
    assert_eq!(dir.len(&mut driver).unwrap(), 2);
    // …which stay reachable by asking for the reserved prefix explicitly.
    let seats = dir.list(&mut driver, DIRSVC_PREFIX.into()).unwrap();
    assert_eq!(seats.len(), 4);
    assert!(seats.contains(&shard_addr(0)));
    cluster.shutdown(driver);
}

/// A rebind racing a CAS claim on *another* shard cannot disturb it: the
/// partitions hold disjoint records, so epochs advance independently —
/// and a claim race within one shard still has exactly one winner.
#[test]
fn rebind_races_cas_claims_across_two_shards_independently() {
    let (cluster, mut driver, dir) = build_sharded(2);
    let names = names_on_shards("race", 2, &[0, 1]);
    dir.bind(&mut driver, names[0].clone(), obj(0, 20)).unwrap();
    dir.bind(&mut driver, names[1].clone(), obj(1, 21)).unwrap();

    // Interleave: claim on shard 0, rebind on shard 1, claim again.
    assert_eq!(
        dir.claim(&mut driver, names[0].clone(), 0).unwrap(),
        Some(1)
    );
    dir.bind(&mut driver, names[1].clone(), obj(1, 22)).unwrap();
    assert_eq!(
        dir.claim(&mut driver, names[0].clone(), 1).unwrap(),
        Some(2)
    );

    // The rebound name's epoch was preserved by the rebind and is
    // untouched by the other shard's claims.
    assert_eq!(
        dir.lease_of(&mut driver, names[1].clone()).unwrap(),
        Some((obj(1, 22), 0, false))
    );
    // Same-epoch racers on the rebound name: one winner, one loser.
    assert_eq!(
        dir.claim(&mut driver, names[1].clone(), 0).unwrap(),
        Some(1)
    );
    assert_eq!(dir.claim(&mut driver, names[1].clone(), 0).unwrap(), None);
    assert_eq!(
        dir.lease_of(&mut driver, names[0].clone()).unwrap(),
        Some((obj(0, 20), 2, false))
    );
    cluster.shutdown(driver);
}

// ---------------------------------------------------------------------
// Per-node resolve cache: the 1024-entry eviction bound (DESIGN.md §14)
// ---------------------------------------------------------------------

/// The per-node resolve cache is bounded: inserting a *new* key at
/// capacity evicts wholesale (clear-then-insert, no LRU bookkeeping),
/// and `dir_cache_hits`/`dir_cache_misses` account every probe.
#[test]
fn resolve_cache_evicts_wholesale_at_capacity_and_counts_probes() {
    let (cluster, mut driver, _dir) = build();

    // A sentinel inserted first: the moment it stops resolving, the
    // wholesale clear has happened.
    let sentinel = symbolic_addr(&["naming", "evict", "sentinel"]);
    driver.cache_resolve(&sentinel, obj(0, 1));
    let mut cleared_at = None;
    for i in 0..2048u32 {
        driver.cache_resolve(
            &symbolic_addr(&["naming", "evict", &i.to_string()]),
            obj(0, 2),
        );
        if driver.cached_resolve(&sentinel).is_none() {
            cleared_at = Some(i);
            break;
        }
    }
    let cleared_at = cleared_at.expect("2048 inserts must blow the 1024-entry bound");
    assert!(
        cleared_at <= 1024,
        "eviction fired at insert {cleared_at}, past the documented bound"
    );

    // Clear-then-insert: the key that triggered the eviction survives
    // it; everything older — sentinel included — is gone.
    let trigger = symbolic_addr(&["naming", "evict", &cleared_at.to_string()]);
    let first = symbolic_addr(&["naming", "evict", "0"]);
    let s0 = driver.local_stats();
    assert_eq!(driver.cached_resolve(&trigger), Some(obj(0, 2)));
    assert_eq!(driver.cached_resolve(&sentinel), None);
    assert_eq!(driver.cached_resolve(&first), None);
    let s1 = driver.local_stats();
    assert_eq!(s1.dir_cache_hits, s0.dir_cache_hits + 1);
    assert_eq!(s1.dir_cache_misses, s0.dir_cache_misses + 2);

    cluster.shutdown(driver);
}

/// Wholesale eviction takes the sharded directory's *seat* entries with
/// it — the next lookup must re-resolve the seat through the root table
/// (a counted miss), route correctly, and re-warm the cache so the
/// lookup after that is a hit again.
#[test]
fn seat_cache_re_resolves_correctly_after_eviction() {
    let (cluster, mut driver, dir) = build_sharded(2);
    let names = names_on_shards("seatevict", 2, &[0, 1]);
    dir.bind(&mut driver, names[0].clone(), obj(1, 50)).unwrap();
    dir.bind(&mut driver, names[1].clone(), obj(1, 51)).unwrap();

    // Warm both seats, then prove warm lookups run on cache hits alone.
    assert_eq!(
        dir.lookup(&mut driver, names[0].clone()).unwrap(),
        Some(obj(1, 50))
    );
    assert_eq!(
        dir.lookup(&mut driver, names[1].clone()).unwrap(),
        Some(obj(1, 51))
    );
    let s0 = driver.local_stats();
    assert_eq!(
        dir.lookup(&mut driver, names[0].clone()).unwrap(),
        Some(obj(1, 50))
    );
    let s1 = driver.local_stats();
    assert!(s1.dir_cache_hits > s0.dir_cache_hits);
    assert_eq!(s1.dir_cache_misses, s0.dir_cache_misses);

    // Flood the driver's resolve cache well past the bound: exactly one
    // wholesale clear, and the seat entries are collateral damage.
    for i in 0..1500u32 {
        driver.cache_resolve(
            &symbolic_addr(&["naming", "flood", &i.to_string()]),
            obj(0, 900),
        );
    }
    assert_eq!(driver.cached_resolve(&shard_addr(0)), None);
    assert_eq!(driver.cached_resolve(&shard_addr(1)), None);

    // Post-eviction: the facade re-resolves the seat (counted misses),
    // still routes to the right shard record…
    let s2 = driver.local_stats();
    assert_eq!(
        dir.lookup(&mut driver, names[0].clone()).unwrap(),
        Some(obj(1, 50))
    );
    assert_eq!(
        dir.lookup(&mut driver, names[1].clone()).unwrap(),
        Some(obj(1, 51))
    );
    let s3 = driver.local_stats();
    assert!(s3.dir_cache_misses > s2.dir_cache_misses);

    // …and the refill sticks: the next lookup is pure cache hits again.
    let s4 = driver.local_stats();
    assert_eq!(
        dir.lookup(&mut driver, names[0].clone()).unwrap(),
        Some(obj(1, 50))
    );
    let s5 = driver.local_stats();
    assert!(s5.dir_cache_hits > s4.dir_cache_hits);
    assert_eq!(s5.dir_cache_misses, s4.dir_cache_misses);

    cluster.shutdown(driver);
}

/// A lookup concurrent with a takeover sees the old incarnation or the
/// new one — `bind_fenced` installs target and epoch atomically in the
/// shard's record — and a poisoned record is never served as live.
#[test]
fn lookup_sees_old_or_new_epoch_but_never_a_poisoned_entry() {
    let (cluster, mut driver, dir) = build_sharded(2);
    let name = names_on_shards("fence", 2, &[1]).remove(0);
    dir.bind(&mut driver, name.clone(), obj(0, 30)).unwrap();
    assert_eq!(dir.claim(&mut driver, name.clone(), 0).unwrap(), Some(1));

    // Mid-takeover the old binding still resolves (epoch already bumped).
    assert_eq!(
        dir.lookup(&mut driver, name.clone()).unwrap(),
        Some(obj(0, 30))
    );
    assert_eq!(
        dir.lease_of(&mut driver, name.clone()).unwrap(),
        Some((obj(0, 30), 1, false))
    );
    // The takeover lands: lookups atomically switch to the new target.
    assert!(dir
        .bind_fenced(&mut driver, name.clone(), obj(1, 31), 1)
        .unwrap());
    assert_eq!(
        dir.lookup(&mut driver, name.clone()).unwrap(),
        Some(obj(1, 31))
    );

    // A takeover that gives up poisons the record; resolvers must see
    // "gone", not a stale live pointer.
    dir.poison(&mut driver, name.clone()).unwrap();
    assert_eq!(dir.lookup(&mut driver, name.clone()).unwrap(), None);
    assert_eq!(
        dir.lease_of(&mut driver, name.clone()).unwrap(),
        Some((obj(1, 31), 1, true)),
        "lease_of still reports the poisoned record for supervisors"
    );
    cluster.shutdown(driver);
}
