//! Graceful-degradation suite (DESIGN.md §15): deadline propagation,
//! admission control, load shedding, circuit breakers, and retry budgets.
//!
//! Every scenario runs under virtual time so "the server is slow" is a
//! modeled fact, not a wall-clock race: a `Slow` object parks its worker
//! lane on the cluster clock, and the tests then pin the contracts — an
//! expired deadline is a typed error and the work *never executes*; a full
//! mailbox or exhausted in-flight budget rejects with `Overloaded` before
//! queueing (fail-fast, not fail-slow); a tripped breaker fast-fails on the
//! client without touching the network and re-closes after a half-open
//! trial; a dry retry budget suppresses retransmission storms; and the
//! whole overload pipeline replays deterministically from a seed.

use std::time::Duration;

use oopp_repro::oopp::{
    Backoff, BreakerConfig, CallPolicy, ClusterBuilder, NodeCtx, OverloadConfig, RemoteError,
    RemoteResult, RetryBudgetConfig,
};
use oopp_repro::simnet::ClusterConfig;

/// A deliberately slow server: `work(nanos)` parks the executing lane on
/// the *cluster* clock for `nanos`, then bumps a counter. The counter makes
/// shed work observable: if a dropped request had secretly executed,
/// `count` exposes it.
#[derive(Debug, Default)]
pub struct Slow {
    done: u64,
}

oopp_repro::oopp::remote_class! {
    class Slow {
        ctor();
        /// Sleep `nanos` of cluster time, then count one unit of work.
        fn work(&mut self, nanos: u64) -> u64;
        /// Units of work actually executed.
        fn count(&mut self) -> u64;
    }
}

impl Slow {
    pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(Slow::default())
    }

    fn work(&mut self, ctx: &mut NodeCtx, nanos: u64) -> RemoteResult<u64> {
        ctx.clock().sleep(Duration::from_nanos(nanos));
        self.done += 1;
        Ok(self.done)
    }

    fn count(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<u64> {
        Ok(self.done)
    }
}

/// A one-hop relay that records how its *inner* call failed, so a test can
/// prove the deadline was inherited server-side (the relay's own policy
/// carries no deadline) rather than merely enforced at the originating
/// client.
#[derive(Debug, Default)]
pub struct Relay {
    saw: u64,
}

oopp_repro::oopp::remote_class! {
    class Relay {
        ctor();
        /// Call `w.work(nanos)` under whatever deadline this request
        /// carried; record the outcome class and propagate the error.
        fn relay(&mut self, w: SlowClient, nanos: u64) -> u64;
        /// 1 = inner call died of DeadlineExceeded, 2 = other error,
        /// 3 = inner call succeeded, 0 = never called.
        fn saw(&mut self) -> u64;
    }
}

impl Relay {
    pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(Relay::default())
    }

    fn relay(&mut self, ctx: &mut NodeCtx, w: SlowClient, nanos: u64) -> RemoteResult<u64> {
        match w.work(ctx, nanos) {
            Ok(v) => {
                self.saw = 3;
                Ok(v)
            }
            Err(e @ RemoteError::DeadlineExceeded { .. }) => {
                self.saw = 1;
                Err(e)
            }
            Err(e) => {
                self.saw = 2;
                Err(e)
            }
        }
    }

    fn saw(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<u64> {
        Ok(self.saw)
    }
}

/// Satellite: a zero `timeout` is a typed, immediate error — not a busy
/// loop and not an `unwrap` panic deep in the pump.
#[test]
fn zero_timeout_is_a_typed_error_not_a_busy_loop() {
    let (cluster, mut driver) = ClusterBuilder::new(2).register::<Slow>().build();
    let s = SlowClient::new_on(&mut driver, 1).unwrap();

    driver.set_call_policy(CallPolicy::reliable(Duration::ZERO));
    let started = std::time::Instant::now();
    let err = s.count(&mut driver).unwrap_err();
    assert!(
        matches!(err, RemoteError::DeadlineExceeded { elapsed_nanos: 0 }),
        "zero timeout must surface as DeadlineExceeded{{0}}, got: {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "zero timeout must fail immediately, not spin"
    );

    driver.set_call_policy(CallPolicy::reliable(Duration::from_secs(5)));
    cluster.shutdown(driver);
}

/// Tentpole: a request whose deadline expires while it waits behind a slow
/// call is dropped with a typed `DeadlineExceeded` — and the dropped work
/// is *never executed* (the server-side counter proves it).
#[test]
fn expired_deadline_is_typed_and_the_work_never_executes() {
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .sched_workers(1)
        .register::<Slow>()
        .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(0x0DEAD11))
        .call_policy(CallPolicy::reliable(Duration::from_secs(5)))
        .build();
    let s = SlowClient::new_on(&mut driver, 1).unwrap();

    // Occupy the only worker lane for 50 ms of virtual time.
    let a = s.work_async(&mut driver, 50_000_000).unwrap();
    driver.serve_for(Duration::from_millis(1));

    // This request's 10 ms budget expires while it sits in the mailbox.
    driver.set_call_policy(
        CallPolicy::reliable(Duration::from_secs(5)).with_deadline(Duration::from_millis(10)),
    );
    let b = s.work_async(&mut driver, 1_000_000).unwrap();

    assert_eq!(a.wait(&mut driver).unwrap(), 1);
    let err = b.wait(&mut driver).unwrap_err();
    assert!(
        matches!(err, RemoteError::DeadlineExceeded { .. }),
        "expired queued work must die typed, got: {err}"
    );

    // The shed request must have left no side effect.
    driver.set_call_policy(CallPolicy::reliable(Duration::from_secs(5)));
    driver.serve_for(Duration::from_millis(20));
    assert_eq!(
        s.count(&mut driver).unwrap(),
        1,
        "a deadline-shed request must never execute"
    );
    assert!(
        driver.stats_of(1).unwrap().calls_deadline_expired >= 1,
        "the server must account the deadline drop"
    );
    cluster.shutdown(driver);
}

/// Tentpole: a full mailbox rejects at admission with a typed `Overloaded`
/// carrying the observed queue depth and the server's backoff hint — and
/// the rejection is *fail-fast*: the caller learns long before the queued
/// work would have drained.
#[test]
fn mailbox_cap_rejects_fail_fast_with_typed_overloaded() {
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .sched_workers(1)
        .register::<Slow>()
        .overload(OverloadConfig {
            mailbox_cap: 2,
            ..OverloadConfig::new()
        })
        .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(0x0F0CC))
        .call_policy(CallPolicy::reliable(Duration::from_secs(5)))
        .build();
    let s = SlowClient::new_on(&mut driver, 1).unwrap();

    // Park the worker for 50 ms, then overfill the 2-deep mailbox.
    let a = s.work_async(&mut driver, 50_000_000).unwrap();
    driver.serve_for(Duration::from_millis(2));
    let mut queued: Vec<_> = (0..4)
        .map(|_| s.work_async(&mut driver, 1_000_000).unwrap())
        .collect();

    // The last two sends overflowed the cap. Wait them *first*: their
    // rejections must already be here, long before the 50 ms queue drains.
    let t0 = driver.now_nanos();
    let mut shed = 0;
    for p in queued.split_off(2) {
        match p.wait(&mut driver) {
            Err(RemoteError::Overloaded {
                queue_depth,
                retry_after_nanos,
            }) => {
                shed += 1;
                assert!(
                    queue_depth >= 2,
                    "server-side shed must report the mailbox depth, got {queue_depth}"
                );
                assert_eq!(retry_after_nanos, 1_000_000, "backoff hint must be stamped");
                assert!(
                    driver.now_nanos() - t0 < 50_000_000,
                    "Overloaded must fail fast, not wait out the queue"
                );
            }
            r => panic!("expected Overloaded past the cap, got: {r:?}"),
        }
    }
    let mut oks = 0;
    for p in queued {
        oks += u64::from(p.wait(&mut driver).is_ok());
    }
    assert_eq!(a.wait(&mut driver).unwrap(), 1);
    assert_eq!((oks, shed), (2, 2), "cap 2: two queue, two are rejected");
    assert_eq!(driver.stats_of(1).unwrap().calls_shed_overload, 2);
    cluster.shutdown(driver);
}

/// Tentpole: the per-machine in-flight budget backstops admission when load
/// is spread across many objects — per-object mailboxes stay shallow, but
/// the machine-wide gauge still rejects with `Overloaded`.
#[test]
fn inflight_budget_sheds_across_objects() {
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .sched_workers(1)
        .register::<Slow>()
        .overload(OverloadConfig {
            inflight_cap: 2,
            ..OverloadConfig::new()
        })
        .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(0x10F11))
        .call_policy(CallPolicy::reliable(Duration::from_secs(5)))
        .build();
    let objects: Vec<_> = (0..5)
        .map(|_| SlowClient::new_on(&mut driver, 1).unwrap())
        .collect();

    // The first object occupies the worker; four more queue one call each
    // (four different mailboxes, so only the machine gauge can say no).
    let a = objects[0].work_async(&mut driver, 50_000_000).unwrap();
    driver.serve_for(Duration::from_millis(2));
    let queued: Vec<_> = objects[1..]
        .iter()
        .map(|o| o.work_async(&mut driver, 1_000_000).unwrap())
        .collect();

    let (mut oks, mut shed) = (0, 0);
    for p in queued {
        match p.wait(&mut driver) {
            Ok(_) => oks += 1,
            Err(RemoteError::Overloaded { queue_depth, .. }) => {
                shed += 1;
                assert_eq!(queue_depth, 2, "gauge depth at rejection");
            }
            Err(e) => panic!("expected Ok or Overloaded, got: {e}"),
        }
    }
    a.wait(&mut driver).unwrap();
    assert_eq!(
        (oks, shed),
        (2, 2),
        "in-flight cap 2: two admitted, two shed"
    );
    assert_eq!(driver.stats_of(1).unwrap().calls_shed_overload, 2);
    cluster.shutdown(driver);
}

/// Tentpole: CoDel-style sojourn shedding — admitted work that waited
/// longer than the sojourn target is dropped at execution time instead of
/// running hopelessly late.
#[test]
fn sojourn_target_sheds_stale_admitted_work() {
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .sched_workers(1)
        .register::<Slow>()
        .overload(OverloadConfig {
            sojourn_target: Duration::from_millis(5),
            ..OverloadConfig::new()
        })
        .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(0x5030))
        .call_policy(CallPolicy::reliable(Duration::from_secs(5)))
        .build();
    let s = SlowClient::new_on(&mut driver, 1).unwrap();

    let a = s.work_async(&mut driver, 50_000_000).unwrap();
    driver.serve_for(Duration::from_millis(2));
    // Queued behind 50 ms of work with a 5 ms sojourn target: shed.
    let b = s.work_async(&mut driver, 1_000_000).unwrap();

    assert_eq!(a.wait(&mut driver).unwrap(), 1);
    let err = b.wait(&mut driver).unwrap_err();
    assert!(
        matches!(err, RemoteError::Overloaded { queue_depth, .. } if queue_depth >= 1),
        "stale admitted work must shed as Overloaded, got: {err}"
    );
    driver.serve_for(Duration::from_millis(10));
    assert_eq!(s.count(&mut driver).unwrap(), 1, "shed work must not run");
    assert!(driver.stats_of(1).unwrap().calls_shed_sojourn >= 1);
    cluster.shutdown(driver);
}

/// Tentpole: the per-destination circuit breaker. Consecutive timeouts
/// against a crashed machine trip it open; while open, calls fast-fail on
/// the client (`Overloaded` with `queue_depth == 0`, no network, no
/// timeout wait); after the cooldown a half-open trial against the
/// restarted machine re-closes it.
#[test]
fn breaker_opens_fast_fails_and_recloses_after_cooldown() {
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .register::<Slow>()
        .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(0xB4EA))
        .call_policy(CallPolicy::reliable(Duration::from_secs(5)))
        .build();
    let s = SlowClient::new_on(&mut driver, 1).unwrap();

    driver.set_call_policy(
        CallPolicy::reliable(Duration::from_millis(10))
            .with_max_retries(0)
            .with_breaker(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(100),
            }),
    );
    cluster.sim().faults().crash(1);

    for i in 0..2 {
        let err = s.count(&mut driver).unwrap_err();
        assert!(
            matches!(err, RemoteError::Timeout { .. }),
            "call {i} against a crashed machine must time out, got: {err}"
        );
    }

    // Breaker is open: the next call must fail without consuming the
    // 10 ms timeout (no packet is even sent).
    let t0 = driver.now_nanos();
    let err = s.count(&mut driver).unwrap_err();
    assert!(
        matches!(
            err,
            RemoteError::Overloaded {
                queue_depth: 0,
                retry_after_nanos
            } if retry_after_nanos > 0
        ),
        "an open breaker must fast-fail with Overloaded{{0}}, got: {err}"
    );
    assert!(
        driver.now_nanos() - t0 < 10_000_000,
        "a fast-fail must not wait out the call timeout"
    );
    assert!(driver.local_stats().breaker_fast_fails >= 1);

    // Recover the machine, let the cooldown lapse, and the half-open
    // trial re-closes the breaker.
    cluster.sim().faults().restart(1);
    driver.serve_for(Duration::from_millis(150));
    assert_eq!(s.count(&mut driver).unwrap(), 0, "half-open trial");
    assert_eq!(s.count(&mut driver).unwrap(), 0, "breaker closed again");

    cluster.sim().faults().calm();
    cluster.shutdown(driver);
}

/// Tentpole: the token-bucket retry budget. With a 10% deposit the bucket
/// cannot cover a retransmission for the first call, so the timeout
/// surfaces after attempt 1 instead of amplifying into a retry storm; the
/// same call without a budget burns all six attempts.
#[test]
fn retry_budget_suppresses_retransmission_storms() {
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .register::<Slow>()
        .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(0xB0D6E7))
        .call_policy(CallPolicy::reliable(Duration::from_secs(5)))
        .build();
    let s = SlowClient::new_on(&mut driver, 1).unwrap();
    cluster.sim().faults().crash(1);

    let storm_policy = CallPolicy::reliable(Duration::from_millis(10))
        .with_max_retries(5)
        .with_backoff(Backoff::fixed(Duration::from_millis(1)));

    driver.set_call_policy(storm_policy.with_retry_budget(RetryBudgetConfig {
        deposit_millitokens: 100,
        max_millitokens: 1_000,
    }));
    match s.count(&mut driver).unwrap_err() {
        RemoteError::Timeout { attempts, .. } => {
            assert_eq!(attempts, 1, "a dry budget must suppress every retransmit")
        }
        e => panic!("expected Timeout, got: {e}"),
    }
    assert!(driver.local_stats().retries_suppressed >= 1);

    // Control: the identical policy without a budget retries to exhaustion.
    driver.set_call_policy(storm_policy);
    match s.count(&mut driver).unwrap_err() {
        RemoteError::Timeout { attempts, .. } => {
            assert_eq!(attempts, 6, "without a budget all attempts are spent")
        }
        e => panic!("expected Timeout, got: {e}"),
    }

    cluster.sim().faults().restart(1);
    cluster.sim().faults().calm();
    cluster.shutdown(driver);
}

/// Tentpole: deadline *propagation*. The driver stamps a 20 ms budget on a
/// call to a relay, whose own policy carries no deadline; the relay's
/// nested call to a 100 ms-slow object inherits the remaining budget and
/// dies `DeadlineExceeded` at ~20 ms — proven server-side by the relay's
/// record of its inner error, and client-side by the elapsed virtual time
/// (far less than the 100 ms sleep or the 1 s timeout).
#[test]
fn deadline_propagates_across_hops() {
    let (cluster, mut driver) = ClusterBuilder::new(3)
        .sched_workers(1)
        .register::<Slow>()
        .register::<Relay>()
        .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(0xD11E))
        .call_policy(CallPolicy::reliable(Duration::from_secs(1)))
        .build();
    let slow = SlowClient::new_on(&mut driver, 2).unwrap();
    let relay = RelayClient::new_on(&mut driver, 1).unwrap();

    driver.set_call_policy(
        CallPolicy::reliable(Duration::from_secs(1)).with_deadline(Duration::from_millis(20)),
    );
    let t0 = driver.now_nanos();
    let err = relay.relay(&mut driver, slow, 100_000_000).unwrap_err();
    let elapsed = driver.now_nanos() - t0;
    assert!(
        matches!(err, RemoteError::DeadlineExceeded { .. }),
        "the relayed call must die of its inherited deadline, got: {err}"
    );
    assert!(
        (20_000_000..100_000_000).contains(&elapsed),
        "the budget must cut the call at ~20 ms, not the 100 ms sleep \
         or the 1 s timeout (elapsed {elapsed} ns)"
    );

    // The relay observed its *inner* call fail DeadlineExceeded even
    // though the relay's own policy has no deadline: the budget traveled
    // in the frame.
    driver.set_call_policy(CallPolicy::reliable(Duration::from_secs(1)));
    driver.serve_for(Duration::from_millis(200));
    assert_eq!(
        relay.saw(&mut driver).unwrap(),
        1,
        "the inner hop must inherit the originator's deadline"
    );
    cluster.shutdown(driver);
}

/// Tentpole + satellite 4 (in miniature): the whole overload pipeline —
/// admission rejects, deadline drops, successful drains — is a pure
/// function of the seed under virtual time: same seed, same outcome
/// strings, same server counters, same schedule digest.
#[test]
fn overload_outcomes_replay_deterministically() {
    fn run(seed: u64) -> (Vec<String>, u64, u64, u64) {
        let (cluster, mut driver) = ClusterBuilder::new(2)
            .sched_workers(1)
            .register::<Slow>()
            .overload(OverloadConfig {
                mailbox_cap: 2,
                ..OverloadConfig::new()
            })
            .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(seed))
            .call_policy(CallPolicy::reliable(Duration::from_secs(5)))
            .build();
        let clock = cluster.sim().clock().clone();
        let s = SlowClient::new_on(&mut driver, 1).unwrap();

        let a = s.work_async(&mut driver, 30_000_000).unwrap();
        driver.serve_for(Duration::from_millis(2));
        driver.set_call_policy(
            CallPolicy::reliable(Duration::from_secs(5)).with_deadline(Duration::from_millis(10)),
        );
        let mut outcomes: Vec<String> = (0..4)
            .map(|_| s.work_async(&mut driver, 1_000_000).unwrap())
            .collect::<Vec<_>>()
            .into_iter()
            .map(|p| format!("{:?}", p.wait(&mut driver)))
            .collect();
        outcomes.push(format!("{:?}", a.wait(&mut driver)));

        driver.set_call_policy(CallPolicy::reliable(Duration::from_secs(5)));
        driver.serve_for(Duration::from_millis(50));
        let stats = driver.stats_of(1).unwrap();
        cluster.shutdown(driver);
        let digest = clock
            .schedule()
            .expect("virtual clock records a schedule")
            .digest;
        (
            outcomes,
            stats.calls_shed_overload,
            stats.calls_deadline_expired,
            digest,
        )
    }

    let a = run(0x0EED0E);
    let b = run(0x0EED0E);
    assert_eq!(a, b, "same seed must replay the same overload outcomes");
    assert!(
        a.1 >= 1,
        "the scenario must actually exercise admission shedding"
    );
}

/// Satellite 1: builder knobs are validated with clear errors.
mod builder_validation {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one worker machine")]
    fn zero_workers_is_rejected() {
        let _ = ClusterBuilder::new(0);
    }

    #[test]
    #[should_panic(expected = "capped at 1024 worker")]
    fn absurd_worker_count_is_rejected() {
        let _ = ClusterBuilder::new(1025);
    }

    #[test]
    #[should_panic(expected = "capped at 256 lanes")]
    fn absurd_sched_worker_count_is_rejected() {
        let _ = ClusterBuilder::new(1).sched_workers(257);
    }

    #[test]
    #[should_panic(expected = "capped at 1024 shards")]
    fn absurd_dir_shard_count_is_rejected() {
        let _ = ClusterBuilder::new(1).dir_shards(1025);
    }

    #[test]
    #[should_panic(expected = "mailbox_cap must be at least 1")]
    fn zero_mailbox_cap_is_rejected() {
        let _ = ClusterBuilder::new(1).overload(OverloadConfig {
            mailbox_cap: 0,
            ..OverloadConfig::new()
        });
    }

    #[test]
    #[should_panic(expected = "inflight_cap must be at least 1")]
    fn zero_inflight_cap_is_rejected() {
        let _ = ClusterBuilder::new(1).overload(OverloadConfig {
            inflight_cap: 0,
            ..OverloadConfig::new()
        });
    }
}
