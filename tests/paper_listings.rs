#![allow(clippy::approx_constant)] // 3.1415 is the paper’s own literal

//! Integration tests: the paper's complete program listings, transliterated
//! and executed across every crate of the workspace.

use oopp_repro::distarray::{parallel_sum, register_classes, Array, BlockStorage, Domain, PageMap};
use oopp_repro::fft::{c64, max_error, Complex, Direction, DistributedFft3, Fft3, Grid3};
use oopp_repro::oopp::{join, ClusterBuilder, DoubleBlockClient, RemoteClient};
use oopp_repro::pagestore::{
    ArrayPage, ArrayPageDevice, ArrayPageDeviceClient, Page, PageDevice, PageDeviceClient,
};

/// §2: the first listing of the paper, end to end.
#[test]
fn section2_page_device_listing() {
    let (cluster, mut driver) = ClusterBuilder::new(2).register::<PageDevice>().build();
    let page_store =
        PageDeviceClient::new_on(&mut driver, 1, "pagefile".into(), 10, 1024, 0).unwrap();
    let page = Page::generate(1024, 99);
    page_store
        .write(&mut driver, 7, page.clone().into_bytes())
        .unwrap();
    assert_eq!(
        Page::from_bytes(page_store.read(&mut driver, 7).unwrap()),
        page
    );
    cluster.shutdown(driver);
}

/// §2: `double *data = new(machine 2) double[1024]` with N computing
/// processes sharing the block.
#[test]
fn section2_shared_memory_sketch() {
    let n = 4;
    let (cluster, mut driver) = ClusterBuilder::new(n).build();
    let data = DoubleBlockClient::new_on(&mut driver, 2, 1024).unwrap();
    data.set(&mut driver, 7, 3.1415).unwrap();
    assert_eq!(data.get(&mut driver, 2).unwrap(), 0.0);

    // N processes share the block: each writes its slot, all read back.
    let writes: Vec<_> = (0..n)
        .map(|i| data.set_async(&mut driver, i, i as f64).unwrap())
        .collect();
    join(&mut driver, writes).unwrap();
    let reads: Vec<_> = (0..n)
        .map(|i| data.get_async(&mut driver, i).unwrap())
        .collect();
    assert_eq!(join(&mut driver, reads).unwrap(), vec![0.0, 1.0, 2.0, 3.0]);
    cluster.shutdown(driver);
}

/// §3: both sum strategies on an ArrayPageDevice, across crates.
#[test]
fn section3_move_data_vs_move_computation() {
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .register::<PageDevice>()
        .register::<ArrayPageDevice>()
        .build();
    let blocks =
        ArrayPageDeviceClient::new_on(&mut driver, 1, "array_blocks".into(), 6, 8, 8, 8, 0, None)
            .unwrap();
    let page = ArrayPage::generate(8, 8, 8, 4);
    blocks
        .write_array(&mut driver, 4, page.clone().into_f64s())
        .unwrap();

    // Move the data: read the page, sum locally.
    let raw = blocks.as_base().read(&mut driver, 4).unwrap();
    let local = ArrayPage::from_page(8, 8, 8, Page::from_bytes(raw)).sum();
    // Move the computation: device-side sum.
    let remote = blocks.sum(&mut driver, 4).unwrap();

    assert!((local - page.sum()).abs() < 1e-9);
    assert!((remote - page.sum()).abs() < 1e-9);
    cluster.shutdown(driver);
}

/// §4: the split-loop parallel read over N devices.
#[test]
fn section4_parallel_device_read() {
    let n = 6;
    let (cluster, mut driver) = ClusterBuilder::new(n)
        .register::<PageDevice>()
        .register::<ArrayPageDevice>()
        .build();
    let mut devices = Vec::new();
    for i in 0..n {
        devices.push(
            ArrayPageDeviceClient::new_on(
                &mut driver,
                i,
                format!("array_blocks_{i}"),
                8,
                4,
                4,
                4,
                0,
                None,
            )
            .unwrap(),
        );
    }
    let page_address: Vec<u64> = (0..n as u64).map(|i| (3 * i) % 8).collect();
    for (i, d) in devices.iter().enumerate() {
        d.write_array(
            &mut driver,
            page_address[i],
            ArrayPage::generate(4, 4, 4, i as u64).into_f64s(),
        )
        .unwrap();
    }
    // The compiler-split loop.
    let pending: Vec<_> = devices
        .iter()
        .enumerate()
        .map(|(i, d)| d.read_array_async(&mut driver, page_address[i]).unwrap())
        .collect();
    let buffers = join(&mut driver, pending).unwrap();
    for (i, buf) in buffers.iter().enumerate() {
        assert_eq!(buf.0, ArrayPage::generate(4, 4, 4, i as u64).elements());
    }
    cluster.shutdown(driver);
}

/// §4: the FFT master listing — create the group, SetGroup, transform.
#[test]
fn section4_fft_group_listing() {
    let shape = [8usize, 8, 8];
    let grid: Vec<Complex> = (0..512).map(|i| c64((i as f64 * 0.1).sin(), 0.0)).collect();
    let expected = Fft3::new(shape).transform(&Grid3::new(shape, grid.clone()), Direction::Forward);

    let (cluster, mut driver) = DistributedFft3::register(ClusterBuilder::new(4)).build();
    let dfft = DistributedFft3::new(&mut driver, [8, 8, 8], 4).unwrap();
    dfft.scatter(&mut driver, &grid).unwrap();
    dfft.transform(&mut driver, Direction::Forward).unwrap();
    let got = dfft.gather(&mut driver).unwrap();
    assert!(max_error(&got, expected.data()) < 1e-9);
    dfft.destroy(&mut driver).unwrap();
    cluster.shutdown(driver);
}

/// §5: the Array built over BlockStorage with a PageMap, summed by
/// multiple parallel Array clients, then persisted and reborn.
#[test]
fn section5_array_and_persistence() {
    let (cluster, mut driver) = register_classes(ClusterBuilder::new(3)).build();

    // Build the array.
    let grid = [2u64, 2, 2];
    let map = PageMap::hashed(grid, 3, 42);
    let storage =
        BlockStorage::create(&mut driver, "set", 3, map.pages_per_device(), 4, 4, 4, 1).unwrap();
    let array = Array::new([8, 8, 8], [4, 4, 4], storage, map).unwrap();
    let whole = array.whole();
    let data: Vec<f64> = (0..512).map(|i| (i % 97) as f64).collect();
    array.write(&mut driver, &whole, &data).unwrap();
    let expected: f64 = data.iter().sum();

    // Loop over subdomains with a single client...
    let mut total = 0.0;
    for slab in whole.split_axis0(4) {
        total += array.sum(&mut driver, &slab).unwrap();
    }
    assert!((total - expected).abs() < 1e-9);
    // ... and with parallel clients.
    let par = parallel_sum(&mut driver, &array, &whole, 3).unwrap();
    assert!((par - expected).abs() < 1e-9);

    // Persist one device and reactivate it; the array still answers.
    let dev0 = *array.storage().device(0);
    let key = oopp_repro::oopp::symbolic_addr(&["snapshots", "set", "0"]);
    driver.deactivate(dev0.obj_ref(), &key).unwrap();
    let revived: ArrayPageDeviceClient = driver.activate(dev0.machine(), &key).unwrap();
    // Rebuild the storage table with the revived device.
    let mut devices = array.storage().devices().to_vec();
    devices[0] = revived;
    let array2 = Array::new(
        [8, 8, 8],
        [4, 4, 4],
        BlockStorage::from_devices(devices),
        array.map().clone(),
    )
    .unwrap();
    let after = array2.sum(&mut driver, &whole).unwrap();
    assert!(
        (after - expected).abs() < 1e-9,
        "data survived deactivation"
    );
    cluster.shutdown(driver);
}

/// Sub-domain reads assemble correctly across page and device boundaries.
#[test]
fn section5_subdomain_read_assembly() {
    let (cluster, mut driver) = register_classes(ClusterBuilder::new(2)).build();
    let grid = [3u64, 3, 3];
    let map = PageMap::zcurve(grid, 2);
    let storage =
        BlockStorage::create(&mut driver, "z", 2, map.pages_per_device(), 2, 2, 2, 1).unwrap();
    let array = Array::new([6, 6, 6], [2, 2, 2], storage, map).unwrap();
    let data: Vec<f64> = (0..216).map(|i| i as f64).collect();
    array.write(&mut driver, &array.whole(), &data).unwrap();

    let d = Domain::new(1, 5, 1, 5, 1, 5);
    let sub = array.read(&mut driver, &d).unwrap();
    // Check a few elements against the row-major layout.
    let at = |i1: u64, i2: u64, i3: u64| ((i1 * 6 + i2) * 6 + i3) as f64;
    assert_eq!(sub[0], at(1, 1, 1));
    assert_eq!(sub[63], at(4, 4, 4));
    assert_eq!(sub.len(), 64);
    cluster.shutdown(driver);
}
