//! Sharded control-plane suite (DESIGN.md §14).
//!
//! Exercises the `dirsvc` management plane end to end on a virtual-time
//! fabric: attaching the `DirShard` fleet to supervision or replication,
//! snapshot takeover of an unreplicated shard primary, the satellite
//! regression that a *replicated* shard heals by state-preserving
//! promotion (not a `Replicated` refusal, not a stale snapshot), lookup
//! availability through the outage window, and the client resolve
//! cache's hit/miss accounting.
//!
//! One idiom throughout: epoch-gated incarnations (takeover or promoted
//! shards) are lease-self-fenced — they serve only while supervisor
//! heartbeats renew their machine's lease (DESIGN.md §10). Audits after
//! a fault therefore run with the control loop still stepping, exactly
//! as a production driver would.

use std::time::Duration;

use dirsvc::{DirService, DirServiceConfig, DirStep};
use oopp_repro::oopp::{
    shard_addr, shard_of_name, symbolic_addr, Backoff, CallPolicy, Cluster, ClusterBuilder, Driver,
    NameService, ObjRef, RemoteError,
};
use oopp_repro::simnet::ClusterConfig;
use replica::{CoherenceMode, ReplicaConfig};
use supervision::{DetectorConfig, RestartPolicy, SupervisorConfig};

/// Fast-failure policy: dead shard seats must cost short windows.
fn fast_policy() -> CallPolicy {
    CallPolicy::reliable(Duration::from_millis(100))
        .with_max_retries(2)
        .with_backoff(Backoff::fixed(Duration::from_millis(5)))
}

/// Service tuning scaled to the zero-cost virtual fabric.
fn svc_config(read_replicas: usize) -> DirServiceConfig {
    let heartbeat_interval = Duration::from_millis(10);
    DirServiceConfig {
        read_replicas,
        snapshot_backups: 2,
        supervisor: SupervisorConfig {
            heartbeat_interval,
            lease_ttl: Duration::from_millis(150),
            detector: DetectorConfig {
                expected_interval: heartbeat_interval,
                ..DetectorConfig::default()
            },
            restart: RestartPolicy::Retries {
                max_retries: 2,
                backoff: Backoff::fixed(Duration::from_millis(10)),
            },
        },
        replica: ReplicaConfig {
            mode: CoherenceMode::WriteThrough,
            lease: Duration::from_secs(30),
        },
    }
}

/// A 4-worker cluster (driver is machine 4) on a seeded virtual clock
/// with `shards` directory shards seated round-robin on machines
/// `0..4`. Machine 0 hosts the root directory and is never faulted.
fn build(shards: u32, seed: u64) -> (Cluster, Driver) {
    ClusterBuilder::new(4)
        .dir_shards(shards)
        .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(seed))
        .call_policy(fast_policy())
        .build()
}

/// Step the service until `done` says so (panic past `limit` on the
/// cluster clock), merging every round's outcome.
fn settle(
    svc: &mut DirService,
    driver: &mut Driver,
    limit: Duration,
    mut done: impl FnMut(&DirService, &DirStep) -> bool,
) -> DirStep {
    let deadline = driver.now_nanos() + limit.as_nanos() as u64;
    let mut out = DirStep::default();
    loop {
        let round = svc.step(driver).expect("control plane must keep stepping");
        out.takeovers.extend(round.takeovers);
        out.promotions.extend(round.promotions);
        out.synced += round.synced;
        if done(svc, &out) {
            return out;
        }
        assert!(
            driver.now_nanos() < deadline,
            "dirsvc did not settle in {limit:?}: stats {:?}",
            svc.stats()
        );
        driver.serve_for(Duration::from_millis(2));
    }
}

/// Look `name` up through the facade with the control loop running: a
/// healed shard serves only while heartbeats renew its lease, so each
/// attempt is preceded by a service step. Panics if the lookup cannot
/// complete within the budget.
fn lookup_stepping(
    svc: &mut DirService,
    driver: &mut Driver,
    ns: &NameService,
    name: &str,
) -> Option<ObjRef> {
    for _ in 0..40 {
        svc.step(driver).expect("control plane must keep stepping");
        match ns.lookup(driver, name.to_string()) {
            Ok(v) => return v,
            Err(RemoteError::Timeout { .. }) | Err(RemoteError::Fenced { .. }) => {
                driver.serve_for(Duration::from_millis(2));
            }
            Err(e) => panic!("{name}: unexpected lookup error {e:?}"),
        }
    }
    panic!("{name}: lookup never completed with the control loop running");
}

/// Bind `n` names per shard through the sharded facade, returning the
/// `(name, target)` ledger to audit after faults.
fn bind_ledger(
    ns: &NameService,
    driver: &mut Driver,
    tag: &str,
    n: usize,
) -> Vec<(String, ObjRef)> {
    let shards = ns.shards();
    let mut ledger = Vec::new();
    let mut per_shard = vec![0usize; shards as usize];
    for i in 0..10_000usize {
        if ledger.len() == shards as usize * n {
            break;
        }
        let name = symbolic_addr(&["dirsvc", tag, &i.to_string()]);
        let s = shard_of_name(&name, shards) as usize;
        if per_shard[s] >= n {
            continue;
        }
        per_shard[s] += 1;
        let target = ObjRef {
            machine: i % 4,
            object: 10_000 + i as u64,
        };
        ns.bind(driver, name.clone(), target).unwrap();
        ledger.push((name, target));
    }
    assert_eq!(ledger.len(), shards as usize * n, "name scan exhausted");
    ledger
}

/// `attach` must refuse a classic (unsharded) cluster loudly instead of
/// supervising a shard map that does not exist.
#[test]
fn attach_refuses_a_classic_cluster() {
    let (cluster, mut driver) = build(0, 0xD1F5_0001);
    let ns = driver.directory();
    assert_eq!(ns.shards(), 0);
    let mut svc = DirService::new(svc_config(0), vec![1, 2, 3], ns);
    let err = svc.attach(&mut driver).unwrap_err();
    assert!(
        err.to_string().contains("dir_shards"),
        "refusal must name the fix, got: {err}"
    );
    cluster.shutdown(driver);
}

/// Tentpole path, unreplicated: a shard primary's machine crashes; the
/// supervisor detects it, takes the partition over from the replicated
/// snapshot at a bumped epoch, and rebinds the seat — every binding in
/// the lost partition resolves again, and lookups issued *during* the
/// outage return the correct target or a timeout, never a stale or
/// lost binding.
#[test]
fn unreplicated_shard_survives_primary_crash_by_snapshot_takeover() {
    let (cluster, mut driver) = build(4, 0xD1F5_0002);
    let ns = driver.directory();
    assert_eq!(ns.shards(), 4);
    let mut svc = DirService::new(svc_config(0), vec![1, 2, 3], ns);
    assert_eq!(svc.attach(&mut driver).unwrap(), 4);

    // Partition data lands after attach; the checkpoint pushes it into
    // every shard's snapshot backups (recovery restores the last
    // replicated partition).
    let ledger = bind_ledger(&ns, &mut driver, "take", 2);
    assert_eq!(svc.checkpoint(&mut driver), 4);

    // Warm the detector so it has inter-arrival evidence to judge.
    settle(&mut svc, &mut driver, Duration::from_secs(5), |s, _| {
        [1, 2, 3]
            .iter()
            .all(|&m| s.supervisor().detector().last_heartbeat(m).is_some())
    });

    // Machine 1 seats shard 1 (round-robin placement over 4 workers).
    let (probe_name, probe_target) = ledger
        .iter()
        .find(|(n, _)| shard_of_name(n, 4) == 1)
        .cloned()
        .unwrap();
    cluster.sim().faults().crash(1);

    let deadline = driver.now_nanos() + Duration::from_secs(30).as_nanos() as u64;
    let mut healed = DirStep::default();
    loop {
        let round = svc.step(&mut driver).unwrap();
        healed.takeovers.extend(round.takeovers);
        healed.promotions.extend(round.promotions);
        // Availability probe mid-outage: the routed lookup either fails
        // against the dark (or not-yet-released) seat or returns the
        // *correct* binding through the takeover incarnation — never
        // None, never a wrong target.
        match ns.lookup(&mut driver, probe_name.clone()) {
            Ok(v) => assert_eq!(v, Some(probe_target), "stale binding served mid-takeover"),
            Err(RemoteError::Timeout { .. }) | Err(RemoteError::Fenced { .. }) => {}
            Err(e) => panic!("unexpected mid-takeover error: {e:?}"),
        }
        if !healed.takeovers.is_empty() {
            break;
        }
        assert!(
            driver.now_nanos() < deadline,
            "takeover never landed: {:?}",
            svc.stats()
        );
        driver.serve_for(Duration::from_millis(2));
    }

    // The takeover healed shard 1 specifically, by snapshot (no
    // promotions — nothing was replicated).
    assert!(healed.takeovers.iter().any(|r| r.name == shard_addr(1)));
    assert!(healed.promotions.is_empty());
    let takeover = healed
        .takeovers
        .iter()
        .find(|r| r.name == shard_addr(1))
        .unwrap()
        .clone();
    assert_ne!(takeover.to.machine, 1, "takeover must land on a survivor");

    // The machine comes back (blank) and is readmitted before the
    // audit: lease renewal for the takeover incarnation requires a
    // normal heartbeat cadence, which a permanently dark machine's
    // probe stalls would deny.
    cluster.sim().faults().restart(1);
    settle(&mut svc, &mut driver, Duration::from_secs(30), |s, _| {
        [1, 2, 3].iter().all(|&m| !s.is_dead(m))
    });

    // The entire ledger — including the lost partition — resolves.
    for (name, target) in &ledger {
        assert_eq!(
            lookup_stepping(&mut svc, &mut driver, &ns, name),
            Some(*target),
            "{name} lost in takeover"
        );
    }
    // The seat's lease is fenced forward: registration claimed epoch 1,
    // the takeover claimed past it.
    let (seat, epoch, poisoned) = ns
        .root_client()
        .lease_of(&mut driver, shard_addr(1))
        .unwrap()
        .unwrap();
    assert_eq!(seat, takeover.to);
    assert!(epoch >= 2, "takeover must bump the seat epoch, got {epoch}");
    assert!(!poisoned);

    // And the shard keeps accepting writes.
    let fresh = symbolic_addr(&["dirsvc", "take", "fresh"]);
    svc.step(&mut driver).unwrap();
    ns.bind(&mut driver, fresh.clone(), probe_target).unwrap();
    assert_eq!(
        lookup_stepping(&mut svc, &mut driver, &ns, &fresh),
        Some(probe_target)
    );

    let stats = svc.stats();
    assert!(stats.machines_declared_dead >= 1);
    assert!(stats.shard_takeovers >= 1);
    assert_eq!(stats.shard_promotions, 0);

    cluster.shutdown(driver);
}

/// Satellite regression: a **replicated** `DirShard` survives its
/// primary's crash via replica *promotion* — state-preserving, with no
/// checkpoint ever taken — rather than refusing with
/// `RemoteError::Replicated` or restoring a stale snapshot. Bindings
/// written after attach (so present only in the live partition and its
/// write-through replica) must all survive.
#[test]
fn replicated_shard_survives_primary_crash_by_promotion() {
    let (cluster, mut driver) = build(4, 0xD1F5_0003);
    let ns = driver.directory();
    let mut svc = DirService::new(svc_config(1), vec![1, 2, 3], ns);
    assert_eq!(svc.attach(&mut driver).unwrap(), 4);

    // Written AFTER replication, NEVER checkpointed: only write-through
    // coherence can carry these across the crash.
    let ledger = bind_ledger(&ns, &mut driver, "promo", 2);

    settle(&mut svc, &mut driver, Duration::from_secs(5), |s, _| {
        [1, 2, 3]
            .iter()
            .all(|&m| s.supervisor().detector().last_heartbeat(m).is_some())
    });

    cluster.sim().faults().crash(1);
    let healed = settle(&mut svc, &mut driver, Duration::from_secs(30), |_, out| {
        out.promotions.iter().any(|(n, _)| *n == shard_addr(1))
    });

    // Shard 1 healed by promotion; nothing was supervised, so no
    // snapshot takeovers at all. (The dead-probe stalls can push the
    // phi detector into false-suspecting another machine — its shard
    // then *also* heals by promotion, which the audit below covers.)
    assert!(healed.takeovers.is_empty());
    let (_, promoted) = healed
        .promotions
        .iter()
        .find(|(n, _)| *n == shard_addr(1))
        .cloned()
        .unwrap();
    assert_ne!(promoted.machine, 1, "promotion must land on a survivor");

    // The machine comes back (blank) and the fleet is readmitted, so
    // heartbeat cadence normalizes and lease renewal resumes — with a
    // machine permanently dark, every probe window widens the phi
    // detector's suspicion of the survivors.
    cluster.sim().faults().restart(1);
    settle(&mut svc, &mut driver, Duration::from_secs(30), |s, _| {
        [1, 2, 3].iter().all(|&m| !s.is_dead(m))
    });

    // Every un-checkpointed binding survived: the promoted replicas
    // held the full partitions.
    for (name, target) in &ledger {
        assert_eq!(
            lookup_stepping(&mut svc, &mut driver, &ns, name),
            Some(*target),
            "{name} lost in promotion — replica was stale or takeover used a snapshot"
        );
    }
    // The promoted incarnation is the seat now, and accepts writes.
    assert_eq!(
        ns.root_client().lookup(&mut driver, shard_addr(1)).unwrap(),
        Some(promoted)
    );
    let fresh = symbolic_addr(&["dirsvc", "promo", "fresh"]);
    let target = ledger[0].1;
    svc.step(&mut driver).unwrap();
    ns.bind(&mut driver, fresh.clone(), target).unwrap();
    assert_eq!(
        lookup_stepping(&mut svc, &mut driver, &ns, &fresh),
        Some(target)
    );

    let stats = svc.stats();
    assert!(stats.shard_promotions >= 1);
    assert_eq!(stats.shard_takeovers, 0);

    cluster.shutdown(driver);
}

/// The client resolve cache earns its keep on the sharded path: the
/// first routed op per shard misses (root consultation), subsequent
/// ops hit, and both outcomes are counted in the node's stats — the
/// counters the `reproduce` tables surface.
#[test]
fn resolve_cache_hits_and_misses_are_counted() {
    let (cluster, mut driver) = build(2, 0xD1F5_0004);
    let ns = driver.directory();

    let name = symbolic_addr(&["dirsvc", "cache", "0"]);
    let target = ObjRef {
        machine: 1,
        object: 77,
    };
    ns.bind(&mut driver, name.clone(), target).unwrap();
    let before = driver.local_stats();
    for _ in 0..10 {
        assert_eq!(ns.lookup(&mut driver, name.clone()).unwrap(), Some(target));
    }
    let after = driver.local_stats();
    assert!(
        after.dir_cache_hits >= before.dir_cache_hits + 10,
        "10 warm lookups must hit the resolve cache ({} -> {})",
        before.dir_cache_hits,
        after.dir_cache_hits
    );
    assert!(
        before.dir_cache_misses >= 1,
        "the first routed op must miss and consult the root"
    );
    assert_eq!(
        after.dir_cache_misses, before.dir_cache_misses,
        "warm lookups must not re-consult the root"
    );
    cluster.shutdown(driver);
}
