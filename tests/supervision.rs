//! Self-healing suite (DESIGN.md §10).
//!
//! Exercises the supervision stack end to end: heartbeat failure
//! detection with phi-accrual verdicts, epoch-fenced takeover of a
//! crashed machine's objects from replicated snapshots, lease-based
//! self-fencing under a partition-induced *false* suspicion (zero
//! split-brain writes), the CAS-arbitrated recovery race (exactly one
//! activation no matter how many clients notice the crash), stale
//! moved-cache invalidation when a forward's target dies, and restart
//! policies that poison unrecoverable names.

use std::time::{Duration, Instant};

use oopp_repro::oopp::{
    join, resolve_or_activate_supervised, symbolic_addr, wire, Backoff, CallPolicy, ClusterBuilder,
    Driver, NameService, NodeCtx, ObjRef, RemoteClient, RemoteError, RemoteResult,
};
use oopp_repro::simnet::ClusterConfig;
use supervision::{DetectorConfig, RestartPolicy, Supervisor, SupervisorConfig};

/// Persistent, deliberately non-idempotent counter: every recovered total
/// is evidence about exactly-once execution and snapshot fidelity.
#[derive(Debug, Default)]
pub struct PCounter {
    total: u64,
}

oopp_repro::oopp::remote_class! {
    class PCounter {
        persistent;
        ctor();
        /// Add `n`; returns the new total.
        fn add(&mut self, n: u64) -> u64;
        /// Current total.
        fn total(&mut self) -> u64;
    }
}

impl PCounter {
    pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(PCounter::default())
    }

    fn add(&mut self, _ctx: &mut NodeCtx, n: u64) -> RemoteResult<u64> {
        self.total += n;
        Ok(self.total)
    }

    fn total(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<u64> {
        Ok(self.total)
    }

    fn save_state(&self) -> Vec<u8> {
        wire::to_bytes(&self.total)
    }

    fn load_state(_ctx: &mut NodeCtx, state: &[u8]) -> RemoteResult<Self> {
        Ok(PCounter {
            total: wire::from_bytes(state)?,
        })
    }
}

/// A worker-side recoverer: runs the supervised resolution *on its own
/// machine*, so two of these on different machines genuinely race for the
/// takeover claim in parallel threads.
#[derive(Debug)]
pub struct Reviver;

oopp_repro::oopp::remote_class! {
    class Reviver {
        ctor();
        /// Resolve `addr` under supervision (activating from a replica if
        /// the home is dead) and return the resolved address.
        fn revive(&mut self, dir: ObjRef, addr: String, candidates: Vec<usize>) -> ObjRef;
    }
}

impl Reviver {
    pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(Reviver)
    }

    fn revive(
        &mut self,
        ctx: &mut NodeCtx,
        dir: ObjRef,
        addr: String,
        candidates: Vec<usize>,
    ) -> RemoteResult<ObjRef> {
        let dir = NameService::classic(dir);
        let c: PCounterClient = resolve_or_activate_supervised(ctx, &dir, &addr, &candidates)?;
        Ok(c.obj_ref())
    }
}

/// Fast-failure call policy for supervision tests: dead machines must
/// cost short windows, not 30-second defaults.
fn test_policy() -> CallPolicy {
    CallPolicy::reliable(Duration::from_millis(100))
        .with_max_retries(2)
        .with_backoff(Backoff::fixed(Duration::from_millis(5)))
}

/// Supervisor tuning scaled to a zero-cost fabric, with a lease long
/// enough that a scheduler hiccup on the test thread cannot expire it.
fn test_config() -> SupervisorConfig {
    let heartbeat_interval = Duration::from_millis(10);
    SupervisorConfig {
        heartbeat_interval,
        lease_ttl: Duration::from_millis(150),
        detector: DetectorConfig {
            expected_interval: heartbeat_interval,
            ..DetectorConfig::default()
        },
        restart: RestartPolicy::Retries {
            max_retries: 2,
            backoff: Backoff::fixed(Duration::from_millis(10)),
        },
    }
}

/// Step the supervisor until `done` says so (or panic after `limit`),
/// collecting every completed recovery along the way.
fn settle(
    sup: &mut Supervisor,
    driver: &mut Driver,
    limit: Duration,
    mut done: impl FnMut(&Supervisor, &[supervision::Recovery]) -> bool,
) -> Vec<supervision::Recovery> {
    let deadline = Instant::now() + limit;
    let mut recoveries = Vec::new();
    loop {
        recoveries.extend(sup.step(driver).expect("directory must stay reachable"));
        if done(sup, &recoveries) {
            return recoveries;
        }
        assert!(
            Instant::now() < deadline,
            "supervisor did not settle in {limit:?}: stats {:?}, recoveries {recoveries:?}",
            sup.stats()
        );
        driver.serve_for(Duration::from_millis(2));
    }
}

/// A healthy cluster under supervision: heartbeats renew leases, nothing
/// is suspected to death, and supervised objects keep serving.
#[test]
fn healthy_cluster_is_never_declared_dead() {
    let (cluster, mut driver) = ClusterBuilder::new(3)
        .register::<PCounter>()
        .sim_config(ClusterConfig::zero_cost(0))
        .call_policy(test_policy())
        .build();
    let dir = driver.directory();
    let mut sup =
        Supervisor::new(test_config(), vec![1, 2], dir).with_metrics(cluster.metrics().clone());

    let c = PCounterClient::new_on(&mut driver, 1).unwrap();
    sup.register(
        &mut driver,
        &symbolic_addr(&["sup", "PCounter", "0"]),
        &c,
        &[2],
    )
    .unwrap();

    let until = Instant::now() + Duration::from_millis(600);
    let mut adds = 0;
    while Instant::now() < until {
        sup.step(&mut driver).unwrap();
        c.add(&mut driver, 1).unwrap();
        adds += 1;
        driver.serve_for(Duration::from_millis(5));
    }
    assert_eq!(c.total(&mut driver).unwrap(), adds);

    let stats = sup.stats();
    assert_eq!(stats.machines_declared_dead, 0, "{stats:?}");
    assert_eq!(stats.false_suspicions, 0, "{stats:?}");
    assert_eq!(stats.objects_reactivated, 0, "{stats:?}");
    for m in [1, 2] {
        let ns = driver.stats_of(m).unwrap();
        assert!(ns.heartbeats_served > 0, "machine {m} never served a beat");
        assert_eq!(ns.calls_fenced, 0, "machine {m} fenced a healthy call");
    }

    cluster.shutdown(driver);
}

/// The tentpole path: a crashed machine is detected, its supervised
/// object is reactivated from the replicated snapshot on a survivor at a
/// bumped epoch, state carries over, and MTTR is bounded and accounted.
#[test]
fn crashed_machine_is_detected_and_its_object_reactivated() {
    let (cluster, mut driver) = ClusterBuilder::new(3)
        .register::<PCounter>()
        .sim_config(ClusterConfig::zero_cost(0))
        .call_policy(test_policy())
        .build();
    let dir = driver.directory();
    let cfg = test_config();
    let mut sup = Supervisor::new(cfg, vec![1, 2], dir).with_metrics(cluster.metrics().clone());

    let addr = symbolic_addr(&["sup", "PCounter", "0"]);
    let c = PCounterClient::new_on(&mut driver, 1).unwrap();
    sup.register(&mut driver, &addr, &c, &[2]).unwrap();

    // Build up state, then checkpoint so the replica carries it.
    for _ in 0..5 {
        c.add(&mut driver, 1).unwrap();
    }
    assert_eq!(sup.checkpoint(&mut driver), 1);

    // Warm the detector so it has an inter-arrival distribution to judge.
    settle(&mut sup, &mut driver, Duration::from_secs(5), |s, _| {
        s.detector().last_heartbeat(1).is_some() && s.detector().last_heartbeat(2).is_some()
    });

    cluster.sim().faults().crash(1);
    let recoveries = settle(&mut sup, &mut driver, Duration::from_secs(15), |_, r| {
        !r.is_empty()
    });

    assert_eq!(recoveries.len(), 1);
    let r = &recoveries[0];
    assert_eq!(r.name, addr);
    assert_eq!(r.from, 1);
    assert_eq!(r.to.machine, 2, "the only backup must host the takeover");
    assert_eq!(r.epoch, 2, "registration epoch 1 + one takeover claim");
    assert!(sup.is_dead(1));

    // MTTR is real and bounded: detection alone must span the lease TTL
    // (takeover before that would race the old lease), and the whole
    // recovery stays within interactive bounds even on a loaded CI box.
    assert!(r.detect >= cfg.lease_ttl, "detect {:?}", r.detect);
    assert!(r.total >= r.detect);
    assert!(r.total < Duration::from_secs(10), "MTTR {:?}", r.total);

    // The incarnation carries the checkpointed state and keeps serving.
    let recovered = PCounterClient::from_ref(r.to);
    assert_eq!(recovered.total(&mut driver).unwrap(), 5);
    assert_eq!(recovered.add(&mut driver, 1).unwrap(), 6);

    // The directory agrees with the supervisor's view.
    assert_eq!(
        dir.lease_of(&mut driver, addr.clone()).unwrap(),
        Some((r.to, 2, false))
    );
    assert_eq!(sup.current_of(&addr), Some(r.to));

    // And the substrate metrics carry the recovery accounting.
    let snap = cluster.snapshot();
    assert_eq!(snap.recoveries, 1);
    assert!(snap.mean_mttr_nanos() > 0);
    assert!(snap.recovery_detect_nanos <= snap.recovery_total_nanos);

    cluster.sim().faults().restart(1);
    cluster.shutdown(driver);
}

/// The false-suspicion drill: a partition makes a *live* machine look
/// dead. The supervisor takes its object away — but the partitioned
/// incarnation's lease has lapsed, so when the partition heals the stale
/// copy refuses calls with `Fenced` instead of accepting a split-brain
/// write. Resurrection then re-fences it into a forwarder and the
/// machine rejoins.
#[test]
fn partition_false_suspicion_cannot_split_the_brain() {
    let (cluster, mut driver) = ClusterBuilder::new(3)
        .register::<PCounter>()
        .sim_config(ClusterConfig::zero_cost(0))
        .call_policy(test_policy())
        .build();
    let dir = driver.directory();
    let mut sup =
        Supervisor::new(test_config(), vec![1, 2], dir).with_metrics(cluster.metrics().clone());

    let addr = symbolic_addr(&["sup", "PCounter", "0"]);
    let c = PCounterClient::new_on(&mut driver, 1).unwrap();
    sup.register(&mut driver, &addr, &c, &[2]).unwrap();
    for _ in 0..5 {
        c.add(&mut driver, 1).unwrap();
    }
    assert_eq!(sup.checkpoint(&mut driver), 1);
    settle(&mut sup, &mut driver, Duration::from_secs(5), |s, _| {
        s.detector().last_heartbeat(1).is_some()
    });

    // Cut machine 1 off from the whole cluster — workers AND the driver
    // (machine id 3), so heartbeats stop while the machine itself lives.
    cluster.sim().faults().isolate(1, &[0, 2, 3]);
    let recoveries = settle(&mut sup, &mut driver, Duration::from_secs(15), |_, r| {
        !r.is_empty()
    });
    let new_home = recoveries[0].to;
    assert_eq!(new_home.machine, 2);

    // Writes continue against the takeover incarnation.
    let recovered = PCounterClient::from_ref(new_home);
    for _ in 0..3 {
        recovered.add(&mut driver, 1).unwrap();
    }

    cluster.sim().faults().rejoin(1, &[0, 2, 3]);

    // The healed machine still holds its pre-partition incarnation, but
    // its lease expired mid-partition: before the supervisor has even
    // noticed the resurrection, a stale direct call bounces with Fenced
    // instead of reaching the old copy. This is the split-brain window,
    // and it is closed.
    match c.total(&mut driver) {
        Err(RemoteError::Fenced { current_epoch }) => assert_eq!(current_epoch, 1),
        other => panic!("stale call must be fenced by the lapsed lease, got {other:?}"),
    }
    assert!(driver.stats_of(1).unwrap().calls_fenced > 0);

    // Let the supervisor see the machine answer probes, re-fence the
    // stale incarnation, and readmit the machine.
    settle(&mut sup, &mut driver, Duration::from_secs(15), |s, _| {
        !s.is_dead(1)
    });
    assert_eq!(sup.stats().false_suspicions, 1);
    assert_eq!(cluster.snapshot().false_suspicions, 1);

    // The re-fence destroyed the stale copy (machine 1 hosts no objects
    // now) and left a forward: the old pointer transparently reaches the
    // takeover incarnation, whose total proves every write landed exactly
    // once — 5 before the partition, 3 during, none lost, none doubled.
    assert_eq!(driver.stats_of(1).unwrap().objects_live, 0);
    assert_eq!(c.total(&mut driver).unwrap(), 8);
    assert_eq!(recovered.total(&mut driver).unwrap(), 8);

    cluster.shutdown(driver);
}

/// Satellite regression: N clients watching the same crash race through
/// `resolve_or_activate_supervised` — the directory's CAS claim must let
/// exactly one of them activate, with the loser adopting the winner's
/// incarnation. Two worker machines race in genuinely parallel threads.
#[test]
fn racing_recoveries_activate_exactly_once() {
    let (cluster, mut driver) = ClusterBuilder::new(4)
        .register::<PCounter>()
        .register::<Reviver>()
        .sim_config(ClusterConfig::zero_cost(0))
        .call_policy(test_policy())
        .build();
    let dir = driver.directory();

    let addr = symbolic_addr(&["race", "PCounter", "0"]);
    let c = PCounterClient::new_on(&mut driver, 1).unwrap();
    for _ in 0..4 {
        c.add(&mut driver, 1).unwrap();
    }
    dir.bind(&mut driver, addr.clone(), c.obj_ref()).unwrap();
    driver.replicate_snapshot(&c, &addr, &[2, 3]).unwrap();

    let r2 = ReviverClient::new_on(&mut driver, 2).unwrap();
    let r3 = ReviverClient::new_on(&mut driver, 3).unwrap();
    let before: usize = [2, 3]
        .iter()
        .map(|&m| driver.stats_of(m).unwrap().objects_live as usize)
        .sum();

    cluster.sim().faults().crash(1);

    // Both workers notice the dead home and race for the takeover.
    let dir_ref = dir.obj_ref();
    let pending = vec![
        r2.revive_async(&mut driver, dir_ref, addr.clone(), vec![1, 2, 3])
            .unwrap(),
        r3.revive_async(&mut driver, dir_ref, addr.clone(), vec![1, 2, 3])
            .unwrap(),
    ];
    // Each racer's resolution legitimately takes seconds (probing the
    // dead home costs a full policy window per round), so the driver
    // waits with a patient single-shot policy rather than its fast one.
    let fast = driver.call_policy();
    driver.set_call_policy(CallPolicy::no_retry(Duration::from_secs(30)));
    let resolved = join(&mut driver, pending).unwrap();
    driver.set_call_policy(fast);

    // Exactly one activation: both racers agree on the same incarnation,
    // the lease epoch advanced exactly once, and exactly one new object
    // exists across the candidate machines.
    assert_eq!(resolved[0], resolved[1], "racers resolved different copies");
    let (bound, epoch, poisoned) = dir.lease_of(&mut driver, addr.clone()).unwrap().unwrap();
    assert_eq!(bound, resolved[0]);
    assert_eq!(epoch, 1, "exactly one CAS claim must have succeeded");
    assert!(!poisoned);
    let after: usize = [2, 3]
        .iter()
        .map(|&m| driver.stats_of(m).unwrap().objects_live as usize)
        .sum();
    assert_eq!(after, before + 1, "double activation detected");

    // The survivor carries the replicated state.
    let survivor = PCounterClient::from_ref(resolved[0]);
    assert_eq!(survivor.total(&mut driver).unwrap(), 4);

    cluster.sim().faults().restart(1);
    cluster.shutdown(driver);
}

/// Satellite regression: a moved-cache entry whose target machine dies
/// must be invalidated when the supervisor declares that machine dead.
/// Double-failure scenario: the object recovers 1 → 2, the client chases
/// the forward (caching old→2), then machine 2 dies and the object
/// recovers onto 3. Without the purge, the client's next call through
/// the original pointer would be rewritten straight into the corpse.
#[test]
fn stale_moved_cache_entries_die_with_their_target_machine() {
    let (cluster, mut driver) = ClusterBuilder::new(4)
        .register::<PCounter>()
        .sim_config(ClusterConfig::zero_cost(0))
        .call_policy(test_policy())
        .build();
    let dir = driver.directory();
    let mut sup =
        Supervisor::new(test_config(), vec![1, 2, 3], dir).with_metrics(cluster.metrics().clone());

    let addr = symbolic_addr(&["sup", "PCounter", "0"]);
    let c = PCounterClient::new_on(&mut driver, 1).unwrap();
    sup.register(&mut driver, &addr, &c, &[2, 3]).unwrap();
    for _ in 0..3 {
        c.add(&mut driver, 1).unwrap();
    }
    assert_eq!(sup.checkpoint(&mut driver), 1);
    settle(&mut sup, &mut driver, Duration::from_secs(5), |s, _| {
        s.detector().last_heartbeat(1).is_some()
    });

    // First failure: 1 dies, object recovers onto 2 (the least-loaded
    // backup, deterministic tie-break).
    cluster.sim().faults().crash(1);
    let rec1 = settle(&mut sup, &mut driver, Duration::from_secs(15), |_, r| {
        !r.is_empty()
    });
    assert_eq!(rec1[0].to.machine, 2);

    // Machine 1 restarts blank; the supervisor re-fences it into a
    // forwarder and readmits it.
    cluster.sim().faults().restart(1);
    settle(&mut sup, &mut driver, Duration::from_secs(15), |s, _| {
        !s.is_dead(1)
    });

    // Chasing the original pointer populates the driver's moved cache
    // with old→(machine 2).
    assert_eq!(c.total(&mut driver).unwrap(), 3);
    assert_eq!(sup.checkpoint(&mut driver), 1);

    // Second failure: machine 2 dies; recovery lands on 3. declare_dead
    // purges every moved-cache and resolve-cache entry pointing at 2.
    cluster.sim().faults().crash(2);
    let rec2 = settle(&mut sup, &mut driver, Duration::from_secs(15), |_, r| {
        !r.is_empty()
    });
    assert_eq!(rec2[0].to.machine, 3);
    assert_eq!(rec2[0].epoch, 3);

    // The regression: this call must NOT be rewritten into dead machine 2
    // by the stale cache entry. With the purge it goes to machine 1,
    // whose forward the takeover re-pointed at the newest incarnation.
    assert_eq!(c.add(&mut driver, 1).unwrap(), 4);
    assert_eq!(
        PCounterClient::from_ref(rec2[0].to)
            .total(&mut driver)
            .unwrap(),
        4
    );

    cluster.sim().faults().restart(2);
    cluster.shutdown(driver);
}

/// Restart-policy exhaustion: when every backup is gone too, the
/// supervisor gives up deliberately — the name is poisoned so resolvers
/// stop exhuming it, and the failure is visible in the stats.
#[test]
fn unrecoverable_names_are_poisoned_not_retried_forever() {
    let (cluster, mut driver) = ClusterBuilder::new(3)
        .register::<PCounter>()
        .sim_config(ClusterConfig::zero_cost(0))
        .call_policy(test_policy())
        .build();
    let dir = driver.directory();
    let mut sup =
        Supervisor::new(test_config(), vec![1, 2], dir).with_metrics(cluster.metrics().clone());

    let addr = symbolic_addr(&["sup", "PCounter", "0"]);
    let c = PCounterClient::new_on(&mut driver, 1).unwrap();
    sup.register(&mut driver, &addr, &c, &[2]).unwrap();
    settle(&mut sup, &mut driver, Duration::from_secs(5), |s, _| {
        s.detector().last_heartbeat(1).is_some()
    });

    // Home AND its only backup die.
    cluster.sim().faults().crash(1);
    cluster.sim().faults().crash(2);
    settle(&mut sup, &mut driver, Duration::from_secs(30), |s, _| {
        s.stats().names_poisoned > 0
    });

    let stats = sup.stats();
    assert_eq!(stats.recoveries_failed, 1);
    assert_eq!(stats.names_poisoned, 1);
    assert_eq!(stats.objects_reactivated, 0);

    // Resolvers see the poison, not an infinite activation loop.
    assert_eq!(dir.lookup(&mut driver, addr.clone()).unwrap(), None);
    let err = resolve_or_activate_supervised::<PCounterClient>(&mut driver, &dir, &addr, &[1, 2])
        .unwrap_err();
    assert!(
        err.to_string().contains("poisoned"),
        "expected poisoned-name error, got {err}"
    );

    cluster.sim().faults().restart(1);
    cluster.sim().faults().restart(2);
    cluster.shutdown(driver);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        /// Partition chaos never loses or doubles an acknowledged write,
        /// at any partition timing: every successful `add` returns a
        /// strictly larger total (a split brain shows up as a repeated or
        /// regressed total from the second copy), and after healing, the
        /// surviving incarnation's total equals the last acknowledged one.
        #[test]
        fn partitions_never_lose_or_double_acknowledged_writes(
            partition_after in 1usize..6,
            rounds in 8usize..14,
        ) {
            let (cluster, mut driver) = ClusterBuilder::new(3)
                .register::<PCounter>()
                .sim_config(ClusterConfig::zero_cost(0))
                .call_policy(test_policy())
                .build();
            let dir = driver.directory();
            let mut sup = Supervisor::new(test_config(), vec![1, 2], dir)
                .with_metrics(cluster.metrics().clone());

            let addr = symbolic_addr(&["sup", "PCounter", "prop"]);
            let c = PCounterClient::new_on(&mut driver, 1).unwrap();
            sup.register(&mut driver, &addr, &c, &[2]).unwrap();
            settle(&mut sup, &mut driver, Duration::from_secs(5), |s, _| {
                s.detector().last_heartbeat(1).is_some()
            });

            let mut last_total = 0u64;
            let mut partitioned = false;
            for round in 0..rounds {
                if round == partition_after {
                    assert_eq!(sup.checkpoint(&mut driver), 1);
                    cluster.sim().faults().isolate(1, &[0, 2, 3]);
                    partitioned = true;
                }
                // Write through whatever the supervisor currently deems
                // live; a failed write (mid-takeover) is retried against
                // the re-resolved address next round.
                let target = PCounterClient::from_ref(sup.current_of(&addr).unwrap());
                if let Ok(total) = target.add(&mut driver, 1) {
                    prop_assert!(
                        total > last_total,
                        "total regressed or repeated: {total} after {last_total}"
                    );
                    last_total = total;
                }
                sup.step(&mut driver).unwrap();
                driver.serve_for(Duration::from_millis(5));
                if partitioned && sup.is_dead(1) && round + 2 < rounds {
                    cluster.sim().faults().rejoin(1, &[0, 2, 3]);
                    partitioned = false;
                }
            }
            if partitioned {
                cluster.sim().faults().rejoin(1, &[0, 2, 3]);
            }
            // Settle takeover/resurrection fully, then audit the ledger.
            settle(&mut sup, &mut driver, Duration::from_secs(20), |s, r| {
                (!s.is_dead(1) && !s.is_dead(2)) || !r.is_empty()
            });
            let live = PCounterClient::from_ref(sup.current_of(&addr).unwrap());
            let final_total = live.total(&mut driver).unwrap();
            prop_assert!(
                final_total == last_total,
                "acknowledged writes lost or doubled: {final_total} != {last_total}"
            );

            cluster.shutdown(driver);
        }
    }
}
