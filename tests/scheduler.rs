//! M:N work-stealing scheduler suite (DESIGN.md §13).
//!
//! A machine with `sched_workers(n)` is a dispatcher lane plus `n` worker
//! lanes executing per-object mailboxes; these tests pin the contracts the
//! pool must not bend: sequential-server semantics per object, at-most-once
//! execution under duplicate-heavy fabrics hammered from multiple lanes,
//! execution-time (not admission-time) epoch fencing, the `serve_for`
//! virtual-time deadline, and liveness of a one-worker pool across nested
//! same-machine calls.

use std::collections::BTreeSet;
use std::time::Duration;

use oopp_repro::oopp::{
    join, Backoff, BarrierClient, CallPolicy, ClusterBuilder, NodeCtx, RemoteClient, RemoteResult,
};
use oopp_repro::simnet::{ClusterConfig, FaultPlan};

/// Deliberately non-idempotent: a duplicated or re-executed `add` is
/// observable in `total`, and each reply carries the total *at execution*,
/// so the full execution order of one object is visible to the test.
#[derive(Debug, Default)]
pub struct Counter {
    total: u64,
}

oopp_repro::oopp::remote_class! {
    class Counter {
        ctor();
        /// Add `n`; returns the new total.
        fn add(&mut self, n: u64) -> u64;
        /// Current total.
        fn total(&mut self) -> u64;
        /// Enter `b` (a nested remote call that parks this object until
        /// the barrier releases), then return the total.
        fn park_then_total(&mut self, b: BarrierClient) -> u64;
    }
}

impl Counter {
    pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(Counter::default())
    }

    fn add(&mut self, _ctx: &mut NodeCtx, n: u64) -> RemoteResult<u64> {
        self.total += n;
        Ok(self.total)
    }

    fn total(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<u64> {
        Ok(self.total)
    }

    fn park_then_total(&mut self, ctx: &mut NodeCtx, b: BarrierClient) -> RemoteResult<u64> {
        b.enter(ctx)?;
        Ok(self.total)
    }
}

fn reliable_policy() -> CallPolicy {
    CallPolicy::reliable(Duration::from_millis(150))
        .with_max_retries(6)
        .with_backoff(Backoff::fixed(Duration::from_millis(8)))
}

/// One object, many pipelined non-idempotent calls, four workers: whatever
/// lane runs the mailbox, the object must behave as one sequential server —
/// every intermediate total observed exactly once.
#[test]
fn pool_preserves_sequential_object_semantics() {
    const N: u64 = 100;
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .sched_workers(4)
        .register::<Counter>()
        .build();
    let c = CounterClient::new_on(&mut driver, 1).unwrap();

    let pending: Vec<_> = (0..N)
        .map(|_| c.add_async(&mut driver, 1).unwrap())
        .collect();
    let totals = join(&mut driver, pending).unwrap();

    let seen: BTreeSet<u64> = totals.iter().copied().collect();
    let expect: BTreeSet<u64> = (1..=N).collect();
    assert_eq!(seen, expect, "lost or double-executed increments");
    assert_eq!(c.total(&mut driver).unwrap(), N);
    cluster.shutdown(driver);
}

/// Satellite: the dedup window under multi-lane fire. Duplicate-heavy
/// fabric, two worker lanes per machine completing calls while the
/// dispatcher admits retransmits of the same request ids: at-most-once must
/// hold exactly even though `admit` and `complete` now race across threads.
#[test]
fn dedup_window_survives_two_worker_hammer() {
    const OBJECTS: usize = 4;
    const CALLS: u64 = 50;
    let plan = FaultPlan::seeded(0x000D_ED09)
        .with_drop(0.05)
        .with_dup(0.25);
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .sched_workers(2)
        .register::<Counter>()
        .sim_config(ClusterConfig::zero_cost(0).with_faults(plan))
        .call_policy(reliable_policy())
        .build();

    let counters: Vec<_> = (0..OBJECTS)
        .map(|i| CounterClient::new_on(&mut driver, i % 2).unwrap())
        .collect();
    for _ in 0..CALLS {
        let pending: Vec<_> = counters
            .iter()
            .map(|c| c.add_async(&mut driver, 1).unwrap())
            .collect();
        join(&mut driver, pending).unwrap();
    }
    for c in &counters {
        assert_eq!(
            c.total(&mut driver).unwrap(),
            CALLS,
            "dedup window let a duplicate execute (or dropped a call)"
        );
    }
    let dups: u64 = (0..2)
        .map(|m| {
            let s = driver.stats_of(m).unwrap();
            s.dup_suppressed + s.dup_replayed
        })
        .sum();
    cluster.sim().faults().calm();
    cluster.shutdown(driver);
    assert!(dups > 0, "a 25% dup plan must exercise the window");
}

/// Satellite: `serve_for` under `TimeMode::Virtual` must re-read the clock
/// and return once the *virtual* deadline passes — an idle driver parked in
/// `serve_for` is exactly the state that used to spin or hang.
#[test]
fn serve_for_honors_virtual_time_deadline() {
    let (cluster, mut driver) = ClusterBuilder::new(1)
        .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(11))
        .build();
    let t0 = driver.now_nanos();
    driver.serve_for(Duration::from_millis(250));
    let waited = driver.now_nanos() - t0;
    assert!(
        waited >= 250_000_000,
        "serve_for returned {waited}ns early under virtual time"
    );
    assert!(
        waited < 5_000_000_000,
        "serve_for overshot the virtual deadline by {waited}ns"
    );
    cluster.shutdown(driver);
}

/// Satellite: epoch fences are judged when a request *executes*, not when
/// it is admitted. A request admitted into a busy object's mailbox at epoch
/// 1 must be rejected `Fenced` when the fence moves to 2 before the mailbox
/// drains; the client then transparently re-fences and retries, which is
/// visible as `calls_fenced` on the server and the taught epoch on the
/// driver.
#[test]
fn fence_bump_between_admission_and_execution_rejects() {
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .sched_workers(1)
        .register::<Counter>()
        .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(23))
        .build();

    // Barrier of 2 on machine 0; the fenced object on machine 1.
    let gate = BarrierClient::new_on(&mut driver, 0, 2).unwrap();
    let c = CounterClient::new_on(&mut driver, 1).unwrap();
    c.add(&mut driver, 5).unwrap();

    // Fence the object at epoch 1 and teach the driver about it, so its
    // frames carry a nonzero (fenceable) epoch.
    driver.set_epoch_of(c.obj_ref(), 1).unwrap();
    driver.note_epoch(c.obj_ref(), 1);

    // Park the object: the call checks it out and waits inside the barrier.
    let parked = c.park_then_total_async(&mut driver, gate).unwrap();
    // Admit a second call at epoch 1 — it queues in the object's mailbox
    // behind the parked call.
    let queued = c.total_async(&mut driver).unwrap();
    // Bump the fence while that request sits admitted-but-unexecuted.
    driver.set_epoch_of(c.obj_ref(), 2).unwrap();

    // Release the barrier; the parked call completes, the queued call hits
    // the epoch gate at execution time.
    gate.enter(&mut driver).unwrap();
    assert_eq!(parked.wait(&mut driver).unwrap(), 5);
    assert_eq!(
        queued.wait(&mut driver).unwrap(),
        5,
        "re-fenced retry must still observe the object"
    );

    let fenced = driver.stats_of(1).unwrap().calls_fenced;
    assert!(
        fenced >= 1,
        "the queued request must have been fenced at execution (saw {fenced})"
    );
    assert_eq!(
        driver.believed_epoch(c.obj_ref()),
        2,
        "the Fenced rejection must teach the driver the new epoch"
    );
    cluster.shutdown(driver);
}

/// A one-worker pool across a nested same-machine dependency: object A is
/// checked out, parked in a barrier, while a call to object B lands on the
/// same machine. The single worker is re-entrantly nudged to run B's
/// mailbox from inside its wait — if it is not, this test times out instead
/// of completing.
#[test]
fn single_worker_pool_survives_nested_parking() {
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .sched_workers(1)
        .register::<Counter>()
        .timeout(Duration::from_secs(5))
        .build();

    let gate = BarrierClient::new_on(&mut driver, 0, 2).unwrap();
    let a = CounterClient::new_on(&mut driver, 1).unwrap();
    let b = CounterClient::new_on(&mut driver, 1).unwrap();

    let parked = a.park_then_total_async(&mut driver, gate).unwrap();
    // A holds machine 1's only worker; B must still be served.
    assert_eq!(b.add(&mut driver, 3).expect("B starved behind parked A"), 3);
    gate.enter(&mut driver).unwrap();
    assert_eq!(parked.wait(&mut driver).unwrap(), 0);
    cluster.shutdown(driver);
}
