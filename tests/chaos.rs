//! Chaos suite: the reliable RMI layer under seeded fault injection.
//!
//! Exercises the full contract of DESIGN.md §6 end to end: at-least-once
//! delivery (client retransmission under a lossy [`FaultPlan`]),
//! at-most-once execution (server dedup window), deterministic replay of a
//! chaotic run under a fixed seed, and crash recovery through snapshot
//! replication + supervised symbolic-address resolution.

use std::time::Duration;

use oopp_repro::oopp::wire::collections::F64s;
use oopp_repro::oopp::{
    join, resolve_or_activate_supervised, symbolic_addr, Backoff, BreakerConfig, CallPolicy,
    ClusterBuilder, DoubleBlockClient, NodeCtx, RemoteClient, RemoteError, RemoteResult,
};
use oopp_repro::simnet::{ClusterConfig, FaultPlan};

/// A deliberately non-idempotent class: executing a duplicated `add` twice
/// is observable in `total`. The dedup window must prevent exactly that.
#[derive(Debug, Default)]
pub struct Counter {
    total: u64,
}

oopp_repro::oopp::remote_class! {
    class Counter {
        ctor();
        /// Add `n`; returns the new total.
        fn add(&mut self, n: u64) -> u64;
        /// Current total.
        fn total(&mut self) -> u64;
    }
}

impl Counter {
    pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(Counter::default())
    }

    fn add(&mut self, _ctx: &mut NodeCtx, n: u64) -> RemoteResult<u64> {
        self.total += n;
        Ok(self.total)
    }

    fn total(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<u64> {
        Ok(self.total)
    }
}

/// A retry policy tuned for zero-cost test fabrics: short per-attempt
/// windows (replies normally arrive in microseconds), enough retries to
/// ride out several consecutive losses.
fn chaos_policy() -> CallPolicy {
    CallPolicy::reliable(Duration::from_millis(150))
        .with_max_retries(6)
        .with_backoff(Backoff::fixed(Duration::from_millis(8)))
}

/// The E3-style split-loop workload: one DoubleBlock per worker, async
/// axpy rounds joined per round, then a gather. Returns the gathered data
/// plus (driver retransmissions, fabric-level fault drops).
fn split_loop_run(workers: usize, n: usize, faults: FaultPlan) -> (Vec<f64>, u64, u64) {
    let (cluster, mut driver) = ClusterBuilder::new(workers)
        .sim_config(ClusterConfig::zero_cost(0).with_faults(faults))
        .call_policy(chaos_policy())
        .build();

    let blocks: Vec<_> = (0..workers)
        .map(|m| DoubleBlockClient::new_on(&mut driver, m, n).unwrap())
        .collect();
    for (i, b) in blocks.iter().enumerate() {
        b.fill(&mut driver, i as f64).unwrap();
    }
    for round in 1..=4 {
        let addend = F64s((0..n).map(|j| (round * j) as f64).collect());
        let pending: Vec<_> = blocks
            .iter()
            .map(|b| {
                b.axpy_range_async(&mut driver, 0, 0.5, addend.clone())
                    .unwrap()
            })
            .collect();
        join(&mut driver, pending).unwrap();
    }
    let mut out = Vec::with_capacity(workers * n);
    for b in &blocks {
        out.extend(b.read_range(&mut driver, 0, n).unwrap().0);
    }
    // Every machine must hold exactly its one block (machine 0 also hosts
    // the cluster directory): a retried `create` that executed twice would
    // show up right here.
    for m in 0..workers {
        let expected = if m == 0 { 2 } else { 1 };
        assert_eq!(driver.stats_of(m).unwrap().objects_live, expected);
    }

    let retried = driver.local_stats().calls_retried;
    let dropped = cluster.snapshot().total_fault_drops();
    cluster.sim().faults().calm(); // shutdown frames must not be lost
    cluster.shutdown(driver);
    (out, retried, dropped)
}

/// Acceptance shape: 5% loss plus duplicates; the chaotic run computes
/// bit-identical results to the clean run, and the same seed replays the
/// identical fault pattern.
#[test]
fn split_loop_under_loss_matches_zero_fault_run() {
    let plan = FaultPlan::seeded(0xC0FFEE).with_drop(0.05).with_dup(0.02);
    let (clean, clean_retries, clean_drops) = split_loop_run(4, 64, FaultPlan::none());
    let (chaos, chaos_retries, chaos_drops) = split_loop_run(4, 64, plan.clone());

    assert_eq!(clean_retries, 0);
    assert_eq!(clean_drops, 0);
    assert!(chaos_drops > 0, "5% loss plan never dropped anything");
    assert!(
        chaos_retries > 0,
        "losses should have forced retransmissions"
    );
    assert_eq!(chaos, clean, "retries must be invisible to the computation");

    // Determinism: the same seed yields the same drops, retries, and bits.
    let (replay, replay_retries, replay_drops) = split_loop_run(4, 64, plan);
    assert_eq!(replay, chaos);
    assert_eq!(replay_retries, chaos_retries);
    assert_eq!(replay_drops, chaos_drops);
}

/// Duplicated requests must execute at most once even though the fabric
/// delivers them twice: the server either suppresses the copy (original
/// still in flight) or replays the cached response.
#[test]
fn duplicated_requests_execute_at_most_once() {
    let plan = FaultPlan::seeded(7).with_dup(0.3);
    let (cluster, mut driver) = ClusterBuilder::new(1)
        .register::<Counter>()
        .sim_config(ClusterConfig::zero_cost(0).with_faults(plan))
        .call_policy(chaos_policy())
        .build();

    let c = CounterClient::new_on(&mut driver, 0).unwrap();
    const CALLS: u64 = 50;
    for _ in 0..CALLS {
        c.add(&mut driver, 1).unwrap();
    }
    assert_eq!(c.total(&mut driver).unwrap(), CALLS);

    let stats = driver.stats_of(0).unwrap();
    assert!(
        stats.dup_replayed + stats.dup_suppressed > 0,
        "a 30% dup plan must have produced duplicate requests ({stats:?})"
    );
    let dups = cluster.snapshot().faults_duplicated;
    assert!(dups > 0);

    cluster.sim().faults().calm();
    cluster.shutdown(driver);
}

/// Losing the *response* of a non-idempotent call is the classic
/// at-most-once trap: the retried request must be answered from the dedup
/// cache, not re-executed. Heavy loss makes that case certain to occur.
#[test]
fn lost_responses_are_replayed_not_reexecuted() {
    let plan = FaultPlan::seeded(11).with_drop(0.25);
    let (cluster, mut driver) = ClusterBuilder::new(1)
        .register::<Counter>()
        .sim_config(ClusterConfig::zero_cost(0).with_faults(plan))
        .call_policy(chaos_policy())
        .build();

    let c = CounterClient::new_on(&mut driver, 0).unwrap();
    const CALLS: u64 = 40;
    let mut totals = Vec::new();
    for _ in 0..CALLS {
        totals.push(c.add(&mut driver, 1).unwrap());
    }
    // Exactly-once observable effect: totals are the exact sequence 1..=N,
    // and replayed responses returned the *original* total, not a fresh one.
    assert_eq!(totals, (1..=CALLS).collect::<Vec<_>>());

    let stats = driver.stats_of(0).unwrap();
    let retried = driver.local_stats().calls_retried;
    assert!(retried > 0, "25% loss must force retransmissions");
    assert!(
        stats.dup_replayed + stats.dup_suppressed > 0,
        "some retransmitted request must have hit the dedup window ({stats:?})"
    );

    cluster.sim().faults().calm();
    cluster.shutdown(driver);
}

/// The headline acceptance scenario: an E3-style workload with 5% message
/// loss AND a mid-run machine crash completes with results identical to a
/// zero-fault run, because the crashed object is reactivated from its
/// replicated snapshot via the directory.
#[test]
fn crash_mid_run_recovers_from_replicated_snapshot() {
    const N: usize = 32;

    // What the workload computes when nothing fails. Phase 1 writes i,
    // phase 2 adds 2*(10+j).
    fn run_phases(driver: &mut oopp_repro::oopp::Driver, block: &DoubleBlockClient, phase: usize) {
        match phase {
            1 => {
                for i in 0..N {
                    block.set(driver, i, i as f64).unwrap();
                }
            }
            _ => {
                let addend = F64s((0..N).map(|j| (10 + j) as f64).collect());
                block.axpy_range(driver, 0, 2.0, addend).unwrap();
            }
        }
    }

    // Clean reference run, no faults at all.
    let expected: Vec<f64> = {
        let (cluster, mut driver) = ClusterBuilder::new(3).build();
        let block = DoubleBlockClient::new_on(&mut driver, 1, N).unwrap();
        run_phases(&mut driver, &block, 1);
        run_phases(&mut driver, &block, 2);
        let data = block.read_range(&mut driver, 0, N).unwrap().0;
        cluster.shutdown(driver);
        data
    };

    // Chaotic run: 5% loss the whole time, machine 1 crashes between the
    // phases. Short attempt windows keep the dead-machine probes cheap.
    let plan = FaultPlan::seeded(42).with_drop(0.05);
    let policy = CallPolicy::reliable(Duration::from_millis(80))
        .with_max_retries(2)
        .with_backoff(Backoff::fixed(Duration::from_millis(8)));
    let (cluster, mut driver) = ClusterBuilder::new(3)
        .sim_config(ClusterConfig::zero_cost(0).with_faults(plan))
        .call_policy(policy)
        .build();
    let dir = driver.directory();
    let addr = symbolic_addr(&["chaos", "DoubleBlock", "0"]);

    // The process lives on machine 1; its name is bound in the directory
    // and its snapshot is replicated to machine 2 after phase 1.
    let block = DoubleBlockClient::new_on(&mut driver, 1, N).unwrap();
    dir.bind(&mut driver, addr.clone(), block.obj_ref())
        .unwrap();
    run_phases(&mut driver, &block, 1);
    driver.replicate_snapshot(&block, &addr, &[2]).unwrap();

    cluster.sim().faults().crash(1);

    // The stale pointer now exhausts its retries with an enriched Timeout
    // naming the dead machine and the attempt count.
    let err = block.get(&mut driver, 0).unwrap_err();
    match err {
        RemoteError::Timeout {
            machine, attempts, ..
        } => {
            assert_eq!(machine, 1);
            assert_eq!(attempts, 3); // 1 try + max_retries
        }
        other => panic!("expected Timeout against the crashed machine, got {other:?}"),
    }

    // Recovery: resolve the symbolic address under supervision. The dead
    // binding is detected and unbound; candidate 1 (still dark) is
    // skipped; the replica on machine 2 is activated and rebound.
    let recovered: DoubleBlockClient =
        resolve_or_activate_supervised(&mut driver, &dir, &addr, &[1, 2]).unwrap();
    assert_eq!(recovered.obj_ref().machine, 2);

    run_phases(&mut driver, &recovered, 2);
    let data = recovered.read_range(&mut driver, 0, N).unwrap().0;
    assert_eq!(
        data, expected,
        "recovered run must match the zero-fault run"
    );

    // A later resolution finds the live rebinding directly.
    let again: DoubleBlockClient =
        resolve_or_activate_supervised(&mut driver, &dir, &addr, &[1, 2]).unwrap();
    assert_eq!(again.obj_ref(), recovered.obj_ref());

    // Restart the dark machine so shutdown can reach it, quiesce the plan,
    // and tear down.
    cluster.sim().faults().restart(1);
    cluster.sim().faults().calm();
    cluster.shutdown(driver);
}

/// The split-loop workload again, with the flight recorder on. Returns the
/// gathered data, the merged trace, the driver's retransmission counter,
/// and the fabric's (drops, duplicates).
fn traced_chaos_run(
    workers: usize,
    n: usize,
    faults: FaultPlan,
) -> (Vec<f64>, oopp_repro::oopp::Trace, u64, (u64, u64)) {
    let (cluster, mut driver) = ClusterBuilder::new(workers)
        .sim_config(ClusterConfig::zero_cost(0).with_faults(faults))
        .call_policy(chaos_policy())
        .tracing(true)
        .build();

    let blocks: Vec<_> = (0..workers)
        .map(|m| DoubleBlockClient::new_on(&mut driver, m, n).unwrap())
        .collect();
    for (i, b) in blocks.iter().enumerate() {
        b.fill(&mut driver, i as f64).unwrap();
    }
    for round in 1..=4 {
        let addend = F64s((0..n).map(|j| (round * j) as f64).collect());
        let pending: Vec<_> = blocks
            .iter()
            .map(|b| {
                b.axpy_range_async(&mut driver, 0, 0.5, addend.clone())
                    .unwrap()
            })
            .collect();
        join(&mut driver, pending).unwrap();
    }
    let mut out = Vec::with_capacity(workers * n);
    for b in &blocks {
        out.extend(b.read_range(&mut driver, 0, n).unwrap().0);
    }

    let retried = driver.local_stats().calls_retried;
    let snap = cluster.snapshot();
    let fabric = (snap.total_fault_drops(), snap.faults_duplicated);
    let recorder = cluster.recorder().expect("tracing enabled");
    cluster.sim().faults().calm();
    cluster.shutdown(driver);
    (out, recorder.merge(), retried, fabric)
}

/// The flight recorder must agree with the reliability layer's own
/// accounting: its retransmit events match the driver's `calls_retried`
/// counter exactly, and every retransmission is explained by a fabric
/// fault (a dropped or duplicated frame) — no spurious timeouts.
#[test]
fn trace_retransmits_cross_check_fault_counters() {
    use oopp_repro::oopp::EventKind;

    let plan = FaultPlan::seeded(0xBEEF).with_drop(0.08).with_dup(0.03);
    let (data, trace, retried, (drops, dups)) = traced_chaos_run(3, 48, plan);

    let (clean, ..) = traced_chaos_run(3, 48, FaultPlan::none());
    assert_eq!(data, clean, "retries must be invisible to the computation");

    assert!(retried > 0, "an 8% loss plan must force retransmissions");
    assert_eq!(
        trace.retransmits() as u64,
        retried,
        "flight recorder and NodeStats disagree on retransmissions"
    );
    // On a zero-cost fabric a reply window only lapses because the attempt's
    // request or response was lost; every retransmit therefore maps to a
    // distinct injected fault.
    assert!(
        trace.retransmits() as u64 <= drops + dups,
        "{} retransmits cannot be explained by {drops} drops + {dups} dups",
        trace.retransmits()
    );
    // Server-side dedup verdicts appear as events too: a retransmitted
    // request whose original executed shows up as admit_done/admit_in_flight.
    let verdicts =
        trace.count(EventKind::ServerAdmitInFlight) + trace.count(EventKind::ServerAdmitDone);
    assert!(
        verdicts > 0,
        "retransmissions under duplication must produce dedup verdict events"
    );
}

/// Causality: every retransmit, server admit, dispatch, and reply event
/// belongs to a span that recorded an originating `ClientSend`, and every
/// retransmitted `req_id` pairs 1:1 with its original send.
#[test]
fn every_retransmit_links_to_its_original_span() {
    use oopp_repro::oopp::EventKind;
    use std::collections::HashMap;

    let plan = FaultPlan::seeded(0xCAFE).with_drop(0.10).with_dup(0.05);
    let (_, trace, retried, _) = traced_chaos_run(2, 32, plan);
    assert!(retried > 0);

    let violations = trace.causal_violations();
    assert!(violations.is_empty(), "causal violations: {violations:?}");

    // Each retransmitted span has exactly one original ClientSend, with the
    // same req_id and method.
    let mut sends: HashMap<u64, (&str, u64)> = HashMap::new();
    for e in &trace.events {
        if e.kind == EventKind::ClientSend {
            let prev = sends.insert(e.span_id, (&e.method, e.req_id));
            assert!(prev.is_none(), "span {:#x} sent twice", e.span_id);
        }
    }
    for e in &trace.events {
        if e.kind == EventKind::ClientRetransmit {
            let (method, req_id) = sends[&e.span_id];
            assert_eq!(*e.method, *method);
            assert_eq!(e.req_id, req_id);
            assert!(e.attempt >= 2, "a retransmit is never the first attempt");
        }
    }

    // And the nested-call structure is visible: worker-side create calls
    // issued by the directory bootstrap aside, every span with a parent
    // names a span that exists.
    let export = trace.to_chrome_json();
    assert!(export.contains("\"traceEvents\""));
    assert_eq!(export.matches('{').count(), export.matches('}').count());
}

/// Deterministic replay extends to the flight recorder: the same seed must
/// produce the identical span tree (same spans, same lifecycle events, same
/// methods), timestamps aside.
#[test]
fn same_seed_replays_identical_span_tree() {
    let plan = FaultPlan::seeded(0x5EED).with_drop(0.07).with_dup(0.02);
    let (data_a, trace_a, retried_a, faults_a) = traced_chaos_run(3, 40, plan.clone());
    let (data_b, trace_b, retried_b, faults_b) = traced_chaos_run(3, 40, plan);

    assert_eq!(data_a, data_b);
    assert_eq!(retried_a, retried_b);
    assert_eq!(faults_a, faults_b);
    assert_eq!(
        trace_a.structure(),
        trace_b.structure(),
        "same seed, different span trees"
    );
    assert_eq!(trace_a.dropped, 0, "test workload must fit the rings");
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        /// Any seeded plan with drop p < 1 eventually delivers every
        /// retried call exactly once: the counter ends exactly at the call
        /// count, never above (duplicate execution) or below (lost call).
        #[test]
        fn retried_calls_deliver_exactly_once(seed: u64, drop_p in 0.0..0.25f64) {
            let plan = FaultPlan::seeded(seed).with_drop(drop_p).with_dup(drop_p / 2.0);
            let policy = CallPolicy::reliable(Duration::from_millis(80))
                .with_max_retries(10)
                .with_backoff(Backoff::fixed(Duration::from_millis(5)));
            let (cluster, mut driver) = ClusterBuilder::new(1)
                .register::<Counter>()
                .sim_config(ClusterConfig::zero_cost(0).with_faults(plan))
                .call_policy(policy)
                .build();
            let c = CounterClient::new_on(&mut driver, 0).unwrap();
            const CALLS: u64 = 12;
            for _ in 0..CALLS {
                c.add(&mut driver, 1).unwrap();
            }
            let total = c.total(&mut driver).unwrap();
            cluster.sim().faults().calm();
            cluster.shutdown(driver);
            prop_assert_eq!(total, CALLS);
        }
    }
}

// ---------------------------------------------------------------------
// Nightly soak: randomized faults under supervision (DESIGN.md §10)
// ---------------------------------------------------------------------

mod soak {
    use super::*;
    use std::time::Instant;

    use oopp_repro::oopp::{wire, Driver};
    use oopp_repro::simnet::SimSchedule;
    use supervision::{DetectorConfig, RestartPolicy, Supervisor, SupervisorConfig};

    /// Persistent cell for the soak ledger: every acknowledged `add` must
    /// be visible in every later total, exactly once, across any number
    /// of crash/partition/takeover cycles.
    #[derive(Debug, Default)]
    pub struct SoakCell {
        total: u64,
    }

    oopp_repro::oopp::remote_class! {
        class SoakCell {
            persistent;
            ctor();
            /// Add `n`; returns the new total.
            fn add(&mut self, n: u64) -> u64;
            /// Current total.
            fn total(&mut self) -> u64;
        }
    }

    impl SoakCell {
        pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
            Ok(SoakCell::default())
        }

        fn add(&mut self, _ctx: &mut NodeCtx, n: u64) -> RemoteResult<u64> {
            self.total += n;
            Ok(self.total)
        }

        fn total(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<u64> {
            Ok(self.total)
        }

        fn save_state(&self) -> Vec<u8> {
            wire::to_bytes(&self.total)
        }

        fn load_state(_ctx: &mut NodeCtx, state: &[u8]) -> RemoteResult<Self> {
            Ok(SoakCell {
                total: wire::from_bytes(state)?,
            })
        }
    }

    /// Deterministic xorshift64: the whole fault schedule replays from the
    /// seed, so a soak failure is reproducible.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn soak_policy() -> CallPolicy {
        CallPolicy::reliable(Duration::from_millis(100))
            .with_max_retries(2)
            .with_backoff(Backoff::fixed(Duration::from_millis(5)))
    }

    fn soak_config() -> SupervisorConfig {
        let heartbeat_interval = Duration::from_millis(10);
        SupervisorConfig {
            heartbeat_interval,
            lease_ttl: Duration::from_millis(150),
            detector: DetectorConfig {
                expected_interval: heartbeat_interval,
                ..DetectorConfig::default()
            },
            restart: RestartPolicy::Retries {
                max_retries: 2,
                backoff: Backoff::fixed(Duration::from_millis(10)),
            },
        }
    }

    /// Step the supervisor until `done` (panic after `limit`).
    fn settle(
        sup: &mut Supervisor,
        driver: &mut Driver,
        limit: Duration,
        mut done: impl FnMut(&Supervisor) -> bool,
    ) {
        let deadline = Instant::now() + limit;
        loop {
            sup.step(driver).unwrap();
            if done(sup) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "soak settle timed out; stats: {:?}",
                sup.stats()
            );
            driver.serve_for(Duration::from_millis(2));
        }
    }

    /// Parse a `SIMNET_SEED` value: `0x…` hex or plain decimal.
    fn parse_seed(s: &str) -> Option<u64> {
        let s = s.trim();
        match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(&hex.replace('_', ""), 16).ok(),
            None => s.replace('_', "").parse().ok(),
        }
    }

    /// One soak run's failure, with everything needed to reproduce it.
    #[derive(Debug)]
    struct SoakFailure {
        /// Episode the panic fired in.
        episode: usize,
        /// The virtual clock's schedule at the moment of failure (None in
        /// real-time mode). Replaying the same seed must reproduce it
        /// bit-for-bit.
        schedule: Option<SimSchedule>,
        /// The panic payload.
        message: String,
    }

    /// The randomized self-healing soak, parameterized so the same harness
    /// serves three masters: the tier-1 commit gate (virtual time, seconds
    /// of wall clock), the nightly real-time variant, and the repro-line
    /// test (deliberate sabotage at a chosen episode).
    ///
    /// Schedule, per episode: write through the supervisor's view of each
    /// cell, checkpoint everywhere, then crash **or** partition a random
    /// supervised machine; wait for detection + takeover, keep writing
    /// through the outage, heal, and wait for readmission. The ledger
    /// (one strictly-increasing acknowledged total per cell) is the
    /// exactly-once proof: a split brain repeats or regresses a total, a
    /// lost recovery drops below the last acknowledged one.
    ///
    /// The `seed` drives both the fault schedule (victim choice,
    /// crash-vs-partition, write counts) and — in virtual mode — the
    /// event-loop tie-break order, so one number replays the entire run.
    fn run_soak(
        seed: u64,
        episodes: usize,
        virtual_time: bool,
        sabotage: Option<usize>,
    ) -> Result<(), SoakFailure> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicUsize, Ordering};

        const SUPERVISED: [usize; 3] = [1, 2, 3];
        let mut rng = Rng(seed);

        // Machine 0 hosts the naming directory and is never faulted;
        // the driver is machine 4.
        let config = if virtual_time {
            ClusterConfig::zero_cost(0).with_virtual_time(seed)
        } else {
            ClusterConfig::zero_cost(0)
        };
        let (cluster, mut driver) = ClusterBuilder::new(4)
            .register::<SoakCell>()
            .sim_config(config)
            .call_policy(soak_policy())
            .build();
        let clock = cluster.sim().clock().clone();
        let dir = driver.directory();
        let mut sup = Supervisor::new(soak_config(), SUPERVISED.to_vec(), dir)
            .with_metrics(cluster.metrics().clone());

        // One supervised cell per supervised machine; the other two act
        // as snapshot backups, so one faulted machine at a time always
        // leaves a live candidate.
        let mut addrs = Vec::new();
        let mut first_home = Vec::new();
        for (i, &m) in SUPERVISED.iter().enumerate() {
            let addr = symbolic_addr(&["soak", "SoakCell", &i.to_string()]);
            let c = SoakCellClient::new_on(&mut driver, m).unwrap();
            let backups: Vec<usize> = SUPERVISED.iter().copied().filter(|&b| b != m).collect();
            sup.register(&mut driver, &addr, &c, &backups).unwrap();
            first_home.push(c.obj_ref());
            addrs.push(addr);
        }
        settle(&mut sup, &mut driver, Duration::from_secs(10), |s| {
            SUPERVISED
                .iter()
                .all(|&m| s.detector().last_heartbeat(m).is_some())
        });

        let mut acked = vec![0u64; addrs.len()];
        let mut attempted = vec![0u64; addrs.len()];
        let write_some = |sup: &Supervisor,
                          driver: &mut Driver,
                          rng: &mut Rng,
                          acked: &mut Vec<u64>,
                          attempted: &mut Vec<u64>| {
            for i in 0..addrs.len() {
                for _ in 0..(1 + rng.below(3)) {
                    let target = SoakCellClient::from_ref(sup.current_of(&addrs[i]).unwrap());
                    attempted[i] += 1;
                    if let Ok(total) = target.add(driver, 1) {
                        assert!(
                            total > acked[i],
                            "cell {i}: total {total} regressed or repeated after {} \
                             acknowledged writes (split brain or lost recovery)",
                            acked[i]
                        );
                        assert!(
                            total <= attempted[i],
                            "cell {i}: total {total} exceeds {} attempts (doubled write)",
                            attempted[i]
                        );
                        acked[i] = total;
                    }
                }
            }
        };

        // The episode loop runs under `catch_unwind` so a failing episode
        // can report the schedule *at the failure point* — the replay
        // contract is that the same seed reproduces this exact prefix.
        let at_episode = AtomicUsize::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            for episode in 0..episodes {
                at_episode.store(episode, Ordering::Relaxed);
                if sabotage == Some(episode) {
                    panic!("sabotage: deliberate failure injected at episode {episode}");
                }
                // Healthy phase: writes land, then every cell is
                // checkpointed to every backup before any fault can strike.
                write_some(&sup, &mut driver, &mut rng, &mut acked, &mut attempted);
                assert_eq!(
                    sup.checkpoint(&mut driver),
                    addrs.len(),
                    "episode {episode}: checkpoint must reach every backup while calm"
                );

                let victim = SUPERVISED[rng.below(SUPERVISED.len() as u64) as usize];
                let partition = rng.below(2) == 0;
                let peers: Vec<usize> = (0..5).filter(|&p| p != victim).collect();
                if partition {
                    cluster.sim().faults().isolate(victim, &peers);
                } else {
                    cluster.sim().faults().crash(victim);
                }

                // Detection, then takeover of everything the victim hosted.
                settle(&mut sup, &mut driver, Duration::from_secs(30), |s| {
                    s.is_dead(victim)
                });

                // Outage phase: the cluster keeps serving through the
                // reactivated incarnations.
                write_some(&sup, &mut driver, &mut rng, &mut acked, &mut attempted);

                if partition {
                    cluster.sim().faults().rejoin(victim, &peers);
                } else {
                    cluster.sim().faults().restart(victim);
                }
                settle(&mut sup, &mut driver, Duration::from_secs(30), |s| {
                    !s.is_dead(victim)
                });

                // Readmitted: stale pre-takeover pointers must heal through
                // forwards/fencing rather than reach a zombie copy.
                for (i, &old) in first_home.iter().enumerate() {
                    if let Ok(total) = SoakCellClient::from_ref(old).total(&mut driver) {
                        assert!(
                            total >= acked[i] && total <= attempted[i],
                            "cell {i}: stale-pointer read {total} outside [{}, {}]",
                            acked[i],
                            attempted[i]
                        );
                    }
                }
            }

            // Final audit: every name is still bound (never poisoned),
            // every acknowledged write is present exactly once, and the
            // metrics agree with the supervisor's own ledger.
            let stats = sup.stats();
            assert_eq!(stats.names_poisoned, 0, "a backup was always available");
            assert_eq!(stats.recoveries_failed, 0);
            assert_eq!(stats.machines_declared_dead, episodes as u64);
            // Takeovers migrate cells off their original homes, so later
            // victims may host nothing — but some episodes must have moved
            // objects, and every move must have succeeded.
            assert!(stats.objects_reactivated > 0);
            for (i, addr) in addrs.iter().enumerate() {
                let live = SoakCellClient::from_ref(sup.current_of(addr).unwrap());
                let total = live.total(&mut driver).unwrap();
                assert!(
                    total >= acked[i] && total <= attempted[i],
                    "cell {i}: final total {total} outside [{}, {}]",
                    acked[i],
                    attempted[i]
                );
            }
            let snap = cluster.snapshot();
            assert_eq!(snap.recoveries, stats.objects_reactivated);
            assert_eq!(snap.false_suspicions, stats.false_suspicions);
            assert!(snap.mean_mttr_nanos() > 0);
        }));

        match outcome {
            Ok(()) => {
                cluster.sim().faults().calm();
                cluster.shutdown(driver);
                Ok(())
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|m| m.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".into());
                // No orderly shutdown on failure: the supervisor may hold
                // half-finished takeovers. `cluster`'s drop fires the
                // emergency shutdown path instead.
                Err(SoakFailure {
                    episode: at_episode.load(Ordering::Relaxed),
                    schedule: clock.schedule(),
                    message,
                })
            }
        }
    }

    /// Default seed for the soak tests; override with `SIMNET_SEED=…`
    /// (hex `0x…` or decimal) to replay a failure printed by CI.
    fn seed_from_env() -> u64 {
        std::env::var("SIMNET_SEED")
            .ok()
            .and_then(|s| parse_seed(&s))
            .unwrap_or(0x50AC_C0DE_D00D_5EED)
    }

    fn repro_line(seed: u64, test: &str) -> String {
        format!("SIMNET_SEED={seed:#018x} cargo test --release --test chaos {test} -- --nocapture")
    }

    /// The tier-1 soak: 40 randomized crash/partition episodes under
    /// virtual time. Runs in the commit gate — the discrete-event clock
    /// compresses ~20 s of modeled detection/recovery latency into wall
    /// seconds. On failure the panic names the seed that replays the
    /// identical schedule bit-for-bit.
    #[test]
    fn virtual_soak_randomized_faults_preserve_exactly_once() {
        let seed = seed_from_env();
        if let Err(f) = run_soak(seed, 40, true, None) {
            panic!(
                "soak episode {} failed under virtual time: {}\n\
                 schedule at failure: {}\n\
                 replay bit-for-bit with:\n  {}",
                f.episode,
                f.message,
                f.schedule.map(|s| s.to_string()).unwrap_or_default(),
                repro_line(seed, "virtual_soak_randomized_faults_preserve_exactly_once"),
            );
        }
    }

    /// The nightly variant: the same 40 episodes against the real clock,
    /// so the virtual-time model itself stays honest (`--ignored`-gated;
    /// episodes cost real detection + recovery latency).
    #[test]
    #[ignore = "nightly soak: randomized crash/partition schedule takes minutes in real time"]
    fn soak_randomized_faults_under_supervision_preserve_exactly_once() {
        let seed = seed_from_env();
        if let Err(f) = run_soak(seed, 40, false, None) {
            panic!(
                "soak episode {} failed in real time: {}\n\
                 rerun with:\n  {}",
                f.episode,
                f.message,
                repro_line(
                    seed,
                    "soak_randomized_faults_under_supervision_preserve_exactly_once"
                ),
            );
        }
    }

    /// Tier-1 sharded-control-plane soak: a 4-shard directory under
    /// randomized shard-primary crashes on virtual time. Each episode
    /// binds fresh names through the sharded facade, checkpoints the
    /// partitions, crashes one of machines 1–3 (machine 0 hosts the
    /// root and shard 0 and is never faulted), waits for the
    /// supervisor's snapshot takeover of the lost shard, restarts the
    /// victim, and audits that *every* name ever bound still resolves
    /// to its exact target — with the control loop running, since
    /// takeover incarnations serve only under live leases.
    #[test]
    fn virtual_soak_sharded_directory_survives_crash_episodes() {
        use dirsvc::{DirService, DirServiceConfig};
        use oopp_repro::oopp::{shard_of_name, ObjRef};

        const EPISODES: usize = 6;
        let seed = seed_from_env();
        let mut rng = Rng(seed ^ 0xD1F5);
        let (cluster, mut driver) = ClusterBuilder::new(4)
            .dir_shards(4)
            .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(seed))
            .call_policy(soak_policy())
            .build();
        let ns = driver.directory();
        let mut svc = DirService::new(
            DirServiceConfig {
                read_replicas: 0,
                snapshot_backups: 2,
                supervisor: soak_config(),
                ..DirServiceConfig::default()
            },
            vec![1, 2, 3],
            ns,
        );
        assert_eq!(svc.attach(&mut driver).unwrap(), 4);

        // Virtual-time settle: step the service until `done`, panicking
        // past the wall-clock limit with the replay line.
        let settle_svc = |svc: &mut DirService,
                          driver: &mut Driver,
                          done: &mut dyn FnMut(&DirService) -> bool| {
            let deadline = Instant::now() + Duration::from_secs(60);
            loop {
                svc.step(driver).unwrap();
                if done(svc) {
                    return;
                }
                assert!(
                    Instant::now() < deadline,
                    "sharded soak stalled; stats {:?}; replay: {}",
                    svc.stats(),
                    repro_line(
                        seed,
                        "virtual_soak_sharded_directory_survives_crash_episodes"
                    ),
                );
                driver.serve_for(Duration::from_millis(2));
            }
        };

        settle_svc(&mut svc, &mut driver, &mut |s| {
            [1, 2, 3]
                .iter()
                .all(|&m| s.supervisor().detector().last_heartbeat(m).is_some())
        });

        let mut ledger: Vec<(String, ObjRef)> = Vec::new();
        for episode in 0..EPISODES {
            // Fresh bindings land on every shard each episode.
            for k in 0..6usize {
                let name = symbolic_addr(&["soak-dir", &episode.to_string(), &k.to_string()]);
                let target = ObjRef {
                    machine: k % 4,
                    object: 20_000 + (episode * 10 + k) as u64,
                };
                ns.bind(&mut driver, name.clone(), target).unwrap();
                ledger.push((name, target));
            }
            assert_eq!(
                svc.checkpoint(&mut driver),
                4,
                "episode {episode}: calm checkpoint must reach every shard"
            );

            let victim = 1 + rng.below(3) as usize;
            cluster.sim().faults().crash(victim);
            settle_svc(&mut svc, &mut driver, &mut |s| s.is_dead(victim));
            cluster.sim().faults().restart(victim);
            settle_svc(&mut svc, &mut driver, &mut |s| {
                [1, 2, 3].iter().all(|&m| !s.is_dead(m))
            });

            // Full-ledger audit with the control loop running; a lost
            // partition, a stale snapshot, or a split-brain shard shows
            // up as a wrong or missing binding right here.
            for (name, target) in &ledger {
                let mut found = None;
                for _ in 0..40 {
                    svc.step(&mut driver).unwrap();
                    match ns.lookup(&mut driver, name.clone()) {
                        Ok(v) => {
                            found = Some(v);
                            break;
                        }
                        Err(RemoteError::Timeout { .. }) | Err(RemoteError::Fenced { .. }) => {
                            driver.serve_for(Duration::from_millis(2));
                        }
                        Err(e) => panic!(
                            "episode {episode}: {name} errored {e:?}; stats {:?}; seats {:?}; replay: {}",
                            svc.stats(),
                            (0..4)
                                .map(|i| ns.lease_of(
                                    &mut driver,
                                    oopp_repro::oopp::shard_addr(i)
                                ))
                                .collect::<Vec<_>>(),
                            repro_line(
                                seed,
                                "virtual_soak_sharded_directory_survives_crash_episodes"
                            )
                        ),
                    }
                }
                assert_eq!(
                    found,
                    Some(Some(*target)),
                    "episode {episode}: {name} (shard {}) diverged; replay: {}",
                    shard_of_name(name, 4),
                    repro_line(
                        seed,
                        "virtual_soak_sharded_directory_survives_crash_episodes"
                    ),
                );
            }
        }

        let stats = svc.stats();
        assert_eq!(stats.shards_attached, 4);
        assert!(
            stats.shard_takeovers >= 1,
            "six crash episodes over machines 1-3 must cost at least one shard takeover ({stats:?})"
        );

        cluster.shutdown(driver);
    }

    /// Soak episode for graceful degradation (DESIGN.md §15): one machine
    /// is load-spiked — every inbound packet delayed a full second, far
    /// past the 20 ms call timeout — and the client must degrade
    /// *gracefully*: the first timeouts trip the circuit breaker, later
    /// calls fast-fail on the client without touching the spiked machine,
    /// and after the spike lifts a half-open trial re-closes the breaker
    /// and service resumes. The ledger proves zero lost calls (every
    /// acknowledged total strictly increases and never exceeds the attempt
    /// count, spiked stragglers included), and the whole episode replays
    /// byte-for-byte from its `SIMNET_SEED`.
    #[test]
    fn virtual_soak_load_spike_opens_breaker_then_recovers() {
        /// One full spike episode; everything returned must be a pure
        /// function of the seed.
        fn run(seed: u64) -> (Vec<String>, u64, u64, u64, SimSchedule) {
            let (cluster, mut driver) = ClusterBuilder::new(3)
                .register::<Counter>()
                .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(seed))
                .call_policy(soak_policy())
                .build();
            let clock = cluster.sim().clock().clone();
            let c = CounterClient::new_on(&mut driver, 1).unwrap();
            driver.set_call_policy(
                CallPolicy::reliable(Duration::from_millis(20))
                    .with_max_retries(1)
                    .with_backoff(Backoff::fixed(Duration::from_millis(5)))
                    .with_breaker(BreakerConfig {
                        failure_threshold: 3,
                        cooldown: Duration::from_millis(50),
                    }),
            );

            let mut outcomes = Vec::new();
            let (mut acked, mut attempted) = (0u64, 0u64);
            let mut write_round =
                |driver: &mut Driver, outcomes: &mut Vec<String>, calls: usize| {
                    for _ in 0..calls {
                        attempted += 1;
                        let r = c.add(driver, 1);
                        if let Ok(total) = &r {
                            assert!(
                                *total > acked && *total <= attempted,
                                "ledger violated: total {total} outside ({acked}, {attempted}] \
                                 (lost or doubled call)"
                            );
                            acked = *total;
                        }
                        outcomes.push(format!("{r:?}"));
                    }
                };

            // Healthy phase: everything lands.
            write_round(&mut driver, &mut outcomes, 5);

            // Spike phase: machine 1 answers, but a second late.
            cluster.sim().faults().spike(1, Duration::from_secs(1));
            assert!(cluster.sim().faults().is_spiked(1));
            write_round(&mut driver, &mut outcomes, 8);
            let fast_fails = driver.local_stats().breaker_fast_fails;

            // Recovery phase: lift the spike, let the stragglers drain and
            // the cooldown lapse, then service must resume.
            cluster.sim().faults().unspike(1);
            driver.serve_for(Duration::from_secs(3));
            write_round(&mut driver, &mut outcomes, 5);

            let total = c.total(&mut driver).unwrap();
            assert!(
                total >= acked && total <= attempted,
                "final total {total} outside [{acked}, {attempted}]"
            );
            assert!(
                cluster.snapshot().spike_delayed > 0,
                "the fabric must account the spiked deliveries"
            );
            cluster.sim().faults().calm();
            cluster.shutdown(driver);
            let schedule = clock.schedule().expect("virtual clock records a schedule");
            (outcomes, total, fast_fails, acked, schedule)
        }

        let seed = seed_from_env();
        let repro = repro_line(seed, "virtual_soak_load_spike_opens_breaker_then_recovers");
        let first = run(seed);
        let (ref outcomes, _, fast_fails, _, ref schedule) = first;

        let (healthy, rest) = outcomes.split_at(5);
        let (spiked, recovered) = rest.split_at(8);
        assert!(
            healthy.iter().all(|o| o.starts_with("Ok")),
            "healthy phase must land every call; outcomes {healthy:?}; replay: {repro}"
        );
        assert!(
            spiked.iter().any(|o| o.contains("Timeout")),
            "the spike must cost timeouts before the breaker trips; \
             outcomes {spiked:?}; replay: {repro}"
        );
        assert!(
            spiked.iter().any(|o| o.contains("Overloaded")) && fast_fails >= 1,
            "the breaker must open and fast-fail inside the spike phase; \
             outcomes {spiked:?}; replay: {repro}"
        );
        assert!(
            recovered.iter().all(|o| o.starts_with("Ok")),
            "after the spike lifts the breaker must re-close and serve; \
             outcomes {recovered:?}; replay: {repro}"
        );
        assert!(schedule.events > 0);

        // Byte-for-byte replay: the same seed reproduces the identical
        // outcome sequence, totals, counters, and event schedule.
        let second = run(seed);
        assert_eq!(
            second, first,
            "same seed must replay the spike episode bit-for-bit; replay: {repro}"
        );
    }

    /// The replay contract itself: a deliberately failing episode reports
    /// a schedule, and rerunning the same seed reproduces the failure at
    /// the same episode with a bit-identical schedule — exactly what the
    /// printed `SIMNET_SEED=…` repro line promises.
    #[test]
    fn failing_episode_replays_bit_for_bit_from_its_seed() {
        const SEED: u64 = 0x0BAD_5EED_0BAD_5EED;
        let first = run_soak(SEED, 4, true, Some(2)).unwrap_err();
        assert_eq!(first.episode, 2);
        assert!(first.message.contains("sabotage"), "{}", first.message);
        let schedule = first.schedule.expect("virtual runs record a schedule");
        assert!(schedule.events > 0);
        eprintln!(
            "deliberate failure at episode {}; repro: {}",
            first.episode,
            repro_line(SEED, "failing_episode_replays_bit_for_bit_from_its_seed")
        );

        let replay = run_soak(SEED, 4, true, Some(2)).unwrap_err();
        assert_eq!(replay.episode, first.episode);
        assert_eq!(
            replay.schedule,
            Some(schedule),
            "same seed must replay the identical event schedule"
        );
    }
}
