//! Integration tests comparing the two programming models (oopp RMI vs.
//! mplite message passing) on the same workloads, and exercising costed
//! configurations end to end.

use oopp_repro::fft::{c64, max_error, Complex, Direction, DistributedFft3, Fft3, Grid3};
use oopp_repro::mplite::apps::{fft_run, pageio_run, IoMode};
use oopp_repro::mplite::{MpiWorld, Op};
use oopp_repro::oopp::{join, ClusterBuilder};
use oopp_repro::pagestore::{Page, PageDevice, PageDeviceClient};
use oopp_repro::simnet::{ClusterConfig, DiskConfig, NetCost, TopologySpec};

fn sample(shape: [usize; 3]) -> Vec<Complex> {
    let n = shape[0] * shape[1] * shape[2];
    (0..n)
        .map(|i| c64((i as f64 * 0.23).sin(), (i as f64 * 0.81).cos()))
        .collect()
}

/// Both models compute the same FFT, bit-for-bit against the local plan.
#[test]
fn fft_same_answer_under_both_models() {
    let shape = [8usize, 4, 4];
    let data = sample(shape);
    let expected = Fft3::new(shape).transform(&Grid3::new(shape, data.clone()), Direction::Forward);

    // oopp object processes.
    let (cluster, mut driver) = DistributedFft3::register(ClusterBuilder::new(2)).build();
    let dfft = DistributedFft3::new(&mut driver, [8, 4, 4], 2).unwrap();
    dfft.scatter(&mut driver, &data).unwrap();
    dfft.transform(&mut driver, Direction::Forward).unwrap();
    let oopp_result = dfft.gather(&mut driver).unwrap();
    cluster.shutdown(driver);

    // mplite ranks.
    let mpi_result = fft_run(ClusterConfig::zero_cost(2), shape, data, Direction::Forward);

    assert!(max_error(&oopp_result, expected.data()) < 1e-9);
    assert!(max_error(&mpi_result, expected.data()) < 1e-9);
    assert!(
        max_error(&oopp_result, &mpi_result) < 1e-12,
        "identical algorithm, identical bits"
    );
}

/// Page I/O: the oopp split loop and the hand-pipelined MPI client move the
/// same bytes (message counts may differ by the RMI framing).
#[test]
fn pageio_traffic_comparable_across_models() {
    let n = 4;
    let page_size = 2048usize;

    // oopp version: N devices, split-loop read, count substrate traffic.
    let (cluster, mut driver) = ClusterBuilder::new(n).register::<PageDevice>().build();
    let devices: Vec<_> = (0..n)
        .map(|m| {
            PageDeviceClient::new_on(&mut driver, m, format!("d{m}"), 8, page_size as u64, 0)
                .unwrap()
        })
        .collect();
    for d in &devices {
        d.write(&mut driver, 0, Page::zeroed(page_size).into_bytes())
            .unwrap();
    }
    let before = cluster.snapshot();
    let pending: Vec<_> = devices
        .iter()
        .map(|d| d.read_async(&mut driver, 0).unwrap())
        .collect();
    join(&mut driver, pending).unwrap();
    let oopp_delta = cluster.snapshot().since(&before);
    cluster.shutdown(driver);

    // mplite version.
    let (_, mpi_metrics) = pageio_run(
        ClusterConfig::zero_cost(n + 1),
        page_size,
        8,
        IoMode::Pipelined,
    );

    // Both move n pages of payload; allow generous framing slack.
    let payload = (n * page_size) as u64;
    assert!(oopp_delta.bytes_sent >= payload);
    assert!(mpi_metrics.bytes_sent >= payload);
    assert!(oopp_delta.bytes_sent < payload * 2);
    assert!(mpi_metrics.bytes_sent < payload * 2);
    // Request+reply per device in both models.
    assert_eq!(oopp_delta.messages_sent, 2 * n as u64);
}

/// A costed rack topology end to end: correctness is cost-independent.
#[test]
fn costed_rack_topology_end_to_end() {
    let config = ClusterConfig {
        machines: 0,
        topology: TopologySpec::Racks {
            rack_size: 2,
            intra: NetCost::lan(20, 10.0),
            inter: NetCost::lan(100, 1.0),
        },
        disk: DiskConfig::nvme(),
        disks_per_machine: 1,
        disk_capacity: 8 << 20,
        faults: simnet::FaultPlan::none(),
        time: simnet::TimeMode::default(),
    };
    let (cluster, mut driver) = DistributedFft3::register(ClusterBuilder::new(4))
        .sim_config(config)
        .build();
    let shape = [8usize, 8, 4];
    let data = sample(shape);
    let expected = Fft3::new(shape).transform(&Grid3::new(shape, data.clone()), Direction::Forward);
    let dfft = DistributedFft3::new(&mut driver, [8, 8, 4], 4).unwrap();
    dfft.scatter(&mut driver, &data).unwrap();
    dfft.transform(&mut driver, Direction::Forward).unwrap();
    assert!(max_error(&dfft.gather(&mut driver).unwrap(), expected.data()) < 1e-9);
    cluster.shutdown(driver);
}

/// mplite collectives against serial reference, larger world.
#[test]
fn collectives_agree_with_serial_reference() {
    let world = MpiWorld::new(ClusterConfig::zero_cost(7));
    let (sums, _) = world.run(|c| {
        let v = (c.rank() * c.rank()) as f64;
        c.allreduce_f64(v, Op::Sum).unwrap()
    });
    let expect: f64 = (0..7).map(|r| (r * r) as f64).sum();
    assert_eq!(sums, vec![expect; 7]);

    let (gathered, _) = world.run(|c| {
        let piece = vec![c.rank() as u8 + 1];
        c.gather(3, piece).unwrap()
    });
    assert_eq!(
        gathered[3].as_ref().unwrap().concat(),
        vec![1, 2, 3, 4, 5, 6, 7]
    );
}

/// The driver can interleave work against both models' substrates in one
/// process (separate clusters).
#[test]
fn two_clusters_coexist() {
    let (c1, mut d1) = ClusterBuilder::new(2).build();
    let (c2, mut d2) = ClusterBuilder::new(2).build();
    let a = oopp_repro::oopp::DoubleBlockClient::new_on(&mut d1, 0, 4).unwrap();
    let b = oopp_repro::oopp::DoubleBlockClient::new_on(&mut d2, 0, 4).unwrap();
    a.set(&mut d1, 0, 1.0).unwrap();
    b.set(&mut d2, 0, 2.0).unwrap();
    assert_eq!(a.get(&mut d1, 0).unwrap(), 1.0);
    assert_eq!(b.get(&mut d2, 0).unwrap(), 2.0);
    c1.shutdown(d1);
    c2.shutdown(d2);
}
