//! Read-replication suite (DESIGN.md §11).
//!
//! Exercises the replica subsystem end to end: read verbs fanned out
//! across a replica set while writes stay serialized at the primary,
//! write-through read-your-writes, bounded-staleness lag and re-sync,
//! the stale-replica and dead-replica fallback paths, CAS-fenced
//! promotion of a replica after the primary's machine dies, the
//! unmovable-while-replicated migration rule, replica-set broadcast,
//! and the supervisor's declare-dead purge of replica records.

use std::time::{Duration, Instant};

use oopp_repro::oopp::{
    symbolic_addr, wire, Backoff, CallPolicy, ClusterBuilder, NodeCtx, ProcessGroup, RemoteClient,
    RemoteError, RemoteResult,
};
use oopp_repro::simnet::ClusterConfig;
use replica::{CoherenceMode, ReplicaConfig, ReplicaManager};

/// Persistent counter whose `total` is declared a read verb: the runtime
/// may serve it from any replica. `add` stays a write and always runs at
/// the primary.
#[derive(Debug, Default)]
pub struct RCounter {
    total: u64,
}

oopp_repro::oopp::remote_class! {
    class RCounter {
        persistent;
        reads(total);
        ctor();
        /// Add `n`; returns the new total.
        fn add(&mut self, n: u64) -> u64;
        /// Current total (replica-servable).
        fn total(&mut self) -> u64;
    }
}

impl RCounter {
    pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(RCounter::default())
    }

    fn add(&mut self, _ctx: &mut NodeCtx, n: u64) -> RemoteResult<u64> {
        self.total += n;
        Ok(self.total)
    }

    fn total(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<u64> {
        Ok(self.total)
    }

    fn save_state(&self) -> Vec<u8> {
        wire::to_bytes(&self.total)
    }

    fn load_state(_ctx: &mut NodeCtx, state: &[u8]) -> RemoteResult<Self> {
        Ok(RCounter {
            total: wire::from_bytes(state)?,
        })
    }
}

/// A class with no `reads(...)` verbs — nothing a replica could serve.
#[derive(Debug, Default)]
pub struct WriteOnly {
    hits: u64,
}

oopp_repro::oopp::remote_class! {
    class WriteOnly {
        persistent;
        ctor();
        /// Mutate; returns the hit count.
        fn bump(&mut self) -> u64;
    }
}

impl WriteOnly {
    pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(WriteOnly::default())
    }

    fn bump(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<u64> {
        self.hits += 1;
        Ok(self.hits)
    }

    fn save_state(&self) -> Vec<u8> {
        wire::to_bytes(&self.hits)
    }

    fn load_state(_ctx: &mut NodeCtx, state: &[u8]) -> RemoteResult<Self> {
        Ok(WriteOnly {
            hits: wire::from_bytes(state)?,
        })
    }
}

/// Fast-failure policy: dead replicas must cost short windows.
fn test_policy() -> CallPolicy {
    CallPolicy::reliable(Duration::from_millis(100))
        .with_max_retries(2)
        .with_backoff(Backoff::fixed(Duration::from_millis(5)))
}

/// A lease long enough that test wall-clock cannot lapse it by accident;
/// staleness tests override it explicitly.
fn long_lease() -> ReplicaConfig {
    ReplicaConfig {
        mode: CoherenceMode::WriteThrough,
        lease: Duration::from_secs(30),
    }
}

/// A 4-worker cluster (driver is machine 4), a bound counter on machine
/// `home` seeded to `seed`, and a manager for it.
fn replicated_counter(
    seed: u64,
    home: usize,
    targets: &[usize],
    cfg: ReplicaConfig,
) -> (
    oopp_repro::oopp::Cluster,
    oopp_repro::oopp::Driver,
    RCounterClient,
    String,
    ReplicaManager,
    Vec<oopp_repro::oopp::ObjRef>,
) {
    let (cluster, mut driver) = ClusterBuilder::new(4)
        .register::<RCounter>()
        .register::<WriteOnly>()
        .sim_config(ClusterConfig::zero_cost(0))
        .call_policy(test_policy())
        .build();
    let dir = driver.directory();
    let c = RCounterClient::new_on(&mut driver, home).unwrap();
    let name = symbolic_addr(&["replica", "RCounter", "0"]);
    dir.bind(&mut driver, name.clone(), c.obj_ref()).unwrap();
    if seed > 0 {
        c.add(&mut driver, seed).unwrap();
    }
    let mut mgr = ReplicaManager::new(cfg, dir);
    let replicas = mgr.replicate(&mut driver, &name, &c, targets).unwrap();
    (cluster, driver, c, name, mgr, replicas)
}

/// Read verbs round-robin across the replica set; the primary serves
/// none of them. A target on the primary's own machine is skipped.
#[test]
fn reads_are_served_by_replicas_not_the_primary() {
    let (cluster, mut driver, c, name, mgr, replicas) =
        replicated_counter(7, 0, &[0, 1, 2], long_lease());
    // Machine 0 hosts the primary: no replica materializes beside it.
    assert_eq!(replicas.len(), 2);
    assert!(replicas.iter().all(|r| r.machine == 1 || r.machine == 2));
    assert_eq!(mgr.footprint(&name), [0, 1, 2].into_iter().collect());

    for _ in 0..10 {
        assert_eq!(c.total(&mut driver).unwrap(), 7);
    }
    let (s0, s1, s2) = (
        driver.stats_of(0).unwrap(),
        driver.stats_of(1).unwrap(),
        driver.stats_of(2).unwrap(),
    );
    assert_eq!(s0.replica_reads_served, 0, "primary must not serve reads");
    assert_eq!(s1.replica_reads_served, 5, "round-robin splits evenly");
    assert_eq!(s2.replica_reads_served, 5, "round-robin splits evenly");
    // Writes still reach the primary through the same client.
    assert_eq!(c.add(&mut driver, 1).unwrap(), 8);
    assert_eq!(c.total(&mut driver).unwrap(), 8);
    cluster.shutdown(driver);
}

/// Write-through coherence: every write re-syncs the replicas before it
/// is acknowledged, so a read routed to *any* replica observes it.
#[test]
fn write_through_gives_read_your_writes_at_every_replica() {
    let (cluster, mut driver, c, _name, _mgr, _replicas) =
        replicated_counter(0, 0, &[1, 2], long_lease());
    for i in 1..=6u64 {
        assert_eq!(c.add(&mut driver, 1).unwrap(), i);
        // The very next read — wherever the round-robin lands — sees it.
        assert_eq!(c.total(&mut driver).unwrap(), i, "write {i} not visible");
    }
    let s0 = driver.stats_of(0).unwrap();
    assert!(
        s0.replica_syncs_sent >= 12,
        "6 writes x 2 replicas must propagate, saw {}",
        s0.replica_syncs_sent
    );
    let served = driver.stats_of(1).unwrap().replica_reads_served
        + driver.stats_of(2).unwrap().replica_reads_served;
    assert_eq!(served, 6, "every read-your-write probe came off a replica");
    cluster.shutdown(driver);
}

/// A write addressed at a replica's own pointer is not absorbed: the
/// replica bounces it `Moved` to the primary and the client's chase
/// executes it there, exactly once.
#[test]
fn write_at_a_replica_lands_at_the_primary() {
    let (cluster, mut driver, c, _name, _mgr, replicas) =
        replicated_counter(7, 0, &[1, 2], long_lease());
    let via_replica = RCounterClient::from_ref(replicas[0]);
    assert_eq!(via_replica.add(&mut driver, 5).unwrap(), 12);
    assert_eq!(c.total(&mut driver).unwrap(), 12);
    // The replicas were write-through-synced by that bounced write too.
    let direct: u64 = driver
        .call_method(replicas[1], "total", |_| {})
        .expect("direct replica read");
    assert_eq!(direct, 12);
    cluster.shutdown(driver);
}

/// Bounded staleness: writes ack without waiting for replicas, reads may
/// trail until the manager's next step re-syncs, and a replica whose
/// coherence lease lapses refuses reads (`StaleReplica`) so the client
/// falls back to the always-coherent primary.
#[test]
fn bounded_staleness_lags_then_recovers() {
    let cfg = ReplicaConfig {
        mode: CoherenceMode::BoundedStaleness,
        lease: Duration::from_millis(80),
    };
    let (cluster, mut driver, c, _name, mut mgr, _replicas) = replicated_counter(7, 0, &[1], cfg);

    // Within the lease, a replica read is allowed to trail the primary:
    // the write acked without any propagation.
    assert_eq!(c.add(&mut driver, 1).unwrap(), 8);
    assert_eq!(driver.stats_of(0).unwrap().replica_syncs_sent, 0);
    assert_eq!(
        c.total(&mut driver).unwrap(),
        7,
        "staleness is the contract"
    );

    // One maintenance step closes the gap.
    assert_eq!(mgr.step(&mut driver).unwrap(), 1);
    mgr.refresh_routes(&mut driver).unwrap();
    assert_eq!(c.total(&mut driver).unwrap(), 8);

    // Let the lease lapse: the replica can no longer bound its lag, so it
    // refuses and the read transparently lands at the primary instead.
    assert_eq!(c.add(&mut driver, 1).unwrap(), 9);
    std::thread::sleep(Duration::from_millis(160));
    assert_eq!(
        c.total(&mut driver).unwrap(),
        9,
        "fallback must be coherent"
    );
    assert!(driver.stats_of(1).unwrap().replica_reads_stale >= 1);

    // step() renews/re-syncs; the route is freshened and serving resumes.
    mgr.step(&mut driver).unwrap();
    mgr.refresh_routes(&mut driver).unwrap();
    let before = driver.stats_of(1).unwrap().replica_reads_served;
    assert_eq!(c.total(&mut driver).unwrap(), 9);
    assert_eq!(driver.stats_of(1).unwrap().replica_reads_served, before + 1);
    cluster.shutdown(driver);
}

/// A replica machine crashes: in-flight reads fall back to the primary
/// (reads are re-executable by contract), the manager shrinks the set,
/// and reads keep flowing off the survivor.
#[test]
fn replica_crash_shrinks_the_set_and_reads_keep_flowing() {
    let (cluster, mut driver, c, name, mut mgr, replicas) =
        replicated_counter(7, 0, &[1, 2], long_lease());
    let survivor = replicas.iter().find(|r| r.machine == 2).copied().unwrap();

    cluster.sim().faults().crash(1);
    // Whichever copy the round-robin picks — the corpse included — every
    // read still answers correctly (timeout fallback to the primary).
    for _ in 0..4 {
        assert_eq!(c.total(&mut driver).unwrap(), 7);
    }

    let promoted = mgr.handle_dead_machine(&mut driver, 1).unwrap();
    assert!(promoted.is_empty(), "the primary did not die");
    assert_eq!(mgr.replicas_of(&name).unwrap(), vec![survivor]);
    let dir = driver.directory();
    let (set, _) = dir.replica_set(&mut driver, name.clone()).unwrap().unwrap();
    assert_eq!(set, vec![survivor], "directory scrubbed of the dead copy");

    // Reads land exclusively on the survivor now, and write-through
    // coherence continues against the shrunken set.
    let before = driver.stats_of(2).unwrap().replica_reads_served;
    assert_eq!(c.add(&mut driver, 1).unwrap(), 8);
    for _ in 0..3 {
        assert_eq!(c.total(&mut driver).unwrap(), 8);
    }
    assert_eq!(driver.stats_of(2).unwrap().replica_reads_served, before + 3);

    cluster.sim().faults().restart(1);
    cluster.shutdown(driver);
}

/// The primary's machine crashes: the manager wins the directory claim
/// and promotes a surviving replica in place — no snapshot restore, the
/// replica *is* a live copy — and the write stream continues against the
/// re-fenced incarnation with state intact.
#[test]
fn primary_crash_promotes_a_replica_with_state_intact() {
    // The primary lives on machine 1 — machine 0 hosts the naming
    // directory, which must survive to arbitrate the failover claim.
    let (cluster, mut driver, c, name, mut mgr, replicas) =
        replicated_counter(0, 1, &[2, 3], long_lease());
    for _ in 0..7 {
        c.add(&mut driver, 1).unwrap();
    }

    cluster.sim().faults().crash(1);
    let promoted = mgr.handle_dead_machine(&mut driver, 1).unwrap();
    assert_eq!(promoted.len(), 1);
    let (pname, new_primary) = promoted[0].clone();
    assert_eq!(pname, name);
    assert!(new_primary.machine == 2 || new_primary.machine == 3);
    assert!(replicas.contains(&new_primary), "promoted in place");
    assert_eq!(mgr.primary_of(&name), Some(new_primary));
    assert_eq!(mgr.stats().promotions, 1);

    // The directory agrees: bound to the promoted copy, epoch advanced.
    let dir = driver.directory();
    assert_eq!(
        dir.lease_of(&mut driver, name.clone()).unwrap(),
        Some((new_primary, 1, false))
    );

    // State survived byte-for-byte (the replica was write-through
    // current), and writes continue exactly-once on the new incarnation.
    let c2 = RCounterClient::from_ref(new_primary);
    assert_eq!(c2.total(&mut driver).unwrap(), 7);
    assert_eq!(c2.add(&mut driver, 1).unwrap(), 8);

    // The set shrank to the other survivor, which keeps serving reads
    // for the new primary.
    let rest = mgr.replicas_of(&name).unwrap();
    assert_eq!(rest.len(), 1);
    let other = rest[0];
    assert_ne!(other, new_primary);
    let before = driver.stats_of(other.machine).unwrap().replica_reads_served;
    assert_eq!(c2.total(&mut driver).unwrap(), 8);
    assert_eq!(
        driver.stats_of(other.machine).unwrap().replica_reads_served,
        before + 1
    );

    cluster.sim().faults().restart(1);
    cluster.shutdown(driver);
}

/// Replicated objects are unmovable (DESIGN.md §11): migration refuses
/// both the primary and its replicas with the typed `Replicated` error,
/// and `unreplicate_then_migrate` is the one-step escape hatch — tear the
/// set down, move the primary, rebind the name.
#[test]
fn replicated_objects_refuse_migration_until_unreplicated() {
    let (cluster, mut driver, c, name, mut mgr, replicas) =
        replicated_counter(7, 0, &[1], long_lease());

    let err = driver.migrate(c.obj_ref(), 3).unwrap_err();
    assert!(
        matches!(err, RemoteError::Replicated { object } if object == c.obj_ref().object),
        "got {err}"
    );
    assert!(err.to_string().contains("unmovable"), "got {err}");
    let err = driver.migrate(replicas[0], 3).unwrap_err();
    assert!(
        matches!(err, RemoteError::Replicated { object } if object == replicas[0].object),
        "got {err}"
    );

    let moved = mgr.unreplicate_then_migrate(&mut driver, &name, 3).unwrap();
    assert_eq!(moved.machine, 3);
    assert!(mgr.primary_of(&name).is_none());
    // The name follows the object: a fresh resolve reaches the new home.
    let bound = driver
        .directory()
        .lookup(&mut driver, name.clone())
        .unwrap()
        .unwrap();
    assert_eq!(bound, moved);
    assert_eq!(
        RCounterClient::from_ref(moved).total(&mut driver).unwrap(),
        7
    );
    // Movable again for real: a second migration succeeds too.
    let moved_again = driver.migrate(moved, 2).unwrap();
    assert_eq!(moved_again.machine, 2);
    cluster.shutdown(driver);
}

/// Replication demands a class with read verbs and a directory binding;
/// double-replication is refused.
#[test]
fn replicate_rejects_unusable_inputs() {
    let (cluster, mut driver) = ClusterBuilder::new(3)
        .register::<RCounter>()
        .register::<WriteOnly>()
        .sim_config(ClusterConfig::zero_cost(0))
        .call_policy(test_policy())
        .build();
    let dir = driver.directory();
    let mut mgr = ReplicaManager::new(long_lease(), dir);

    // No reads(...) verbs: a replica could serve nothing.
    let w = WriteOnlyClient::new_on(&mut driver, 0).unwrap();
    let name_w = symbolic_addr(&["replica", "WriteOnly", "0"]);
    dir.bind(&mut driver, name_w.clone(), w.obj_ref()).unwrap();
    let err = mgr
        .replicate(&mut driver, &name_w, &w, &[1])
        .unwrap_err()
        .to_string();
    assert!(err.contains("reads"), "got {err}");

    // Not bound in the directory.
    let c = RCounterClient::new_on(&mut driver, 0).unwrap();
    let err = mgr
        .replicate(&mut driver, "oopp://nowhere", &c, &[1])
        .unwrap_err()
        .to_string();
    assert!(err.contains("not bound"), "got {err}");

    // Bound, but to a different object than the given client.
    let name_c = symbolic_addr(&["replica", "RCounter", "x"]);
    dir.bind(&mut driver, name_c.clone(), w.obj_ref()).unwrap();
    let err = mgr
        .replicate(&mut driver, &name_c, &c, &[1])
        .unwrap_err()
        .to_string();
    assert!(err.contains("does not match"), "got {err}");

    // Already replicated.
    dir.bind(&mut driver, name_c.clone(), c.obj_ref()).unwrap();
    mgr.replicate(&mut driver, &name_c, &c, &[1]).unwrap();
    let err = mgr
        .replicate(&mut driver, &name_c, &c, &[2])
        .unwrap_err()
        .to_string();
    assert!(err.contains("already replicated"), "got {err}");
    cluster.shutdown(driver);
}

/// `of_replica_set` + `broadcast`: the E1/E3 split loop over every live
/// copy — each request transmitted before any reply is awaited, each
/// member addressed directly (the primary is not re-routed back to a
/// replica).
#[test]
fn broadcast_reaches_the_primary_and_every_replica_directly() {
    let (cluster, mut driver, c, _name, _mgr, _replicas) =
        replicated_counter(7, 0, &[1, 2], long_lease());

    let group = ProcessGroup::of_replica_set(&driver, &c);
    assert_eq!(group.len(), 3, "primary + two replicas");
    let totals: Vec<u64> = group.broadcast(&mut driver, "total", |_| {}).unwrap();
    assert_eq!(totals, vec![7, 7, 7]);
    // The primary answered its own copy: broadcast bypasses read routing.
    assert_eq!(driver.stats_of(0).unwrap().replica_reads_served, 0);
    let served = driver.stats_of(1).unwrap().replica_reads_served
        + driver.stats_of(2).unwrap().replica_reads_served;
    assert_eq!(served, 2);

    // An unreplicated object broadcasts as a singleton group.
    let lone = RCounterClient::new_on(&mut driver, 3).unwrap();
    let group = ProcessGroup::of_replica_set(&driver, &lone);
    assert_eq!(group.len(), 1);
    let totals: Vec<u64> = group.broadcast(&mut driver, "total", |_| {}).unwrap();
    assert_eq!(totals, vec![0]);
    cluster.shutdown(driver);
}

/// Step `sup` until `done` (or panic after 15s).
fn settle(
    sup: &mut supervision::Supervisor,
    driver: &mut oopp_repro::oopp::Driver,
    mut done: impl FnMut(&supervision::Supervisor) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        sup.step(driver).expect("directory must stay reachable");
        if done(sup) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "supervisor did not settle: {:?}",
            sup.stats()
        );
        driver.serve_for(Duration::from_millis(2));
    }
}

/// Regression (satellite of PR 5): the supervisor's declare-dead purge
/// must scrub replica-set records pointing at the corpse — a client
/// refreshing routes from the directory must never be handed a dead
/// replica, even if no `ReplicaManager` ever reacts.
#[test]
fn declare_dead_purges_replica_records_from_the_directory() {
    use supervision::{DetectorConfig, RestartPolicy, Supervisor, SupervisorConfig};

    let (cluster, mut driver) = ClusterBuilder::new(4)
        .register::<RCounter>()
        .register::<WriteOnly>()
        .sim_config(ClusterConfig::zero_cost(0))
        .call_policy(test_policy())
        .build();
    let dir = driver.directory();
    let heartbeat_interval = Duration::from_millis(10);
    let mut sup = Supervisor::new(
        SupervisorConfig {
            heartbeat_interval,
            lease_ttl: Duration::from_millis(150),
            detector: DetectorConfig {
                expected_interval: heartbeat_interval,
                ..DetectorConfig::default()
            },
            restart: RestartPolicy::Retries {
                max_retries: 2,
                backoff: Backoff::fixed(Duration::from_millis(10)),
            },
        },
        vec![1, 2],
        dir,
    );

    let name = symbolic_addr(&["replica", "RCounter", "0"]);
    let c = RCounterClient::new_on(&mut driver, 1).unwrap();
    sup.register(&mut driver, &name, &c, &[3]).unwrap();
    c.add(&mut driver, 7).unwrap();
    let mut mgr = ReplicaManager::new(long_lease(), dir);
    let replicas = mgr.replicate(&mut driver, &name, &c, &[2]).unwrap();
    assert_eq!(replicas[0].machine, 2);
    let (_, rs_before) = dir.replica_set(&mut driver, name.clone()).unwrap().unwrap();

    // Warm the detector, then kill the *replica's* machine. The manager
    // is deliberately never told: the supervisor alone must clean up.
    settle(&mut sup, &mut driver, |s| {
        s.detector().last_heartbeat(2).is_some()
    });
    cluster.sim().faults().crash(2);
    settle(&mut sup, &mut driver, |s| s.is_dead(2));

    let (set, rs_after) = dir.replica_set(&mut driver, name.clone()).unwrap().unwrap();
    assert!(set.is_empty(), "dead replica still advertised: {set:?}");
    assert!(rs_after > rs_before, "purge must fence with an epoch bump");
    // A route refresh now converges on "no replicas" instead of a corpse.
    mgr.refresh_routes(&mut driver).unwrap();
    assert!(driver.replica_route_of(c.obj_ref()).is_none());
    // And the primary — which never died — still serves both verbs.
    assert_eq!(c.total(&mut driver).unwrap(), 7);

    cluster.sim().faults().restart(2);
    cluster.shutdown(driver);
}
