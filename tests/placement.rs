//! Live migration + adaptive placement suite (DESIGN.md §9).
//!
//! Exercises the migration state machine end to end: transparent moves
//! (quiesce → transfer → commit → forward), one-hop forward chasing for
//! stale pointers, rollback when the target is dark, exactly-once
//! execution across a move under loss and duplication, the per-node
//! resolution cache's lazy invalidation on a third machine, and the
//! balancer's closed loop with hysteresis.

use std::time::Duration;

use oopp_repro::oopp::{
    resolve_or_activate_supervised, symbolic_addr, wire, Backoff, CallPolicy, ClusterBuilder,
    DoubleBlockClient, NameService, NodeCtx, ObjRef, RemoteClient, RemoteResult,
};
use oopp_repro::simnet::{ClusterConfig, FaultPlan};
use placement::{Balancer, PlacementPolicy};

/// Persistent, deliberately non-idempotent counter: a duplicated or
/// re-executed `add` is observable in the running total, so bit-identical
/// totals across a migration prove exactly-once execution survived it.
#[derive(Debug, Default)]
pub struct PCounter {
    total: u64,
}

oopp_repro::oopp::remote_class! {
    class PCounter {
        persistent;
        ctor();
        /// Add `n`; returns the new total.
        fn add(&mut self, n: u64) -> u64;
        /// Current total.
        fn total(&mut self) -> u64;
    }
}

impl PCounter {
    pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(PCounter::default())
    }

    fn add(&mut self, _ctx: &mut NodeCtx, n: u64) -> RemoteResult<u64> {
        self.total += n;
        Ok(self.total)
    }

    fn total(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<u64> {
        Ok(self.total)
    }

    fn save_state(&self) -> Vec<u8> {
        wire::to_bytes(&self.total)
    }

    fn load_state(_ctx: &mut NodeCtx, state: &[u8]) -> RemoteResult<Self> {
        Ok(PCounter {
            total: wire::from_bytes(state)?,
        })
    }
}

/// A caller on a *worker* machine holding a raw remote pointer — unlike
/// the driver that coordinates migrations, this machine learns about
/// moves only through `Moved` redirects.
#[derive(Debug)]
pub struct Chaser {
    target: ObjRef,
}

oopp_repro::oopp::remote_class! {
    class Chaser {
        ctor(target: ObjRef);
        /// Call `add(n)` on the held pointer.
        fn poke(&mut self, n: u64) -> u64;
    }
}

impl Chaser {
    pub fn new(_ctx: &mut NodeCtx, target: ObjRef) -> RemoteResult<Self> {
        Ok(Chaser { target })
    }

    fn poke(&mut self, ctx: &mut NodeCtx, n: u64) -> RemoteResult<u64> {
        PCounterClient::from_ref(self.target).add(ctx, n)
    }
}

/// A resolver on a worker machine: exercises the per-node resolution
/// cache of `resolve_or_activate_supervised` from somewhere that is
/// neither the directory's host nor the machine that repairs a binding.
#[derive(Debug)]
pub struct Resolver {
    dir: ObjRef,
}

oopp_repro::oopp::remote_class! {
    class Resolver {
        ctor(dir: ObjRef);
        /// Supervised resolution of `addr` over `candidates`; returns the
        /// resolved pointer.
        fn resolve(&mut self, addr: String, candidates: Vec<u64>) -> ObjRef;
    }
}

impl Resolver {
    pub fn new(_ctx: &mut NodeCtx, dir: ObjRef) -> RemoteResult<Self> {
        Ok(Resolver { dir })
    }

    fn resolve(
        &mut self,
        ctx: &mut NodeCtx,
        addr: String,
        candidates: Vec<u64>,
    ) -> RemoteResult<ObjRef> {
        let dir = NameService::classic(self.dir);
        let machines: Vec<usize> = candidates.iter().map(|&m| m as usize).collect();
        let client: DoubleBlockClient =
            resolve_or_activate_supervised(ctx, &dir, &addr, &machines)?;
        Ok(client.obj_ref())
    }
}

/// Short windows so probes against crashed machines cost milliseconds,
/// with enough retries to ride out injected loss.
fn fast_policy() -> CallPolicy {
    CallPolicy::reliable(Duration::from_millis(80))
        .with_max_retries(6)
        .with_backoff(Backoff::fixed(Duration::from_millis(5)))
}

/// A wide window for driver calls that nest a full supervised resolution
/// (including a dead-machine probe under `fast_policy`) inside a single
/// request — the nested work alone outlasts the fast window.
fn patient_policy() -> CallPolicy {
    CallPolicy::reliable(Duration::from_millis(1500))
        .with_max_retries(4)
        .with_backoff(Backoff::fixed(Duration::from_millis(10)))
}

/// Migration is transparent to every kind of caller: the coordinator, a
/// worker-side caller holding a stale pointer (which must chase exactly
/// one forward per call, then go direct), and calls racing the move.
#[test]
fn migration_is_transparent_and_stale_pointers_chase_one_forward() {
    let (cluster, mut driver) = ClusterBuilder::new(3)
        .register::<PCounter>()
        .register::<Chaser>()
        .build();

    let counter = PCounterClient::new_on(&mut driver, 0).unwrap();
    let chaser = ChaserClient::new_on(&mut driver, 2, counter.obj_ref()).unwrap();
    for i in 1..=5 {
        assert_eq!(counter.add(&mut driver, 1).unwrap(), i);
    }

    // Move machine 0 → machine 1.
    let new_ref = driver.migrate(counter.obj_ref(), 1).unwrap();
    assert_eq!(new_ref.machine, 1);

    // The coordinator's old client keeps working (its cache was updated
    // at commit time), and the state moved intact.
    assert_eq!(counter.total(&mut driver).unwrap(), 5);
    assert_eq!(counter.add(&mut driver, 1).unwrap(), 6);

    // Machine 2 holds the stale pointer: its first call bounces off the
    // forwarding stub at the old address and chases one hop.
    assert_eq!(chaser.poke(&mut driver, 1).unwrap(), 7);
    let forwarded_after_first = driver.stats_of(0).unwrap().calls_forwarded;
    assert!(
        forwarded_after_first >= 1,
        "stale call must hit the forwarding stub"
    );

    // Later calls go direct — the chaser's node cached the new address.
    assert_eq!(chaser.poke(&mut driver, 1).unwrap(), 8);
    assert_eq!(
        driver.stats_of(0).unwrap().calls_forwarded,
        forwarded_after_first,
        "second call through a learned pointer must not chase again"
    );

    // A second migration (1 → 2): still at most one chase per call,
    // because each node re-learns the newest address when it chases.
    let newer = driver.migrate(new_ref, 2).unwrap();
    assert_eq!(newer.machine, 2);
    assert_eq!(counter.add(&mut driver, 1).unwrap(), 9);
    assert_eq!(chaser.poke(&mut driver, 1).unwrap(), 10);

    // Migration accounting adds up.
    assert_eq!(driver.stats_of(0).unwrap().migrated_out, 1);
    let m1 = driver.stats_of(1).unwrap();
    assert_eq!((m1.migrated_in, m1.migrated_out), (1, 1));
    assert_eq!(driver.stats_of(2).unwrap().migrated_in, 1);

    cluster.shutdown(driver);
}

/// A migration whose target is dark must roll back: the object survives
/// at its original address, under its original id, with its state intact
/// — never lost, never duplicated.
#[test]
fn migration_to_dead_machine_rolls_back() {
    let plan = FaultPlan::seeded(0xD00D).with_drop(0.05);
    let (cluster, mut driver) = ClusterBuilder::new(3)
        .register::<PCounter>()
        .sim_config(ClusterConfig::zero_cost(0).with_faults(plan))
        .call_policy(fast_policy())
        .build();

    let counter = PCounterClient::new_on(&mut driver, 0).unwrap();
    for _ in 0..5 {
        counter.add(&mut driver, 1).unwrap();
    }

    // Crash the target mid-everything; the move must fail cleanly.
    cluster.sim().faults().crash(1);
    let err = driver.migrate(counter.obj_ref(), 1);
    assert!(
        err.is_err(),
        "migrating onto a crashed machine cannot succeed"
    );

    // Rollback: same address, same id, same state, still callable.
    assert_eq!(counter.total(&mut driver).unwrap(), 5);
    assert_eq!(counter.add(&mut driver, 1).unwrap(), 6);
    let stats = driver.stats_of(0).unwrap();
    assert_eq!(
        stats.migrated_out, 0,
        "an aborted move must not count as migrated"
    );
    assert_eq!(stats.objects_live, 2); // counter + directory

    // The machine comes back; a later migration succeeds normally.
    cluster.sim().faults().restart(1);
    let new_ref = driver.migrate(counter.obj_ref(), 1).unwrap();
    assert_eq!(new_ref.machine, 1);
    assert_eq!(counter.total(&mut driver).unwrap(), 6);

    cluster.sim().faults().calm();
    cluster.shutdown(driver);
}

/// Satellite regression: the resolution cache is per node and verified on
/// every use, so a *third* machine's stale cached pointer recovers after
/// a crash that some *other* machine repaired — no invalidation broadcast.
#[test]
fn third_machine_stale_resolution_recovers_after_rebind() {
    const N: usize = 16;
    let (cluster, mut driver) = ClusterBuilder::new(3)
        .register::<Resolver>()
        .call_policy(fast_policy())
        .build();
    let dir = driver.directory();
    let addr = symbolic_addr(&["placement", "block", "0"]);

    // The process lives on machine 1, replicated to machine 0.
    let block = DoubleBlockClient::new_on(&mut driver, 1, N).unwrap();
    block.fill(&mut driver, 4.25).unwrap();
    dir.bind(&mut driver, addr.clone(), block.obj_ref())
        .unwrap();
    driver.replicate_snapshot(&block, &addr, &[0]).unwrap();

    // Machine 2 resolves and caches the pointer to machine 1.
    let resolver = ResolverClient::new_on(&mut driver, 2, dir.obj_ref()).unwrap();
    let first = resolver
        .resolve(&mut driver, addr.clone(), vec![1, 0])
        .unwrap();
    assert_eq!(first, block.obj_ref());

    // Machine 1 dies; the *driver* notices and repairs the binding by
    // activating the replica on machine 0.
    cluster.sim().faults().crash(1);
    let recovered: DoubleBlockClient =
        resolve_or_activate_supervised(&mut driver, &dir, &addr, &[1, 0]).unwrap();
    assert_eq!(recovered.obj_ref().machine, 0);

    // Machine 2 still holds the dead pointer in its cache. Its next
    // resolution must detect the staleness itself (ping fails),
    // invalidate, and pick up the repaired binding from the directory.
    // That nested recovery outlasts the fast window, so the driver alone
    // widens its patience for this call.
    driver.set_call_policy(patient_policy());
    let second = resolver
        .resolve(&mut driver, addr.clone(), vec![1, 0])
        .unwrap();
    driver.set_call_policy(fast_policy());
    assert_eq!(
        second,
        recovered.obj_ref(),
        "stale cache entry must lazily recover"
    );
    assert_eq!(recovered.get(&mut driver, 3).unwrap(), 4.25);

    cluster.sim().faults().restart(1);
    cluster.sim().faults().calm();
    cluster.shutdown(driver);
}

/// The balancer's closed loop on a live cluster: a Zipf-flavored hot spot
/// on machine 0 is spread out by `GreedyRebalance`, while the cooldown
/// keeps the round directly after a move quiet.
#[test]
fn balancer_spreads_hot_objects_and_cooldown_prevents_thrash() {
    let (cluster, mut driver) = ClusterBuilder::new(3).register::<PCounter>().build();

    // Six counters, all born on machine 0 (the paper's static placement).
    let counters: Vec<_> = (0..6)
        .map(|_| PCounterClient::new_on(&mut driver, 0).unwrap())
        .collect();
    let mut balancer = Balancer::new(
        PlacementPolicy::GreedyRebalance {
            imbalance_ratio: 1.2,
            max_moves_per_round: 2,
        },
        vec![0, 1, 2],
    )
    .with_cooldown(1);
    balancer.pin(driver.directory().obj_ref());

    let drive_round = |driver: &mut oopp_repro::oopp::Driver, counters: &[PCounterClient]| {
        for (i, c) in counters.iter().enumerate() {
            for _ in 0..(12 - 2 * i.min(5)) {
                c.add(driver, 1).unwrap();
            }
        }
    };

    drive_round(&mut driver, &counters);
    let moved = balancer.step(&mut driver, None).unwrap();
    assert!(
        !moved.is_empty(),
        "a 3-machine cluster with all load on one machine must rebalance"
    );
    assert!(moved.iter().all(|p| p.object.machine == 0 && p.target != 0));

    // Hysteresis: the very next round is a cooldown round — no moves even
    // though the load is still skewed.
    drive_round(&mut driver, &counters);
    let quiet = balancer.step(&mut driver, None).unwrap();
    assert!(quiet.is_empty(), "cooldown round must not migrate");

    // The loop keeps converging afterwards, and clients kept working
    // through every move (totals are per-object monotone).
    drive_round(&mut driver, &counters);
    let _ = balancer.step(&mut driver, None).unwrap();
    assert!(balancer.moves_executed() >= 1);
    let spread: usize = (0..3)
        .map(|m| (driver.stats_of(m).unwrap().migrated_in > 0) as usize)
        .sum();
    assert!(
        spread >= 1,
        "at least one machine must have received an object"
    );
    for c in &counters {
        c.add(&mut driver, 1).unwrap(); // still reachable wherever they live
    }

    cluster.shutdown(driver);
}

/// Deterministic workload over `K` counters with a seeded migration
/// schedule woven between rounds. Returns every total every `add`
/// returned, in issue order — the linearization witness.
fn migration_workload(
    workers: usize,
    rounds: usize,
    faults: FaultPlan,
    schedule: &[(usize, usize)], // (counter index, target machine) per round, cycled
    migrate_on: bool,
) -> Vec<u64> {
    const K: usize = 3;
    let (cluster, mut driver) = ClusterBuilder::new(workers)
        .register::<PCounter>()
        .sim_config(ClusterConfig::zero_cost(0).with_faults(faults))
        .call_policy(fast_policy())
        .build();

    let counters: Vec<_> = (0..K)
        .map(|_| PCounterClient::new_on(&mut driver, 0).unwrap())
        .collect();
    let mut witness = Vec::new();
    for round in 0..rounds {
        for (i, c) in counters.iter().enumerate() {
            for k in 0..3 {
                witness.push(c.add(&mut driver, (round + i + k) as u64 % 5 + 1).unwrap());
            }
        }
        if migrate_on && !schedule.is_empty() {
            let (idx, target) = schedule[round % schedule.len()];
            let c = &counters[idx % K];
            // The client's ObjRef is the *original* address; migrate()
            // resolves it through the forwarding cache first.
            driver.migrate(c.obj_ref(), target % workers).unwrap();
        }
    }
    for c in &counters {
        witness.push(c.total(&mut driver).unwrap());
    }
    cluster.sim().faults().calm();
    cluster.shutdown(driver);
    witness
}

/// Replicable counter: `peek` is a `reads(...)` verb, so the replica
/// manager will accept it — the smallest class that can sit at the
/// balancer/replication intersection.
#[derive(Debug, Default)]
pub struct RCell {
    total: u64,
}

oopp_repro::oopp::remote_class! {
    class RCell {
        persistent;
        reads(peek);
        ctor();
        /// Add `n`; returns the new total (the write verb).
        fn bump(&mut self, n: u64) -> u64;
        /// Current total (the replicated read verb).
        fn peek(&mut self) -> u64;
    }
}

impl RCell {
    pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(RCell::default())
    }

    fn bump(&mut self, _ctx: &mut NodeCtx, n: u64) -> RemoteResult<u64> {
        self.total += n;
        Ok(self.total)
    }

    fn peek(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<u64> {
        Ok(self.total)
    }

    fn save_state(&self) -> Vec<u8> {
        wire::to_bytes(&self.total)
    }

    fn load_state(_ctx: &mut NodeCtx, state: &[u8]) -> RemoteResult<Self> {
        Ok(RCell {
            total: wire::from_bytes(state)?,
        })
    }
}

/// The replicated-objects-vs-migration coupling (DESIGN.md §11): a
/// replicated primary refuses migration, and the balancer must treat
/// that as routine coordination, not as a failure. Fed the replica
/// footprint it skips the plan without a wire call; without the feed it
/// learns from the `Replicated` refusal instead of blacklisting; after
/// `unreplicate` the object must be movable again.
#[test]
fn balancer_skips_replicated_primaries_and_recovers_after_unreplicate() {
    use replica::{ReplicaConfig, ReplicaManager};

    let (cluster, mut driver) = ClusterBuilder::new(3)
        .register::<RCell>()
        .register::<PCounter>()
        .build();
    let dir = driver.directory();

    // All load lands on machine 0: one hot replicable cell plus a warm
    // companion so the greedy planner always has a candidate strictly
    // smaller than the machine gap.
    let hot = RCellClient::new_on(&mut driver, 0).unwrap();
    let warm = PCounterClient::new_on(&mut driver, 0).unwrap();
    let addr = symbolic_addr(&["placement", "rcell", "hot"]);
    dir.bind(&mut driver, addr.clone(), hot.obj_ref()).unwrap();

    for _ in 0..20 {
        hot.bump(&mut driver, 1).unwrap();
    }
    for _ in 0..8 {
        warm.add(&mut driver, 1).unwrap();
    }

    let mut mgr = ReplicaManager::new(ReplicaConfig::default(), dir);
    mgr.replicate(&mut driver, &addr, &hot, &[1]).unwrap();
    assert!(mgr.footprint(&addr).contains(&1));

    let policy = || PlacementPolicy::GreedyRebalance {
        imbalance_ratio: 1.2,
        max_moves_per_round: 2,
    };

    // Phase A — footprint fed: the plan for the hot cell is skipped
    // outright; no migration is even attempted on the wire.
    let mut fed = Balancer::new(policy(), vec![0, 1, 2]).with_cooldown(0);
    fed.pin(dir.obj_ref());
    fed.pin(warm.obj_ref());
    fed.set_replicated([mgr.primary_of(&addr).unwrap()]);
    fed.step(&mut driver, None).unwrap();
    assert_eq!(fed.moves_skipped_replicated(), 1);
    assert_eq!(fed.moves_executed(), 0);
    assert_eq!(driver.stats_of(0).unwrap().migrated_out, 0);

    // Phase B — no feed: the balancer burns one round trip on the
    // `Replicated` refusal, counts it as a skip (not a failure), and
    // learns the footprint rather than blacklisting the object.
    for _ in 0..20 {
        hot.bump(&mut driver, 1).unwrap();
    }
    for _ in 0..8 {
        warm.add(&mut driver, 1).unwrap();
    }
    let mut blind = Balancer::new(policy(), vec![0, 1, 2]).with_cooldown(0);
    blind.pin(dir.obj_ref());
    blind.pin(warm.obj_ref());
    blind.step(&mut driver, None).unwrap();
    assert_eq!(blind.moves_skipped_replicated(), 1);
    assert_eq!(blind.moves_executed(), 0);
    assert_eq!(
        driver.stats_of(0).unwrap().migrated_out,
        0,
        "a Replicated refusal must roll back before any transfer"
    );

    // Phase C — tear the replica set down: the object is a plain movable
    // process again, and the same balancer (footprint now empty) must
    // migrate it off the hot machine with state intact.
    mgr.unreplicate(&mut driver, &addr).unwrap();
    blind.set_replicated(std::iter::empty());
    for _ in 0..20 {
        hot.bump(&mut driver, 1).unwrap();
    }
    for _ in 0..8 {
        warm.add(&mut driver, 1).unwrap();
    }
    let moved = blind.step(&mut driver, None).unwrap();
    assert_eq!(blind.moves_executed(), 1, "unreplicated object must move");
    assert!(moved.iter().any(|p| p.object == hot.obj_ref()));
    assert_eq!(hot.peek(&mut driver).unwrap(), 60);

    cluster.shutdown(driver);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        /// Any seeded sequence of migrations is invisible to the
        /// computation: every intermediate total matches the no-migration
        /// run bit for bit (per-object call linearizability), including
        /// under loss + duplication, where retransmitted calls cross the
        /// move and must still execute exactly once (the dedup guarantee
        /// carried by the forwarding stub).
        #[test]
        fn seeded_migrations_preserve_linearizability(
            seed: u64,
            drop_p in 0.0..0.12f64,
        ) {
            // Derive a schedule from the seed (SplitMix-style), avoiding
            // any randomness at execution time.
            let mut s = seed;
            let mut next = || {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                (z ^ (z >> 31)) as usize
            };
            let schedule: Vec<(usize, usize)> =
                (0..6).map(|_| (next(), next())).collect();

            let baseline = migration_workload(3, 6, FaultPlan::none(), &[], false);
            let migrated = migration_workload(3, 6, FaultPlan::none(), &schedule, true);
            prop_assert_eq!(&baseline, &migrated);

            let plan = FaultPlan::seeded(seed).with_drop(drop_p).with_dup(drop_p / 2.0);
            let chaotic = migration_workload(3, 6, plan, &schedule, true);
            prop_assert_eq!(&baseline, &chaotic);
        }
    }
}
