//! Remote primitive arrays — the paper's "process semantics extend
//! naturally to simple objects" (§2):
//!
//! ```c++
//! double *data = new(machine 2) double[1024];
//! data[7] = 3.1415;
//! double x = data[2];
//! ```
//!
//! [`DoubleBlock`] is that `double[1024]` as a process: a block of f64s
//! living on a remote machine, with element access, bulk range transfer, and
//! a few device-side reductions (so E8's shared-memory computing processes
//! have something to compute). [`ByteBlock`] is the raw-byte analogue.
//! Both are **persistent** (§5): a block can be deactivated to a snapshot
//! and reactivated later.

use wire::collections::{Bytes, F64s};

use crate::error::{RemoteError, RemoteResult};
use crate::node::NodeCtx;

/// Server state for a remote block of doubles.
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleBlock {
    data: Vec<f64>,
}

remote_class! {
    /// Remote pointer to a block of `f64` on another machine (§2's
    /// `new(machine 2) double[1024]`).
    class DoubleBlock {
        persistent;
        ctor(n: usize);
        /// `data[i] = v` — one element store, one round trip.
        fn set(&mut self, i: usize, v: f64) -> ();
        /// `x = data[i]` — one element load, one round trip.
        fn get(&mut self, i: usize) -> f64;
        /// Fill the whole block with `v`.
        fn fill(&mut self, v: f64) -> ();
        /// Number of elements.
        fn len(&mut self) -> usize;
        /// Bulk read of `[start, start+len)`.
        fn read_range(&mut self, start: usize, len: usize) -> F64s;
        /// Bulk write starting at `start`.
        fn write_range(&mut self, start: usize, data: F64s) -> ();
        /// Device-side sum over `[start, start+len)` — move the computation
        /// to the data (§3).
        fn sum_range(&mut self, start: usize, len: usize) -> f64;
        /// Device-side dot product of `[start, start+len)` with `other`.
        fn dot_range(&mut self, start: usize, other: F64s) -> f64;
        /// `data[start..start+other.len()] += alpha * other` (axpy).
        fn axpy_range(&mut self, start: usize, alpha: f64, other: F64s) -> ();
    }
}

impl DoubleBlock {
    fn check_range(&self, start: usize, len: usize) -> RemoteResult<()> {
        if start
            .checked_add(len)
            .is_none_or(|end| end > self.data.len())
        {
            return Err(RemoteError::app(format!(
                "range [{start}, {start}+{len}) out of bounds for block of {}",
                self.data.len()
            )));
        }
        Ok(())
    }

    /// Constructor: allocate `n` zeroed doubles on the hosting machine.
    pub fn new(_ctx: &mut NodeCtx, n: usize) -> RemoteResult<Self> {
        Ok(DoubleBlock { data: vec![0.0; n] })
    }

    fn set(&mut self, _ctx: &mut NodeCtx, i: usize, v: f64) -> RemoteResult<()> {
        self.check_range(i, 1)?;
        self.data[i] = v;
        Ok(())
    }

    fn get(&mut self, _ctx: &mut NodeCtx, i: usize) -> RemoteResult<f64> {
        self.check_range(i, 1)?;
        Ok(self.data[i])
    }

    fn fill(&mut self, _ctx: &mut NodeCtx, v: f64) -> RemoteResult<()> {
        self.data.fill(v);
        Ok(())
    }

    fn len(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<usize> {
        Ok(self.data.len())
    }

    fn read_range(&mut self, _ctx: &mut NodeCtx, start: usize, len: usize) -> RemoteResult<F64s> {
        self.check_range(start, len)?;
        Ok(F64s(self.data[start..start + len].to_vec()))
    }

    fn write_range(&mut self, _ctx: &mut NodeCtx, start: usize, data: F64s) -> RemoteResult<()> {
        self.check_range(start, data.0.len())?;
        self.data[start..start + data.0.len()].copy_from_slice(&data.0);
        Ok(())
    }

    fn sum_range(&mut self, _ctx: &mut NodeCtx, start: usize, len: usize) -> RemoteResult<f64> {
        self.check_range(start, len)?;
        Ok(self.data[start..start + len].iter().sum())
    }

    fn dot_range(&mut self, _ctx: &mut NodeCtx, start: usize, other: F64s) -> RemoteResult<f64> {
        self.check_range(start, other.0.len())?;
        Ok(self.data[start..start + other.0.len()]
            .iter()
            .zip(&other.0)
            .map(|(a, b)| a * b)
            .sum())
    }

    fn axpy_range(
        &mut self,
        _ctx: &mut NodeCtx,
        start: usize,
        alpha: f64,
        other: F64s,
    ) -> RemoteResult<()> {
        self.check_range(start, other.0.len())?;
        for (dst, src) in self.data[start..start + other.0.len()]
            .iter_mut()
            .zip(&other.0)
        {
            *dst += alpha * src;
        }
        Ok(())
    }

    /// Persistence hook (§5): the state is just the elements.
    pub fn save_state(&self) -> Vec<u8> {
        wire::to_bytes(&F64s(self.data.clone()))
    }

    /// Persistence hook (§5).
    pub fn load_state(_ctx: &mut NodeCtx, state: &[u8]) -> RemoteResult<Self> {
        let data: F64s = wire::from_bytes(state)?;
        Ok(DoubleBlock { data: data.0 })
    }
}

/// Server state for a remote block of raw bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct ByteBlock {
    data: Vec<u8>,
}

remote_class! {
    /// Remote pointer to a block of bytes on another machine.
    class ByteBlock {
        persistent;
        ctor(n: usize);
        /// One-byte store.
        fn set(&mut self, i: usize, v: u8) -> ();
        /// One-byte load.
        fn get(&mut self, i: usize) -> u8;
        /// Number of bytes.
        fn len(&mut self) -> usize;
        /// Bulk read of `[start, start+len)`.
        fn read_range(&mut self, start: usize, len: usize) -> Bytes;
        /// Bulk write starting at `start`.
        fn write_range(&mut self, start: usize, data: Bytes) -> ();
    }
}

impl ByteBlock {
    fn check_range(&self, start: usize, len: usize) -> RemoteResult<()> {
        if start
            .checked_add(len)
            .is_none_or(|end| end > self.data.len())
        {
            return Err(RemoteError::app(format!(
                "range [{start}, {start}+{len}) out of bounds for block of {}",
                self.data.len()
            )));
        }
        Ok(())
    }

    /// Constructor: allocate `n` zeroed bytes.
    pub fn new(_ctx: &mut NodeCtx, n: usize) -> RemoteResult<Self> {
        Ok(ByteBlock { data: vec![0; n] })
    }

    fn set(&mut self, _ctx: &mut NodeCtx, i: usize, v: u8) -> RemoteResult<()> {
        self.check_range(i, 1)?;
        self.data[i] = v;
        Ok(())
    }

    fn get(&mut self, _ctx: &mut NodeCtx, i: usize) -> RemoteResult<u8> {
        self.check_range(i, 1)?;
        Ok(self.data[i])
    }

    fn len(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<usize> {
        Ok(self.data.len())
    }

    fn read_range(&mut self, _ctx: &mut NodeCtx, start: usize, len: usize) -> RemoteResult<Bytes> {
        self.check_range(start, len)?;
        Ok(Bytes(self.data[start..start + len].to_vec()))
    }

    fn write_range(&mut self, _ctx: &mut NodeCtx, start: usize, data: Bytes) -> RemoteResult<()> {
        self.check_range(start, data.0.len())?;
        self.data[start..start + data.0.len()].copy_from_slice(&data.0);
        Ok(())
    }

    /// Persistence hook (§5).
    pub fn save_state(&self) -> Vec<u8> {
        wire::to_bytes(&Bytes(self.data.clone()))
    }

    /// Persistence hook (§5).
    pub fn load_state(_ctx: &mut NodeCtx, state: &[u8]) -> RemoteResult<Self> {
        let data: Bytes = wire::from_bytes(state)?;
        Ok(ByteBlock { data: data.0 })
    }
}
