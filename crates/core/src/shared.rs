//! Thread-shared server state for the M:N object scheduler.
//!
//! A machine used to be exactly one thread: one `NodeCtx` owned the object
//! table, the dedup window and every gate, and served its inbox in a loop.
//! With the work-stealing scheduler (DESIGN.md §13) a machine is one
//! **dispatcher** lane (the network endpoint: admission, daemon verbs,
//! response routing) plus zero or more **worker** lanes that execute object
//! mailboxes. Everything both sides touch lives here, behind locks sized to
//! the contention: the object table is sharded, the admission gates share
//! one mutex (they are read together), and the counters are plain atomics.
//!
//! Lock order, where two are held: **shard before gates**. Neither is ever
//! held across a dispatch, a network send, or a clock park.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use sched::{DepthGauge, Injector, StealOrder, Stealer};
use simnet::{Clock, MachineId, Packet};

use crate::dedup::DedupWindow;
use crate::frame::NodeStats;
use crate::ids::{ObjRef, ObjectId, DAEMON};
use crate::policy::OverloadConfig;
use crate::process::ServerObject;

/// Shards of the per-machine object table. Power of two; eight keeps the
/// map fine-grained enough that a hot object's mailbox lock does not
/// serialize unrelated objects.
pub(crate) const OBJECT_SHARDS: usize = 8;

#[inline]
pub(crate) fn shard_of(object: ObjectId) -> usize {
    (object as usize) & (OBJECT_SHARDS - 1)
}

/// A request admitted by the dispatcher, parked in its target's mailbox
/// until a lane executes it.
pub(crate) struct IncomingReq {
    pub(crate) req_id: u64,
    pub(crate) reply_to: MachineId,
    pub(crate) target: ObjectId,
    pub(crate) payload: Vec<u8>,
    /// Trace identity from the request frame (zeros when untraced).
    pub(crate) trace_id: u64,
    pub(crate) span: u64,
    /// Caller's believed incarnation epoch (0 = unfenced).
    pub(crate) epoch: u64,
    /// Caller's believed replica-set epoch (0 = not replica-routed).
    pub(crate) rs_epoch: u64,
    /// Absolute cluster-clock deadline in nanos (0 = none). Checked at
    /// admission and re-checked at execution time under the shard lock.
    pub(crate) deadline: u64,
    /// Cluster-clock reading when the dispatcher admitted the request —
    /// the sojourn clock for CoDel-style shedding.
    pub(crate) admitted_at: u64,
}

/// Trace identity of one call, kept alongside the client's outstanding
/// entry (to stamp retransmit/recv events) and the server's serving table
/// (to stamp the reply event).
#[derive(Clone)]
pub(crate) struct CallTrace {
    pub(crate) trace_id: u64,
    pub(crate) span: u64,
    pub(crate) parent_span: u64,
    pub(crate) method: std::sync::Arc<str>,
}

/// One live object: its process (absent while checked out by a lane) and
/// the mailbox of admitted-but-unexecuted requests.
pub(crate) struct ObjEntry {
    /// The object itself; `None` while a lane is executing a call on it.
    pub(crate) slot: Option<Box<dyn ServerObject>>,
    /// Admitted requests awaiting execution, FIFO.
    pub(crate) mailbox: VecDeque<IncomingReq>,
    /// True while a task token for this object exists (queued or running).
    /// At most one token at a time is what serializes the object: whoever
    /// holds it owns the mailbox until it drains or is re-parked.
    pub(crate) scheduled: bool,
}

impl ObjEntry {
    pub(crate) fn new(obj: Box<dyn ServerObject>) -> Self {
        ObjEntry {
            slot: Some(obj),
            mailbox: VecDeque::new(),
            scheduled: false,
        }
    }
}

/// Server-side metadata of a read replica hosted on this machine.
pub(crate) struct ReplicaMeta {
    /// The authoritative copy this replica mirrors.
    pub(crate) primary: ObjRef,
    /// Replica-set epoch of the last applied sync.
    pub(crate) rs_epoch: u64,
    /// Coherence lease: the replica serves reads only until this clock
    /// reading (nanos), unless the primary (or the replica manager) renews
    /// it first.
    pub(crate) lease_until: u64,
    /// The class's declared read verbs, captured at adoption so the gate
    /// works even while the object is checked out.
    pub(crate) read_verbs: &'static [&'static str],
}

/// Server-side record held by the machine hosting a replicated primary.
pub(crate) struct PrimaryMeta {
    /// Live replica set; write propagation drops members it cannot reach.
    pub(crate) replicas: Vec<ObjRef>,
    /// Replica-set epoch, bumped by every write the primary serves.
    pub(crate) rs_epoch: u64,
    /// Write-through (sync replicas before acking a write) vs. bounded
    /// staleness (ack immediately; the manager re-syncs on its cadence).
    pub(crate) write_through: bool,
    /// Coherence lease granted to replicas on each sync.
    pub(crate) lease_millis: u64,
}

/// The admission gates: every piece of routing/fencing metadata a request
/// must clear **at execution time** before its object is checked out.
/// One mutex for all of them — they are read together on every call and
/// written rarely (lifecycle verbs, heartbeats).
#[derive(Default)]
pub(crate) struct Gates {
    /// Server-side incarnation epochs of supervised objects (DESIGN.md §10).
    pub(crate) epochs: HashMap<ObjectId, u64>,
    /// Serving lease granted by supervisor heartbeats; `None` until the
    /// first heartbeat (unsupervised machines never check leases).
    pub(crate) lease_deadline: Option<u64>,
    /// Forwarding stubs left by committed migrations.
    pub(crate) forwards: HashMap<ObjectId, ObjRef>,
    /// Objects mid-migration: quiesced with their snapshot held for
    /// rollback; their requests park in the dispatcher's deferred queue.
    pub(crate) migrating: HashMap<ObjectId, (String, Vec<u8>)>,
    /// Read replicas hosted here (coherence metadata; the replica objects
    /// themselves live in the shards like any other).
    pub(crate) replica_meta: HashMap<ObjectId, ReplicaMeta>,
    /// Replicated primaries hosted here.
    pub(crate) primaries: HashMap<ObjectId, PrimaryMeta>,
    /// Served calls per live object — the placement subsystem's load
    /// signal (daemon verb `loads`).
    pub(crate) object_calls: HashMap<ObjectId, u64>,
}

/// Machine-wide counters. Atomics, not a mutex: every lane bumps them on
/// every call and nobody reads them until a `stats` verb asks.
#[derive(Default)]
pub(crate) struct SharedStats {
    pub(crate) calls_served: AtomicU64,
    pub(crate) calls_deferred: AtomicU64,
    pub(crate) calls_retried: AtomicU64,
    pub(crate) dup_replayed: AtomicU64,
    pub(crate) dup_suppressed: AtomicU64,
    pub(crate) calls_forwarded: AtomicU64,
    pub(crate) migrated_in: AtomicU64,
    pub(crate) migrated_out: AtomicU64,
    pub(crate) heartbeats_served: AtomicU64,
    pub(crate) calls_fenced: AtomicU64,
    pub(crate) replica_reads_served: AtomicU64,
    pub(crate) replica_reads_stale: AtomicU64,
    pub(crate) replica_syncs_sent: AtomicU64,
    pub(crate) dir_cache_hits: AtomicU64,
    pub(crate) dir_cache_misses: AtomicU64,
    pub(crate) calls_shed_overload: AtomicU64,
    pub(crate) calls_shed_sojourn: AtomicU64,
    pub(crate) calls_deadline_expired: AtomicU64,
    pub(crate) breaker_fast_fails: AtomicU64,
    pub(crate) retries_suppressed: AtomicU64,
}

macro_rules! bump {
    ($stats:expr, $field:ident) => {
        $stats.$field.fetch_add(1, Ordering::Relaxed)
    };
}
pub(crate) use bump;

impl SharedStats {
    pub(crate) fn snapshot(&self, objects_live: u64, snapshots_stored: u64) -> NodeStats {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        NodeStats {
            objects_live,
            snapshots_stored,
            calls_served: g(&self.calls_served),
            calls_deferred: g(&self.calls_deferred),
            calls_retried: g(&self.calls_retried),
            dup_replayed: g(&self.dup_replayed),
            dup_suppressed: g(&self.dup_suppressed),
            calls_forwarded: g(&self.calls_forwarded),
            migrated_in: g(&self.migrated_in),
            migrated_out: g(&self.migrated_out),
            heartbeats_served: g(&self.heartbeats_served),
            calls_fenced: g(&self.calls_fenced),
            replica_reads_served: g(&self.replica_reads_served),
            replica_reads_stale: g(&self.replica_reads_stale),
            replica_syncs_sent: g(&self.replica_syncs_sent),
            dir_cache_hits: g(&self.dir_cache_hits),
            dir_cache_misses: g(&self.dir_cache_misses),
            calls_shed_overload: g(&self.calls_shed_overload),
            calls_shed_sojourn: g(&self.calls_shed_sojourn),
            calls_deadline_expired: g(&self.calls_deadline_expired),
            breaker_fast_fails: g(&self.breaker_fast_fails),
            retries_suppressed: g(&self.retries_suppressed),
        }
    }
}

/// Message on a worker lane's control channel, fed by the dispatcher.
pub(crate) enum WorkerMsg {
    /// A response frame for a call this lane issued (routed by
    /// `req_id mod stride`).
    Packet(Packet),
    /// "The queues may have work" — wake up and scan them.
    Nudge,
    /// The machine is shutting down; exit the worker loop.
    Shutdown,
}

/// The execution layer behind a machine's dispatcher.
pub(crate) enum Sched {
    /// No worker pool: the dispatcher runs object tasks inline — the
    /// classic single-threaded profile, still the default.
    Inline,
    /// An M:N work-stealing pool (DESIGN.md §13).
    Pool(Pool),
}

/// Shared half of a machine's worker pool: the overflow injector, each
/// worker's steal handle and control channel, and the idle map the
/// dispatcher consults to wake exactly one sleeper per new task.
pub(crate) struct Pool {
    pub(crate) injector: Injector<ObjectId>,
    pub(crate) stealers: Vec<Stealer<ObjectId>>,
    pub(crate) txs: Vec<Sender<WorkerMsg>>,
    /// Virtual-clock park labels, one per worker (`WORKER_LABEL_BASE`-offset).
    pub(crate) labels: Vec<u64>,
    /// Which workers are parked idle (not mid-task, not mid-wait).
    pub(crate) idle: Mutex<Vec<bool>>,
    /// Seeded victim permutations: same `SIMNET_SEED`, same steal order.
    pub(crate) steal_order: StealOrder,
}

impl Pool {
    pub(crate) fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Wake worker `i`: the channel message covers the real-time mode, the
    /// label notification covers a virtual-time park.
    pub(crate) fn wake(&self, i: usize, msg: WorkerMsg, clock: &Clock) {
        let _ = self.txs[i].send(msg);
        clock.notify_label(self.labels[i]);
    }

    /// A task just landed in the injector: wake the first idle worker, or
    /// — when nobody is idle — every worker, because a "busy" worker may
    /// be parked inside a re-entrant wait and can run the task in place
    /// (that is what keeps a 1-worker pool live across nested same-machine
    /// calls).
    pub(crate) fn nudge(&self, clock: &Clock) {
        let pick = {
            let mut idle = self.idle.lock();
            match idle.iter().position(|i| *i) {
                Some(i) => {
                    // Optimistically clear the flag so the next task
                    // wakes a different sleeper; the worker re-asserts
                    // idleness itself if the cupboard turns out bare.
                    idle[i] = false;
                    Some(i)
                }
                None => None,
            }
        };
        match pick {
            Some(i) => self.wake(i, WorkerMsg::Nudge, clock),
            None => {
                for i in 0..self.txs.len() {
                    self.wake(i, WorkerMsg::Nudge, clock);
                }
            }
        }
    }

    pub(crate) fn set_idle(&self, i: usize, v: bool) {
        self.idle.lock()[i] = v;
    }
}

/// One machine's thread-shared state: everything the dispatcher lane and
/// the worker lanes touch together.
pub(crate) struct SharedNode {
    /// The object table, sharded by id.
    pub(crate) shards: Vec<Mutex<HashMap<ObjectId, ObjEntry>>>,
    /// Fencing / routing / replication gates, checked at execution time.
    pub(crate) gates: Mutex<Gates>,
    /// At-most-once window, shared so any lane's `complete` is ordered
    /// against the dispatcher's `admit`.
    pub(crate) dedup: Mutex<DedupWindow>,
    /// Traced requests admitted but not yet answered.
    pub(crate) serving_spans: Mutex<HashMap<(MachineId, u64), CallTrace>>,
    pub(crate) stats: SharedStats,
    pub(crate) next_obj_id: AtomicU64,
    /// Daemon verbs currently parked in the dispatcher's deferred queue
    /// (they reported Busy against a checked-out object). Workers read
    /// this when an object goes idle to know the dispatcher needs a kick.
    pub(crate) daemon_parked: AtomicU64,
    pub(crate) sched: Sched,
    /// Admission-control knobs (immutable after build).
    pub(crate) overload: OverloadConfig,
    /// Admitted-but-unexecuted requests across all object mailboxes — the
    /// machine-wide in-flight gauge the admission check reads. Acquired on
    /// mailbox push; released wherever a request leaves a mailbox
    /// (execution pop, quarantine drain, removed-object drain).
    pub(crate) queued: DepthGauge,
}

impl SharedNode {
    pub(crate) fn new(sched: Sched, overload: OverloadConfig) -> Self {
        SharedNode {
            shards: (0..OBJECT_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            gates: Mutex::new(Gates::default()),
            dedup: Mutex::new(DedupWindow::default()),
            serving_spans: Mutex::new(HashMap::new()),
            stats: SharedStats::default(),
            next_obj_id: AtomicU64::new(DAEMON + 1),
            daemon_parked: AtomicU64::new(0),
            sched,
            overload,
            queued: DepthGauge::new(),
        }
    }

    pub(crate) fn alloc_obj_id(&self) -> ObjectId {
        self.next_obj_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of live objects (excluding the daemon).
    pub(crate) fn objects_live(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Park a freshly constructed object under `id`.
    pub(crate) fn insert_object(&self, id: ObjectId, obj: Box<dyn ServerObject>) {
        self.shards[shard_of(id)]
            .lock()
            .insert(id, ObjEntry::new(obj));
    }
}
