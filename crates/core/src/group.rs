//! Process groups and barriers (§4).
//!
//! The paper's FFT example creates `N` processes, tells each about the
//! whole group (`SetGroup`), and synchronizes them with a
//! "compiler-supported barrier method for arrays of objects"
//! (`fft->barrier()`). [`ProcessGroup`] is that array-of-remote-pointers,
//! and [`Barrier`] the synchronization object.
//!
//! `Barrier` is deliberately implemented **by hand** against the raw
//! [`ServerObject`] trait rather than through `remote_class!`: a barrier
//! must *not* reply to `enter` until the last party arrives, which needs
//! the deferred-reply path ([`DispatchResult::NoReply`] +
//! [`NodeCtx::send_reply`]).

use wire::{Reader, Wire};

use crate::error::{RemoteError, RemoteResult};
use crate::future::{join, join_clients, Pending, PendingClient};
use crate::ids::ObjRef;
use crate::node::{CallInfo, NodeCtx};
use crate::process::{DispatchResult, RemoteClient, ServerClass, ServerObject};

/// Server state: a rendezvous for `parties` callers.
#[derive(Debug)]
pub struct Barrier {
    parties: usize,
    waiting: Vec<CallInfo>,
    /// Completed barrier rounds (for introspection/testing).
    generations: u64,
}

impl Barrier {
    /// A barrier for `parties` participants (must be ≥ 1).
    fn make(parties: usize) -> RemoteResult<Self> {
        if parties == 0 {
            return Err(RemoteError::app("a barrier needs at least one party"));
        }
        Ok(Barrier {
            parties,
            waiting: Vec::with_capacity(parties),
            generations: 0,
        })
    }
}

impl ServerObject for Barrier {
    fn class_name(&self) -> &'static str {
        "Barrier"
    }

    fn dispatch_named(
        &mut self,
        ctx: &mut NodeCtx,
        method: &str,
        _args: &mut Reader<'_>,
    ) -> RemoteResult<DispatchResult> {
        match method {
            "enter" => {
                let call = ctx
                    .current_call()
                    .expect("barrier dispatched outside a call");
                self.waiting.push(call);
                if self.waiting.len() == self.parties {
                    // Last party: release everyone (including this caller).
                    self.generations += 1;
                    for waiter in self.waiting.drain(..) {
                        ctx.send_reply(waiter, Ok(wire::to_bytes(&())));
                    }
                }
                Ok(DispatchResult::NoReply)
            }
            "generations" => Ok(DispatchResult::Reply(wire::to_bytes(&self.generations))),
            "parties" => Ok(DispatchResult::Reply(wire::to_bytes(&self.parties))),
            other => Err(RemoteError::NoSuchMethod {
                class: "Barrier".into(),
                method: other.into(),
            }),
        }
    }
}

impl ServerClass for Barrier {
    const CLASS: &'static str = "Barrier";

    fn construct(_ctx: &mut NodeCtx, args: &mut Reader<'_>) -> RemoteResult<Self> {
        let parties = usize::decode(args)?;
        Barrier::make(parties)
    }
}

/// Remote pointer to a [`Barrier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierClient {
    r: ObjRef,
}

impl BarrierClient {
    /// Create a barrier for `parties` on `machine`.
    pub fn new_on(ctx: &mut NodeCtx, machine: usize, parties: usize) -> RemoteResult<Self> {
        ctx.create::<Self>(machine, wire::to_bytes(&parties))
    }

    /// Enter the barrier and block until all parties have entered.
    pub fn enter(&self, ctx: &mut NodeCtx) -> RemoteResult<()> {
        ctx.call_method(self.r, "enter", |_| {})
    }

    /// Enter asynchronously (a worker typically has nothing else to do, but
    /// the driver may overlap its own entry with other work).
    pub fn enter_async(&self, ctx: &mut NodeCtx) -> RemoteResult<Pending<()>> {
        ctx.start_method(self.r, "enter", |_| {})
    }

    /// How many rounds this barrier has completed.
    pub fn generations(&self, ctx: &mut NodeCtx) -> RemoteResult<u64> {
        ctx.call_method(self.r, "generations", |_| {})
    }

    /// Destroy the barrier object.
    pub fn destroy(self, ctx: &mut NodeCtx) -> RemoteResult<()> {
        ctx.destroy(self.r)
    }
}

impl RemoteClient for BarrierClient {
    const CLASS: &'static str = "Barrier";
    fn from_ref(r: ObjRef) -> Self {
        BarrierClient { r }
    }
    fn obj_ref(&self) -> ObjRef {
        self.r
    }
}

impl Wire for BarrierClient {
    fn encode(&self, w: &mut wire::Writer) {
        self.r.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> wire::WireResult<Self> {
        Ok(BarrierClient {
            r: ObjRef::decode(r)?,
        })
    }
}

/// An array of remote objects of one class — the paper's `FFT *fft[N]`.
#[derive(Debug, Clone)]
pub struct ProcessGroup<C> {
    members: Vec<C>,
}

impl<C: RemoteClient> ProcessGroup<C> {
    /// Wrap existing clients.
    pub fn from_members(members: Vec<C>) -> Self {
        ProcessGroup { members }
    }

    /// Create one member per worker machine `0..n`, **in parallel**: all
    /// constructor requests are issued before any reply is awaited (the §4
    /// split loop applied to `new`). `make_args(id)` encodes the
    /// constructor arguments for member `id`.
    pub fn create(
        ctx: &mut NodeCtx,
        n: usize,
        mut make_args: impl FnMut(usize) -> Vec<u8>,
    ) -> RemoteResult<Self> {
        let pendings: Vec<PendingClient<C>> = (0..n)
            .map(|id| ctx.create_async::<C>(id, make_args(id)))
            .collect::<RemoteResult<_>>()?;
        Ok(ProcessGroup {
            members: join_clients(ctx, pendings)?,
        })
    }

    /// Group size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members, in id order.
    pub fn members(&self) -> &[C] {
        &self.members
    }

    /// Member `id`.
    pub fn member(&self, id: usize) -> &C {
        &self.members[id]
    }

    /// The raw remote pointers (what `SetGroup` ships to every member).
    pub fn refs(&self) -> Vec<ObjRef> {
        self.members.iter().map(|m| m.obj_ref()).collect()
    }

    /// The paper's parallel loop: issue `start(ctx, member, id)` for every
    /// member (the send half), then collect every reply (the receive half).
    pub fn par_each<T: Wire>(
        &self,
        ctx: &mut NodeCtx,
        mut start: impl FnMut(&mut NodeCtx, &C, usize) -> RemoteResult<Pending<T>>,
    ) -> RemoteResult<Vec<T>> {
        let pendings: Vec<Pending<T>> = self
            .members
            .iter()
            .enumerate()
            .map(|(id, m)| start(ctx, m, id))
            .collect::<RemoteResult<_>>()?;
        join(ctx, pendings)
    }

    /// The group of live copies of a replicated object: the primary first,
    /// then every read replica from the route registered on this node (see
    /// [`NodeCtx::register_replica_route`]). An unreplicated object yields
    /// a singleton group, so callers can broadcast unconditionally.
    pub fn of_replica_set(ctx: &NodeCtx, primary: &C) -> Self {
        let mut members = vec![C::from_ref(primary.obj_ref())];
        if let Some((replicas, _)) = ctx.replica_route_of(primary.obj_ref()) {
            members.extend(replicas.into_iter().map(C::from_ref));
        }
        ProcessGroup { members }
    }

    /// Broadcast one call to every member — the §4 split loop with an
    /// identical payload: every request is transmitted before any reply is
    /// awaited. Each member is addressed by its own remote pointer, so a
    /// broadcast over [`of_replica_set`](ProcessGroup::of_replica_set)
    /// lands on each replica directly instead of being re-routed; use it
    /// for read verbs only (a write verb would bounce off every replica
    /// with [`Moved`](crate::RemoteError::Moved)).
    pub fn broadcast<T: Wire>(
        &self,
        ctx: &mut NodeCtx,
        method: &str,
        encode_args: impl Fn(&mut wire::Writer),
    ) -> RemoteResult<Vec<T>> {
        self.par_each(ctx, |ctx, m, _| {
            ctx.start_method_direct(m.obj_ref(), method, &encode_args)
        })
    }

    /// The sequential loop the paper contrasts against: each call completes
    /// before the next is issued.
    pub fn seq_each<T: Wire>(
        &self,
        ctx: &mut NodeCtx,
        mut call: impl FnMut(&mut NodeCtx, &C, usize) -> RemoteResult<T>,
    ) -> RemoteResult<Vec<T>> {
        self.members
            .iter()
            .enumerate()
            .map(|(id, m)| call(ctx, m, id))
            .collect()
    }

    /// Destroy every member (in parallel).
    pub fn destroy(self, ctx: &mut NodeCtx) -> RemoteResult<()> {
        let pendings: Vec<Pending<()>> = self
            .members
            .iter()
            .map(|m| ctx.destroy_async(m.obj_ref()))
            .collect::<RemoteResult<_>>()?;
        join(ctx, pendings)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_rejects_zero_parties() {
        assert!(Barrier::make(0).is_err());
        let b = Barrier::make(3).unwrap();
        assert_eq!(b.parties, 3);
        assert_eq!(b.generations, 0);
    }

    #[test]
    fn barrier_client_is_wire_encodable() {
        let c = BarrierClient::from_ref(ObjRef {
            machine: 1,
            object: 5,
        });
        let back: BarrierClient = wire::from_bytes(&wire::to_bytes(&c)).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn group_accessors() {
        let g = ProcessGroup::from_members(vec![
            BarrierClient::from_ref(ObjRef {
                machine: 0,
                object: 1,
            }),
            BarrierClient::from_ref(ObjRef {
                machine: 1,
                object: 1,
            }),
        ]);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        assert_eq!(g.member(1).obj_ref().machine, 1);
        assert_eq!(g.refs().len(), 2);
    }
}
