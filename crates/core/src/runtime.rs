//! Cluster assembly: builder, worker threads, driver handle, shutdown.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use sched::{Injector, StealOrder};
use simnet::{
    ClusterConfig, MachineId, Metrics, MetricsSnapshot, SimCluster, TraceClock, WORKER_LABEL_BASE,
};
use wire::collections::Bytes;

use crate::array::{ByteBlock, DoubleBlock};
use crate::frame::Frame;
use crate::group::Barrier;
use crate::naming::{
    shard_addr, DirShard, DirShardClient, Directory, DirectoryClient, NameService,
};
use crate::node::{NodeCtx, WorkerLane};
use crate::policy::{CallPolicy, OverloadConfig};
use crate::process::{ClassRegistry, RemoteClient, ServerClass};
use crate::shared::{Pool, Sched, SharedNode};
use crate::trace::{Recorder, TraceCtx, DEFAULT_TRACE_CAPACITY};

/// Configures and launches an oopp cluster.
///
/// ```
/// use oopp::ClusterBuilder;
///
/// let (cluster, mut driver) = ClusterBuilder::new(4).build();
/// assert_eq!(driver.workers(), 4);
/// driver.ping(0).unwrap();
/// cluster.shutdown(driver);
/// ```
pub struct ClusterBuilder {
    workers: usize,
    sched_workers: usize,
    dir_shards: u32,
    sim_config: ClusterConfig,
    registry: ClassRegistry,
    policy: CallPolicy,
    overload: OverloadConfig,
    tracing: bool,
}

/// Hard ceiling on worker machines: one OS thread each, so a typo like
/// `ClusterBuilder::new(1 << 20)` must fail loudly, not fork-bomb the host.
const MAX_WORKERS: usize = 1024;

/// Hard ceiling on per-machine scheduler lanes (each is an OS thread).
const MAX_SCHED_WORKERS: usize = 256;

/// Hard ceiling on directory shards: beyond this the seating loop costs
/// more than any lookup distribution could win back.
const MAX_DIR_SHARDS: u32 = 1024;

impl ClusterBuilder {
    /// A cluster of `workers` machines (plus the implicit driver endpoint)
    /// on a zero-cost network — the deterministic test configuration. Use
    /// [`sim_config`](Self::sim_config) for costed benchmark topologies.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a cluster needs at least one worker machine");
        assert!(
            workers <= MAX_WORKERS,
            "ClusterBuilder::new({workers}): a cluster is capped at {MAX_WORKERS} worker \
             machines (one OS thread each)"
        );
        let mut registry = ClassRegistry::new();
        registry.register::<DoubleBlock>();
        registry.register::<ByteBlock>();
        registry.register::<Barrier>();
        registry.register::<Directory>();
        registry.register::<DirShard>();
        ClusterBuilder {
            workers,
            sched_workers: 0,
            dir_shards: 0,
            sim_config: ClusterConfig::zero_cost(workers + 1),
            registry,
            policy: CallPolicy::default(),
            overload: OverloadConfig::new(),
            tracing: false,
        }
    }

    /// Attach an M:N work-stealing execution pool of `n` worker lanes to
    /// every machine (DESIGN.md §13). With `n = 0` (the default) each
    /// machine is the classic single thread: the dispatcher executes
    /// objects inline. With `n > 0` the dispatcher only admits requests to
    /// per-object mailboxes; `n` extra OS threads per machine execute them,
    /// stealing mailbox tasks from each other when their own deques run
    /// dry. Per-object sequential-server semantics are preserved either
    /// way.
    pub fn sched_workers(mut self, n: usize) -> Self {
        assert!(
            n <= MAX_SCHED_WORKERS,
            "ClusterBuilder::sched_workers({n}): capped at {MAX_SCHED_WORKERS} lanes per \
             machine (each lane is an OS thread)"
        );
        self.sched_workers = n;
        self
    }

    /// Partition the control plane over `n` [`DirShard`] objects
    /// (DESIGN.md §14). With `n = 0` (the default) the cluster keeps the
    /// classic single [`Directory`] on machine 0 — byte-compatible with
    /// every prior release. With `n > 0` the builder creates `n` shard
    /// objects round-robin across the worker machines, seats them in the
    /// root directory under `oopp://_dirsvc/shard/<i>`, and
    /// [`Driver::directory`] returns a [`NameService`] that routes each
    /// name to its shard by a stable hash. Shards are persistent and
    /// declare read verbs, so `crates/dirsvc`'s management plane can
    /// supervise and replicate them like any other object.
    pub fn dir_shards(mut self, n: u32) -> Self {
        assert!(
            n <= MAX_DIR_SHARDS,
            "ClusterBuilder::dir_shards({n}): capped at {MAX_DIR_SHARDS} shards"
        );
        self.dir_shards = n;
        self
    }

    /// Per-machine overload protection (DESIGN.md §15): mailbox caps, the
    /// machine-wide in-flight budget, the CoDel-style sojourn target, and
    /// the `retry_after` hint stamped on [`RemoteError::Overloaded`]
    /// rejections. The defaults ([`OverloadConfig::new`]) are generous
    /// enough that well-behaved workloads never notice them.
    ///
    /// [`RemoteError::Overloaded`]: crate::RemoteError::Overloaded
    pub fn overload(mut self, config: OverloadConfig) -> Self {
        assert!(
            config.mailbox_cap > 0,
            "ClusterBuilder::overload: mailbox_cap must be at least 1 \
             (a cap of 0 would reject every request)"
        );
        assert!(
            config.inflight_cap > 0,
            "ClusterBuilder::overload: inflight_cap must be at least 1 \
             (a cap of 0 would reject every request)"
        );
        self.overload = config;
        self
    }

    /// Replace the substrate configuration (topology, disks, costs). The
    /// machine count in `cfg` is overridden to `workers + 1` — the extra
    /// endpoint is the driver's.
    pub fn sim_config(mut self, mut cfg: ClusterConfig) -> Self {
        cfg.machines = self.workers + 1;
        self.sim_config = cfg;
        self
    }

    /// Register a user class for remote construction. Built-ins
    /// ([`DoubleBlock`], [`ByteBlock`], [`Barrier`], [`Directory`]) are
    /// pre-registered.
    pub fn register<T: ServerClass>(mut self) -> Self {
        self.registry.register::<T>();
        self
    }

    /// Reply window before a call fails with
    /// [`RemoteError::Timeout`](crate::RemoteError::Timeout). Keeps the
    /// current retry/backoff settings (none, by default).
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.policy.timeout = timeout;
        self
    }

    /// Full reliability contract for every machine's calls: per-attempt
    /// timeout, retransmission budget, and backoff schedule. Use
    /// [`CallPolicy::reliable`] on faulty fabrics (see
    /// [`simnet::FaultPlan`]).
    pub fn call_policy(mut self, policy: CallPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enable the flight recorder: every machine records the full lifecycle
    /// of every call into a per-machine ring (see [`crate::trace`]). Read
    /// the result by cloning [`Cluster::recorder`] before shutdown and
    /// calling [`Recorder::merge`] after it. Off by default — a disabled
    /// recorder costs two zero bytes per request frame.
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Launch the machines and return the cluster handle plus the driver
    /// context (the paper's "program running on machine 0").
    pub fn build(self) -> (Cluster, Driver) {
        let ClusterBuilder {
            workers,
            sched_workers,
            dir_shards,
            sim_config,
            registry,
            policy,
            overload,
            tracing,
        } = self;
        let sim = SimCluster::new(sim_config);
        let registry = Arc::new(registry);
        let recorder = tracing.then(|| {
            Arc::new(Recorder::with_lanes(
                workers + 1,
                sched_workers + 1,
                DEFAULT_TRACE_CAPACITY,
                TraceClock::from_clock(sim.clock()),
            ))
        });
        // Victim permutations derive from the simulation seed so a virtual-
        // time run replays its steal order exactly (tests/determinism.rs).
        let steal_seed = sim.clock().seed().unwrap_or(0x9e37_79b9_7f4a_7c15);

        let mut threads = Vec::with_capacity(workers * (sched_workers + 1));
        for m in 0..workers {
            if sched_workers == 0 {
                let mut ctx = NodeCtx::new(
                    m,
                    workers,
                    sim.net().clone(),
                    sim.take_inbox(m),
                    registry.clone(),
                    sim.disks(m).to_vec(),
                    policy,
                    recorder.as_ref().map(|r| r.tracer_lane(m, 0)),
                    overload,
                );
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("oopp-machine-{m}"))
                        .spawn(move || ctx.serve_loop())
                        .expect("spawn machine thread"),
                );
                continue;
            }

            // Pooled machine: build the deques and control channels first,
            // wire the shared half into `SharedNode`, then spawn the lanes.
            let deques: Vec<sched::Worker<_>> =
                (0..sched_workers).map(|_| sched::Worker::new()).collect();
            let stealers = deques.iter().map(|d| d.stealer()).collect();
            let mut txs = Vec::with_capacity(sched_workers);
            let mut rxs = Vec::with_capacity(sched_workers);
            for _ in 0..sched_workers {
                let (tx, rx) = unbounded();
                txs.push(tx);
                rxs.push(rx);
            }
            let labels: Vec<u64> = (0..sched_workers)
                .map(|w| WORKER_LABEL_BASE + (m as u64) * 256 + w as u64)
                .collect();
            let pool = Pool {
                injector: Injector::new(),
                stealers,
                txs,
                labels: labels.clone(),
                idle: Mutex::new(vec![false; sched_workers]),
                steal_order: StealOrder::new(sched::mix64(steal_seed ^ (m as u64 + 1))),
            };
            let shared = Arc::new(SharedNode::new(Sched::Pool(pool), overload));

            for (w, (rx, deque)) in rxs.into_iter().zip(deques).enumerate() {
                let lane = WorkerLane {
                    rx,
                    label: labels[w],
                    index: w,
                    deque,
                };
                let mut ctx = NodeCtx::new_worker(
                    m,
                    workers,
                    sim.net().clone(),
                    lane,
                    registry.clone(),
                    sim.disks(m).to_vec(),
                    policy,
                    recorder.as_ref().map(|r| r.tracer_lane(m, w + 1)),
                    shared.clone(),
                );
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("oopp-machine-{m}-w{w}"))
                        .spawn(move || ctx.worker_loop())
                        .expect("spawn worker lane thread"),
                );
            }

            let mut ctx = NodeCtx::new_dispatcher(
                m,
                workers,
                sim.net().clone(),
                sim.take_inbox(m),
                registry.clone(),
                sim.disks(m).to_vec(),
                policy,
                recorder.as_ref().map(|r| r.tracer_lane(m, 0)),
                shared,
            );
            threads.push(
                std::thread::Builder::new()
                    .name(format!("oopp-machine-{m}"))
                    .spawn(move || ctx.serve_loop())
                    .expect("spawn machine thread"),
            );
        }

        let driver_id = workers;
        let mut driver_ctx = NodeCtx::new(
            driver_id,
            workers,
            sim.net().clone(),
            sim.take_inbox(driver_id),
            registry.clone(),
            sim.disks(driver_id).to_vec(),
            policy,
            recorder.as_ref().map(|r| r.tracer_lane(driver_id, 0)),
            // The driver endpoint serves no objects: the default caps are
            // irrelevant there, but keep one config for the whole cluster.
            overload,
        );

        // The cluster name service root lives on machine 0 (§5 symbolic
        // addresses resolve against it). In sharded mode the root only
        // holds the reserved `_dirsvc` seats; user names live in the
        // shards, created round-robin across the workers and seated in
        // the root so clients can locate them (DESIGN.md §14).
        let root_dir =
            DirectoryClient::new_on(&mut driver_ctx, 0).expect("create cluster directory");
        let root = root_dir.obj_ref();
        let directory = if dir_shards == 0 {
            NameService::classic(root)
        } else {
            for i in 0..dir_shards {
                let shard = DirShardClient::new_on(
                    &mut driver_ctx,
                    i as usize % workers,
                    i as u64,
                    dir_shards as u64,
                )
                .expect("create directory shard");
                root_dir
                    .bind(&mut driver_ctx, shard_addr(i), shard.obj_ref())
                    .expect("seat directory shard");
            }
            NameService::sharded(root, dir_shards)
        };

        let cluster = Cluster {
            sim,
            threads,
            workers,
            driver_id,
            recorder,
        };
        let driver = Driver {
            ctx: driver_ctx,
            directory,
        };
        (cluster, driver)
    }
}

/// A running oopp cluster: the simulated machines and their serve threads.
pub struct Cluster {
    sim: SimCluster,
    threads: Vec<JoinHandle<()>>,
    workers: usize,
    driver_id: MachineId,
    recorder: Option<Arc<Recorder>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("workers", &self.workers)
            .finish()
    }
}

impl Cluster {
    /// Number of worker machines.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The underlying substrate (disks, metrics, topology).
    pub fn sim(&self) -> &SimCluster {
        &self.sim
    }

    /// Substrate counters (messages, bytes, disk activity).
    pub fn metrics(&self) -> &Arc<Metrics> {
        self.sim.metrics()
    }

    /// Snapshot the substrate counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.sim.snapshot()
    }

    /// The flight recorder, when the cluster was built with
    /// [`ClusterBuilder::tracing`]. Clone the `Arc` out *before* calling
    /// [`shutdown`](Cluster::shutdown) (which consumes the cluster), then
    /// [`merge`](Recorder::merge) *after* it — the rings are only safe to
    /// read once the machine threads have joined.
    pub fn recorder(&self) -> Option<Arc<Recorder>> {
        self.recorder.clone()
    }

    /// Stop every machine and join its thread. The driver is consumed: a
    /// cluster without machines has nothing left to talk to.
    pub fn shutdown(mut self, mut driver: Driver) {
        for m in 0..self.workers {
            // A machine stuck in a deadlocked dispatch can miss the
            // shutdown; best effort, the join below still bounds cleanup.
            let _ = driver.ctx.shutdown_machine(m);
        }
        drop(driver);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    fn emergency_shutdown(&mut self) {
        // Fire shutdown frames directly into the fabric (no driver context
        // needed; replies land nowhere, which is fine).
        for m in 0..self.workers {
            let frame = Frame::Request {
                req_id: u64::MAX,
                reply_to: self.driver_id,
                target: crate::ids::DAEMON,
                payload: Bytes(crate::frame::DaemonCall::Shutdown.encode()),
                trace: TraceCtx::default(),
                epoch: 0,
                rs_epoch: 0.into(),
                deadline: 0,
            };
            let _ = self
                .sim
                .net()
                .send(self.driver_id, m, wire::to_bytes(&frame));
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.emergency_shutdown();
        }
    }
}

/// The driver program's context — the paper's code "executed on machine 0".
///
/// Dereferences to [`NodeCtx`], so every client stub and lifecycle method is
/// available directly: `FooClient::new_on(&mut driver, machine, ...)`.
pub struct Driver {
    ctx: NodeCtx,
    directory: NameService,
}

impl std::fmt::Debug for Driver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Driver")
            .field("machine", &self.ctx.machine())
            .finish()
    }
}

impl Driver {
    /// The cluster name service (§5 symbolic addresses): the classic
    /// single directory, or the sharded control plane when the cluster
    /// was built with [`ClusterBuilder::dir_shards`].
    pub fn directory(&self) -> NameService {
        self.directory
    }
}

impl Deref for Driver {
    type Target = NodeCtx;
    fn deref(&self) -> &NodeCtx {
        &self.ctx
    }
}

impl DerefMut for Driver {
    fn deref_mut(&mut self) -> &mut NodeCtx {
        &mut self.ctx
    }
}
