//! Flight recorder: causal RMI tracing and per-call latency accounting.
//!
//! The paper's claims are statements about communication structure — how
//! many messages a construct costs, where time is spent between "issue the
//! remote instruction" and "instruction complete". The counters in
//! [`NodeStats`](crate::frame::NodeStats) aggregate that structure away;
//! the flight recorder keeps it. Every call attempt leaves a trail of
//! [`SpanEvent`]s — queued, sent, dispatched, replied, plus retransmits and
//! dedup verdicts — in a per-machine lock-free ring, stamped by a cluster
//! wide [`simnet::TraceClock`]. At teardown the rings merge
//! into a [`Trace`] that can answer causal questions ("which original send
//! does this retransmit belong to?"), render per-method latency statistics
//! ([`MethodStats`]), and export Chrome/Perfetto `trace_event` JSON.
//!
//! ## The trace contract
//!
//! Each outbound call is one **span**. The client allocates the span id
//! (machine-prefixed, cluster-unique, never 0) and sends it inside the
//! request frame as a [`TraceCtx`]; the server stamps its own events with
//! the same id, so client and server halves of one call join on `span`.
//! Nested calls — a dispatched method issuing its own RMI — inherit the
//! serving request's `trace_id` and record the serving span as
//! `parent_span`, producing the causal tree of an entire top-level
//! operation under one `trace_id`. Root calls start a fresh trace whose id
//! is the root span's id.
//!
//! Tracing off (the default) costs two zero bytes per request frame and
//! one branch per event site.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simnet::{MachineId, TraceClock};
use wire::{wire_struct, V64};

/// Per-call trace identity carried in every request frame.
///
/// Both fields travel as varints: an untraced frame (`trace_id == span ==
/// 0`) pays two bytes. `span` is the id of *this* call's span, allocated by
/// the caller; `trace_id` groups every span of one top-level operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Id of the top-level operation this call belongs to (0 = untraced).
    pub trace_id: V64,
    /// Id of this call's span, allocated by the caller (0 = untraced).
    pub span: V64,
}

wire_struct!(TraceCtx { trace_id, span });

impl TraceCtx {
    /// True when this frame carries no trace identity.
    pub fn is_empty(&self) -> bool {
        self.span.0 == 0
    }
}

/// What happened at one point of a call's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Client encoded and transmitted the first copy of a request.
    ClientSend,
    /// Client retransmitted the identical frame after a reply window lapsed.
    ClientRetransmit,
    /// Client consumed the reply; the span is complete.
    ClientRecv,
    /// Server admitted a first-sighting request for execution.
    ServerAdmitNew,
    /// Server dropped a duplicate whose original is still in flight.
    ServerAdmitInFlight,
    /// Server replayed a cached response for an already-executed duplicate.
    ServerAdmitDone,
    /// Server parked the request because its target object was busy.
    ServerDefer,
    /// Server began executing the method body.
    ServerDispatch,
    /// Server transmitted the response.
    ServerReply,
    /// Client chased a forwarding stub: a reply said the target object had
    /// migrated, and the engine re-issued the same request (same `req_id`)
    /// at the object's new address.
    ClientForward,
    /// Migration coordinator started moving an object (quiesce requested).
    MigrateBegin,
    /// Source quiesced and snapshotted; state is in flight to the target.
    MigrateTransfer,
    /// Target activated the object; forward installed at the old address.
    MigrateCommit,
    /// The move failed mid-flight; the object was restored at the source
    /// under its original identity.
    MigrateRollback,
    /// Failure detector crossed its suspect threshold for a machine (the
    /// `peer` field). `bytes` carries the phi value ×1000.
    SuspectRaised,
    /// Failure detector declared a machine (`peer`) dead; recovery starts.
    MachineDeclaredDead,
    /// Supervisor reactivated one lost object onto a survivor (`peer`).
    /// `bytes` carries the recovery's MTTR in microseconds, so E11's
    /// per-recovery tables come straight from the trace.
    ObjectReactivated,
    /// A machine previously declared dead heartbeated again — the
    /// suspicion was false. `peer` is the resurrected machine.
    FalseSuspicion,
    /// A read replica served a read verb under a live coherence lease.
    ReplicaHit,
    /// A read replica refused a read: lease expired or the caller's
    /// replica-set epoch was ahead. The caller falls back to the primary.
    ReplicaStale,
    /// The primary pushed post-write state to one replica (`peer` is the
    /// replica's machine; `bytes` is the snapshot size).
    ReplicaSync,
    /// The client engine redirected a read from a failed/stale replica to
    /// the primary, reusing the same request id.
    ReplicaFallback,
    /// A replica was promoted to primary after the old primary's machine
    /// died (`peer` is the machine that now hosts the primary).
    ReplicaPromote,
    /// The replica manager grew or shrank an object's replica set
    /// (`bytes` carries the new replica count).
    ReplicaScale,
    /// Server rejected a request at admission: mailbox cap or machine
    /// in-flight budget exceeded (`bytes` carries the observed queue
    /// depth). The request was never queued.
    ServerShed,
    /// Server shed an admitted request at execution time because its
    /// queue sojourn exceeded the CoDel target (`bytes` carries the
    /// sojourn in microseconds).
    ServerSojournDrop,
    /// Server dropped a request whose propagated deadline had expired —
    /// at admission or at execution time (`bytes` carries the overshoot
    /// in microseconds). The work did not run.
    ServerDeadlineDrop,
    /// A client-side circuit breaker tripped open for a destination
    /// machine (`peer`) after consecutive overload-class failures.
    BreakerOpen,
    /// The breaker's cooldown lapsed; the next call to `peer` is the
    /// half-open trial.
    BreakerHalfOpen,
    /// A half-open trial succeeded; the breaker for `peer` closed.
    BreakerClose,
    /// A call failed fast against an open breaker — no frame was sent
    /// (`peer` is the destination machine).
    ClientFastFail,
}

impl EventKind {
    /// Short stable label used in exports and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::ClientSend => "send",
            EventKind::ClientRetransmit => "retransmit",
            EventKind::ClientRecv => "recv",
            EventKind::ServerAdmitNew => "admit_new",
            EventKind::ServerAdmitInFlight => "admit_in_flight",
            EventKind::ServerAdmitDone => "admit_done",
            EventKind::ServerDefer => "defer",
            EventKind::ServerDispatch => "dispatch",
            EventKind::ServerReply => "reply",
            EventKind::ClientForward => "forward",
            EventKind::MigrateBegin => "migrate_begin",
            EventKind::MigrateTransfer => "migrate_transfer",
            EventKind::MigrateCommit => "migrate_commit",
            EventKind::MigrateRollback => "migrate_rollback",
            EventKind::SuspectRaised => "suspect_raised",
            EventKind::MachineDeclaredDead => "machine_dead",
            EventKind::ObjectReactivated => "object_reactivated",
            EventKind::FalseSuspicion => "false_suspicion",
            EventKind::ReplicaHit => "replica_hit",
            EventKind::ReplicaStale => "replica_stale",
            EventKind::ReplicaSync => "replica_sync",
            EventKind::ReplicaFallback => "replica_fallback",
            EventKind::ReplicaPromote => "replica_promote",
            EventKind::ReplicaScale => "replica_scale",
            EventKind::ServerShed => "shed",
            EventKind::ServerSojournDrop => "sojourn_drop",
            EventKind::ServerDeadlineDrop => "deadline_drop",
            EventKind::BreakerOpen => "breaker_open",
            EventKind::BreakerHalfOpen => "breaker_half_open",
            EventKind::BreakerClose => "breaker_close",
            EventKind::ClientFastFail => "fast_fail",
        }
    }

    /// True for the coordinator-side migration lifecycle markers. They are
    /// root events of their own span — no `ClientSend` precedes them — so
    /// causal checks treat them as origins, not orphans.
    pub fn is_migration_marker(&self) -> bool {
        matches!(
            self,
            EventKind::MigrateBegin
                | EventKind::MigrateTransfer
                | EventKind::MigrateCommit
                | EventKind::MigrateRollback
        )
    }

    /// True for the supervisor-side lifecycle markers (suspicion, death,
    /// reactivation). Like migration markers they are root events — causal
    /// checks treat them as origins.
    pub fn is_supervision_marker(&self) -> bool {
        matches!(
            self,
            EventKind::SuspectRaised
                | EventKind::MachineDeclaredDead
                | EventKind::ObjectReactivated
                | EventKind::FalseSuspicion
        )
    }

    /// True for the replication lifecycle markers. `ReplicaHit` and
    /// `ReplicaStale` ride on a real request span, but sync, fallback,
    /// promote, and scale are root events of their own span (recorded by
    /// the primary or the replica manager, with no `ClientSend`), so
    /// causal checks treat the whole family as origins.
    pub fn is_replica_marker(&self) -> bool {
        matches!(
            self,
            EventKind::ReplicaHit
                | EventKind::ReplicaStale
                | EventKind::ReplicaSync
                | EventKind::ReplicaFallback
                | EventKind::ReplicaPromote
                | EventKind::ReplicaScale
        )
    }

    /// True for the overload lifecycle markers (DESIGN.md §15).
    /// `ServerShed`, `ServerSojournDrop`, and `ServerDeadlineDrop` ride on
    /// a real request span, but the breaker transitions and `ClientFastFail`
    /// are recorded by the *caller's* engine without ever sending a frame —
    /// no `ClientSend` precedes them — so causal checks treat the family
    /// as origins.
    pub fn is_overload_marker(&self) -> bool {
        matches!(
            self,
            EventKind::ServerShed
                | EventKind::ServerSojournDrop
                | EventKind::ServerDeadlineDrop
                | EventKind::BreakerOpen
                | EventKind::BreakerHalfOpen
                | EventKind::BreakerClose
                | EventKind::ClientFastFail
        )
    }
}

/// One recorded point in a call's lifecycle.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Nanoseconds since the cluster's trace epoch.
    pub at_nanos: u64,
    /// Lifecycle point.
    pub kind: EventKind,
    /// Machine that recorded the event.
    pub machine: MachineId,
    /// Scheduler lane that recorded the event: 0 for the dispatcher (and
    /// for single-threaded machines), `w + 1` for pool worker `w`.
    pub worker: u32,
    /// The other endpoint: target machine for client events, `reply_to`
    /// for server events.
    pub peer: MachineId,
    /// Top-level operation id.
    pub trace_id: u64,
    /// This call's span id (joins client and server halves).
    pub span_id: u64,
    /// Span of the serving request that issued this call (0 = root).
    pub parent_span: u64,
    /// Caller-chosen correlation id (unique per caller, not cluster-wide).
    pub req_id: u64,
    /// 1-based attempt number for client events, 0 for server events.
    pub attempt: u32,
    /// Frame bytes on the wire for send/retransmit/recv/reply, 0 otherwise.
    pub bytes: u32,
    /// Method name (`Arc` so retransmits clone a pointer, not a string).
    pub method: Arc<str>,
}

/// Default per-machine ring capacity (events). At ~100 bytes per event a
/// machine's ring tops out around 3 MB; longer runs wrap, and the merge
/// reports how many events were overwritten.
pub const DEFAULT_TRACE_CAPACITY: usize = 32_768;

/// A lock-free single-producer ring of [`SpanEvent`]s.
///
/// ## Safety contract
///
/// Exactly one thread — the owning machine's engine — calls
/// [`record`](SpanRing::record); the runtime hands each machine its own
/// ring. [`drain`](SpanRing::drain) must only run after the producer has
/// quiesced (the machine thread is joined, or the driver context dropped):
/// the `Release` store in `record` paired with the `Acquire` load in
/// `drain` then makes every slot write visible. The runtime upholds this by
/// merging at cluster teardown.
pub struct SpanRing {
    slots: Box<[UnsafeCell<Option<SpanEvent>>]>,
    /// Total events ever recorded (not clamped to capacity).
    head: AtomicU64,
}

// SAFETY: slots are only written by the single producer and only read
// after it quiesces (see the struct-level contract above).
unsafe impl Sync for SpanRing {}
unsafe impl Send for SpanRing {}

impl SpanRing {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a trace ring needs at least one slot");
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpanRing {
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Append an event, overwriting the oldest once full. Producer-only.
    pub fn record(&self, ev: SpanEvent) {
        let h = self.head.load(Ordering::Relaxed);
        let idx = (h % self.slots.len() as u64) as usize;
        // SAFETY: single producer (struct contract); no reader runs
        // concurrently with this write.
        unsafe { *self.slots[idx].get() = Some(ev) };
        self.head.store(h + 1, Ordering::Release);
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Copy out the retained events, oldest first. Only safe to call after
    /// the producer has quiesced (struct contract).
    pub fn drain(&self) -> Vec<SpanEvent> {
        let h = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let retained = h.min(cap);
        let mut out = Vec::with_capacity(retained as usize);
        for i in (h - retained)..h {
            let idx = (i % cap) as usize;
            // SAFETY: producer quiesced; Acquire pairs with its Release.
            if let Some(ev) = unsafe { (*self.slots[idx].get()).clone() } {
                out.push(ev);
            }
        }
        out
    }
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

/// One lane's handle into the recorder: its ring plus the shared clock.
/// Each scheduler lane of a machine gets its **own** ring (the ring is
/// single-producer), all stamped with the machine's id plus the lane number.
#[derive(Clone)]
pub struct Tracer {
    machine: MachineId,
    worker: u32,
    clock: TraceClock,
    ring: Arc<SpanRing>,
}

impl Tracer {
    /// Current trace time in nanoseconds since the cluster epoch.
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Record one event, stamped with the current trace time and this
    /// machine's id.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        kind: EventKind,
        peer: MachineId,
        trace_id: u64,
        span_id: u64,
        parent_span: u64,
        req_id: u64,
        attempt: u32,
        bytes: u32,
        method: Arc<str>,
    ) {
        self.ring.record(SpanEvent {
            at_nanos: self.clock.now_nanos(),
            kind,
            machine: self.machine,
            worker: self.worker,
            peer,
            trace_id,
            span_id,
            parent_span,
            req_id,
            attempt,
            bytes,
            method,
        });
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("machine", &self.machine)
            .finish()
    }
}

/// The cluster-wide flight recorder: one ring per machine, one clock.
///
/// Built by the runtime when tracing is enabled
/// ([`ClusterBuilder::tracing`](crate::ClusterBuilder::tracing)); clone the
/// `Arc` out of [`Cluster::recorder`](crate::Cluster::recorder) *before*
/// shutdown, then call [`merge`](Recorder::merge) *after* it — the rings'
/// safety contract requires the machine threads to be joined first.
#[derive(Debug)]
pub struct Recorder {
    clock: TraceClock,
    /// One ring per lane, laid out `machine * lanes + lane`.
    rings: Vec<Arc<SpanRing>>,
    /// Rings per machine: 1 for single-threaded machines, `sched_workers + 1`
    /// when an execution pool is attached (lane 0 is the dispatcher).
    lanes: usize,
}

impl Recorder {
    /// A recorder for `machines` endpoints (workers + driver), each with a
    /// ring of `capacity` events.
    pub fn new(machines: usize, capacity: usize) -> Self {
        Self::with_clock(machines, capacity, TraceClock::new())
    }

    /// A recorder stamping events from `clock` — pass a
    /// [`TraceClock::from_clock`] handle so virtual-time runs record virtual
    /// nanos and replay byte-for-byte.
    pub fn with_clock(machines: usize, capacity: usize, clock: TraceClock) -> Self {
        Self::with_lanes(machines, 1, capacity, clock)
    }

    /// A recorder for machines running `lanes` scheduler lanes each
    /// (dispatcher + pool workers). Every lane records into its own
    /// single-producer ring.
    pub fn with_lanes(machines: usize, lanes: usize, capacity: usize, clock: TraceClock) -> Self {
        assert!(lanes > 0, "a machine has at least its dispatcher lane");
        let rings = (0..machines * lanes)
            .map(|_| Arc::new(SpanRing::new(capacity)))
            .collect();
        Recorder {
            clock,
            rings,
            lanes,
        }
    }

    /// The handle machine `m` records through (its dispatcher lane).
    pub fn tracer(&self, machine: MachineId) -> Tracer {
        self.tracer_lane(machine, 0)
    }

    /// The handle lane `lane` of machine `m` records through. Lane 0 is the
    /// dispatcher; pool worker `w` is lane `w + 1`.
    pub fn tracer_lane(&self, machine: MachineId, lane: usize) -> Tracer {
        assert!(lane < self.lanes, "lane {lane} out of range");
        Tracer {
            machine,
            worker: lane as u32,
            clock: self.clock.clone(),
            ring: self.rings[machine * self.lanes + lane].clone(),
        }
    }

    /// Merge every lane's retained events into one time-ordered
    /// [`Trace`]. Only call after the producers quiesced (post-shutdown).
    pub fn merge(&self) -> Trace {
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for ring in &self.rings {
            let retained = ring.drain();
            dropped += ring.recorded() - retained.len() as u64;
            events.extend(retained);
        }
        events.sort_by_key(|e| (e.at_nanos, e.machine, e.worker, e.span_id));
        Trace { events, dropped }
    }
}

/// Per-method latency and traffic accounting, derived from a [`Trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct MethodStats {
    /// Method name.
    pub method: String,
    /// Completed client spans (send … recv matched).
    pub calls: u64,
    /// Wire transmissions: first sends plus retransmits.
    pub attempts: u64,
    /// Retransmissions alone.
    pub retransmits: u64,
    /// Duplicate admissions observed server-side (replayed + suppressed).
    pub dups: u64,
    /// Median client latency (send → recv), microseconds.
    pub p50_micros: u64,
    /// 99th-percentile client latency, microseconds.
    pub p99_micros: u64,
    /// Mean server queue time (admit → dispatch), microseconds.
    pub queue_micros: u64,
    /// Mean server service time (dispatch → reply), microseconds.
    pub service_micros: u64,
    /// Request bytes put on the wire (including retransmits).
    pub bytes_out: u64,
    /// Response bytes received by clients.
    pub bytes_in: u64,
}

/// The merged, time-ordered record of a traced run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Every retained event, ordered by timestamp.
    pub events: Vec<SpanEvent>,
    /// Events lost to ring wrap-around (0 unless a ring overflowed).
    pub dropped: u64,
}

impl Trace {
    /// Events of one kind.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Client retransmissions across all machines.
    pub fn retransmits(&self) -> usize {
        self.count(EventKind::ClientRetransmit)
    }

    /// Causal-integrity check: every retransmit and server event must
    /// belong to a span that recorded a `ClientSend`, and parent spans must
    /// exist. Returns human-readable violations (empty = sound).
    pub fn causal_violations(&self) -> Vec<String> {
        use std::collections::HashSet;
        let sends: HashSet<u64> = self
            .events
            .iter()
            .filter(|e| e.kind == EventKind::ClientSend)
            .map(|e| e.span_id)
            .collect();
        let known: HashSet<u64> = self.events.iter().map(|e| e.span_id).collect();
        let mut violations = Vec::new();
        for e in &self.events {
            if e.kind != EventKind::ClientSend
                && !e.kind.is_migration_marker()
                && !e.kind.is_supervision_marker()
                && !e.kind.is_replica_marker()
                && !e.kind.is_overload_marker()
                && !sends.contains(&e.span_id)
            {
                violations.push(format!(
                    "{} for span {:#x} ({}) has no originating send",
                    e.kind.label(),
                    e.span_id,
                    e.method
                ));
            }
            if e.parent_span != 0 && !known.contains(&e.parent_span) {
                violations.push(format!(
                    "span {:#x} ({}) names unknown parent {:#x}",
                    e.span_id, e.method, e.parent_span
                ));
            }
        }
        violations
    }

    /// Timestamp-free shape of the run: one tuple per event, ordered by
    /// span then lifecycle, for comparing deterministic replays. Two runs
    /// under the same seed and workload must produce equal structures even
    /// though wall-clock timings differ.
    pub fn structure(&self) -> Vec<(u64, &'static str, String, bool)> {
        let mut shape: Vec<_> = self
            .events
            .iter()
            .map(|e| {
                (
                    e.span_id,
                    e.kind.label(),
                    e.method.to_string(),
                    e.parent_span != 0,
                )
            })
            .collect();
        shape.sort();
        shape
    }

    /// Per-method statistics, sorted by method name.
    pub fn method_stats(&self) -> Vec<MethodStats> {
        use std::collections::HashMap;

        #[derive(Default)]
        struct Acc {
            calls: u64,
            attempts: u64,
            retransmits: u64,
            dups: u64,
            latencies: Vec<u64>,
            queue_total: u64,
            queue_n: u64,
            service_total: u64,
            service_n: u64,
            bytes_out: u64,
            bytes_in: u64,
        }

        // span → timestamps of its lifecycle points.
        let mut send_at: HashMap<u64, u64> = HashMap::new();
        let mut admit_at: HashMap<u64, u64> = HashMap::new();
        let mut dispatch_at: HashMap<u64, u64> = HashMap::new();
        let mut acc: HashMap<&str, Acc> = HashMap::new();

        for e in &self.events {
            let a = acc.entry(&e.method).or_default();
            match e.kind {
                EventKind::ClientSend => {
                    a.attempts += 1;
                    a.bytes_out += e.bytes as u64;
                    send_at.insert(e.span_id, e.at_nanos);
                }
                EventKind::ClientRetransmit => {
                    a.attempts += 1;
                    a.retransmits += 1;
                    a.bytes_out += e.bytes as u64;
                }
                EventKind::ClientRecv => {
                    a.bytes_in += e.bytes as u64;
                    if let Some(&s) = send_at.get(&e.span_id) {
                        a.calls += 1;
                        a.latencies.push(e.at_nanos.saturating_sub(s));
                    }
                }
                EventKind::ServerAdmitNew => {
                    admit_at.insert(e.span_id, e.at_nanos);
                }
                EventKind::ServerAdmitInFlight | EventKind::ServerAdmitDone => {
                    a.dups += 1;
                }
                EventKind::ServerDefer => {}
                EventKind::ServerDispatch => {
                    dispatch_at.insert(e.span_id, e.at_nanos);
                    if let Some(&adm) = admit_at.get(&e.span_id) {
                        a.queue_total += e.at_nanos.saturating_sub(adm);
                        a.queue_n += 1;
                    }
                }
                EventKind::ServerReply => {
                    if let Some(&d) = dispatch_at.get(&e.span_id) {
                        a.service_total += e.at_nanos.saturating_sub(d);
                        a.service_n += 1;
                    }
                }
                // A chase is another transmission of the same request (the
                // span's latency already spans it: send … recv).
                EventKind::ClientForward => {
                    a.attempts += 1;
                    a.bytes_out += e.bytes as u64;
                }
                EventKind::MigrateBegin
                | EventKind::MigrateTransfer
                | EventKind::MigrateCommit
                | EventKind::MigrateRollback
                | EventKind::SuspectRaised
                | EventKind::MachineDeclaredDead
                | EventKind::ObjectReactivated
                | EventKind::FalseSuspicion
                | EventKind::ReplicaHit
                | EventKind::ReplicaStale
                | EventKind::ReplicaSync
                | EventKind::ReplicaFallback
                | EventKind::ReplicaPromote
                | EventKind::ReplicaScale
                | EventKind::ServerShed
                | EventKind::ServerSojournDrop
                | EventKind::ServerDeadlineDrop
                | EventKind::BreakerOpen
                | EventKind::BreakerHalfOpen
                | EventKind::BreakerClose
                | EventKind::ClientFastFail => {}
            }
        }

        let mut out: Vec<MethodStats> = acc
            .into_iter()
            .map(|(method, mut a)| {
                a.latencies.sort_unstable();
                let pct = |p: usize| -> u64 {
                    if a.latencies.is_empty() {
                        0
                    } else {
                        let idx = (a.latencies.len() - 1) * p / 100;
                        a.latencies[idx] / 1_000
                    }
                };
                MethodStats {
                    method: method.to_string(),
                    calls: a.calls,
                    attempts: a.attempts,
                    retransmits: a.retransmits,
                    dups: a.dups,
                    p50_micros: pct(50),
                    p99_micros: pct(99),
                    queue_micros: a.queue_total.checked_div(a.queue_n).unwrap_or(0) / 1_000,
                    service_micros: a.service_total.checked_div(a.service_n).unwrap_or(0) / 1_000,
                    bytes_out: a.bytes_out,
                    bytes_in: a.bytes_in,
                }
            })
            .collect();
        out.sort_by(|x, y| x.method.cmp(&y.method));
        out
    }

    /// Export as Chrome/Perfetto `trace_event` JSON (load in `ui.perfetto.dev`
    /// or `chrome://tracing`).
    ///
    /// * Completed client spans become `"X"` (complete) events on the
    ///   caller's track, send → recv.
    /// * Server executions become `"X"` events on the server's track,
    ///   dispatch → reply.
    /// * Retransmits, dedup verdicts, and deferrals become `"i"` (instant)
    ///   events.
    ///
    /// Timestamps are microseconds with nanosecond fractions; `pid` is the
    /// machine id; `args` carry the causal identity (`trace_id`, `span`,
    /// `parent_span`, `req_id`).
    pub fn to_chrome_json(&self) -> String {
        use std::collections::HashMap;
        let mut out = String::with_capacity(self.events.len() * 160 + 64);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;

        let mut emit = |out: &mut String, body: &str| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str(body);
        };

        // span → (send event index) and (dispatch event index) for pairing.
        let mut open_send: HashMap<u64, &SpanEvent> = HashMap::new();
        let mut open_dispatch: HashMap<u64, &SpanEvent> = HashMap::new();

        for e in &self.events {
            match e.kind {
                EventKind::ClientSend => {
                    open_send.insert(e.span_id, e);
                }
                EventKind::ServerDispatch => {
                    open_dispatch.insert(e.span_id, e);
                }
                EventKind::ClientRecv => {
                    if let Some(s) = open_send.remove(&e.span_id) {
                        let body = format!(
                            "{{\"name\":{},\"cat\":\"rmi\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                             \"pid\":{},\"tid\":{},\"args\":{{\"trace_id\":{},\"span\":{},\
                             \"parent_span\":{},\"req_id\":{},\"server\":{},\"attempts\":{}}}}}",
                            json_string(&s.method),
                            micros(s.at_nanos),
                            micros(e.at_nanos.saturating_sub(s.at_nanos)),
                            s.machine,
                            s.worker,
                            s.trace_id,
                            s.span_id,
                            s.parent_span,
                            s.req_id,
                            s.peer,
                            e.attempt,
                        );
                        emit(&mut out, &body);
                    }
                }
                EventKind::ServerReply => {
                    if let Some(d) = open_dispatch.remove(&e.span_id) {
                        let body = format!(
                            "{{\"name\":{},\"cat\":\"serve\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                             \"pid\":{},\"tid\":{},\"args\":{{\"trace_id\":{},\"span\":{},\
                             \"parent_span\":{},\"req_id\":{},\"client\":{}}}}}",
                            json_string(&d.method),
                            micros(d.at_nanos),
                            micros(e.at_nanos.saturating_sub(d.at_nanos)),
                            d.machine,
                            d.worker,
                            d.trace_id,
                            d.span_id,
                            d.parent_span,
                            d.req_id,
                            d.peer,
                        );
                        emit(&mut out, &body);
                    }
                }
                EventKind::ClientRetransmit
                | EventKind::ServerAdmitInFlight
                | EventKind::ServerAdmitDone
                | EventKind::ServerDefer
                | EventKind::ClientForward => {
                    let name = format!("{}:{}", e.kind.label(), e.method);
                    let body = format!(
                        "{{\"name\":{},\"cat\":\"reliability\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"trace_id\":{},\
                         \"span\":{},\"req_id\":{},\"attempt\":{}}}}}",
                        json_string(&name),
                        micros(e.at_nanos),
                        e.machine,
                        e.worker,
                        e.trace_id,
                        e.span_id,
                        e.req_id,
                        e.attempt,
                    );
                    emit(&mut out, &body);
                }
                EventKind::MigrateBegin
                | EventKind::MigrateTransfer
                | EventKind::MigrateCommit
                | EventKind::MigrateRollback => {
                    let name = format!("{}:{}", e.kind.label(), e.method);
                    let body = format!(
                        "{{\"name\":{},\"cat\":\"placement\",\"ph\":\"i\",\"s\":\"p\",\
                         \"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"trace_id\":{},\
                         \"span\":{},\"target\":{},\"bytes\":{}}}}}",
                        json_string(&name),
                        micros(e.at_nanos),
                        e.machine,
                        e.worker,
                        e.trace_id,
                        e.span_id,
                        e.peer,
                        e.bytes,
                    );
                    emit(&mut out, &body);
                }
                EventKind::ReplicaHit
                | EventKind::ReplicaStale
                | EventKind::ReplicaSync
                | EventKind::ReplicaFallback
                | EventKind::ReplicaPromote
                | EventKind::ReplicaScale => {
                    // Replication instants in their own category so a
                    // timeline shows hits, invalidations, and failovers
                    // against the workload's calls.
                    let name = format!("{}:m{}", e.kind.label(), e.peer);
                    let body = format!(
                        "{{\"name\":{},\"cat\":\"replication\",\"ph\":\"i\",\"s\":\"p\",\
                         \"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"machine\":{},\
                         \"value\":{}}}}}",
                        json_string(&name),
                        micros(e.at_nanos),
                        e.machine,
                        e.worker,
                        e.peer,
                        e.bytes,
                    );
                    emit(&mut out, &body);
                }
                EventKind::SuspectRaised
                | EventKind::MachineDeclaredDead
                | EventKind::ObjectReactivated
                | EventKind::FalseSuspicion => {
                    // Process-scoped instants in their own category so a
                    // timeline shows detection and recovery against the
                    // workload's calls. `value` is the marker's scalar
                    // (phi ×1000 or MTTR µs).
                    let name = format!("{}:m{}", e.kind.label(), e.peer);
                    let body = format!(
                        "{{\"name\":{},\"cat\":\"supervision\",\"ph\":\"i\",\"s\":\"p\",\
                         \"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"machine\":{},\
                         \"value\":{}}}}}",
                        json_string(&name),
                        micros(e.at_nanos),
                        e.machine,
                        e.worker,
                        e.peer,
                        e.bytes,
                    );
                    emit(&mut out, &body);
                }
                EventKind::ServerShed
                | EventKind::ServerSojournDrop
                | EventKind::ServerDeadlineDrop
                | EventKind::BreakerOpen
                | EventKind::BreakerHalfOpen
                | EventKind::BreakerClose
                | EventKind::ClientFastFail => {
                    // Overload instants in their own category so a timeline
                    // shows sheds, deadline drops, and breaker transitions
                    // against the workload's calls. `value` is the marker's
                    // scalar (queue depth, sojourn/overshoot µs).
                    let name = format!("{}:m{}", e.kind.label(), e.peer);
                    let body = format!(
                        "{{\"name\":{},\"cat\":\"overload\",\"ph\":\"i\",\"s\":\"p\",\
                         \"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"machine\":{},\
                         \"value\":{}}}}}",
                        json_string(&name),
                        micros(e.at_nanos),
                        e.machine,
                        e.worker,
                        e.peer,
                        e.bytes,
                    );
                    emit(&mut out, &body);
                }
                EventKind::ServerAdmitNew => {}
            }
        }

        // Timed-out client spans never saw a recv; surface them as instants
        // rather than dropping them silently. (Sorted so the export is
        // byte-stable for a given trace.)
        let mut unanswered: Vec<_> = open_send.into_iter().collect();
        unanswered.sort_by_key(|(span, _)| *span);
        for (_, s) in unanswered {
            let name = format!("unanswered:{}", s.method);
            let body = format!(
                "{{\"name\":{},\"cat\":\"reliability\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"span\":{},\"req_id\":{}}}}}",
                json_string(&name),
                micros(s.at_nanos),
                s.machine,
                s.machine,
                s.span_id,
                s.req_id,
            );
            emit(&mut out, &body);
        }

        out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":");
        out.push_str(&self.dropped.to_string());
        out.push_str("}}");
        out
    }
}

/// Nanoseconds → microseconds with three decimals (Chrome `ts` is µs).
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

/// Minimal JSON string encoder for method names and labels.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, at: u64, span: u64, method: &str) -> SpanEvent {
        SpanEvent {
            at_nanos: at,
            kind,
            machine: 0,
            worker: 0,
            peer: 1,
            trace_id: span,
            span_id: span,
            parent_span: 0,
            req_id: span,
            attempt: 1,
            bytes: 10,
            method: method.into(),
        }
    }

    #[test]
    fn ring_retains_most_recent_events_after_wrap() {
        let ring = SpanRing::new(4);
        for i in 0..10u64 {
            ring.record(ev(EventKind::ClientSend, i, i, "m"));
        }
        let drained = ring.drain();
        assert_eq!(ring.recorded(), 10);
        assert_eq!(drained.len(), 4);
        let ats: Vec<u64> = drained.iter().map(|e| e.at_nanos).collect();
        assert_eq!(ats, vec![6, 7, 8, 9]);
    }

    #[test]
    fn recorder_merge_orders_events_and_counts_drops() {
        let rec = Recorder::new(2, 4);
        let t0 = rec.tracer(0);
        let t1 = rec.tracer(1);
        t0.record(EventKind::ClientSend, 1, 5, 5, 0, 5, 1, 10, "a".into());
        t1.record(EventKind::ServerDispatch, 0, 5, 5, 0, 5, 0, 0, "a".into());
        let trace = rec.merge();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped, 0);
        assert!(trace
            .events
            .windows(2)
            .all(|w| w[0].at_nanos <= w[1].at_nanos));
    }

    #[test]
    fn method_stats_compute_latency_and_attempts() {
        let t = Trace {
            events: vec![
                ev(EventKind::ClientSend, 1_000, 7, "get"),
                ev(EventKind::ServerAdmitNew, 2_000, 7, "get"),
                ev(EventKind::ServerDispatch, 3_000, 7, "get"),
                ev(EventKind::ServerReply, 5_000, 7, "get"),
                ev(EventKind::ClientRecv, 9_000, 7, "get"),
                ev(EventKind::ClientSend, 0, 8, "set"),
                ev(EventKind::ClientRetransmit, 500, 8, "set"),
                ev(EventKind::ClientRecv, 10_500, 8, "set"),
            ],
            dropped: 0,
        };
        let stats = t.method_stats();
        assert_eq!(stats.len(), 2);
        let get = &stats[0];
        assert_eq!(get.method, "get");
        assert_eq!(get.calls, 1);
        assert_eq!(get.attempts, 1);
        assert_eq!(get.p50_micros, 8); // 9_000 - 1_000 ns = 8 µs
        assert_eq!(get.queue_micros, 1);
        assert_eq!(get.service_micros, 2);
        let set = &stats[1];
        assert_eq!(set.retransmits, 1);
        assert_eq!(set.attempts, 2);
        assert_eq!(set.bytes_out, 20); // both transmissions count
        assert_eq!(set.p50_micros, 10);
    }

    #[test]
    fn causal_violations_catch_orphan_retransmits() {
        let sound = Trace {
            events: vec![
                ev(EventKind::ClientSend, 0, 1, "m"),
                ev(EventKind::ClientRetransmit, 1, 1, "m"),
            ],
            dropped: 0,
        };
        assert!(sound.causal_violations().is_empty());

        let orphan = Trace {
            events: vec![ev(EventKind::ClientRetransmit, 1, 2, "m")],
            dropped: 0,
        };
        assert_eq!(orphan.causal_violations().len(), 1);
    }

    #[test]
    fn chrome_export_is_balanced_json_with_expected_events() {
        let t = Trace {
            events: vec![
                ev(EventKind::ClientSend, 1_000, 7, "get\"x\""),
                ev(EventKind::ServerDispatch, 3_000, 7, "get\"x\""),
                ev(EventKind::ServerReply, 5_000, 7, "get\"x\""),
                ev(EventKind::ClientRecv, 9_000, 7, "get\"x\""),
                ev(EventKind::ClientRetransmit, 2_000, 7, "get\"x\""),
                ev(EventKind::ClientSend, 100, 9, "lost"),
            ],
            dropped: 3,
        };
        let json = t.to_chrome_json();
        // Structural sanity: balanced braces/brackets, no raw quotes leaked.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("retransmit:get\\\"x\\\""));
        assert!(json.contains("unanswered:lost"));
        assert!(json.contains("\"dropped_events\":3"));
        // Client complete span: 1µs start, 8µs duration.
        assert!(json.contains("\"ts\":1.000,\"dur\":8.000"));
    }

    #[test]
    fn migration_markers_are_causal_roots_and_export_as_instants() {
        let t = Trace {
            events: vec![
                ev(EventKind::MigrateBegin, 10, 100, "migrate"),
                ev(EventKind::MigrateTransfer, 20, 100, "migrate"),
                ev(EventKind::MigrateCommit, 30, 100, "migrate"),
                ev(EventKind::MigrateRollback, 40, 101, "migrate"),
            ],
            dropped: 0,
        };
        // Markers have no ClientSend; they must not read as orphans.
        assert!(
            t.causal_violations().is_empty(),
            "{:?}",
            t.causal_violations()
        );
        let json = t.to_chrome_json();
        assert!(json.contains("migrate_begin:migrate"));
        assert!(json.contains("migrate_rollback:migrate"));
        assert!(json.contains("\"cat\":\"placement\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn forward_chase_counts_as_an_attempt() {
        let t = Trace {
            events: vec![
                ev(EventKind::ClientSend, 0, 5, "get"),
                ev(EventKind::ClientForward, 100, 5, "get"),
                ev(EventKind::ClientRecv, 2_000, 5, "get"),
            ],
            dropped: 0,
        };
        assert!(t.causal_violations().is_empty());
        let stats = t.method_stats();
        assert_eq!(stats[0].attempts, 2);
        assert_eq!(stats[0].calls, 1);
        assert_eq!(stats[0].p50_micros, 2); // latency spans the chase
    }

    #[test]
    fn structure_is_timestamp_free() {
        let a = Trace {
            events: vec![
                ev(EventKind::ClientSend, 10, 1, "m"),
                ev(EventKind::ClientRecv, 20, 1, "m"),
            ],
            dropped: 0,
        };
        let b = Trace {
            events: vec![
                ev(EventKind::ClientRecv, 9_999, 1, "m"),
                ev(EventKind::ClientSend, 5, 1, "m"),
            ],
            dropped: 0,
        };
        assert_eq!(a.structure(), b.structure());
    }
}
