//! # oopp — Object-Oriented Parallel Programming
//!
//! A Rust implementation of the framework from *"Object-Oriented Parallel
//! Programming"* (E. Givelberg): **programming objects interpreted as
//! processes**. A parallel program is a collection of persistent processes
//! that communicate by executing remote methods; the protocol work the
//! paper assigns to a compiler is performed here by the
//! [`remote_class!`] macro, and the cluster of machines is simulated by the
//! [`simnet`] substrate (thread-per-machine with an explicit communication
//! cost model).
//!
//! ## The paper's constructs, mapped
//!
//! | Paper (§) | Here |
//! |---|---|
//! | `new(machine 1) PageDevice(...)` (§2) | `PageDeviceClient::new_on(&mut driver, 1, ...)` |
//! | remote method call, sequential semantics (§2) | `client.method(&mut ctx, args)` — blocks until complete |
//! | `new(machine 2) double[1024]`, `data[7] = 3.1415` (§2) | [`DoubleBlockClient`] `::new_on`, `.set`, `.get` |
//! | `delete ptr` terminates the process (§2) | `client.destroy(&mut ctx)` |
//! | process inheritance (§3) | `remote_class!(class Derived: Base { ... })` — name-based dispatch falls through to the base, so base-typed pointers work on derived objects |
//! | compiler loop-splitting (§4) | `client.method_async(...)` → [`Pending`], [`join`], [`ProcessGroup::par_each`] |
//! | `fft->barrier()` (§4) | [`BarrierClient`], [`ProcessGroup`] |
//! | persistent processes, symbolic addresses (§5) | [`NodeCtx::deactivate`]/[`NodeCtx::activate`], [`naming::Directory`] with `oopp://…` names |
//!
//! ## Quick start
//!
//! ```
//! use oopp::{ClusterBuilder, DoubleBlockClient};
//!
//! // "Multiple computers machine 0, machine 1, ... are available."
//! let (cluster, mut driver) = ClusterBuilder::new(3).build();
//!
//! // double *data = new(machine 2) double[1024];
//! let data = DoubleBlockClient::new_on(&mut driver, 2, 1024).unwrap();
//!
//! // data[7] = 3.1415;  double x = data[2];
//! data.set(&mut driver, 7, 3.1415).unwrap();
//! let x = data.get(&mut driver, 2).unwrap();
//! assert_eq!(x, 0.0);
//! assert_eq!(data.get(&mut driver, 7).unwrap(), 3.1415);
//!
//! // delete data;  -- destruction terminates the remote process
//! data.destroy(&mut driver).unwrap();
//! cluster.shutdown(driver);
//! ```

#[macro_use]
pub mod macros;

pub mod array;
pub(crate) mod dedup;
pub mod error;
pub mod frame;
pub mod future;
pub mod group;
pub mod ids;
pub mod naming;
pub mod node;
pub mod policy;
pub mod process;
pub mod runtime;
pub(crate) mod shared;
pub mod trace;

pub use array::{ByteBlock, ByteBlockClient, DoubleBlock, DoubleBlockClient};
pub use error::{RemoteError, RemoteResult};
pub use frame::{MigrationPayload, NodeStats, ReplicaStatus};
pub use future::{join, join_clients, Pending, PendingClient};
pub use group::{Barrier, BarrierClient, ProcessGroup};
pub use ids::{ObjRef, ObjectId, DAEMON};
pub use naming::{
    migrate_bound, resolve_or_activate, resolve_or_activate_supervised, shard_addr, shard_of_name,
    symbolic_addr, DirShard, DirShardClient, Directory, DirectoryClient, NameService,
    DIRSVC_PREFIX,
};
pub use node::{CallInfo, NodeCtx, DEFAULT_TIMEOUT};
pub use policy::{Backoff, BreakerConfig, CallPolicy, OverloadConfig, RetryBudgetConfig};
pub use process::{ClassRegistry, DispatchResult, RemoteClient, ServerClass, ServerObject};
pub use runtime::{Cluster, ClusterBuilder, Driver};
pub use trace::{
    EventKind, MethodStats, Recorder, SpanEvent, Trace, TraceCtx, DEFAULT_TRACE_CAPACITY,
};

// Re-exported for macro expansion and downstream convenience.
pub use paste;
pub use simnet;
pub use wire;

#[cfg(test)]
mod tests;
