//! The per-machine progress engine.
//!
//! Every machine in an oopp cluster runs one [`NodeCtx`]: a single-threaded
//! engine that **serves** requests addressed to its objects and **issues**
//! requests on behalf of the code currently running on it. The two roles
//! interleave: while an object's method is blocked waiting for a reply from
//! another machine (the paper's sequential RMI semantics), the engine keeps
//! serving incoming requests for *other* objects — the paper's processes
//! stay responsive.
//!
//! One process per object means calls to an object **serialize**: a request
//! arriving while its target is mid-dispatch is parked in a deferred queue
//! and served when the object is checked back in. A cycle of such waits
//! (A's method calls B while B's method calls A) is a genuine distributed
//! deadlock; the engine converts it into [`RemoteError::Timeout`] rather
//! than hanging forever.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::Receiver;
use simnet::{MachineId, Network, Packet, SimDisk};
use wire::collections::Bytes;
use wire::{Reader, Wire, Writer};

use crate::dedup::{DedupVerdict, DedupWindow};
use crate::error::{RemoteError, RemoteResult};
use crate::frame::{Frame, NodeStats};
use crate::future::{Pending, PendingClient};
use crate::ids::{ObjRef, ObjectId, DAEMON};
use crate::policy::CallPolicy;
use crate::process::{ClassRegistry, DispatchResult, RemoteClient, ServerClass, ServerObject};
use crate::trace::{EventKind, TraceCtx, Tracer};

/// Identity of an in-flight request, handed to objects that defer their
/// replies (see [`DispatchResult::NoReply`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallInfo {
    /// Correlation id chosen by the caller.
    pub req_id: u64,
    /// Machine the response must go to.
    pub reply_to: MachineId,
}

struct IncomingReq {
    req_id: u64,
    reply_to: MachineId,
    target: ObjectId,
    payload: Vec<u8>,
    /// Trace identity from the request frame (zeros when untraced).
    trace_id: u64,
    span: u64,
}

enum ServeOutcome {
    Served,
    Defer(IncomingReq),
}

/// Trace identity of one call, kept alongside the client's outstanding
/// entry (to stamp retransmit/recv events) and the server's serving table
/// (to stamp the reply event).
#[derive(Clone)]
struct CallTrace {
    trace_id: u64,
    span: u64,
    parent_span: u64,
    method: Arc<str>,
}

/// An issued request kept around for retransmission: the encoded frame is
/// resent verbatim (same `req_id`) when a reply window lapses, so the
/// server's dedup window can recognize the copy.
struct OutboundCall {
    target: ObjRef,
    bytes: Vec<u8>,
    /// Present only while tracing is on.
    trace: Option<CallTrace>,
}

#[derive(Default)]
struct Stats {
    calls_served: u64,
    calls_deferred: u64,
    calls_retried: u64,
    dup_replayed: u64,
    dup_suppressed: u64,
}

/// Default reply window. Long enough for heavily costed benchmark runs,
/// short enough that a deadlocked test fails rather than hangs.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// One machine's runtime state: its objects, its link to the fabric, and
/// the progress engine that serves and issues calls.
pub struct NodeCtx {
    machine: MachineId,
    workers: usize,
    net: Network,
    inbox: Receiver<Packet>,
    registry: Arc<ClassRegistry>,
    disks: Vec<Arc<SimDisk>>,
    objects: HashMap<ObjectId, Option<Box<dyn ServerObject>>>,
    deferred: VecDeque<IncomingReq>,
    replies: HashMap<u64, Result<Vec<u8>, RemoteError>>,
    snapshots: HashMap<String, (String, Vec<u8>)>,
    outstanding: HashMap<u64, OutboundCall>,
    dedup: DedupWindow,
    current_call: Option<CallInfo>,
    next_req_id: u64,
    next_obj_id: u64,
    alive: bool,
    policy: CallPolicy,
    stats: Stats,
    /// Flight recorder handle; `None` (the default) disables tracing.
    tracer: Option<Tracer>,
    /// Monotone counter behind span-id allocation (see `alloc_span`).
    next_span: u64,
    /// Trace identity of the request currently being dispatched, so calls
    /// issued from inside a method inherit its trace and parent span.
    current_trace: Option<(u64, u64)>,
    /// Traced requests admitted but not yet answered, keyed like the dedup
    /// window, so `send_response` can stamp the reply event.
    serving_spans: HashMap<(MachineId, u64), CallTrace>,
}

impl std::fmt::Debug for NodeCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeCtx")
            .field("machine", &self.machine)
            .field("objects", &self.objects.len())
            .field("deferred", &self.deferred.len())
            .finish()
    }
}

impl NodeCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        machine: MachineId,
        workers: usize,
        net: Network,
        inbox: Receiver<Packet>,
        registry: Arc<ClassRegistry>,
        disks: Vec<Arc<SimDisk>>,
        policy: CallPolicy,
        tracer: Option<Tracer>,
    ) -> Self {
        NodeCtx {
            machine,
            workers,
            net,
            inbox,
            registry,
            disks,
            objects: HashMap::new(),
            deferred: VecDeque::new(),
            replies: HashMap::new(),
            snapshots: HashMap::new(),
            outstanding: HashMap::new(),
            dedup: DedupWindow::default(),
            current_call: None,
            next_req_id: 1,
            next_obj_id: DAEMON + 1,
            alive: true,
            policy,
            stats: Stats::default(),
            tracer,
            next_span: 1,
            current_trace: None,
            serving_spans: HashMap::new(),
        }
    }

    /// Cluster-unique span id: machine-prefixed so two machines can never
    /// mint the same id, `machine + 1` so id 0 stays reserved for
    /// "untraced".
    fn alloc_span(&mut self) -> u64 {
        let span = ((self.machine as u64 + 1) << 48) | self.next_span;
        self.next_span += 1;
        span
    }

    // ------------------------------------------------------------------
    // Identity and hardware
    // ------------------------------------------------------------------

    /// This machine's id.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Number of worker machines (ids `0..workers()`). The driver program
    /// runs on the extra endpoint `workers()`.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total endpoints, workers plus driver.
    pub fn machines(&self) -> usize {
        self.workers + 1
    }

    /// Locally attached disks.
    pub fn disks(&self) -> &[Arc<SimDisk>] {
        &self.disks
    }

    /// One local disk handle.
    ///
    /// # Panics
    /// If `i` is out of range for this machine.
    pub fn disk(&self, i: usize) -> Arc<SimDisk> {
        self.disks[i].clone()
    }

    // ------------------------------------------------------------------
    // Issuing calls (client role)
    // ------------------------------------------------------------------

    /// Start a method call: encode `method` + arguments, send the request,
    /// return the correlation id without waiting.
    pub fn start_method_raw(
        &mut self,
        target: ObjRef,
        method: &str,
        encode_args: impl FnOnce(&mut Writer),
    ) -> RemoteResult<u64> {
        let mut w = Writer::new();
        w.put_len_prefixed(method.as_bytes());
        encode_args(&mut w);
        self.start_call_raw(target, method, w.into_bytes())
    }

    /// Typed async call: returns a [`Pending`] decodable as `Ret`.
    pub fn start_method<Ret: Wire>(
        &mut self,
        target: ObjRef,
        method: &str,
        encode_args: impl FnOnce(&mut Writer),
    ) -> RemoteResult<Pending<Ret>> {
        Ok(Pending::new(self.start_method_raw(target, method, encode_args)?))
    }

    /// Typed synchronous call — the paper's default sequential semantics:
    /// the instruction, and all communication associated with it, completes
    /// before this function returns.
    pub fn call_method<Ret: Wire>(
        &mut self,
        target: ObjRef,
        method: &str,
        encode_args: impl FnOnce(&mut Writer),
    ) -> RemoteResult<Ret> {
        let req_id = self.start_method_raw(target, method, encode_args)?;
        let bytes = self.wait_raw(req_id)?;
        Ok(wire::from_bytes(&bytes)?)
    }

    fn start_call_raw(
        &mut self,
        target: ObjRef,
        method: &str,
        payload: Vec<u8>,
    ) -> RemoteResult<u64> {
        if target.machine >= self.machines() {
            return Err(RemoteError::BadMachine {
                machine: target.machine,
                machines: self.machines(),
            });
        }
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        let call_trace = if self.tracer.is_some() {
            let span = self.alloc_span();
            // A call issued mid-dispatch belongs to the serving request's
            // trace; a root call (driver code) opens a trace named after
            // its own span.
            let (trace_id, parent_span) = match self.current_trace {
                Some((tid, serving)) => (tid, serving),
                None => (span, 0),
            };
            Some(CallTrace { trace_id, span, parent_span, method: method.into() })
        } else {
            None
        };
        let trace = call_trace
            .as_ref()
            .map(|t| TraceCtx { trace_id: t.trace_id.into(), span: t.span.into() })
            .unwrap_or_default();
        let frame = Frame::Request {
            req_id,
            reply_to: self.machine,
            target: target.object,
            payload: Bytes(payload),
            trace,
        };
        let bytes = wire::to_bytes(&frame);
        if let (Some(tracer), Some(t)) = (&self.tracer, &call_trace) {
            tracer.record(
                EventKind::ClientSend,
                target.machine,
                t.trace_id,
                t.span,
                t.parent_span,
                req_id,
                1,
                bytes.len() as u32,
                t.method.clone(),
            );
        }
        self.net
            .send(self.machine, target.machine, bytes.clone())
            .map_err(|_| RemoteError::Disconnected { machine: target.machine })?;
        // Kept for retransmission until the reply is consumed (or retries
        // are exhausted). On a lossy fabric the send above may silently
        // vanish; the stored frame is what wait_raw resends.
        self.outstanding
            .insert(req_id, OutboundCall { target, bytes, trace: call_trace });
        Ok(req_id)
    }

    /// The reliability policy applied by [`wait_raw`](NodeCtx::wait_raw).
    pub fn call_policy(&self) -> CallPolicy {
        self.policy
    }

    /// Replace the reliability policy. Takes effect for the next wait; a
    /// driver can tighten or relax it mid-program.
    pub fn set_call_policy(&mut self, policy: CallPolicy) {
        self.policy = policy;
    }

    /// Block until the reply for `req_id` arrives, serving incoming
    /// requests in the meantime (the re-entrant progress engine).
    ///
    /// Each attempt gets the policy's reply window. When one lapses and
    /// retries remain, the engine waits out the backoff delay — still
    /// serving — and retransmits the identical frame (same `req_id`; the
    /// server's dedup window guarantees at-most-once execution). When the
    /// budget is exhausted the call fails with an enriched
    /// [`RemoteError::Timeout`] naming the target and attempt count.
    pub fn wait_raw(&mut self, req_id: u64) -> RemoteResult<Vec<u8>> {
        let started = Instant::now();
        let mut attempts: u32 = 1;
        let mut deadline = started + self.policy.timeout;
        loop {
            if let Some(result) = self.replies.remove(&req_id) {
                let call = self.outstanding.remove(&req_id);
                if let (Some(tracer), Some(call)) = (&self.tracer, &call) {
                    if let Some(t) = &call.trace {
                        let bytes = result.as_ref().map(|b| b.len()).unwrap_or(0);
                        tracer.record(
                            EventKind::ClientRecv,
                            call.target.machine,
                            t.trace_id,
                            t.span,
                            t.parent_span,
                            req_id,
                            attempts,
                            bytes as u32,
                            t.method.clone(),
                        );
                    }
                }
                return result;
            }
            match self.inbox.recv_deadline(deadline) {
                Ok(pkt) => {
                    self.handle_packet(pkt);
                    self.drain_deferred();
                }
                Err(_) => {
                    if attempts > self.policy.max_retries {
                        let target = self
                            .outstanding
                            .remove(&req_id)
                            .map(|c| c.target)
                            .unwrap_or(ObjRef { machine: self.machine, object: DAEMON });
                        return Err(RemoteError::Timeout {
                            machine: target.machine,
                            object: target.object,
                            attempts,
                            millis: started.elapsed().as_millis() as u64,
                        });
                    }
                    let pause = self.policy.backoff.delay(attempts);
                    if !pause.is_zero() {
                        let pause_deadline = Instant::now() + pause;
                        while !self.replies.contains_key(&req_id) {
                            match self.inbox.recv_deadline(pause_deadline) {
                                Ok(pkt) => {
                                    self.handle_packet(pkt);
                                    self.drain_deferred();
                                }
                                Err(_) => break,
                            }
                        }
                        if self.replies.contains_key(&req_id) {
                            continue; // answered during the backoff
                        }
                    }
                    if let Some(call) = self.outstanding.get(&req_id) {
                        let (dst, bytes) = (call.target.machine, call.bytes.clone());
                        if let Some(tracer) = &self.tracer {
                            if let Some(t) = &call.trace {
                                tracer.record(
                                    EventKind::ClientRetransmit,
                                    dst,
                                    t.trace_id,
                                    t.span,
                                    t.parent_span,
                                    req_id,
                                    attempts + 1,
                                    bytes.len() as u32,
                                    t.method.clone(),
                                );
                            }
                        }
                        let _ = self.net.send(self.machine, dst, bytes);
                        self.stats.calls_retried += 1;
                    }
                    attempts += 1;
                    deadline = Instant::now() + self.policy.timeout;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Daemon conveniences (object lifecycle, persistence, introspection)
    // ------------------------------------------------------------------

    /// `new(machine m) class(args)`: construct an object remotely, blocking
    /// until the constructor finishes.
    pub fn create_object(
        &mut self,
        machine: MachineId,
        class: &str,
        args: Vec<u8>,
    ) -> RemoteResult<ObjRef> {
        let req_id = self.create_object_start(machine, class, args)?;
        let bytes = self.wait_raw(req_id)?;
        let object: u64 = wire::from_bytes(&bytes)?;
        Ok(ObjRef { machine, object })
    }

    /// Async construction by class name; pair with
    /// [`PendingClient`] via the typed wrapper below.
    pub fn create_object_start(
        &mut self,
        machine: MachineId,
        class: &str,
        args: Vec<u8>,
    ) -> RemoteResult<u64> {
        self.start_method_raw(ObjRef::daemon(machine), "create", |w| {
            Wire::encode(&class.to_string(), w);
            Wire::encode(&Bytes(args), w);
        })
    }

    /// Typed remote construction (sync). Prefer the generated
    /// `Client::new_on` wrappers; this is their engine.
    pub fn create<C: RemoteClient>(
        &mut self,
        machine: MachineId,
        args: Vec<u8>,
    ) -> RemoteResult<C> {
        Ok(C::from_ref(self.create_object(machine, C::CLASS, args)?))
    }

    /// Typed remote construction (async).
    pub fn create_async<C: RemoteClient>(
        &mut self,
        machine: MachineId,
        args: Vec<u8>,
    ) -> RemoteResult<PendingClient<C>> {
        let req_id = self.create_object_start(machine, C::CLASS, args)?;
        Ok(PendingClient::new(machine, req_id))
    }

    /// `delete ptr`: destroy a remote object, running its destructor and
    /// terminating its process.
    pub fn destroy(&mut self, r: ObjRef) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(r.machine), "destroy", |w| {
            Wire::encode(&r.object, w)
        })
    }

    /// Async destroy.
    pub fn destroy_async(&mut self, r: ObjRef) -> RemoteResult<Pending<()>> {
        self.start_method(ObjRef::daemon(r.machine), "destroy", |w| {
            Wire::encode(&r.object, w)
        })
    }

    /// Liveness probe of a machine's daemon.
    pub fn ping(&mut self, machine: MachineId) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(machine), "ping", |_| {})
    }

    /// Fetch a machine's runtime counters.
    pub fn stats_of(&mut self, machine: MachineId) -> RemoteResult<NodeStats> {
        self.call_method(ObjRef::daemon(machine), "stats", |_| {})
    }

    /// Serialize a remote object's state (persistence, §5).
    pub fn snapshot_of(&mut self, r: ObjRef) -> RemoteResult<Vec<u8>> {
        let b: Bytes = self.call_method(ObjRef::daemon(r.machine), "snapshot", |w| {
            Wire::encode(&r.object, w)
        })?;
        Ok(b.0)
    }

    /// §5 deactivation: snapshot `r` under `key` on its machine, then
    /// destroy the live process. Reactivate later with [`activate`].
    ///
    /// [`activate`]: NodeCtx::activate
    pub fn deactivate(&mut self, r: ObjRef, key: &str) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(r.machine), "deactivate", |w| {
            Wire::encode(&r.object, w);
            Wire::encode(&key.to_string(), w);
        })
    }

    /// §5 activation: re-create the process stored under `key` on
    /// `machine`. The snapshot remains stored (activate is not destructive).
    pub fn activate<C: RemoteClient>(&mut self, machine: MachineId, key: &str) -> RemoteResult<C> {
        let object: u64 = self.call_method(ObjRef::daemon(machine), "activate", |w| {
            Wire::encode(&key.to_string(), w);
        })?;
        Ok(C::from_ref(ObjRef { machine, object }))
    }

    /// Remove a stored snapshot; true if one existed.
    pub fn drop_snapshot(&mut self, machine: MachineId, key: &str) -> RemoteResult<bool> {
        self.call_method(ObjRef::daemon(machine), "drop_snapshot", |w| {
            Wire::encode(&key.to_string(), w);
        })
    }

    /// Store a snapshot taken elsewhere under `key` on `machine` — the
    /// replication half of crash recovery. The snapshot can later be
    /// [`activate`](NodeCtx::activate)d on that machine even though the
    /// object never lived there.
    pub fn put_snapshot(
        &mut self,
        machine: MachineId,
        key: &str,
        class: &str,
        state: Vec<u8>,
    ) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(machine), "put_snapshot", |w| {
            Wire::encode(&key.to_string(), w);
            Wire::encode(&class.to_string(), w);
            Wire::encode(&Bytes(state), w);
        })
    }

    /// Snapshot a live object and store a copy under `key` on each of
    /// `backups`. If the object's home machine later crashes, any backup
    /// can reactivate it (see
    /// [`resolve_or_activate_supervised`](crate::naming::resolve_or_activate_supervised)).
    pub fn replicate_snapshot<C: RemoteClient>(
        &mut self,
        client: &C,
        key: &str,
        backups: &[MachineId],
    ) -> RemoteResult<()> {
        let state = self.snapshot_of(client.obj_ref())?;
        for &m in backups {
            self.put_snapshot(m, key, C::CLASS, state.clone())?;
        }
        Ok(())
    }

    /// Ask a machine's serve loop to stop (used by cluster shutdown).
    pub fn shutdown_machine(&mut self, machine: MachineId) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(machine), "shutdown", |_| {})
    }

    // ------------------------------------------------------------------
    // Serving (server role)
    // ------------------------------------------------------------------

    /// The request currently being dispatched, if any. Objects that defer
    /// their replies capture this to answer later via [`send_reply`].
    ///
    /// [`send_reply`]: NodeCtx::send_reply
    pub fn current_call(&self) -> Option<CallInfo> {
        self.current_call
    }

    /// Send a response for a call whose dispatch returned
    /// [`DispatchResult::NoReply`].
    pub fn send_reply(&mut self, call: CallInfo, result: RemoteResult<Vec<u8>>) {
        self.send_response(call.reply_to, call.req_id, result);
    }

    /// Serve incoming requests until `dur` elapses. Lets a driver thread
    /// that hosts objects make them reachable while it has nothing else to
    /// do. Workers never need this — their serve loop runs continuously.
    pub fn serve_for(&mut self, dur: Duration) {
        let deadline = Instant::now() + dur;
        while let Ok(pkt) = self.inbox.recv_deadline(deadline) {
            self.handle_packet(pkt);
            self.drain_deferred();
        }
    }

    /// Number of live objects on this node (excluding the daemon).
    pub fn objects_live(&self) -> usize {
        self.objects.len()
    }

    /// This node's own counters, without a network round trip — what
    /// [`stats_of`](NodeCtx::stats_of) would report about this machine.
    /// The driver uses it to read its client-role counters
    /// (`calls_retried`) after a chaotic run.
    pub fn local_stats(&self) -> NodeStats {
        NodeStats {
            objects_live: self.objects.len() as u64,
            calls_served: self.stats.calls_served,
            calls_deferred: self.stats.calls_deferred,
            snapshots_stored: self.snapshots.len() as u64,
            calls_retried: self.stats.calls_retried,
            dup_replayed: self.stats.dup_replayed,
            dup_suppressed: self.stats.dup_suppressed,
        }
    }

    pub(crate) fn serve_loop(&mut self) {
        while self.alive {
            match self.inbox.recv() {
                Ok(pkt) => {
                    self.handle_packet(pkt);
                    self.drain_deferred();
                }
                Err(_) => break,
            }
        }
    }

    fn handle_packet(&mut self, pkt: Packet) {
        let frame = match wire::from_bytes::<Frame>(&pkt.payload) {
            Ok(f) => f,
            Err(_) => return, // malformed; nothing to reply to
        };
        match frame {
            Frame::Request { req_id, reply_to, target, payload, trace } => {
                // The admit-verdict events all want the method name; parse
                // it from the payload head only when tracing is on.
                let traced_method = self
                    .tracer
                    .as_ref()
                    .map(|_| payload_method(&payload.0));
                let record_admit = |node: &NodeCtx, kind: EventKind| {
                    if let (Some(tracer), Some(method)) = (&node.tracer, &traced_method) {
                        tracer.record(
                            kind,
                            reply_to,
                            trace.trace_id.0,
                            trace.span.0,
                            0,
                            req_id,
                            0,
                            0,
                            method.clone(),
                        );
                    }
                };
                // At-most-once execution: a retransmitted request either
                // replays its cached response or is dropped while the
                // original is still in flight. Only genuinely new requests
                // reach dispatch.
                match self.dedup.admit((reply_to, req_id)) {
                    DedupVerdict::Done(result) => {
                        self.stats.dup_replayed += 1;
                        record_admit(self, EventKind::ServerAdmitDone);
                        let frame = Frame::Response { req_id, result: result.map(Bytes) };
                        let _ = self.net.send(self.machine, reply_to, wire::to_bytes(&frame));
                        return;
                    }
                    DedupVerdict::InFlight => {
                        self.stats.dup_suppressed += 1;
                        record_admit(self, EventKind::ServerAdmitInFlight);
                        return;
                    }
                    DedupVerdict::New => {
                        record_admit(self, EventKind::ServerAdmitNew);
                        if let Some(method) = &traced_method {
                            // Bound the table against requests that never
                            // get a reply (abandoned deferred calls): a
                            // flight-recorder table may drop stale entries,
                            // never grow without limit.
                            if self.serving_spans.len() >= 65_536 {
                                self.serving_spans.clear();
                            }
                            self.serving_spans.insert(
                                (reply_to, req_id),
                                CallTrace {
                                    trace_id: trace.trace_id.0,
                                    span: trace.span.0,
                                    parent_span: 0,
                                    method: method.clone(),
                                },
                            );
                        }
                    }
                }
                let req = IncomingReq {
                    req_id,
                    reply_to,
                    target,
                    payload: payload.0,
                    trace_id: trace.trace_id.0,
                    span: trace.span.0,
                };
                match self.try_serve(req) {
                    ServeOutcome::Served => {}
                    ServeOutcome::Defer(req) => {
                        self.stats.calls_deferred += 1;
                        if let (Some(tracer), Some(method)) = (&self.tracer, &traced_method) {
                            tracer.record(
                                EventKind::ServerDefer,
                                req.reply_to,
                                req.trace_id,
                                req.span,
                                0,
                                req.req_id,
                                0,
                                0,
                                method.clone(),
                            );
                        }
                        self.deferred.push_back(req);
                    }
                }
            }
            Frame::Response { req_id, result } => {
                self.replies.insert(req_id, result.map(|b| b.0));
            }
        }
    }

    fn drain_deferred(&mut self) {
        loop {
            let mut progressed = false;
            for _ in 0..self.deferred.len() {
                let Some(req) = self.deferred.pop_front() else { break };
                match self.try_serve(req) {
                    ServeOutcome::Served => progressed = true,
                    ServeOutcome::Defer(req) => self.deferred.push_back(req),
                }
            }
            if !progressed || self.deferred.is_empty() {
                break;
            }
        }
    }

    fn try_serve(&mut self, req: IncomingReq) -> ServeOutcome {
        if req.target == DAEMON {
            self.serve_daemon(req)
        } else {
            self.serve_object(req)
        }
    }

    fn serve_object(&mut self, req: IncomingReq) -> ServeOutcome {
        // Check the object out of the table for the duration of the call:
        // one process per object means one call at a time.
        let mut obj = match self.objects.get_mut(&req.target) {
            None => {
                self.send_response(
                    req.reply_to,
                    req.req_id,
                    Err(RemoteError::NoSuchObject {
                        machine: self.machine,
                        object: req.target,
                    }),
                );
                return ServeOutcome::Served;
            }
            Some(slot) => match slot.take() {
                Some(obj) => obj,
                None => return ServeOutcome::Defer(req), // busy: park the request
            },
        };

        let saved = self.current_call.replace(CallInfo {
            req_id: req.req_id,
            reply_to: req.reply_to,
        });
        // Calls the method issues while running inherit this request's
        // trace identity (nested spans).
        let saved_trace = std::mem::replace(
            &mut self.current_trace,
            (req.span != 0).then_some((req.trace_id, req.span)),
        );
        let mut reader = Reader::new(&req.payload);
        let outcome = match String::decode(&mut reader) {
            Ok(method) => {
                self.record_dispatch(&req, &method);
                obj.dispatch_named(self, &method, &mut reader)
            }
            Err(e) => Err(e.into()),
        };
        self.current_call = saved;
        self.current_trace = saved_trace;

        // Check the object back in (its slot still exists: destroys of a
        // checked-out object are deferred, never executed mid-call).
        if let Some(slot) = self.objects.get_mut(&req.target) {
            *slot = Some(obj);
        }

        match outcome {
            Ok(DispatchResult::Reply(bytes)) => {
                self.send_response(req.reply_to, req.req_id, Ok(bytes))
            }
            Ok(DispatchResult::NoReply) => {}
            Err(e) => self.send_response(req.reply_to, req.req_id, Err(e)),
        }
        self.stats.calls_served += 1;
        ServeOutcome::Served
    }

    fn serve_daemon(&mut self, req: IncomingReq) -> ServeOutcome {
        // The payload is cloned so `self` stays borrowable during dispatch
        // (constructor args live in the payload while `create` runs).
        let payload = req.payload.clone();
        let saved_trace = std::mem::replace(
            &mut self.current_trace,
            (req.span != 0).then_some((req.trace_id, req.span)),
        );
        let mut reader = Reader::new(&payload);
        let outcome = match String::decode(&mut reader) {
            Ok(method) => {
                self.record_dispatch(&req, &method);
                self.daemon_dispatch(&method, &mut reader)
            }
            Err(e) => Err(e.into()),
        };
        self.current_trace = saved_trace;
        match outcome {
            Ok(DaemonOutcome::Reply(bytes)) => {
                self.send_response(req.reply_to, req.req_id, Ok(bytes));
                self.stats.calls_served += 1;
                ServeOutcome::Served
            }
            Ok(DaemonOutcome::ReplyThenHalt(bytes)) => {
                self.send_response(req.reply_to, req.req_id, Ok(bytes));
                self.stats.calls_served += 1;
                self.alive = false;
                ServeOutcome::Served
            }
            Ok(DaemonOutcome::Busy) => ServeOutcome::Defer(IncomingReq { payload, ..req }),
            Err(e) => {
                self.send_response(req.reply_to, req.req_id, Err(e));
                ServeOutcome::Served
            }
        }
    }

    fn daemon_dispatch(
        &mut self,
        method: &str,
        args: &mut Reader<'_>,
    ) -> RemoteResult<DaemonOutcome> {
        match method {
            "ping" => Ok(DaemonOutcome::Reply(wire::to_bytes(&()))),
            "create" => {
                let class = String::decode(args)?;
                let ctor_args = Bytes::decode(args)?;
                let registry = self.registry.clone();
                let mut ctor_reader = Reader::new(&ctor_args.0);
                let obj = registry.construct(&class, self, &mut ctor_reader)?;
                let id = self.next_obj_id;
                self.next_obj_id += 1;
                self.objects.insert(id, Some(obj));
                Ok(DaemonOutcome::Reply(wire::to_bytes(&id)))
            }
            "destroy" => {
                let object = u64::decode(args)?;
                match self.objects.get(&object) {
                    None => Err(RemoteError::NoSuchObject { machine: self.machine, object }),
                    Some(None) => Ok(DaemonOutcome::Busy), // mid-call: retry later
                    Some(Some(_)) => {
                        self.objects.remove(&object); // Drop runs the destructor
                        Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
                    }
                }
            }
            "shutdown" => Ok(DaemonOutcome::ReplyThenHalt(wire::to_bytes(&()))),
            "snapshot" => {
                let object = u64::decode(args)?;
                match self.objects.get(&object) {
                    None => Err(RemoteError::NoSuchObject { machine: self.machine, object }),
                    Some(None) => Ok(DaemonOutcome::Busy),
                    Some(Some(obj)) => {
                        let state = obj.snapshot_state()?;
                        Ok(DaemonOutcome::Reply(wire::to_bytes(&Bytes(state))))
                    }
                }
            }
            "deactivate" => {
                let object = u64::decode(args)?;
                let key = String::decode(args)?;
                match self.objects.get(&object) {
                    None => Err(RemoteError::NoSuchObject { machine: self.machine, object }),
                    Some(None) => Ok(DaemonOutcome::Busy),
                    Some(Some(obj)) => {
                        let state = obj.snapshot_state()?;
                        let class = obj.class_name().to_string();
                        self.snapshots.insert(key, (class, state));
                        self.objects.remove(&object);
                        Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
                    }
                }
            }
            "activate" => {
                let key = String::decode(args)?;
                let (class, state) = self
                    .snapshots
                    .get(&key)
                    .cloned()
                    .ok_or(RemoteError::NoSuchSnapshot { key })?;
                let registry = self.registry.clone();
                let obj = registry.restore(&class, self, &state)?;
                let id = self.next_obj_id;
                self.next_obj_id += 1;
                self.objects.insert(id, Some(obj));
                Ok(DaemonOutcome::Reply(wire::to_bytes(&id)))
            }
            "drop_snapshot" => {
                let key = String::decode(args)?;
                let existed = self.snapshots.remove(&key).is_some();
                Ok(DaemonOutcome::Reply(wire::to_bytes(&existed)))
            }
            "put_snapshot" => {
                let key = String::decode(args)?;
                let class = String::decode(args)?;
                let state = Bytes::decode(args)?;
                self.snapshots.insert(key, (class, state.0));
                Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
            }
            "stats" => Ok(DaemonOutcome::Reply(wire::to_bytes(&self.local_stats()))),
            other => Err(RemoteError::NoSuchMethod {
                class: "<daemon>".to_string(),
                method: other.to_string(),
            }),
        }
    }

    /// Stamp the moment a request's method body starts executing.
    fn record_dispatch(&self, req: &IncomingReq, method: &str) {
        if let Some(tracer) = &self.tracer {
            tracer.record(
                EventKind::ServerDispatch,
                req.reply_to,
                req.trace_id,
                req.span,
                0,
                req.req_id,
                0,
                0,
                method.into(),
            );
        }
    }

    fn send_response(&mut self, reply_to: MachineId, req_id: u64, result: RemoteResult<Vec<u8>>) {
        // Cache the response so a retransmitted copy of this request is
        // answered without re-executing (at-most-once).
        self.dedup.complete((reply_to, req_id), &result);
        let frame = Frame::Response { req_id, result: result.map(Bytes) };
        let bytes = wire::to_bytes(&frame);
        if let Some(tracer) = &self.tracer {
            if let Some(t) = self.serving_spans.remove(&(reply_to, req_id)) {
                tracer.record(
                    EventKind::ServerReply,
                    reply_to,
                    t.trace_id,
                    t.span,
                    t.parent_span,
                    req_id,
                    0,
                    bytes.len() as u32,
                    t.method,
                );
            }
        }
        // A dead caller is not an error for the server.
        let _ = self.net.send(self.machine, reply_to, bytes);
    }

    /// Register a locally constructed object (used by the runtime to host
    /// driver-side objects and by tests). Returns its reference.
    pub fn adopt(&mut self, obj: Box<dyn ServerObject>) -> ObjRef {
        let id = self.next_obj_id;
        self.next_obj_id += 1;
        self.objects.insert(id, Some(obj));
        ObjRef { machine: self.machine, object: id }
    }

    /// Construct and host an object of class `T` on **this** node directly
    /// (no network round trip). Used by the runtime for built-ins.
    pub fn adopt_new<T: ServerClass>(&mut self, args: Vec<u8>) -> RemoteResult<ObjRef> {
        let mut reader = Reader::new(&args);
        let obj = T::construct(self, &mut reader)?;
        Ok(self.adopt(Box::new(obj)))
    }
}

enum DaemonOutcome {
    Reply(Vec<u8>),
    ReplyThenHalt(Vec<u8>),
    Busy,
}

/// First len-prefixed string of a request payload — the method name. Only
/// the flight recorder calls this; malformed payloads trace as `"?"`.
fn payload_method(payload: &[u8]) -> Arc<str> {
    let mut r = Reader::new(payload);
    match String::decode(&mut r) {
        Ok(m) => m.into(),
        Err(_) => "?".into(),
    }
}
