//! The per-machine progress engine.
//!
//! Every machine in an oopp cluster runs one **dispatcher** [`NodeCtx`]: the
//! engine that owns the machine's network inbox, **admits** requests into
//! their target objects' mailboxes, serves daemon verbs, and **issues**
//! requests on behalf of the code currently running on it. Execution of
//! object mailboxes happens either inline on the dispatcher (the classic
//! single-threaded profile, still the default) or on an M:N pool of worker
//! lanes with per-worker work-stealing deques (DESIGN.md §13) — each worker
//! lane is itself a `NodeCtx` sharing the machine's `SharedNode` state, so
//! methods running on a worker issue remote calls exactly like the paper's
//! sequential RMI model prescribes.
//!
//! One process per object means calls to an object **serialize**: a mailbox
//! is owned by at most one lane at a time (a single "task token" per object
//! enforces it), so within an object the original semantics are untouched no
//! matter how many workers the machine runs. A cycle of cross-object waits
//! (A's method calls B while B's method calls A on the same lanes) is a
//! genuine distributed deadlock; the engine converts it into
//! [`RemoteError::Timeout`] rather than hanging forever.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Receiver;
use simnet::{Clock, MachineId, Network, Packet, SimDisk};
use wire::collections::Bytes;
use wire::{Reader, Wire, Writer};

use crate::dedup::DedupVerdict;
use crate::error::{RemoteError, RemoteResult};
use crate::frame::{Frame, MigrationPayload, NodeStats, ReplicaStatus};
use crate::future::{Pending, PendingClient};
use crate::ids::{ObjRef, ObjectId, DAEMON};
use crate::policy::{CallPolicy, OverloadConfig};
use crate::process::{ClassRegistry, DispatchResult, RemoteClient, ServerClass, ServerObject};
use crate::shared::{
    bump, shard_of, CallTrace, IncomingReq, ObjEntry, PrimaryMeta, ReplicaMeta, Sched, SharedNode,
    WorkerMsg,
};
use crate::trace::{EventKind, TraceCtx, Tracer};

/// Identity of an in-flight request, handed to objects that defer their
/// replies (see [`DispatchResult::NoReply`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallInfo {
    /// Correlation id chosen by the caller.
    pub req_id: u64,
    /// Machine the response must go to.
    pub reply_to: MachineId,
}

enum ServeOutcome {
    Served,
    Defer(IncomingReq),
}

/// An issued request kept around for retransmission: the encoded frame is
/// resent verbatim (same `req_id`) when a reply window lapses, so the
/// server's dedup window can recognize the copy.
struct OutboundCall {
    target: ObjRef,
    bytes: Vec<u8>,
    /// Present only while tracing is on.
    trace: Option<CallTrace>,
    /// Forward chases performed for this call (at most one: a second
    /// redirect surfaces to the caller as [`RemoteError::Moved`]).
    hops: u8,
    /// `Some(primary)` while this call is a read routed at a replica: the
    /// address to fall back to on [`RemoteError::StaleReplica`] or when
    /// the replica stops answering. `None` once redirected (or for every
    /// non-replica-routed call).
    read_primary: Option<ObjRef>,
    /// Absolute cluster-clock deadline stamped on the frame (0 = none).
    /// `wait_raw` stops waiting — and stops retransmitting — the moment
    /// this passes, surfacing [`RemoteError::DeadlineExceeded`].
    deadline_at: u64,
}

/// Client-side circuit breaker for one destination machine (DESIGN.md
/// §15). All transitions are measured on the cluster clock, so a
/// virtual-time run replays them bit-for-bit.
struct Breaker {
    /// Consecutive overload-class failures observed while closed.
    failures: u32,
    state: BreakerState,
}

#[derive(Clone, Copy, PartialEq)]
enum BreakerState {
    /// Calls flow; failures are counted.
    Closed,
    /// Fail fast until the cluster clock reads `until`.
    Open { until: u64 },
    /// Cooldown lapsed: the next call is the single trial. Success
    /// closes the breaker; an overload-class failure re-opens it.
    HalfOpen,
}

/// What the breaker decided for an outbound call (computed under the
/// borrow of the breaker table, acted on after it is released).
enum BreakerGate {
    /// Closed (or no breaker state yet): send normally.
    Pass,
    /// Half-open trial: send, and the outcome decides the breaker.
    PassTrial,
    /// Open: fail fast, suggesting the caller wait this many nanos.
    Fail(u64),
}

/// Client-side route for a replicated object: read verbs fan out over the
/// replica set, everything else goes to the primary key.
struct ReplicaRoute {
    replicas: Vec<ObjRef>,
    rs_epoch: u64,
    reads: &'static [&'static str],
    /// Round-robin cursor over `replicas`.
    next: usize,
}

/// Worker-lane identity: the control channel the dispatcher routes into,
/// the virtual-clock park label, and this worker's own work-stealing deque.
pub(crate) struct WorkerLane {
    pub(crate) rx: Receiver<WorkerMsg>,
    pub(crate) label: u64,
    pub(crate) index: usize,
    pub(crate) deque: sched::Worker<ObjectId>,
}

/// How many mailbox entries one task token executes before re-parking the
/// object on the worker's own deque. Bounds how long a hot object
/// monopolizes a worker, and is what puts continuations where siblings can
/// steal them.
const MAILBOX_BATCH: usize = 16;

/// What `next_step` decided for the head of an object's mailbox.
enum Step {
    /// Mailbox empty (token retired) or entry gone (a lifecycle verb
    /// removed the object and answered its queue).
    Done,
    /// An execution-time gate rejected the request without touching the
    /// object.
    Reject {
        req: IncomingReq,
        err: RemoteError,
        kind: RejectKind,
    },
    /// Stale-server: this incarnation just learned it was superseded. The
    /// whole entry is gone; answer the triggering request and everything
    /// queued behind it with the fence.
    Quarantine { reqs: Vec<IncomingReq>, epoch: u64 },
    /// Gates passed: the object is checked out, dispatch the request.
    Dispatch {
        req: IncomingReq,
        obj: Box<dyn ServerObject>,
        /// `Some(rs_epoch)` when this is a replica-served read (for the
        /// coherence-hit stat and trace event).
        replica_hit: Option<u64>,
    },
}

enum RejectKind {
    Fenced,
    Forwarded,
    StaleReplica {
        rs_epoch: u64,
    },
    /// The request's propagated deadline passed while it sat queued; it
    /// is dropped without executing (`overshoot` = nanos past deadline).
    DeadlineExpired {
        overshoot: u64,
    },
    /// CoDel-style shed: the request's queue sojourn exceeded the
    /// configured target, so the node is persistently behind and sheds
    /// admitted work rather than serve it ever later.
    Shed {
        sojourn: u64,
    },
}

/// Result of an atomic idle-check-and-remove on an object entry
/// (`take_idle_entry`). `Busy` means a worker has the object checked out;
/// the caller answers `DaemonOutcome::Busy` and the manager retries.
enum TakeEntry {
    Absent,
    Busy,
    Removed(ObjEntry),
}

/// Result of snapshot-then-remove (`snapshot_and_remove`): the serialized
/// state travels with the removed entry so the caller can forward or park
/// it, all decided while no lock is held.
enum SnapTake {
    Absent,
    Busy,
    Taken {
        class: String,
        state: Vec<u8>,
        entry: ObjEntry,
    },
    Failed(RemoteError),
}

/// Bound on the client-side forwarding cache; clearing it on overflow only
/// costs the next call through each stale pointer one extra chase.
const MOVED_CACHE_CAPACITY: usize = 4096;

/// Bound on the per-node symbolic-address resolution cache.
const RESOLVE_CACHE_CAPACITY: usize = 1024;

/// Default reply window. Long enough for heavily costed benchmark runs,
/// short enough that a deadlocked test fails rather than hangs.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// One machine's runtime state: its objects, its link to the fabric, and
/// the progress engine that serves and issues calls.
pub struct NodeCtx {
    machine: MachineId,
    workers: usize,
    net: Network,
    /// The cluster clock (shared with the fabric): all timeouts, backoffs
    /// and leases on this node are measured against it, so a virtual-time
    /// cluster never blocks on a wall-clock-only timer.
    clock: Clock,
    /// The machine's network inbox. `Some` on dispatcher and driver lanes,
    /// `None` on worker lanes (which receive through `lane` instead).
    inbox: Option<Receiver<Packet>>,
    /// Worker-lane state; `None` on dispatcher/driver lanes.
    lane: Option<WorkerLane>,
    /// Request-id lane number. Every lane on a machine allocates req_ids
    /// congruent to its lane number modulo `stride`, so the dispatcher can
    /// route a response to the lane that issued the call without any shared
    /// correlation table. Lane 0 is the dispatcher; worker `w` is lane
    /// `w + 1`.
    lane_no: u64,
    /// `sched workers + 1` on pooled machines, 1 everywhere else (which
    /// makes req-id allocation byte-identical to the single-threaded
    /// engine).
    stride: u64,
    registry: Arc<ClassRegistry>,
    disks: Vec<Arc<SimDisk>>,
    /// The machine's thread-shared server state: object shards, gates,
    /// dedup window, counters, and the scheduler handle.
    shared: Arc<SharedNode>,
    /// Requests this lane must retry later (daemon verbs that reported
    /// Busy, requests for mid-migration objects). Dispatcher-only in
    /// practice; lane-local always.
    deferred: VecDeque<IncomingReq>,
    replies: HashMap<u64, Result<Vec<u8>, RemoteError>>,
    /// Passivated object states (daemon verbs `deactivate`/`activate`).
    /// Dispatcher-local: only daemon verbs touch it.
    snapshots: HashMap<String, (String, Vec<u8>)>,
    /// Client-side forwarding cache: addresses this node has learned are
    /// stale, mapped to their replacement, so repeat calls start at the
    /// object's last known home instead of re-chasing.
    moved_cache: HashMap<ObjRef, ObjRef>,
    /// Per-node cache of symbolic-address resolutions (see
    /// [`crate::naming`]); invalidated when a cached pointer fails.
    resolve_cache: HashMap<String, ObjRef>,
    /// Client-side epoch beliefs: the incarnation epoch this node last
    /// learned for a supervised address (from the naming directory or a
    /// `Fenced` reply). Stamped onto outgoing frames.
    believed_epochs: HashMap<ObjRef, u64>,
    /// Client-side replica routes, keyed by the primary's address.
    replica_routes: HashMap<ObjRef, ReplicaRoute>,
    outstanding: HashMap<u64, OutboundCall>,
    current_call: Option<CallInfo>,
    next_req_id: u64,
    alive: bool,
    policy: CallPolicy,
    /// Flight recorder handle; `None` (the default) disables tracing.
    tracer: Option<Tracer>,
    /// Monotone counter behind span-id allocation (see `alloc_span`).
    next_span: u64,
    /// Trace identity of the request currently being dispatched, so calls
    /// issued from inside a method inherit its trace and parent span.
    current_trace: Option<(u64, u64)>,
    /// Absolute deadline of the request currently being dispatched, so
    /// calls issued from inside a method inherit the caller's remaining
    /// budget (deadline propagation across hops, DESIGN.md §15).
    current_deadline: Option<u64>,
    /// Per-destination circuit breakers (lane-local; each lane learns a
    /// machine's health from its own calls).
    breakers: HashMap<MachineId, Breaker>,
    /// Per-destination retry-budget buckets, in millitokens: each first
    /// attempt deposits, each retransmission spends 1000. A dry bucket
    /// suppresses retransmission so retries cannot amplify an overload.
    retry_tokens: HashMap<MachineId, u64>,
    /// Round counter feeding the seeded steal-order permutation.
    steal_round: u64,
}

impl std::fmt::Debug for NodeCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeCtx")
            .field("machine", &self.machine)
            .field("lane", &self.lane_no)
            .field("objects", &self.shared.objects_live())
            .field("deferred", &self.deferred.len())
            .finish()
    }
}

impl Drop for NodeCtx {
    fn drop(&mut self) {
        // Leave the virtual clock's quiescence set (no-op in real mode).
        // If this was the last running actor, deregistration advances the
        // event loop so remaining deliveries (shutdown frames for peers)
        // still fire — the teardown cascade depends on it.
        self.clock.deregister_actor();
    }
}

impl NodeCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        machine: MachineId,
        workers: usize,
        net: Network,
        inbox: Receiver<Packet>,
        registry: Arc<ClassRegistry>,
        disks: Vec<Arc<SimDisk>>,
        policy: CallPolicy,
        tracer: Option<Tracer>,
        overload: OverloadConfig,
    ) -> Self {
        let shared = Arc::new(SharedNode::new(Sched::Inline, overload));
        Self::new_dispatcher(
            machine, workers, net, inbox, registry, disks, policy, tracer, shared,
        )
    }

    /// The dispatcher lane of a machine: owns the network inbox and the
    /// admission path; executes objects inline when `shared.sched` is
    /// [`Sched::Inline`], hands them to the pool otherwise.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_dispatcher(
        machine: MachineId,
        workers: usize,
        net: Network,
        inbox: Receiver<Packet>,
        registry: Arc<ClassRegistry>,
        disks: Vec<Arc<SimDisk>>,
        policy: CallPolicy,
        tracer: Option<Tracer>,
        shared: Arc<SharedNode>,
    ) -> Self {
        Self::new_lane(
            machine,
            workers,
            net,
            Some(inbox),
            None,
            registry,
            disks,
            policy,
            tracer,
            shared,
        )
    }

    /// Worker lane `lane.index` of a pooled machine.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_worker(
        machine: MachineId,
        workers: usize,
        net: Network,
        lane: WorkerLane,
        registry: Arc<ClassRegistry>,
        disks: Vec<Arc<SimDisk>>,
        policy: CallPolicy,
        tracer: Option<Tracer>,
        shared: Arc<SharedNode>,
    ) -> Self {
        Self::new_lane(
            machine,
            workers,
            net,
            None,
            Some(lane),
            registry,
            disks,
            policy,
            tracer,
            shared,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn new_lane(
        machine: MachineId,
        workers: usize,
        net: Network,
        inbox: Option<Receiver<Packet>>,
        lane: Option<WorkerLane>,
        registry: Arc<ClassRegistry>,
        disks: Vec<Arc<SimDisk>>,
        policy: CallPolicy,
        tracer: Option<Tracer>,
        shared: Arc<SharedNode>,
    ) -> Self {
        let clock = net.clock().clone();
        // Virtual time only advances while every actor is parked in the
        // clock, so each NodeCtx — worker lanes included — enrolls here and
        // leaves in its Drop.
        clock.register_actor();
        let stride = match &shared.sched {
            Sched::Inline => 1,
            Sched::Pool(pool) => pool.workers() as u64 + 1,
        };
        let lane_no = lane.as_ref().map_or(0, |l| l.index as u64 + 1);
        NodeCtx {
            machine,
            workers,
            net,
            clock,
            inbox,
            lane,
            lane_no,
            stride,
            registry,
            disks,
            shared,
            deferred: VecDeque::new(),
            replies: HashMap::new(),
            snapshots: HashMap::new(),
            moved_cache: HashMap::new(),
            resolve_cache: HashMap::new(),
            believed_epochs: HashMap::new(),
            replica_routes: HashMap::new(),
            outstanding: HashMap::new(),
            current_call: None,
            // Lane 0 starts at `stride` (so id 0 stays unused, and with
            // stride 1 this is the classic "ids start at 1"); lane L
            // starts at L. Stepping by `stride` keeps lanes disjoint.
            next_req_id: if lane_no == 0 { stride } else { lane_no },
            alive: true,
            policy,
            tracer,
            next_span: 1,
            current_trace: None,
            current_deadline: None,
            breakers: HashMap::new(),
            retry_tokens: HashMap::new(),
            steal_round: 0,
        }
    }

    /// Cluster-unique span id: machine-prefixed so two machines can never
    /// mint the same id (`machine + 1` so id 0 stays reserved for
    /// "untraced"), lane-prefixed so two lanes of one machine cannot
    /// either.
    fn alloc_span(&mut self) -> u64 {
        let span = ((self.machine as u64 + 1) << 48) | (self.lane_no << 40) | self.next_span;
        self.next_span += 1;
        span
    }

    /// Next request id on this lane's arithmetic progression (see
    /// `lane_no`/`stride`).
    fn alloc_req_id(&mut self) -> u64 {
        let id = self.next_req_id;
        self.next_req_id += self.stride;
        id
    }

    // ------------------------------------------------------------------
    // Overload protection: circuit breakers and retry budgets
    // ------------------------------------------------------------------

    /// Consult (and advance) the breaker guarding `dest` before a send.
    /// Loopback and `breaker_exempt` policies (supervision probes) bypass
    /// the breaker entirely — a probe must be able to observe a machine
    /// the breaker has written off.
    fn breaker_admit(&mut self, dest: MachineId, now: u64) -> BreakerGate {
        let Some(bc) = self.policy.breaker else {
            return BreakerGate::Pass;
        };
        if self.policy.breaker_exempt || dest == self.machine {
            return BreakerGate::Pass;
        }
        match self.breakers.get_mut(&dest) {
            None => BreakerGate::Pass,
            Some(b) => match b.state {
                BreakerState::Closed => BreakerGate::Pass,
                BreakerState::Open { until } if now < until => BreakerGate::Fail(until - now),
                BreakerState::Open { .. } => {
                    // Cooldown lapsed: this call is the half-open trial.
                    b.state = BreakerState::HalfOpen;
                    BreakerGate::PassTrial
                }
                // A trial is already in flight on this lane; hold further
                // calls back for one more cooldown.
                BreakerState::HalfOpen => BreakerGate::Fail(bc.cooldown.as_nanos() as u64),
            },
        }
    }

    /// Feed a finished call's outcome into the destination's breaker. Any
    /// reply — even an application error — counts as success (the machine
    /// is alive and serving); only overload-class outcomes (timeout,
    /// overload, deadline, disconnect) count as failures.
    fn breaker_note(&mut self, dest: MachineId, failed: bool) {
        let Some(bc) = self.policy.breaker else {
            return;
        };
        if self.policy.breaker_exempt || dest == self.machine {
            return;
        }
        let now = self.clock.now_nanos();
        let cooldown = bc.cooldown.as_nanos() as u64;
        enum Transition {
            None,
            Opened(u32),
            Closed,
        }
        let transition = {
            let b = self.breakers.entry(dest).or_insert(Breaker {
                failures: 0,
                state: BreakerState::Closed,
            });
            if failed {
                b.failures = b.failures.saturating_add(1);
                match b.state {
                    BreakerState::Closed if b.failures >= bc.failure_threshold => {
                        b.state = BreakerState::Open {
                            until: now.saturating_add(cooldown),
                        };
                        Transition::Opened(b.failures)
                    }
                    // A failed half-open trial re-opens for another cooldown.
                    BreakerState::HalfOpen => {
                        b.state = BreakerState::Open {
                            until: now.saturating_add(cooldown),
                        };
                        Transition::Opened(b.failures)
                    }
                    _ => Transition::None,
                }
            } else {
                let was_closed = b.state == BreakerState::Closed;
                b.failures = 0;
                b.state = BreakerState::Closed;
                if was_closed {
                    Transition::None
                } else {
                    Transition::Closed
                }
            }
        };
        match transition {
            Transition::Opened(failures) => {
                self.record_overload_marker(EventKind::BreakerOpen, dest, failures)
            }
            Transition::Closed => self.record_overload_marker(EventKind::BreakerClose, dest, 0),
            Transition::None => {}
        }
    }

    /// True when `err` should trip the destination's breaker: the class of
    /// failures that signal an overloaded or unreachable machine.
    fn is_overload_failure(err: &RemoteError) -> bool {
        matches!(
            err,
            RemoteError::Timeout { .. }
                | RemoteError::Overloaded { .. }
                | RemoteError::DeadlineExceeded { .. }
                | RemoteError::Disconnected { .. }
        )
    }

    /// Spend one retry token (1000 millitokens) for a retransmission to
    /// `dest`. Returns `false` — and counts a suppressed retry — when the
    /// bucket is dry, in which case the caller must not retransmit.
    fn spend_retry_token(&mut self, dest: MachineId) -> bool {
        if self.policy.retry_budget.is_none() {
            return true;
        }
        let tokens = self.retry_tokens.entry(dest).or_insert(0);
        if *tokens >= 1000 {
            *tokens -= 1000;
            true
        } else {
            bump!(self.shared.stats, retries_suppressed);
            false
        }
    }

    /// Record a client-side overload marker event (breaker transitions,
    /// fast-fails). These are origin events: `value` lands in the `bytes`
    /// column and the peer column names the destination machine.
    fn record_overload_marker(&mut self, kind: EventKind, dest: MachineId, value: u32) {
        if self.tracer.is_none() {
            return;
        }
        let span = self.alloc_span();
        if let Some(tracer) = &self.tracer {
            tracer.record(kind, dest, span, span, 0, 0, 0, value, "overload".into());
        }
    }

    // ------------------------------------------------------------------
    // Identity and hardware
    // ------------------------------------------------------------------

    /// This machine's id.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Number of worker machines (ids `0..workers()`). The driver program
    /// runs on the extra endpoint `workers()`.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total endpoints, workers plus driver.
    pub fn machines(&self) -> usize {
        self.workers + 1
    }

    /// The cluster clock this node measures every timeout, backoff and
    /// lease against. Virtual nanos under a virtual-time cluster.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Current clock reading in nanoseconds since the cluster epoch.
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Locally attached disks.
    pub fn disks(&self) -> &[Arc<SimDisk>] {
        &self.disks
    }

    /// One local disk handle.
    ///
    /// # Panics
    /// If `i` is out of range for this machine.
    pub fn disk(&self, i: usize) -> Arc<SimDisk> {
        self.disks[i].clone()
    }

    // ------------------------------------------------------------------
    // Issuing calls (client role)
    // ------------------------------------------------------------------

    /// Start a method call: encode `method` + arguments, send the request,
    /// return the correlation id without waiting.
    pub fn start_method_raw(
        &mut self,
        target: ObjRef,
        method: &str,
        encode_args: impl FnOnce(&mut Writer),
    ) -> RemoteResult<u64> {
        let mut w = Writer::new();
        w.put_len_prefixed(method.as_bytes());
        encode_args(&mut w);
        self.start_call_raw(target, method, w.into_bytes())
    }

    /// Typed async call: returns a [`Pending`] decodable as `Ret`.
    pub fn start_method<Ret: Wire>(
        &mut self,
        target: ObjRef,
        method: &str,
        encode_args: impl FnOnce(&mut Writer),
    ) -> RemoteResult<Pending<Ret>> {
        Ok(Pending::new(self.start_method_raw(
            target,
            method,
            encode_args,
        )?))
    }

    /// Typed synchronous call — the paper's default sequential semantics:
    /// the instruction, and all communication associated with it, completes
    /// before this function returns.
    pub fn call_method<Ret: Wire>(
        &mut self,
        target: ObjRef,
        method: &str,
        encode_args: impl FnOnce(&mut Writer),
    ) -> RemoteResult<Ret> {
        let req_id = self.start_method_raw(target, method, encode_args)?;
        let bytes = self.wait_raw(req_id)?;
        Ok(wire::from_bytes(&bytes)?)
    }

    /// [`start_method`](NodeCtx::start_method) minus replica routing: the
    /// call goes to `target` itself even when a replica route is
    /// registered for it. This is how a caller addresses *a specific
    /// copy* — e.g. [`ProcessGroup::of_replica_set`](crate::ProcessGroup)
    /// broadcasting to the primary and every replica individually.
    pub fn start_method_direct<Ret: Wire>(
        &mut self,
        target: ObjRef,
        method: &str,
        encode_args: impl FnOnce(&mut Writer),
    ) -> RemoteResult<Pending<Ret>> {
        let mut w = Writer::new();
        w.put_len_prefixed(method.as_bytes());
        encode_args(&mut w);
        Ok(Pending::new(self.start_call_opts(
            target,
            method,
            w.into_bytes(),
            false,
        )?))
    }

    fn start_call_raw(
        &mut self,
        target: ObjRef,
        method: &str,
        payload: Vec<u8>,
    ) -> RemoteResult<u64> {
        self.start_call_opts(target, method, payload, true)
    }

    fn start_call_opts(
        &mut self,
        target: ObjRef,
        method: &str,
        payload: Vec<u8>,
        route: bool,
    ) -> RemoteResult<u64> {
        // Start at the object's last known address: a pointer this node
        // has already learned is stale is rewritten before the send, so
        // only the *first* call through it pays the forward chase.
        let mut target = self.forwarded_target(target);
        // Replica routing: a read verb aimed at a registered primary is
        // redirected to a replica — a local one when the set has one,
        // round-robin otherwise. The frame carries the route's replica-set
        // epoch so a lagging replica rejects itself; the primary stays
        // recorded for the stale/dead fallback.
        let mut read_primary = None;
        let mut rs_epoch = 0u64;
        if route && target.object != DAEMON {
            if let Some(route) = self.replica_routes.get_mut(&target) {
                if !route.replicas.is_empty() && route.reads.contains(&method) {
                    let machine = self.machine;
                    let pick = route
                        .replicas
                        .iter()
                        .position(|r| r.machine == machine)
                        .unwrap_or_else(|| {
                            let i = route.next % route.replicas.len();
                            route.next = route.next.wrapping_add(1);
                            i
                        });
                    read_primary = Some(target);
                    rs_epoch = route.rs_epoch;
                    target = route.replicas[pick];
                }
            }
        }
        if target.machine >= self.machines() {
            return Err(RemoteError::BadMachine {
                machine: target.machine,
                machines: self.machines(),
            });
        }
        // Deadline stamp: the tighter of this policy's own budget and the
        // budget inherited from the request currently being served, so a
        // caller's deadline propagates across every downstream hop.
        let now = self.clock.now_nanos();
        let own = if self.policy.deadline.is_zero() {
            0
        } else {
            now.saturating_add(self.policy.deadline.as_nanos() as u64)
        };
        let deadline = match (own, self.current_deadline) {
            (0, None) => 0,
            (0, Some(inherited)) => inherited,
            (own, None) => own,
            (own, Some(inherited)) => own.min(inherited),
        };
        if deadline != 0 && now >= deadline {
            // The budget is already spent: fail before touching the network.
            return Err(RemoteError::DeadlineExceeded {
                elapsed_nanos: now - deadline,
            });
        }
        match self.breaker_admit(target.machine, now) {
            BreakerGate::Fail(retry_after_nanos) => {
                bump!(self.shared.stats, breaker_fast_fails);
                self.record_overload_marker(EventKind::ClientFastFail, target.machine, 0);
                return Err(RemoteError::Overloaded {
                    queue_depth: 0,
                    retry_after_nanos,
                });
            }
            BreakerGate::PassTrial => {
                self.record_overload_marker(EventKind::BreakerHalfOpen, target.machine, 0);
            }
            BreakerGate::Pass => {}
        }
        // Each admitted first attempt earns the destination's retry bucket
        // a deposit; retransmissions later spend from it (see `wait_raw`).
        if let Some(rb) = self.policy.retry_budget {
            let tokens = self.retry_tokens.entry(target.machine).or_insert(0);
            *tokens = (*tokens + rb.deposit_millitokens as u64).min(rb.max_millitokens as u64);
        }
        let req_id = self.alloc_req_id();
        let call_trace = if self.tracer.is_some() {
            let span = self.alloc_span();
            // A call issued mid-dispatch belongs to the serving request's
            // trace; a root call (driver code) opens a trace named after
            // its own span.
            let (trace_id, parent_span) = match self.current_trace {
                Some((tid, serving)) => (tid, serving),
                None => (span, 0),
            };
            Some(CallTrace {
                trace_id,
                span,
                parent_span,
                method: method.into(),
            })
        } else {
            None
        };
        let trace = call_trace
            .as_ref()
            .map(|t| TraceCtx {
                trace_id: t.trace_id.into(),
                span: t.span.into(),
            })
            .unwrap_or_default();
        let frame = Frame::Request {
            req_id,
            reply_to: self.machine,
            target: target.object,
            payload: Bytes(payload),
            trace,
            // Fence stamp: 0 (no check) unless this node has learned an
            // incarnation epoch for the target address.
            epoch: self.believed_epochs.get(&target).copied().unwrap_or(0),
            rs_epoch: rs_epoch.into(),
            deadline,
        };
        let bytes = wire::to_bytes(&frame);
        if let (Some(tracer), Some(t)) = (&self.tracer, &call_trace) {
            tracer.record(
                EventKind::ClientSend,
                target.machine,
                t.trace_id,
                t.span,
                t.parent_span,
                req_id,
                1,
                bytes.len() as u32,
                t.method.clone(),
            );
        }
        self.net
            .send(self.machine, target.machine, bytes.clone())
            .map_err(|_| RemoteError::Disconnected {
                machine: target.machine,
            })?;
        // Kept for retransmission until the reply is consumed (or retries
        // are exhausted). On a lossy fabric the send above may silently
        // vanish; the stored frame is what wait_raw resends.
        self.outstanding.insert(
            req_id,
            OutboundCall {
                target,
                bytes,
                trace: call_trace,
                hops: 0,
                read_primary,
                deadline_at: deadline,
            },
        );
        Ok(req_id)
    }

    /// Resolve `target` through the client-side forwarding cache (with
    /// path compression, so a chain learned over several migrations costs
    /// one lookup next time). Daemon addresses never forward.
    fn forwarded_target(&mut self, start: ObjRef) -> ObjRef {
        if start.object == DAEMON || self.moved_cache.is_empty() {
            return start;
        }
        let mut target = start;
        // Bounded walk: the cache is only ever appended with commit-time
        // facts, but a bound keeps even a corrupted chain finite.
        for _ in 0..8 {
            match self.moved_cache.get(&target) {
                Some(&next) if next != target => target = next,
                _ => break,
            }
        }
        if target != start {
            self.moved_cache.insert(start, target);
        }
        target
    }

    /// Learn a forwarding fact (from a `Moved` reply or a migration this
    /// node coordinated).
    fn note_move(&mut self, old: ObjRef, new: ObjRef) {
        if old == new || old.object == DAEMON || new.object == DAEMON {
            return;
        }
        if self.moved_cache.len() >= MOVED_CACHE_CAPACITY {
            self.moved_cache.clear();
        }
        self.moved_cache.insert(old, new);
    }

    /// Drop a learned forwarding fact so the next call to `old` pays the
    /// redirect again. Benchmarks and tests use this to measure the
    /// stale-pointer path; production code never needs it.
    pub fn forget_move(&mut self, old: ObjRef) {
        self.moved_cache.remove(&old);
    }

    /// Drop a learned epoch belief so the next call to `target` can be
    /// stamped stale again. Benchmarks and tests use this to measure the
    /// fence-bounce path (epochs are otherwise forward-only, see
    /// [`note_epoch`](NodeCtx::note_epoch)); production code never needs
    /// it.
    pub fn forget_epoch(&mut self, target: ObjRef) {
        self.believed_epochs.remove(&target);
    }

    /// Drop every client-side fact that points **at** `machine`: learned
    /// forwards whose replacement lives there and cached symbolic
    /// resolutions. Called when a machine is declared dead, so a chase
    /// never hops *through* a corpse — the next call re-resolves and finds
    /// the reactivated incarnation instead of timing out on the old one.
    pub fn purge_moves_to(&mut self, machine: MachineId) {
        self.moved_cache.retain(|_, to| to.machine != machine);
        self.resolve_cache.retain(|_, r| r.machine != machine);
        // Replica routes: the whole route dies with its primary (the
        // failover promotes a replica at a new address and the manager
        // re-registers); a dead machine's replicas are just dropped from
        // the surviving sets.
        self.replica_routes.retain(|p, _| p.machine != machine);
        for route in self.replica_routes.values_mut() {
            route.replicas.retain(|r| r.machine != machine);
        }
    }

    /// Record the incarnation epoch this node believes `target` is at.
    /// Epochs only move forward; outgoing frames to `target` are stamped
    /// with the recorded value (0 = never supervised, no fencing).
    pub fn note_epoch(&mut self, target: ObjRef, epoch: u64) {
        if epoch == 0 || target.object == DAEMON {
            return;
        }
        if self.believed_epochs.len() >= MOVED_CACHE_CAPACITY
            && !self.believed_epochs.contains_key(&target)
        {
            // Losing a belief is safe: an unstamped (epoch-0) frame skips
            // the staleness check but an old incarnation is still fenced
            // server-side by its lease and its own epoch table.
            self.believed_epochs.clear();
        }
        let e = self.believed_epochs.entry(target).or_insert(0);
        if epoch > *e {
            *e = epoch;
        }
    }

    /// The epoch this node last learned for `target` (0 = none).
    pub fn believed_epoch(&self, target: ObjRef) -> u64 {
        self.believed_epochs.get(&target).copied().unwrap_or(0)
    }

    /// The reliability policy applied by [`wait_raw`](NodeCtx::wait_raw).
    pub fn call_policy(&self) -> CallPolicy {
        self.policy
    }

    /// Replace the reliability policy. Takes effect for the next wait; a
    /// driver can tighten or relax it mid-program.
    pub fn set_call_policy(&mut self, policy: CallPolicy) {
        self.policy = policy;
    }

    /// Block until the reply for `req_id` arrives, serving incoming
    /// requests in the meantime (the re-entrant progress engine).
    ///
    /// Each attempt gets the policy's reply window. When one lapses and
    /// retries remain, the engine waits out the backoff delay — still
    /// serving — and retransmits the identical frame (same `req_id`; the
    /// server's dedup window guarantees at-most-once execution). When the
    /// budget is exhausted the call fails with an enriched
    /// [`RemoteError::Timeout`] naming the target and attempt count.
    pub fn wait_raw(&mut self, mut req_id: u64) -> RemoteResult<Vec<u8>> {
        let started = self.clock.now_nanos();
        let timeout = self.policy.timeout.as_nanos() as u64;
        // A zero reply window can never be satisfied: surface a typed
        // error instead of busy-looping through instant timeouts.
        if timeout == 0 {
            self.outstanding.remove(&req_id);
            return Err(RemoteError::DeadlineExceeded { elapsed_nanos: 0 });
        }
        // Absolute budget stamped at issue time; redirects and refences
        // preserve it, so one read up front is enough.
        let deadline_at = self
            .outstanding
            .get(&req_id)
            .map_or(0, |call| call.deadline_at);
        let mut attempts: u32 = 1;
        let mut deadline = started + timeout;
        loop {
            if let Some(result) = self.replies.remove(&req_id) {
                // A `Moved` reply is a forwarding stub redirecting us, not
                // an answer. Chase exactly one hop — re-issue the same
                // frame (same `req_id`) at the new address — and keep
                // waiting. A *second* redirect surfaces to the caller: the
                // signal to re-resolve through the naming directory.
                if let Err(RemoteError::Moved { to }) = &result {
                    let to = *to;
                    let learned = match self.outstanding.get(&req_id) {
                        Some(c) if c.target.object != DAEMON => Some((c.target, c.hops)),
                        _ => None,
                    };
                    if let Some((old, hops)) = learned {
                        if old == to {
                            // Stale replay: a retransmit that raced the
                            // chase bounced off the old address again.
                            // The real reply is still coming from `to`.
                            continue;
                        }
                        // A replica-routed read that bounced off a dropped
                        // replica's forwarding stub: scrub the replica
                        // from the route — the chase lands at the primary.
                        let stale_route = self
                            .outstanding
                            .get_mut(&req_id)
                            .and_then(|c| c.read_primary.take());
                        if let Some(primary) = stale_route {
                            self.drop_replica_from_route(primary, old);
                        }
                        self.note_move(old, to);
                        self.rebind_resolutions(old, to);
                        if hops == 0
                            && to.machine < self.machines()
                            && self.chase_forward(req_id, to, attempts)
                        {
                            deadline = self.clock.now_nanos() + timeout;
                            continue;
                        }
                    }
                }
                // A fence rejection that teaches a *newer* epoch than the
                // frame carried means the pointer was stale, not the
                // call: retry transparently at the taught epoch, under a
                // fresh request id (the server's dedup window cached the
                // Fenced verdict for the old one). Safe for at-most-once:
                // a fence is a rejection — the call never executed.
                if let Err(RemoteError::Fenced { current_epoch }) = &result {
                    let taught = *current_epoch;
                    if let Some(fresh) = self.refence_call(req_id, taught) {
                        req_id = fresh;
                        attempts = 1;
                        deadline = self.clock.now_nanos() + timeout;
                        continue;
                    }
                }
                // A stale replica cannot prove it has every acknowledged
                // write: drop it from the local route and redirect the
                // same request (same `req_id` — a different server, so
                // dedup is unaffected) to the primary, which is always
                // coherent. Read verbs are side-effect-free, so this
                // re-execution is safe by the `reads(...)` contract.
                if let Err(RemoteError::StaleReplica { primary, .. }) = &result {
                    let primary = *primary;
                    match self.outstanding.get(&req_id) {
                        Some(c) if c.read_primary.is_some() => {
                            let replica = c.target;
                            self.drop_replica_from_route(primary, replica);
                            self.purge_resolutions_to(replica);
                            if self.redirect_read_to_primary(req_id, primary, attempts) {
                                attempts = 1;
                                deadline = self.clock.now_nanos() + timeout;
                                continue;
                            }
                        }
                        // Already redirected: a retransmit's replayed
                        // verdict from the replica. The primary's answer
                        // is still coming.
                        Some(_) => continue,
                        None => {}
                    }
                }
                let call = self.outstanding.remove(&req_id);
                // A fence at the frame's own epoch (lapsed lease,
                // poisoned home) surfaces to the caller; still remember
                // the incarnation epoch so the caller's next attempt
                // (after re-resolving) is stamped correctly.
                if let (Err(RemoteError::Fenced { current_epoch }), Some(c)) = (&result, &call) {
                    let target = c.target;
                    self.note_epoch(target, *current_epoch);
                    // The fence surfaced (not transparently upgraded): the
                    // pointer names a dead incarnation. Any cached name
                    // resolution to it must re-resolve.
                    self.purge_resolutions_to(target);
                }
                if let (Some(tracer), Some(call)) = (&self.tracer, &call) {
                    if let Some(t) = &call.trace {
                        let bytes = result.as_ref().map(|b| b.len()).unwrap_or(0);
                        tracer.record(
                            EventKind::ClientRecv,
                            call.target.machine,
                            t.trace_id,
                            t.span,
                            t.parent_span,
                            req_id,
                            attempts,
                            bytes as u32,
                            t.method.clone(),
                        );
                    }
                }
                if let Some(call) = &call {
                    let failed = result.as_ref().err().is_some_and(Self::is_overload_failure);
                    self.breaker_note(call.target.machine, failed);
                }
                return result;
            }
            // Deadline enforcement on the waiting side: once the stamped
            // budget passes, stop waiting *and* stop retransmitting — the
            // server will drop the work too, so no answer is coming that
            // anyone still wants.
            if deadline_at != 0 {
                let now = self.clock.now_nanos();
                if now >= deadline_at {
                    let dest = self.outstanding.remove(&req_id).map(|c| c.target.machine);
                    if let Some(dest) = dest {
                        self.breaker_note(dest, true);
                    }
                    return Err(RemoteError::DeadlineExceeded {
                        elapsed_nanos: now - deadline_at,
                    });
                }
            }
            let pump_to = if deadline_at == 0 {
                deadline
            } else {
                deadline.min(deadline_at)
            };
            match self.pump_until(pump_to) {
                Ok(()) => {}
                Err(()) => {
                    // Re-enter the loop on deadline expiry (handled above)
                    // rather than treating it as an attempt timeout.
                    if deadline_at != 0 && self.clock.now_nanos() >= deadline_at {
                        continue;
                    }
                    // Retry-budget gate: a retransmission spends a token;
                    // a dry bucket converts the remaining retries into an
                    // immediate timeout so retries cannot amplify an
                    // overload (DESIGN.md §15).
                    let exhausted = attempts > self.policy.max_retries;
                    let suppressed = !exhausted && {
                        let dest = self.outstanding.get(&req_id).map(|c| c.target.machine);
                        dest.is_some_and(|d| !self.spend_retry_token(d))
                    };
                    if exhausted || suppressed {
                        // A replica-routed read that exhausted its budget
                        // presumes the replica dead: drop it from the
                        // route and fall back to the primary with a fresh
                        // budget (safe to re-execute — reads are
                        // side-effect-free by contract).
                        let fallback = self
                            .outstanding
                            .get(&req_id)
                            .and_then(|c| c.read_primary.map(|p| (p, c.target)));
                        if let Some((primary, replica)) = fallback {
                            self.drop_replica_from_route(primary, replica);
                            if self.redirect_read_to_primary(req_id, primary, attempts) {
                                attempts = 1;
                                deadline = self.clock.now_nanos() + timeout;
                                continue;
                            }
                        }
                        let target = self
                            .outstanding
                            .remove(&req_id)
                            .map(|c| c.target)
                            .unwrap_or(ObjRef {
                                machine: self.machine,
                                object: DAEMON,
                            });
                        self.breaker_note(target.machine, true);
                        return Err(RemoteError::Timeout {
                            machine: target.machine,
                            object: target.object,
                            attempts,
                            millis: (self.clock.now_nanos() - started) / 1_000_000,
                        });
                    }
                    let pause = self.policy.backoff.delay(attempts);
                    if !pause.is_zero() {
                        let mut pause_deadline = self.clock.now_nanos() + pause.as_nanos() as u64;
                        if deadline_at != 0 {
                            pause_deadline = pause_deadline.min(deadline_at);
                        }
                        while !self.replies.contains_key(&req_id) {
                            if self.pump_until(pause_deadline).is_err() {
                                break;
                            }
                        }
                        if self.replies.contains_key(&req_id) {
                            continue; // answered during the backoff
                        }
                    }
                    if let Some(call) = self.outstanding.get(&req_id) {
                        let (dst, bytes) = (call.target.machine, call.bytes.clone());
                        if let Some(tracer) = &self.tracer {
                            if let Some(t) = &call.trace {
                                tracer.record(
                                    EventKind::ClientRetransmit,
                                    dst,
                                    t.trace_id,
                                    t.span,
                                    t.parent_span,
                                    req_id,
                                    attempts + 1,
                                    bytes.len() as u32,
                                    t.method.clone(),
                                );
                            }
                        }
                        let _ = self.net.send(self.machine, dst, bytes);
                        bump!(self.shared.stats, calls_retried);
                    }
                    attempts += 1;
                    deadline = self.clock.now_nanos() + timeout;
                }
            }
        }
    }

    /// Redirect the outstanding call `req_id` to `to`: rebuild the stored
    /// frame with the new target object id (everything else — `req_id`,
    /// payload, trace — identical, so the new home's dedup window treats
    /// retransmits normally) and send it. Returns false if the stored
    /// frame could not be rebuilt, in which case the `Moved` error
    /// surfaces to the caller instead.
    fn chase_forward(&mut self, req_id: u64, to: ObjRef, attempts: u32) -> bool {
        let Some(call) = self.outstanding.get_mut(&req_id) else {
            return false;
        };
        let believed = self.believed_epochs.get(&to).copied().unwrap_or(0);
        let rebuilt = match wire::from_bytes::<Frame>(&call.bytes) {
            Ok(Frame::Request {
                req_id,
                reply_to,
                payload,
                trace,
                epoch,
                deadline,
                ..
            }) => Frame::Request {
                req_id,
                reply_to,
                target: to.object,
                payload,
                trace,
                // A chase may cross a takeover: carry the freshest epoch
                // this node knows for the new address so the redirected
                // frame is not fenced for being stale.
                epoch: epoch.max(believed),
                // A chase always ends at a real object (a migrated home
                // or a replica's primary), never at a replica.
                rs_epoch: 0.into(),
                // The caller's budget does not reset on a chase.
                deadline,
            },
            _ => return false,
        };
        let bytes = wire::to_bytes(&rebuilt);
        call.target = to;
        call.bytes = bytes.clone();
        call.hops += 1;
        let trace = call.trace.clone();
        if let (Some(tracer), Some(t)) = (&self.tracer, &trace) {
            tracer.record(
                EventKind::ClientForward,
                to.machine,
                t.trace_id,
                t.span,
                t.parent_span,
                req_id,
                attempts,
                bytes.len() as u32,
                t.method.clone(),
            );
        }
        let _ = self.net.send(self.machine, to.machine, bytes);
        true
    }

    /// Re-issue the outstanding call `old_id` stamped with epoch `taught`,
    /// under a **fresh** request id — the server's dedup window has cached
    /// the `Fenced` verdict for the old id, so a same-id retry would only
    /// replay the rejection. Returns the new id, or `None` when the call
    /// must not be retried: the frame already carried `taught` or newer
    /// (the fence names the *current* incarnation — a lapsed lease or a
    /// poisoned home — and the caller has to re-resolve), or the stored
    /// frame cannot be rebuilt. Each retry strictly raises the frame's
    /// epoch, so the upgrade loop terminates.
    fn refence_call(&mut self, old_id: u64, taught: u64) -> Option<u64> {
        let call = self.outstanding.get(&old_id)?;
        if call.target.object == DAEMON || taught == 0 {
            return None;
        }
        let target = call.target;
        let (reply_to, target_obj, payload, trace, old_epoch, old_rs_epoch, old_deadline) =
            match wire::from_bytes::<Frame>(&call.bytes) {
                Ok(Frame::Request {
                    reply_to,
                    target,
                    payload,
                    trace,
                    epoch,
                    rs_epoch,
                    deadline,
                    ..
                }) => (reply_to, target, payload, trace, epoch, rs_epoch, deadline),
                _ => return None,
            };
        if old_epoch >= taught {
            return None;
        }
        self.note_epoch(target, taught);
        let new_id = self.alloc_req_id();
        let frame = Frame::Request {
            req_id: new_id,
            reply_to,
            target: target_obj,
            payload,
            trace,
            epoch: taught,
            rs_epoch: old_rs_epoch,
            // A refence is the same logical call: the budget carries over.
            deadline: old_deadline,
        };
        let bytes = wire::to_bytes(&frame);
        let mut call = self.outstanding.remove(&old_id)?;
        call.bytes = bytes.clone();
        let trace = call.trace.clone();
        self.outstanding.insert(new_id, call);
        if let (Some(tracer), Some(t)) = (&self.tracer, &trace) {
            tracer.record(
                EventKind::ClientForward,
                target.machine,
                t.trace_id,
                t.span,
                t.parent_span,
                new_id,
                1,
                bytes.len() as u32,
                t.method.clone(),
            );
        }
        let _ = self.net.send(self.machine, target.machine, bytes);
        Some(new_id)
    }

    /// Redirect the outstanding replica-routed read `req_id` to `primary`:
    /// rebuild the stored frame with the primary's object id, a zero
    /// replica-set epoch (the primary never checks one), and the freshest
    /// incarnation epoch this node knows for the primary. Same `req_id` —
    /// the primary is a different server, so its dedup window treats the
    /// frame as new. Clears the call's fallback so a late replayed
    /// verdict from the replica is ignored.
    fn redirect_read_to_primary(&mut self, req_id: u64, primary: ObjRef, attempts: u32) -> bool {
        if primary.machine >= self.machines() {
            return false;
        }
        let Some(call) = self.outstanding.get_mut(&req_id) else {
            return false;
        };
        let believed = self.believed_epochs.get(&primary).copied().unwrap_or(0);
        let rebuilt = match wire::from_bytes::<Frame>(&call.bytes) {
            Ok(Frame::Request {
                req_id,
                reply_to,
                payload,
                trace,
                epoch,
                deadline,
                ..
            }) => Frame::Request {
                req_id,
                reply_to,
                target: primary.object,
                payload,
                trace,
                epoch: epoch.max(believed),
                rs_epoch: 0.into(),
                // The read keeps its original budget at the primary.
                deadline,
            },
            _ => return false,
        };
        let bytes = wire::to_bytes(&rebuilt);
        call.target = primary;
        call.bytes = bytes.clone();
        call.read_primary = None;
        let trace = call.trace.clone();
        if let (Some(tracer), Some(t)) = (&self.tracer, &trace) {
            tracer.record(
                EventKind::ReplicaFallback,
                primary.machine,
                t.trace_id,
                t.span,
                t.parent_span,
                req_id,
                attempts,
                bytes.len() as u32,
                t.method.clone(),
            );
        }
        let _ = self.net.send(self.machine, primary.machine, bytes);
        true
    }

    // ------------------------------------------------------------------
    // Replica routes (client role; see crates/replica and DESIGN.md §11)
    // ------------------------------------------------------------------

    /// Install (or replace) the replica route for `primary`: subsequent
    /// calls through the primary's address whose method is in `reads` are
    /// served by the replica set instead. Typed callers prefer
    /// [`register_replica_route`](NodeCtx::register_replica_route).
    pub fn register_replica_route_raw(
        &mut self,
        primary: ObjRef,
        replicas: Vec<ObjRef>,
        rs_epoch: u64,
        reads: &'static [&'static str],
    ) {
        if reads.is_empty() || primary.object == DAEMON {
            return;
        }
        self.replica_routes.insert(
            primary,
            ReplicaRoute {
                replicas,
                rs_epoch,
                reads,
                next: 0,
            },
        );
    }

    /// Typed [`register_replica_route_raw`](NodeCtx::register_replica_route_raw):
    /// the read-verb set comes from the client type's `reads(...)`
    /// declaration.
    pub fn register_replica_route<C: RemoteClient>(
        &mut self,
        client: &C,
        replicas: Vec<ObjRef>,
        rs_epoch: u64,
    ) {
        self.register_replica_route_raw(client.obj_ref(), replicas, rs_epoch, C::READ_VERBS);
    }

    /// The replicas and replica-set epoch this node routes reads of
    /// `primary` to, if a route is installed.
    pub fn replica_route_of(&self, primary: ObjRef) -> Option<(Vec<ObjRef>, u64)> {
        self.replica_routes
            .get(&primary)
            .map(|r| (r.replicas.clone(), r.rs_epoch))
    }

    /// Remove the replica route for `primary`; reads go back to the
    /// primary itself.
    pub fn drop_replica_route(&mut self, primary: ObjRef) {
        self.replica_routes.remove(&primary);
    }

    fn drop_replica_from_route(&mut self, primary: ObjRef, replica: ObjRef) {
        if let Some(route) = self.replica_routes.get_mut(&primary) {
            route.replicas.retain(|r| *r != replica);
        }
    }

    // ------------------------------------------------------------------
    // Daemon conveniences (object lifecycle, persistence, introspection)
    // ------------------------------------------------------------------

    /// `new(machine m) class(args)`: construct an object remotely, blocking
    /// until the constructor finishes.
    pub fn create_object(
        &mut self,
        machine: MachineId,
        class: &str,
        args: Vec<u8>,
    ) -> RemoteResult<ObjRef> {
        let req_id = self.create_object_start(machine, class, args)?;
        let bytes = self.wait_raw(req_id)?;
        let object: u64 = wire::from_bytes(&bytes)?;
        Ok(ObjRef { machine, object })
    }

    /// Async construction by class name; pair with
    /// [`PendingClient`] via the typed wrapper below.
    pub fn create_object_start(
        &mut self,
        machine: MachineId,
        class: &str,
        args: Vec<u8>,
    ) -> RemoteResult<u64> {
        self.start_method_raw(ObjRef::daemon(machine), "create", |w| {
            Wire::encode(&class.to_string(), w);
            Wire::encode(&Bytes(args), w);
        })
    }

    /// Typed remote construction (sync). Prefer the generated
    /// `Client::new_on` wrappers; this is their engine.
    pub fn create<C: RemoteClient>(
        &mut self,
        machine: MachineId,
        args: Vec<u8>,
    ) -> RemoteResult<C> {
        Ok(C::from_ref(self.create_object(machine, C::CLASS, args)?))
    }

    /// Typed remote construction (async).
    pub fn create_async<C: RemoteClient>(
        &mut self,
        machine: MachineId,
        args: Vec<u8>,
    ) -> RemoteResult<PendingClient<C>> {
        let req_id = self.create_object_start(machine, C::CLASS, args)?;
        Ok(PendingClient::new(machine, req_id))
    }

    /// `delete ptr`: destroy a remote object, running its destructor and
    /// terminating its process.
    pub fn destroy(&mut self, r: ObjRef) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(r.machine), "destroy", |w| {
            Wire::encode(&r.object, w)
        })
    }

    /// Async destroy.
    pub fn destroy_async(&mut self, r: ObjRef) -> RemoteResult<Pending<()>> {
        self.start_method(ObjRef::daemon(r.machine), "destroy", |w| {
            Wire::encode(&r.object, w)
        })
    }

    /// Liveness probe of a machine's daemon.
    pub fn ping(&mut self, machine: MachineId) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(machine), "ping", |_| {})
    }

    /// Fetch a machine's runtime counters.
    pub fn stats_of(&mut self, machine: MachineId) -> RemoteResult<NodeStats> {
        self.call_method(ObjRef::daemon(machine), "stats", |_| {})
    }

    /// Serialize a remote object's state (persistence, §5).
    pub fn snapshot_of(&mut self, r: ObjRef) -> RemoteResult<Vec<u8>> {
        let b: Bytes = self.call_method(ObjRef::daemon(r.machine), "snapshot", |w| {
            Wire::encode(&r.object, w)
        })?;
        Ok(b.0)
    }

    /// §5 deactivation: snapshot `r` under `key` on its machine, then
    /// destroy the live process. Reactivate later with [`activate`].
    ///
    /// [`activate`]: NodeCtx::activate
    pub fn deactivate(&mut self, r: ObjRef, key: &str) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(r.machine), "deactivate", |w| {
            Wire::encode(&r.object, w);
            Wire::encode(&key.to_string(), w);
        })
    }

    /// §5 activation: re-create the process stored under `key` on
    /// `machine`. The snapshot remains stored (activate is not destructive).
    pub fn activate<C: RemoteClient>(&mut self, machine: MachineId, key: &str) -> RemoteResult<C> {
        let object: u64 = self.call_method(ObjRef::daemon(machine), "activate", |w| {
            Wire::encode(&key.to_string(), w);
        })?;
        Ok(C::from_ref(ObjRef { machine, object }))
    }

    /// Takeover activation: restore the snapshot under `key` on `machine`
    /// with the incarnation registered at `epoch` before any call can
    /// reach it. This node also records the epoch belief so its own calls
    /// to the fresh incarnation are stamped correctly.
    pub fn activate_fenced<C: RemoteClient>(
        &mut self,
        machine: MachineId,
        key: &str,
        epoch: u64,
    ) -> RemoteResult<C> {
        let r = self.activate_fenced_raw(machine, key, epoch)?;
        Ok(C::from_ref(r))
    }

    /// Untyped [`activate_fenced`](NodeCtx::activate_fenced) — the
    /// supervisor's form, which knows objects by name and snapshot rather
    /// than by compile-time class.
    pub fn activate_fenced_raw(
        &mut self,
        machine: MachineId,
        key: &str,
        epoch: u64,
    ) -> RemoteResult<ObjRef> {
        let object: u64 = self.call_method(ObjRef::daemon(machine), "activate_fenced", |w| {
            Wire::encode(&key.to_string(), w);
            Wire::encode(&epoch, w);
        })?;
        let r = ObjRef { machine, object };
        self.note_epoch(r, epoch);
        Ok(r)
    }

    /// Register `r` for epoch fencing at `epoch` on its home machine
    /// (supervision enrollment; see DESIGN.md §10).
    pub fn set_epoch_of(&mut self, r: ObjRef, epoch: u64) -> RemoteResult<()> {
        let out: RemoteResult<()> = self.call_method(ObjRef::daemon(r.machine), "set_epoch", |w| {
            Wire::encode(&r.object, w);
            Wire::encode(&epoch, w);
        });
        if out.is_ok() {
            self.note_epoch(r, epoch);
        }
        out
    }

    /// Fence the (possibly still live) incarnation at `old` after a
    /// takeover: its machine destroys the local copy, records `epoch`,
    /// and forwards stale pointers to `to`.
    pub fn fence_object(&mut self, old: ObjRef, epoch: u64, to: ObjRef) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(old.machine), "fence", |w| {
            Wire::encode(&old.object, w);
            Wire::encode(&epoch, w);
            Wire::encode(&to, w);
        })
    }

    /// Fire one supervisor heartbeat at `machine` without waiting: the
    /// reply (collected with [`try_take_reply`](NodeCtx::try_take_reply))
    /// is the detector's liveness sample, and its arrival at the far side
    /// renewed that machine's serving lease for `ttl_millis`.
    pub fn start_heartbeat(&mut self, machine: MachineId, ttl_millis: u64) -> RemoteResult<u64> {
        self.start_method_raw(ObjRef::daemon(machine), "heartbeat", |w| {
            Wire::encode(&ttl_millis, w);
        })
    }

    /// Remove a stored snapshot; true if one existed.
    pub fn drop_snapshot(&mut self, machine: MachineId, key: &str) -> RemoteResult<bool> {
        self.call_method(ObjRef::daemon(machine), "drop_snapshot", |w| {
            Wire::encode(&key.to_string(), w);
        })
    }

    /// Store a snapshot taken elsewhere under `key` on `machine` — the
    /// replication half of crash recovery. The snapshot can later be
    /// [`activate`](NodeCtx::activate)d on that machine even though the
    /// object never lived there.
    pub fn put_snapshot(
        &mut self,
        machine: MachineId,
        key: &str,
        class: &str,
        state: Vec<u8>,
    ) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(machine), "put_snapshot", |w| {
            Wire::encode(&key.to_string(), w);
            Wire::encode(&class.to_string(), w);
            Wire::encode(&Bytes(state), w);
        })
    }

    /// Snapshot a live object and store a copy under `key` on each of
    /// `backups`. If the object's home machine later crashes, any backup
    /// can reactivate it (see
    /// [`resolve_or_activate_supervised`](crate::naming::resolve_or_activate_supervised)).
    pub fn replicate_snapshot<C: RemoteClient>(
        &mut self,
        client: &C,
        key: &str,
        backups: &[MachineId],
    ) -> RemoteResult<()> {
        let state = self.snapshot_of(client.obj_ref())?;
        for &m in backups {
            self.put_snapshot(m, key, C::CLASS, state.clone())?;
        }
        Ok(())
    }

    /// Ask a machine's serve loop to stop (used by cluster shutdown).
    pub fn shutdown_machine(&mut self, machine: MachineId) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(machine), "shutdown", |_| {})
    }

    // ------------------------------------------------------------------
    // Live migration (placement subsystem)
    // ------------------------------------------------------------------

    /// Live-migrate a **persistent** object to `target`, transparently to
    /// its callers: quiesce (the source parks the object; its calls
    /// defer), transfer (snapshot shipped through this coordinator),
    /// reactivate on the target, commit (a forwarding stub replaces the
    /// object at the old address; parked and in-flight calls redirect and
    /// execute exactly once at the new home). Stale pointers on other
    /// machines chase at most one forward before needing to re-resolve.
    ///
    /// On failure before the commit the object is rolled back — restored
    /// at the source under its original id — so old pointers stay valid
    /// and the object is never lost. Returns the object's new address.
    pub fn migrate(&mut self, obj: ObjRef, target: MachineId) -> RemoteResult<ObjRef> {
        if target >= self.machines() {
            return Err(RemoteError::BadMachine {
                machine: target,
                machines: self.machines(),
            });
        }
        if obj.object == DAEMON {
            return Err(RemoteError::app("the daemon cannot migrate"));
        }
        let obj = self.forwarded_target(obj);
        if obj.machine == target {
            return Ok(obj); // already home
        }
        // The move's control-plane RMIs must survive a lossy fabric even
        // under a caller's single-shot policy: a lost commit would strand
        // the object in quiesce forever.
        let saved_policy = self.policy;
        self.policy = saved_policy.with_min_retries(3);
        let result = match self.migrate_inner(obj, target) {
            // The ref was stale (someone else moved it first): follow the
            // forward once and retry — or accept it if it already ended up
            // on the requested machine.
            Err(RemoteError::Moved { to }) => {
                self.note_move(obj, to);
                if to.machine == target {
                    Ok(to)
                } else {
                    self.migrate_inner(to, target)
                }
            }
            r => r,
        };
        self.policy = saved_policy;
        result
    }

    fn migrate_inner(&mut self, obj: ObjRef, target: MachineId) -> RemoteResult<ObjRef> {
        let span = self.migration_marker(EventKind::MigrateBegin, obj.machine, 0, 0);
        // 1. Quiesce + snapshot at the source.
        let bundle: MigrationPayload =
            self.call_method(ObjRef::daemon(obj.machine), "migrate_out", |w| {
                Wire::encode(&obj.object, w);
            })?;
        self.migration_marker(
            EventKind::MigrateTransfer,
            target,
            span,
            bundle.state.0.len() as u32,
        );
        // 2. Reactivate on the target from the shipped state.
        let adopted: RemoteResult<u64> =
            self.call_method(ObjRef::daemon(target), "adopt_state", |w| {
                Wire::encode(&bundle.class, w);
                Wire::encode(&bundle.state, w);
            });
        match adopted {
            Ok(object) => {
                let new_ref = ObjRef {
                    machine: target,
                    object,
                };
                // 3. Commit: install the forwarding stub at the source.
                let committed: RemoteResult<()> =
                    self.call_method(ObjRef::daemon(obj.machine), "migrate_commit", |w| {
                        Wire::encode(&obj.object, w);
                        Wire::encode(&new_ref, w);
                    });
                match committed {
                    Ok(()) => {
                        self.migration_marker(EventKind::MigrateCommit, target, span, 0);
                        self.note_move(obj, new_ref);
                        Ok(new_ref)
                    }
                    Err(e) => {
                        // Commit unreachable: the fresh copy must not
                        // become a second live identity. Undo it and try
                        // to restore the source; if the source is down,
                        // its parked state survives for a later rollback.
                        let _ = self.destroy(new_ref);
                        let _: RemoteResult<()> = self.call_method(
                            ObjRef::daemon(obj.machine),
                            "migrate_rollback",
                            |w| {
                                Wire::encode(&obj.object, w);
                            },
                        );
                        self.migration_marker(EventKind::MigrateRollback, obj.machine, span, 0);
                        Err(e)
                    }
                }
            }
            Err(e) => {
                // 2'. Target dead or rejected the state: roll back — the
                // object is restored at the source under its original id.
                self.call_method::<()>(ObjRef::daemon(obj.machine), "migrate_rollback", |w| {
                    Wire::encode(&obj.object, w);
                })?;
                self.migration_marker(EventKind::MigrateRollback, obj.machine, span, 0);
                Err(e)
            }
        }
    }

    /// Record a coordinator-side migration lifecycle marker. Pass span 0
    /// to open the move's span; the returned id threads the later markers
    /// of the same move together.
    fn migration_marker(&mut self, kind: EventKind, peer: MachineId, span: u64, bytes: u32) -> u64 {
        if self.tracer.is_none() {
            return span;
        }
        let span = if span == 0 { self.alloc_span() } else { span };
        let trace_id = self.current_trace.map(|(tid, _)| tid).unwrap_or(span);
        if let Some(tracer) = &self.tracer {
            tracer.record(kind, peer, trace_id, span, 0, 0, 0, bytes, "migrate".into());
        }
        span
    }

    /// Per-object served-call counters of `machine` (sorted by object id)
    /// — the placement subsystem's load probe.
    pub fn loads_of(&mut self, machine: MachineId) -> RemoteResult<Vec<(u64, u64)>> {
        self.call_method(ObjRef::daemon(machine), "loads", |_| {})
    }

    // ------------------------------------------------------------------
    // Replication control plane (driven by crates/replica's manager)
    // ------------------------------------------------------------------

    /// Materialize a read replica of `class` on `machine` from `state`,
    /// mirroring `primary` at `rs_epoch` under a `lease_millis` coherence
    /// lease. Returns the replica's address.
    pub fn replica_adopt(
        &mut self,
        machine: MachineId,
        class: &str,
        state: Vec<u8>,
        primary: ObjRef,
        rs_epoch: u64,
        lease_millis: u64,
    ) -> RemoteResult<ObjRef> {
        let object: u64 = self.call_method(ObjRef::daemon(machine), "replica_adopt", |w| {
            Wire::encode(&class.to_string(), w);
            Wire::encode(&Bytes(state), w);
            Wire::encode(&primary, w);
            Wire::encode(&rs_epoch, w);
            Wire::encode(&lease_millis, w);
        })?;
        Ok(ObjRef { machine, object })
    }

    /// Push `state` at `rs_epoch` to the replica at `r`, renewing its
    /// coherence lease.
    pub fn replica_sync_to(
        &mut self,
        r: ObjRef,
        state: Vec<u8>,
        rs_epoch: u64,
        lease_millis: u64,
    ) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(r.machine), "replica_sync", |w| {
            Wire::encode(&r.object, w);
            Wire::encode(&Bytes(state), w);
            Wire::encode(&rs_epoch, w);
            Wire::encode(&lease_millis, w);
        })
    }

    /// Renew the coherence lease of the replica at `r` if it is exactly at
    /// `rs_epoch`; `false` means it drifted and needs a full sync.
    pub fn replica_renew(
        &mut self,
        r: ObjRef,
        rs_epoch: u64,
        lease_millis: u64,
    ) -> RemoteResult<bool> {
        self.call_method(ObjRef::daemon(r.machine), "replica_renew", |w| {
            Wire::encode(&r.object, w);
            Wire::encode(&rs_epoch, w);
            Wire::encode(&lease_millis, w);
        })
    }

    /// Tear down the replica at `r` (idempotent); a forwarding stub toward
    /// its primary heals routes that still point there.
    pub fn replica_drop(&mut self, r: ObjRef) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(r.machine), "replica_drop", |w| {
            Wire::encode(&r.object, w);
        })
    }

    /// Install the primary-side replica-set record on `primary`'s machine.
    pub fn replica_attach(
        &mut self,
        primary: ObjRef,
        replicas: Vec<ObjRef>,
        rs_epoch: u64,
        write_through: bool,
        lease_millis: u64,
    ) -> RemoteResult<()> {
        self.call_method(ObjRef::daemon(primary.machine), "replica_attach", |w| {
            Wire::encode(&primary.object, w);
            Wire::encode(&replicas, w);
            Wire::encode(&rs_epoch, w);
            Wire::encode(&write_through, w);
            Wire::encode(&lease_millis, w);
        })
    }

    /// Replication role and coherence position of the object at `r`.
    pub fn replica_status_of(&mut self, r: ObjRef) -> RemoteResult<ReplicaStatus> {
        self.call_method(ObjRef::daemon(r.machine), "replica_status", |w| {
            Wire::encode(&r.object, w);
        })
    }

    /// Promote the replica at `r` into a normal object fenced at `epoch`
    /// (primary-death failover; pair with a directory CAS and a
    /// `replica_attach` of the surviving set).
    pub fn replica_promote(&mut self, r: ObjRef, epoch: u64) -> RemoteResult<()> {
        let out: RemoteResult<()> =
            self.call_method(ObjRef::daemon(r.machine), "replica_promote", |w| {
                Wire::encode(&r.object, w);
                Wire::encode(&epoch, w);
            });
        if out.is_ok() {
            self.note_epoch(r, epoch);
        }
        out
    }

    /// Record a replica lifecycle marker in the flight recorder (no-op
    /// when tracing is off). `peer` is the machine the event concerns;
    /// `bytes` carries the marker's scalar payload (replica-set epoch, or
    /// replica count for scale events).
    pub fn replica_marker(&mut self, kind: EventKind, peer: MachineId, bytes: u32) {
        if self.tracer.is_none() {
            return;
        }
        let span = self.alloc_span();
        if let Some(tracer) = &self.tracer {
            tracer.record(kind, peer, span, span, 0, 0, 0, bytes, "replicate".into());
        }
    }

    /// Record a supervision lifecycle marker in the flight recorder (no-op
    /// when tracing is off). `peer` is the machine the event is about;
    /// `bytes` carries the marker's scalar payload (phi ×1000 for
    /// suspicion events, MTTR in microseconds for reactivations).
    pub fn supervision_marker(&mut self, kind: EventKind, peer: MachineId, bytes: u32) {
        if self.tracer.is_none() {
            return;
        }
        let span = self.alloc_span();
        if let Some(tracer) = &self.tracer {
            tracer.record(kind, peer, span, span, 0, 0, 0, bytes, "supervise".into());
        }
    }

    // ------------------------------------------------------------------
    // Resolution cache (used by crate::naming's supervised resolution)
    // ------------------------------------------------------------------

    /// Cached result of a previous symbolic-address resolution, if any.
    /// Callers must treat a hit as a hint and verify liveness — see
    /// [`resolve_or_activate_supervised`](crate::naming::resolve_or_activate_supervised).
    /// Hits and misses feed the `dir_cache_hits` / `dir_cache_misses`
    /// counters in [`NodeStats`] — the measure of how
    /// much resolution traffic the cache keeps off the control plane.
    pub fn cached_resolve(&self, addr: &str) -> Option<ObjRef> {
        let hit = self.resolve_cache.get(addr).copied();
        if hit.is_some() {
            bump!(self.shared.stats, dir_cache_hits);
        } else {
            bump!(self.shared.stats, dir_cache_misses);
        }
        hit
    }

    /// Remember a verified resolution for `addr`.
    pub fn cache_resolve(&mut self, addr: &str, r: ObjRef) {
        if self.resolve_cache.len() >= RESOLVE_CACHE_CAPACITY
            && !self.resolve_cache.contains_key(addr)
        {
            self.resolve_cache.clear();
        }
        self.resolve_cache.insert(addr.to_string(), r);
    }

    /// Drop a cached resolution that turned out stale (its machine
    /// crashed, or the pointer double-forwarded).
    pub fn invalidate_resolve(&mut self, addr: &str) {
        self.resolve_cache.remove(addr);
    }

    /// Re-point every cached resolution at `old` to `new` — called when a
    /// `Moved` redirect teaches this node that the object migrated, so
    /// names resolving to it keep hitting the cache at the new home.
    fn rebind_resolutions(&mut self, old: ObjRef, new: ObjRef) {
        for v in self.resolve_cache.values_mut() {
            if *v == old {
                *v = new;
            }
        }
    }

    /// Drop every cached resolution pointing at `stale` — called when a
    /// surfaced `Fenced` or `StaleReplica` verdict proves the pointer no
    /// longer names the object's current incarnation.
    fn purge_resolutions_to(&mut self, stale: ObjRef) {
        self.resolve_cache.retain(|_, v| *v != stale);
    }

    // ------------------------------------------------------------------
    // Serving (server role)
    // ------------------------------------------------------------------

    /// The request currently being dispatched, if any. Objects that defer
    /// their replies capture this to answer later via [`send_reply`].
    ///
    /// [`send_reply`]: NodeCtx::send_reply
    pub fn current_call(&self) -> Option<CallInfo> {
        self.current_call
    }

    /// Send a response for a call whose dispatch returned
    /// [`DispatchResult::NoReply`].
    pub fn send_reply(&mut self, call: CallInfo, result: RemoteResult<Vec<u8>>) {
        self.send_response(call.reply_to, call.req_id, result);
    }

    /// Serve incoming requests until `dur` elapses. Lets a driver thread
    /// that hosts objects make them reachable while it has nothing else to
    /// do. Machines never need this — their serve loop runs continuously.
    pub fn serve_for(&mut self, dur: Duration) {
        let deadline = self.clock.now_nanos() + dur.as_nanos() as u64;
        // Re-read the clock before every receive: handling a packet can
        // advance time (draining a batch under virtual time, a costed
        // dispatch under real time) past the deadline, and under a steady
        // inbound stream the receive below would otherwise keep returning
        // packets — and this loop keep serving them — long after the
        // window closed.
        while self.clock.now_nanos() < deadline {
            if self.pump_until(deadline).is_err() {
                break;
            }
        }
    }

    /// Drain whatever is already in the inbox without blocking. The
    /// supervisor's step loop interleaves this with its own bookkeeping:
    /// heartbeat replies land in the reply table for
    /// [`try_take_reply`](NodeCtx::try_take_reply) while any requests
    /// aimed at this node still get served.
    pub fn poll(&mut self) {
        loop {
            let pkt = match &self.inbox {
                Some(rx) => rx.try_recv().ok(),
                None => None,
            };
            match pkt {
                Some(p) => self.handle_packet(p),
                None => break,
            }
        }
        self.drain_deferred();
    }

    /// Make one unit of blocked-wait progress, or report the deadline
    /// passed. On a dispatcher/driver lane that means receiving and
    /// handling one packet then retrying deferred work; on a worker lane
    /// it means taking one control message — a routed response, or a nudge
    /// that lets this lane run one scheduler task **re-entrantly** while
    /// its own call is still in flight (the M:N analogue of the classic
    /// engine serving other objects while blocked).
    fn pump_until(&mut self, deadline: u64) -> Result<(), ()> {
        if self.inbox.is_some() {
            let recvd = {
                let rx = self.inbox.as_ref().expect("checked above");
                self.clock.recv_deadline_nanos(rx, self.machine, deadline)
            };
            match recvd {
                Ok(pkt) => {
                    self.handle_packet(pkt);
                    self.drain_deferred();
                    Ok(())
                }
                Err(_) => Err(()),
            }
        } else {
            // Routed responses and control first; when the channel is dry,
            // serve the machine's queues before parking. The scan is what
            // makes nudges race-free: a task admitted while this lane was
            // draining control messages may have had its Nudge consumed as
            // a no-op above (worker_loop runs one task per wakeup), and a
            // task admitted *after* this scan sends a fresh channel message
            // the park below sees immediately — so no token ever strands
            // in the injector behind a blocked lane.
            let early = {
                let lane = self.lane.as_ref().expect("lane-less NodeCtx");
                lane.rx.try_recv().ok()
            };
            let recvd = match early {
                Some(msg) => Ok(msg),
                None => {
                    if let Some(obj) = self.find_task() {
                        self.run_object(obj);
                        return Ok(());
                    }
                    let lane = self.lane.as_ref().expect("lane-less NodeCtx");
                    self.clock
                        .recv_any_deadline_nanos(&lane.rx, lane.label, deadline)
                }
            };
            match recvd {
                Ok(WorkerMsg::Packet(pkt)) => {
                    self.handle_packet(pkt);
                    Ok(())
                }
                Ok(WorkerMsg::Nudge) => {
                    if let Some(obj) = self.find_task() {
                        self.run_object(obj);
                    }
                    Ok(())
                }
                Ok(WorkerMsg::Shutdown) => {
                    self.alive = false;
                    Ok(())
                }
                Err(_) => Err(()),
            }
        }
    }

    /// Take the reply for `req_id` if it has arrived — the non-blocking
    /// sibling of [`wait_raw`](NodeCtx::wait_raw), for calls issued with
    /// [`start_method_raw`](NodeCtx::start_method_raw) whose latency the
    /// caller measures itself (heartbeats). No retransmission, no `Moved`
    /// chase: absent replies are simply not there yet.
    pub fn try_take_reply(&mut self, req_id: u64) -> Option<RemoteResult<Vec<u8>>> {
        let result = self.replies.remove(&req_id)?;
        self.outstanding.remove(&req_id);
        Some(result)
    }

    /// Abandon an in-flight call: its reply, if it ever arrives, is
    /// dropped on the floor instead of accumulating. Heartbeats to a dead
    /// machine are abandoned once the detector has made up its mind.
    pub fn abandon_call(&mut self, req_id: u64) {
        self.outstanding.remove(&req_id);
        self.replies.remove(&req_id);
    }

    /// Number of live objects on this node (excluding the daemon).
    pub fn objects_live(&self) -> usize {
        self.shared.objects_live()
    }

    /// This node's own counters, without a network round trip — what
    /// [`stats_of`](NodeCtx::stats_of) would report about this machine.
    /// The driver uses it to read its client-role counters
    /// (`calls_retried`) after a chaotic run.
    pub fn local_stats(&self) -> NodeStats {
        self.shared.stats.snapshot(
            self.shared.objects_live() as u64,
            self.snapshots.len() as u64,
        )
    }

    pub(crate) fn serve_loop(&mut self) {
        while self.alive {
            let recvd = {
                let rx = self
                    .inbox
                    .as_ref()
                    .expect("serve_loop runs on the dispatcher lane");
                self.clock.recv(rx, self.machine)
            };
            match recvd {
                Ok(pkt) => {
                    self.handle_packet(pkt);
                    self.drain_deferred();
                }
                Err(_) => break,
            }
        }
        // Dispatcher exit stops the machine's worker pool. Workers drain
        // their channel before parking, so the message is seen even if one
        // is currently blocked inside a wait.
        if let Sched::Pool(pool) = &self.shared.sched {
            for i in 0..pool.workers() {
                pool.wake(i, WorkerMsg::Shutdown, &self.clock);
            }
        }
    }

    /// A worker lane's main loop: drain control messages, then scan the
    /// queues (own deque → machine injector → seeded steal sweep over
    /// siblings); park idle when everything is dry.
    pub(crate) fn worker_loop(&mut self) {
        loop {
            // Control first: routed responses and shutdown must not sit
            // behind queue scans.
            loop {
                let msg = match &self.lane {
                    Some(l) => l.rx.try_recv().ok(),
                    None => return,
                };
                match msg {
                    Some(WorkerMsg::Packet(pkt)) => self.handle_packet(pkt),
                    Some(WorkerMsg::Nudge) => {}
                    Some(WorkerMsg::Shutdown) => return,
                    None => break,
                }
            }
            if !self.alive {
                return;
            }
            if let Some(obj) = self.find_task() {
                self.run_object(obj);
                continue;
            }
            // Nothing runnable: advertise idleness, then re-scan — a task
            // injected between the scan above and the flag below saw no
            // idle workers and nudged everyone, but one injected *after*
            // the flag nudges us specifically, so this second scan is what
            // closes the lost-wakeup window — and only then park.
            let (index, label) = {
                let l = self.lane.as_ref().expect("worker lane");
                (l.index, l.label)
            };
            if let Sched::Pool(pool) = &self.shared.sched {
                pool.set_idle(index, true);
            }
            if let Some(obj) = self.find_task() {
                if let Sched::Pool(pool) = &self.shared.sched {
                    pool.set_idle(index, false);
                }
                self.run_object(obj);
                continue;
            }
            let msg = {
                let l = self.lane.as_ref().expect("worker lane");
                self.clock.recv_any(&l.rx, label)
            };
            if let Sched::Pool(pool) = &self.shared.sched {
                pool.set_idle(index, false);
            }
            match msg {
                Ok(WorkerMsg::Packet(pkt)) => self.handle_packet(pkt),
                Ok(WorkerMsg::Nudge) => {}
                Ok(WorkerMsg::Shutdown) | Err(_) => return,
            }
        }
    }

    /// Pop the next runnable object: own deque first (locality), then the
    /// machine's injector (fresh admissions), then steal from siblings in
    /// the seed-determined order for this `(worker, round)`.
    fn find_task(&mut self) -> Option<ObjectId> {
        let index = self.lane.as_ref()?.index;
        if let Some(obj) = self.lane.as_ref().expect("just checked").deque.pop() {
            return Some(obj);
        }
        let Sched::Pool(pool) = &self.shared.sched else {
            return None;
        };
        if let Some(obj) = pool.injector.pop() {
            return Some(obj);
        }
        let round = self.steal_round;
        self.steal_round = round.wrapping_add(1);
        for victim in pool.steal_order.victims(index, round, pool.stealers.len()) {
            if victim == index {
                continue;
            }
            loop {
                match pool.stealers[victim].steal() {
                    sched::Steal::Success(obj) => return Some(obj),
                    sched::Steal::Empty => break,
                    sched::Steal::Retry => continue,
                }
            }
        }
        None
    }

    /// Hand an object with fresh mailbox work to the execution layer: the
    /// worker pool's injector when one is attached, an immediate inline
    /// run otherwise (the classic single-threaded profile, where this call
    /// happens at the same point the old engine dispatched the request).
    fn submit_task(&mut self, target: ObjectId) {
        if let Sched::Pool(pool) = &self.shared.sched {
            pool.injector.push(target);
            pool.nudge(&self.clock);
            return;
        }
        self.run_object(target);
    }

    fn handle_packet(&mut self, pkt: Packet) {
        let frame = match wire::from_bytes::<Frame>(&pkt.payload) {
            Ok(f) => f,
            Err(_) => return, // malformed; nothing to reply to
        };
        match frame {
            Frame::Request {
                req_id,
                reply_to,
                target,
                payload,
                trace,
                epoch,
                rs_epoch,
                deadline,
            } => {
                // The admit-verdict events all want the method name; parse
                // it from the payload head only when tracing is on.
                let traced_method = self.tracer.as_ref().map(|_| payload_method(&payload.0));
                let record_admit = |node: &NodeCtx, kind: EventKind| {
                    if let (Some(tracer), Some(method)) = (&node.tracer, &traced_method) {
                        tracer.record(
                            kind,
                            reply_to,
                            trace.trace_id.0,
                            trace.span.0,
                            0,
                            req_id,
                            0,
                            0,
                            method.clone(),
                        );
                    }
                };
                // Requests arriving at a worker lane would mean the fabric
                // delivered to a non-endpoint; drop defensively.
                if self.inbox.is_none() && self.lane.is_some() {
                    debug_assert!(false, "request frame delivered to a worker lane");
                    return;
                }
                // At-most-once execution: a retransmitted request either
                // replays its cached response or is dropped while the
                // original is still in flight. Only genuinely new requests
                // reach dispatch.
                match self.shared.dedup.lock().admit((reply_to, req_id)) {
                    DedupVerdict::Done(result) => {
                        bump!(self.shared.stats, dup_replayed);
                        record_admit(self, EventKind::ServerAdmitDone);
                        let frame = Frame::Response {
                            req_id,
                            result: result.map(Bytes),
                        };
                        let _ = self
                            .net
                            .send(self.machine, reply_to, wire::to_bytes(&frame));
                        return;
                    }
                    DedupVerdict::InFlight => {
                        bump!(self.shared.stats, dup_suppressed);
                        record_admit(self, EventKind::ServerAdmitInFlight);
                        return;
                    }
                    DedupVerdict::New => {
                        record_admit(self, EventKind::ServerAdmitNew);
                        if let Some(method) = &traced_method {
                            // Bound the table against requests that never
                            // get a reply (abandoned deferred calls): a
                            // flight-recorder table may drop stale entries,
                            // never grow without limit.
                            let mut spans = self.shared.serving_spans.lock();
                            if spans.len() >= 65_536 {
                                spans.clear();
                            }
                            spans.insert(
                                (reply_to, req_id),
                                CallTrace {
                                    trace_id: trace.trace_id.0,
                                    span: trace.span.0,
                                    parent_span: 0,
                                    method: method.clone(),
                                },
                            );
                        }
                    }
                }
                let req = IncomingReq {
                    req_id,
                    reply_to,
                    target,
                    payload: payload.0,
                    trace_id: trace.trace_id.0,
                    span: trace.span.0,
                    epoch,
                    rs_epoch: rs_epoch.0,
                    deadline,
                    admitted_at: self.clock.now_nanos(),
                };
                match self.try_serve(req) {
                    ServeOutcome::Served => {}
                    ServeOutcome::Defer(req) => {
                        bump!(self.shared.stats, calls_deferred);
                        if let (Some(tracer), Some(method)) = (&self.tracer, &traced_method) {
                            tracer.record(
                                EventKind::ServerDefer,
                                req.reply_to,
                                req.trace_id,
                                req.span,
                                0,
                                req.req_id,
                                0,
                                0,
                                method.clone(),
                            );
                        }
                        self.push_deferred(req);
                    }
                }
            }
            Frame::Response { req_id, result } => {
                // Responses for calls issued by another lane of this
                // machine (workers allocate req_ids on their own residue
                // class mod `stride`) are routed there raw; the lane
                // decodes and files them itself.
                let lane = req_id % self.stride;
                if lane != self.lane_no {
                    if let Sched::Pool(pool) = &self.shared.sched {
                        let w = lane as usize;
                        if w >= 1 && w <= pool.workers() {
                            pool.wake(w - 1, WorkerMsg::Packet(pkt), &self.clock);
                        }
                        // Lane-0 responses reaching a worker (or an
                        // out-of-range lane) have nobody waiting: drop.
                    }
                    return;
                }
                // Replies for calls nobody is waiting on anymore (timed
                // out, abandoned) are dropped, not hoarded: the reply
                // table only ever holds answers someone can still take.
                if self.outstanding.contains_key(&req_id) {
                    self.replies.insert(req_id, result.map(|b| b.0));
                }
            }
        }
    }

    /// Park a request in this lane's deferred queue, keeping the shared
    /// count of parked daemon verbs exact — workers read it to know when
    /// the dispatcher needs a retry kick (see `run_object`).
    fn push_deferred(&mut self, req: IncomingReq) {
        if req.target == DAEMON {
            self.shared.daemon_parked.fetch_add(1, Ordering::Relaxed);
        }
        self.deferred.push_back(req);
    }

    fn drain_deferred(&mut self) {
        loop {
            let mut progressed = false;
            for _ in 0..self.deferred.len() {
                let Some(req) = self.deferred.pop_front() else {
                    break;
                };
                if req.target == DAEMON {
                    self.shared.daemon_parked.fetch_sub(1, Ordering::Relaxed);
                }
                match self.try_serve(req) {
                    ServeOutcome::Served => progressed = true,
                    ServeOutcome::Defer(req) => self.push_deferred(req),
                }
            }
            if !progressed || self.deferred.is_empty() {
                break;
            }
        }
    }

    fn try_serve(&mut self, req: IncomingReq) -> ServeOutcome {
        if req.target == DAEMON {
            self.serve_daemon(req)
        } else {
            self.serve_object(req)
        }
    }

    /// Admission (dispatcher lane): park the request in its target's
    /// mailbox and mint a task token if the object does not already have
    /// one. All gate checking — fences, leases, replica coherence — now
    /// happens at **execution** time in `next_step`, under the mailbox's
    /// shard lock, so a gate change landing between admission and
    /// execution still wins.
    fn serve_object(&mut self, req: IncomingReq) -> ServeOutcome {
        let target = req.target;
        // Admission-time deadline check: work whose caller has already
        // given up is dropped *before* it costs a mailbox slot. Checked
        // again at execution time in `next_step` — time queued counts.
        if req.deadline != 0 && req.admitted_at >= req.deadline {
            let overshoot = req.admitted_at - req.deadline;
            bump!(self.shared.stats, calls_deadline_expired);
            self.record_overload_marker(
                EventKind::ServerDeadlineDrop,
                req.reply_to,
                (overshoot / 1_000).min(u32::MAX as u64) as u32,
            );
            self.send_response(
                req.reply_to,
                req.req_id,
                Err(RemoteError::DeadlineExceeded {
                    elapsed_nanos: overshoot,
                }),
            );
            return ServeOutcome::Served;
        }
        let deferred = (self.tracer.is_some() && req.span != 0).then(|| {
            (
                req.reply_to,
                req.trace_id,
                req.span,
                req.req_id,
                payload_method(&req.payload),
            )
        });
        // Admission control (DESIGN.md §15): a full per-object mailbox or
        // a spent machine-wide in-flight budget rejects the request right
        // here — a cheap typed `Overloaded` reply instead of a queue slot
        // the node cannot afford. Rejected requests are never queued.
        let mut slot = Some(req);
        let admitted = {
            let mut guard = self.shared.shards[shard_of(target)].lock();
            match guard.get_mut(&target) {
                Some(entry) => {
                    if entry.mailbox.len() >= self.shared.overload.mailbox_cap {
                        Err(entry.mailbox.len() as u64)
                    } else {
                        match self
                            .shared
                            .queued
                            .try_acquire(self.shared.overload.inflight_cap as u64)
                        {
                            Err(depth) => Err(depth),
                            Ok(_) => {
                                entry
                                    .mailbox
                                    .push_back(slot.take().expect("request unqueued"));
                                if entry.scheduled {
                                    Ok(false)
                                } else {
                                    entry.scheduled = true;
                                    Ok(true)
                                }
                            }
                        }
                    }
                }
                None => {
                    drop(guard);
                    return self.reject_absent(slot.take().expect("request unqueued"));
                }
            }
        };
        let submit = match admitted {
            Ok(submit) => submit,
            Err(queue_depth) => {
                let req = slot.take().expect("rejected request was queued");
                bump!(self.shared.stats, calls_shed_overload);
                self.record_overload_marker(
                    EventKind::ServerShed,
                    req.reply_to,
                    queue_depth.min(u32::MAX as u64) as u32,
                );
                // An overload rejection is itself a load signal: count it
                // against the target so the placement heat map sees the
                // pressure even though the call never ran.
                *self
                    .shared
                    .gates
                    .lock()
                    .object_calls
                    .entry(target)
                    .or_insert(0) += 1;
                self.send_response(
                    req.reply_to,
                    req.req_id,
                    Err(RemoteError::Overloaded {
                        queue_depth,
                        retry_after_nanos: self.shared.overload.retry_after.as_nanos() as u64,
                    }),
                );
                return ServeOutcome::Served;
            }
        };
        if submit {
            self.submit_task(target);
        } else {
            // Parked behind a token that already exists: the request waits
            // its mailbox turn — the M:N engine's form of a deferral.
            bump!(self.shared.stats, calls_deferred);
            if let (Some(tracer), Some((reply_to, trace_id, span, req_id, method))) =
                (&self.tracer, deferred)
            {
                tracer.record(
                    EventKind::ServerDefer,
                    reply_to,
                    trace_id,
                    span,
                    0,
                    req_id,
                    0,
                    0,
                    method,
                );
            }
        }
        ServeOutcome::Served
    }

    /// Disposition of a request whose target has no live entry, mirroring
    /// the classic engine's gate order: epoch fences first (a stale caller
    /// is fenced even mid-migration; a caller carrying proof of a missed
    /// takeover bumps the quarantine epoch), then mid-migration quiesce,
    /// then forwarding stubs, then the bare fence, then `NoSuchObject`.
    fn reject_absent(&mut self, req: IncomingReq) -> ServeOutcome {
        enum Verdict {
            Defer,
            Fenced(u64),
            Moved(ObjRef),
            NoSuch,
        }
        let verdict = {
            let mut gates = self.shared.gates.lock();
            if let Some(&current) = gates.epochs.get(&req.target) {
                if req.epoch != 0 && req.epoch < current {
                    Verdict::Fenced(current)
                } else if req.epoch > current {
                    // Proof of a takeover this node never saw: move the
                    // quarantine epoch forward.
                    gates.epochs.insert(req.target, req.epoch);
                    gates.object_calls.remove(&req.target);
                    Verdict::Fenced(req.epoch)
                } else if gates.migrating.contains_key(&req.target) {
                    Verdict::Defer
                } else if let Some(&to) = gates.forwards.get(&req.target) {
                    Verdict::Moved(to)
                } else {
                    Verdict::Fenced(current)
                }
            } else if gates.migrating.contains_key(&req.target) {
                Verdict::Defer
            } else if let Some(&to) = gates.forwards.get(&req.target) {
                Verdict::Moved(to)
            } else {
                Verdict::NoSuch
            }
        };
        match verdict {
            Verdict::Defer => ServeOutcome::Defer(req),
            Verdict::Fenced(current_epoch) => {
                bump!(self.shared.stats, calls_fenced);
                self.send_response(
                    req.reply_to,
                    req.req_id,
                    Err(RemoteError::Fenced { current_epoch }),
                );
                ServeOutcome::Served
            }
            Verdict::Moved(to) => {
                bump!(self.shared.stats, calls_forwarded);
                self.send_response(req.reply_to, req.req_id, Err(RemoteError::Moved { to }));
                ServeOutcome::Served
            }
            Verdict::NoSuch => {
                self.send_response(
                    req.reply_to,
                    req.req_id,
                    Err(RemoteError::NoSuchObject {
                        machine: self.machine,
                        object: req.target,
                    }),
                );
                ServeOutcome::Served
            }
        }
    }

    /// Claim the next unit of work for `target` under its shard lock and
    /// run the **execution-time** admission gates (DESIGN.md §13): epoch
    /// fences, the supervisor lease, and the replica coherence gate are
    /// all evaluated here — at the moment the call would run — never at
    /// enqueue, so a fence bump that lands while a request sits in the
    /// mailbox still rejects it.
    fn next_step(&mut self, target: ObjectId) -> Step {
        let now = self.clock.now_nanos();
        let mut guard = self.shared.shards[shard_of(target)].lock();
        let req = match guard.get_mut(&target) {
            None => return Step::Done, // a lifecycle verb removed the entry (and drained its queue)
            Some(entry) => match entry.mailbox.pop_front() {
                None => {
                    // Mailbox dry: retire the task token.
                    entry.scheduled = false;
                    return Step::Done;
                }
                Some(req) => req,
            },
        };
        // The request left its mailbox: give its slot back to the
        // machine-wide in-flight budget whatever happens next.
        self.shared.queued.release(1);
        // Execution-time overload gates (DESIGN.md §15), judged at the
        // moment the call would run so time spent queued counts: a
        // request whose propagated deadline passed is dropped unexecuted,
        // and when a sojourn target is configured, a request that waited
        // longer than the target is shed — the node is persistently
        // behind, and serving ever-later work helps nobody.
        if req.deadline != 0 && now >= req.deadline {
            return Step::Reject {
                err: RemoteError::DeadlineExceeded {
                    elapsed_nanos: now - req.deadline,
                },
                kind: RejectKind::DeadlineExpired {
                    overshoot: now - req.deadline,
                },
                req,
            };
        }
        let sojourn_target = self.shared.overload.sojourn_target.as_nanos() as u64;
        if sojourn_target != 0 {
            let sojourn = now.saturating_sub(req.admitted_at);
            if sojourn > sojourn_target {
                // Depth includes this request: a zero depth is reserved
                // for client-side breaker fast-fails.
                let queue_depth = guard.get(&target).map_or(0, |e| e.mailbox.len() as u64) + 1;
                return Step::Reject {
                    err: RemoteError::Overloaded {
                        queue_depth,
                        retry_after_nanos: self.shared.overload.retry_after.as_nanos() as u64,
                    },
                    kind: RejectKind::Shed { sojourn },
                    req,
                };
            }
        }
        // Lock order: shard, then gates. Gates are never taken first.
        let mut gates = self.shared.gates.lock();
        if let Some(&current) = gates.epochs.get(&target) {
            if req.epoch != 0 && req.epoch < current {
                // Stale caller: its pointer names a superseded
                // incarnation. Never execute; teach it the live epoch.
                return Step::Reject {
                    req,
                    err: RemoteError::Fenced {
                        current_epoch: current,
                    },
                    kind: RejectKind::Fenced,
                };
            }
            if req.epoch > current {
                // Stale *server*: the caller carries proof of a takeover
                // this node never saw (it was partitioned through the
                // recovery). Quarantine the superseded incarnation —
                // defense in depth on top of the lease — and make every
                // queued caller re-resolve.
                let epoch = req.epoch;
                gates.epochs.insert(target, epoch);
                gates.object_calls.remove(&target);
                drop(gates);
                let entry = guard.remove(&target).expect("entry present above");
                // Quarantined requests leave their mailbox for good.
                self.shared.queued.release(entry.mailbox.len() as u64);
                let mut reqs = vec![req];
                reqs.extend(entry.mailbox);
                return Step::Quarantine { reqs, epoch };
            }
            // Lease self-fence: a supervised object is only served while
            // the supervisor's lease is live. An isolated machine stops
            // serving these *itself*, which is what makes takeover safe
            // even when the suspicion was false (DESIGN.md §10).
            if matches!(gates.lease_deadline, Some(d) if now > d) {
                return Step::Reject {
                    req,
                    err: RemoteError::Fenced {
                        current_epoch: current,
                    },
                    kind: RejectKind::Fenced,
                };
            }
        }
        // Replica-side coherence gate (replica-hosted ids only). A write
        // verb redirects to the primary through the standard `Moved`
        // chase; a read is served only while the replica can prove
        // coherence — its lease is live and it has synced at least as far
        // as the caller's replica-set epoch — and otherwise answers
        // `StaleReplica` so the caller falls back to the primary.
        let mut replica_hit = None;
        if let Some(meta) = gates.replica_meta.get(&target) {
            let primary = meta.primary;
            let rs_now = meta.rs_epoch;
            let lease_live = now <= meta.lease_until;
            let method = payload_method(&req.payload);
            if !meta.read_verbs.iter().any(|v| *v == &*method) {
                return Step::Reject {
                    req,
                    err: RemoteError::Moved { to: primary },
                    kind: RejectKind::Forwarded,
                };
            }
            if !lease_live || req.rs_epoch > rs_now {
                return Step::Reject {
                    req,
                    err: RemoteError::StaleReplica {
                        primary,
                        rs_epoch: rs_now,
                    },
                    kind: RejectKind::StaleReplica { rs_epoch: rs_now },
                };
            }
            replica_hit = Some(rs_now);
        }
        drop(gates);
        // Check the object out for the duration of the call: the task
        // token is exclusive, so the slot must be occupied.
        let entry = guard.get_mut(&target).expect("entry present above");
        let obj = entry
            .slot
            .take()
            .expect("task token is exclusive: nobody else checks this object out");
        Step::Dispatch {
            req,
            obj,
            replica_hit,
        }
    }

    /// Execute `target`'s mailbox: the body of one scheduler task. Runs
    /// up to `MAILBOX_BATCH` requests, then re-parks the object on this
    /// worker's own deque (stealable by idle siblings) — or keeps going
    /// inline when there is no pool. Run-to-completion per request; the
    /// object is owned by exactly one lane for the duration.
    pub(crate) fn run_object(&mut self, target: ObjectId) {
        let mut batch = 0usize;
        loop {
            if batch >= MAILBOX_BATCH {
                if let Some(lane) = &self.lane {
                    // Yield the rest of the mailbox: the token moves to this
                    // worker's deque, where a sibling can steal it.
                    // `scheduled` stays true — the token still exists.
                    lane.deque.push(target);
                    if let Sched::Pool(pool) = &self.shared.sched {
                        pool.nudge(&self.clock);
                    }
                    return;
                }
            }
            match self.next_step(target) {
                Step::Done => break,
                Step::Reject { req, err, kind } => {
                    match kind {
                        RejectKind::Fenced => {
                            bump!(self.shared.stats, calls_fenced);
                        }
                        RejectKind::Forwarded => {
                            bump!(self.shared.stats, calls_forwarded);
                        }
                        RejectKind::StaleReplica { rs_epoch } => {
                            bump!(self.shared.stats, replica_reads_stale);
                            if let Some(tracer) = &self.tracer {
                                tracer.record(
                                    EventKind::ReplicaStale,
                                    req.reply_to,
                                    req.trace_id,
                                    req.span,
                                    0,
                                    req.req_id,
                                    0,
                                    rs_epoch as u32,
                                    payload_method(&req.payload),
                                );
                            }
                        }
                        RejectKind::DeadlineExpired { overshoot } => {
                            bump!(self.shared.stats, calls_deadline_expired);
                            self.record_overload_marker(
                                EventKind::ServerDeadlineDrop,
                                req.reply_to,
                                (overshoot / 1_000).min(u32::MAX as u64) as u32,
                            );
                        }
                        RejectKind::Shed { sojourn } => {
                            bump!(self.shared.stats, calls_shed_sojourn);
                            self.record_overload_marker(
                                EventKind::ServerSojournDrop,
                                req.reply_to,
                                (sojourn / 1_000).min(u32::MAX as u64) as u32,
                            );
                        }
                    }
                    self.send_response(req.reply_to, req.req_id, Err(err));
                    batch += 1;
                }
                Step::Quarantine { reqs, epoch } => {
                    for req in reqs {
                        bump!(self.shared.stats, calls_fenced);
                        self.send_response(
                            req.reply_to,
                            req.req_id,
                            Err(RemoteError::Fenced {
                                current_epoch: epoch,
                            }),
                        );
                    }
                    break; // the entry is gone; the token dies with it
                }
                Step::Dispatch {
                    req,
                    mut obj,
                    replica_hit,
                } => {
                    if let Some(rs_now) = replica_hit {
                        bump!(self.shared.stats, replica_reads_served);
                        if let Some(tracer) = &self.tracer {
                            tracer.record(
                                EventKind::ReplicaHit,
                                req.reply_to,
                                req.trace_id,
                                req.span,
                                0,
                                req.req_id,
                                0,
                                rs_now as u32,
                                payload_method(&req.payload),
                            );
                        }
                    }
                    let saved = self.current_call.replace(CallInfo {
                        req_id: req.req_id,
                        reply_to: req.reply_to,
                    });
                    // Calls the method issues while running inherit this
                    // request's trace identity (nested spans).
                    let saved_trace = std::mem::replace(
                        &mut self.current_trace,
                        (req.span != 0).then_some((req.trace_id, req.span)),
                    );
                    // Downstream calls the method issues inherit the
                    // request's remaining deadline budget (propagation).
                    let saved_deadline = std::mem::replace(
                        &mut self.current_deadline,
                        (req.deadline != 0).then_some(req.deadline),
                    );
                    let mut reader = Reader::new(&req.payload);
                    let mut served_method = None;
                    let outcome = match String::decode(&mut reader) {
                        Ok(method) => {
                            self.record_dispatch(&req, &method);
                            let out = obj.dispatch_named(self, &method, &mut reader);
                            served_method = Some(method);
                            out
                        }
                        Err(e) => Err(e.into()),
                    };
                    self.current_call = saved;
                    self.current_trace = saved_trace;
                    self.current_deadline = saved_deadline;

                    // Primary-side write propagation, while this lane still
                    // owns the object: a successful write verb served by a
                    // replicated primary bumps the replica-set epoch and,
                    // in write-through mode, re-syncs every live replica
                    // BEFORE the ack below — the writer (and everyone else)
                    // reads its write from any replica that still holds a
                    // live coherence lease. Snapshotting the *owned* box
                    // (not the checked-in slot) is what keeps the snapshot
                    // race-free under multiple workers.
                    if outcome.is_ok() {
                        if let Some(method) = &served_method {
                            let is_primary =
                                self.shared.gates.lock().primaries.contains_key(&target);
                            if is_primary && !obj.read_verbs().contains(&method.as_str()) {
                                self.propagate_write(target, obj.as_ref());
                            }
                        }
                    }

                    // Check the object back in. The entry still exists:
                    // lifecycle verbs report Busy (never remove) while the
                    // slot is checked out.
                    {
                        let mut guard = self.shared.shards[shard_of(target)].lock();
                        if let Some(entry) = guard.get_mut(&target) {
                            entry.slot = Some(obj);
                        }
                    }

                    match outcome {
                        Ok(DispatchResult::Reply(bytes)) => {
                            self.send_response(req.reply_to, req.req_id, Ok(bytes))
                        }
                        Ok(DispatchResult::NoReply) => {}
                        Err(e) => self.send_response(req.reply_to, req.req_id, Err(e)),
                    }
                    bump!(self.shared.stats, calls_served);
                    // Per-object load signal for the placement subsystem.
                    *self
                        .shared
                        .gates
                        .lock()
                        .object_calls
                        .entry(target)
                        .or_insert(0) += 1;
                    batch += 1;
                }
            }
        }
        // A lifecycle verb may be parked in the dispatcher's deferred
        // queue waiting for this object to go idle. The dispatcher blocks
        // on its network inbox, so wake it with an empty loopback packet
        // (decode fails harmlessly; the serve loop retries its deferred
        // queue after every receive).
        if self.lane.is_some() && self.shared.daemon_parked.load(Ordering::Relaxed) > 0 {
            let _ = self.net.send(self.machine, self.machine, Vec::new());
        }
    }

    /// Bump the replica-set epoch after a served write and propagate per
    /// the attached mode. Write-through pushes `replica_sync` to every
    /// live replica before returning (the write is acked only after); a
    /// replica that cannot be reached is dropped from the live set and its
    /// outstanding coherence lease is **waited out**, so once the ack
    /// goes, no replica holding a live lease can be missing the write.
    /// Bounded-staleness mode returns immediately — the replica manager
    /// re-syncs on its cadence and staleness stays bounded by the lease.
    ///
    /// `obj` is the primary itself, still checked out by this lane, so the
    /// snapshot is taken before any other call can touch it.
    fn propagate_write(&mut self, object: ObjectId, obj: &dyn ServerObject) {
        let (rs_epoch, write_through, lease_millis, replicas) = {
            let mut gates = self.shared.gates.lock();
            let Some(pm) = gates.primaries.get_mut(&object) else {
                return;
            };
            pm.rs_epoch += 1;
            (
                pm.rs_epoch,
                pm.write_through,
                pm.lease_millis,
                pm.replicas.clone(),
            )
        };
        if !write_through || replicas.is_empty() {
            return;
        }
        let state = match obj.snapshot_state() {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut lost = false;
        for r in replicas {
            let synced: RemoteResult<()> =
                self.call_method(ObjRef::daemon(r.machine), "replica_sync", |w| {
                    Wire::encode(&r.object, w);
                    Wire::encode(&Bytes(state.clone()), w);
                    Wire::encode(&rs_epoch, w);
                    Wire::encode(&lease_millis, w);
                });
            match synced {
                Ok(()) => {
                    bump!(self.shared.stats, replica_syncs_sent);
                    if self.tracer.is_some() {
                        let span = self.alloc_span();
                        if let Some(tracer) = &self.tracer {
                            tracer.record(
                                EventKind::ReplicaSync,
                                r.machine,
                                span,
                                span,
                                0,
                                0,
                                0,
                                rs_epoch as u32,
                                "replica_sync".into(),
                            );
                        }
                    }
                }
                Err(_) => {
                    lost = true;
                    let mut gates = self.shared.gates.lock();
                    if let Some(pm) = gates.primaries.get_mut(&object) {
                        pm.replicas.retain(|x| *x != r);
                    }
                }
            }
        }
        if lost {
            // The unreachable replica may still be answering reads under
            // its last lease. Wait out the lease window before acking, so
            // the write is never acknowledged while a replica that missed
            // it could pass the coherence gate. The dispatcher keeps
            // serving while it waits; a worker lane just sleeps (its
            // siblings keep the machine live).
            let window = Duration::from_millis(lease_millis);
            if self.lane.is_some() {
                self.clock.sleep(window);
            } else {
                self.serve_for(window);
            }
        }
    }

    fn serve_daemon(&mut self, req: IncomingReq) -> ServeOutcome {
        // The payload is cloned so `self` stays borrowable during dispatch
        // (constructor args live in the payload while `create` runs).
        let payload = req.payload.clone();
        let saved_trace = std::mem::replace(
            &mut self.current_trace,
            (req.span != 0).then_some((req.trace_id, req.span)),
        );
        let mut reader = Reader::new(&payload);
        let outcome = match String::decode(&mut reader) {
            Ok(method) => {
                self.record_dispatch(&req, &method);
                self.daemon_dispatch(&method, &mut reader)
            }
            Err(e) => Err(e.into()),
        };
        self.current_trace = saved_trace;
        match outcome {
            Ok(DaemonOutcome::Reply(bytes)) => {
                self.send_response(req.reply_to, req.req_id, Ok(bytes));
                bump!(self.shared.stats, calls_served);
                ServeOutcome::Served
            }
            Ok(DaemonOutcome::ReplyThenHalt(bytes)) => {
                self.send_response(req.reply_to, req.req_id, Ok(bytes));
                bump!(self.shared.stats, calls_served);
                self.alive = false;
                ServeOutcome::Served
            }
            Ok(DaemonOutcome::Busy) => ServeOutcome::Defer(IncomingReq { payload, ..req }),
            Err(e) => {
                self.send_response(req.reply_to, req.req_id, Err(e));
                ServeOutcome::Served
            }
        }
    }

    /// Atomically remove `object`'s entry if it is present and idle — the
    /// check-and-remove is one shard-lock critical section, so a worker
    /// can never check the object out between the two.
    fn take_idle_entry(&self, object: ObjectId) -> TakeEntry {
        let mut guard = self.shared.shards[shard_of(object)].lock();
        match guard.get(&object) {
            None => TakeEntry::Absent,
            Some(e) if e.slot.is_none() => TakeEntry::Busy,
            Some(_) => TakeEntry::Removed(guard.remove(&object).expect("present")),
        }
    }

    /// Snapshot `object` and, on success, atomically remove its entry
    /// (same shard-lock discipline as [`take_idle_entry`]); a snapshot
    /// failure leaves the object untouched.
    fn snapshot_and_remove(&self, object: ObjectId) -> SnapTake {
        let mut guard = self.shared.shards[shard_of(object)].lock();
        let Some(entry) = guard.get(&object) else {
            return SnapTake::Absent;
        };
        let Some(obj) = entry.slot.as_ref() else {
            return SnapTake::Busy;
        };
        let state = match obj.snapshot_state() {
            Ok(s) => s,
            Err(e) => return SnapTake::Failed(e),
        };
        let class = obj.class_name().to_string();
        let entry = guard.remove(&object).expect("present");
        SnapTake::Taken {
            class,
            state,
            entry,
        }
    }

    /// Answer every request still queued in a removed entry's mailbox
    /// through the absent-object path (Moved / Fenced / NoSuchObject /
    /// deferred), exactly as if each had arrived after the removal. The
    /// caller must update the gates (forwards, epochs, migrating) for the
    /// removal *before* draining.
    fn drain_removed_mailbox(&mut self, entry: ObjEntry) {
        // The whole mailbox leaves the queue at once: release the
        // machine-wide in-flight budget before answering each request.
        self.shared.queued.release(entry.mailbox.len() as u64);
        for req in entry.mailbox {
            match self.reject_absent(req) {
                ServeOutcome::Served => {}
                ServeOutcome::Defer(req) => self.push_deferred(req),
            }
        }
    }

    fn daemon_dispatch(
        &mut self,
        method: &str,
        args: &mut Reader<'_>,
    ) -> RemoteResult<DaemonOutcome> {
        match method {
            "ping" => Ok(DaemonOutcome::Reply(wire::to_bytes(&()))),
            "create" => {
                let class = String::decode(args)?;
                let ctor_args = Bytes::decode(args)?;
                let registry = self.registry.clone();
                let mut ctor_reader = Reader::new(&ctor_args.0);
                let obj = registry.construct(&class, self, &mut ctor_reader)?;
                let id = self.shared.alloc_obj_id();
                self.shared.insert_object(id, obj);
                Ok(DaemonOutcome::Reply(wire::to_bytes(&id)))
            }
            "destroy" => {
                let object = u64::decode(args)?;
                match self.take_idle_entry(object) {
                    TakeEntry::Absent => self.absent_outcome(object),
                    TakeEntry::Busy => Ok(DaemonOutcome::Busy), // mid-call: retry later
                    TakeEntry::Removed(entry) => {
                        {
                            let mut gates = self.shared.gates.lock();
                            gates.object_calls.remove(&object);
                            gates.replica_meta.remove(&object);
                            gates.primaries.remove(&object);
                        }
                        // Queued requests answer NoSuchObject, as if they
                        // had arrived after the destroy. Dropping the
                        // entry runs the destructor.
                        self.drain_removed_mailbox(entry);
                        Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
                    }
                }
            }
            "shutdown" => Ok(DaemonOutcome::ReplyThenHalt(wire::to_bytes(&()))),
            "snapshot" => {
                let object = u64::decode(args)?;
                let snapped = {
                    let guard = self.shared.shards[shard_of(object)].lock();
                    match guard.get(&object) {
                        None => None,
                        Some(e) => match e.slot.as_ref() {
                            None => Some(Err(())),
                            Some(obj) => Some(Ok(obj.snapshot_state())),
                        },
                    }
                };
                match snapped {
                    None => self.absent_outcome(object),
                    Some(Err(())) => Ok(DaemonOutcome::Busy),
                    Some(Ok(state)) => Ok(DaemonOutcome::Reply(wire::to_bytes(&Bytes(state?)))),
                }
            }
            "deactivate" => {
                let object = u64::decode(args)?;
                let key = String::decode(args)?;
                match self.snapshot_and_remove(object) {
                    SnapTake::Absent => self.absent_outcome(object),
                    SnapTake::Busy => Ok(DaemonOutcome::Busy),
                    SnapTake::Failed(e) => Err(e),
                    SnapTake::Taken {
                        class,
                        state,
                        entry,
                    } => {
                        self.snapshots.insert(key, (class, state));
                        self.shared.gates.lock().object_calls.remove(&object);
                        self.drain_removed_mailbox(entry);
                        Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
                    }
                }
            }
            "activate" => {
                let key = String::decode(args)?;
                let (class, state) = self
                    .snapshots
                    .get(&key)
                    .cloned()
                    .ok_or(RemoteError::NoSuchSnapshot { key })?;
                let registry = self.registry.clone();
                let obj = registry.restore(&class, self, &state)?;
                let id = self.shared.alloc_obj_id();
                self.shared.insert_object(id, obj);
                Ok(DaemonOutcome::Reply(wire::to_bytes(&id)))
            }
            "drop_snapshot" => {
                let key = String::decode(args)?;
                let existed = self.snapshots.remove(&key).is_some();
                Ok(DaemonOutcome::Reply(wire::to_bytes(&existed)))
            }
            "put_snapshot" => {
                let key = String::decode(args)?;
                let class = String::decode(args)?;
                let state = Bytes::decode(args)?;
                self.snapshots.insert(key, (class, state.0));
                Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
            }
            "stats" => Ok(DaemonOutcome::Reply(wire::to_bytes(&self.local_stats()))),
            "migrate_out" => {
                // Quiesce + transfer: park the object's state in
                // `migrating` (its requests defer from here on) and ship a
                // snapshot to the coordinator. The object is gone from the
                // live table but fully recoverable until commit.
                let object = u64::decode(args)?;
                // Replicated objects are unmovable (DESIGN.md §11): a
                // moving primary would race its own write propagation,
                // and a moving replica is pointless — drop and re-adopt.
                {
                    let gates = self.shared.gates.lock();
                    if gates.primaries.contains_key(&object)
                        || gates.replica_meta.contains_key(&object)
                    {
                        return Err(RemoteError::Replicated { object });
                    }
                }
                match self.snapshot_and_remove(object) {
                    SnapTake::Absent => self.absent_outcome(object),
                    SnapTake::Busy => Ok(DaemonOutcome::Busy), // mid-call: quiesce later
                    // A non-persistent class fails with the object intact.
                    SnapTake::Failed(e) => Err(e),
                    SnapTake::Taken {
                        class,
                        state,
                        entry,
                    } => {
                        // Park the state before draining the mailbox, so
                        // the queued requests land in the deferred queue
                        // (quiesce), not in NoSuchObject.
                        self.shared
                            .gates
                            .lock()
                            .migrating
                            .insert(object, (class.clone(), state.clone()));
                        self.drain_removed_mailbox(entry);
                        let payload = MigrationPayload {
                            class,
                            state: Bytes(state),
                        };
                        Ok(DaemonOutcome::Reply(wire::to_bytes(&payload)))
                    }
                }
            }
            "migrate_commit" => {
                let object = u64::decode(args)?;
                let to = ObjRef::decode(args)?;
                let mut gates = self.shared.gates.lock();
                if gates.migrating.remove(&object).is_some() {
                    gates.forwards.insert(object, to);
                    gates.object_calls.remove(&object);
                    drop(gates);
                    bump!(self.shared.stats, migrated_out);
                    Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
                } else if gates.forwards.get(&object) == Some(&to) {
                    // Dedup normally absorbs commit retransmits; this arm
                    // keeps the verb idempotent even across a dedup reset.
                    Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
                } else {
                    Err(RemoteError::app(format!(
                        "migrate_commit: object {object} is not migrating"
                    )))
                }
            }
            "migrate_rollback" => {
                let object = u64::decode(args)?;
                let parked = self.shared.gates.lock().migrating.remove(&object);
                match parked {
                    Some((class, state)) => {
                        let registry = self.registry.clone();
                        match registry.restore(&class, self, &state) {
                            Ok(obj) => {
                                // Restore under the ORIGINAL id: every
                                // pointer minted before the aborted move
                                // stays valid, no directory update needed.
                                self.shared.insert_object(object, obj);
                                Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
                            }
                            Err(e) => {
                                // Keep the state parked rather than lose
                                // the object; a later rollback can retry.
                                self.shared
                                    .gates
                                    .lock()
                                    .migrating
                                    .insert(object, (class, state));
                                Err(e)
                            }
                        }
                    }
                    // Idempotent: already rolled back.
                    None if self.shared.shards[shard_of(object)]
                        .lock()
                        .contains_key(&object) =>
                    {
                        Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
                    }
                    None => Err(RemoteError::app(format!(
                        "migrate_rollback: object {object} is not migrating"
                    ))),
                }
            }
            "adopt_state" => {
                // Reactivation half of a migration: build the object from
                // its shipped snapshot under a fresh local id.
                let class = String::decode(args)?;
                let state = Bytes::decode(args)?;
                let registry = self.registry.clone();
                let obj = registry.restore(&class, self, &state.0)?;
                let id = self.shared.alloc_obj_id();
                self.shared.insert_object(id, obj);
                bump!(self.shared.stats, migrated_in);
                Ok(DaemonOutcome::Reply(wire::to_bytes(&id)))
            }
            "loads" => {
                // Per-object served-call counters, sorted by id so the
                // reply is deterministic — the balancer's load signal.
                let mut loads: Vec<(u64, u64)> = {
                    let gates = self.shared.gates.lock();
                    gates.object_calls.iter().map(|(&o, &c)| (o, c)).collect()
                };
                loads.sort_unstable();
                Ok(DaemonOutcome::Reply(wire::to_bytes(&loads)))
            }
            "heartbeat" => {
                // Supervisor liveness beacon; the reply is the detector's
                // interval sample. Arrival also renews the serving lease —
                // the machine may serve supervised objects for another
                // `ttl` from *now*.
                let ttl = u64::decode(args)?;
                self.shared.gates.lock().lease_deadline =
                    Some(self.clock.now_nanos() + ttl * 1_000_000);
                bump!(self.shared.stats, heartbeats_served);
                Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
            }
            "set_epoch" => {
                // Supervision registration (or a takeover bump). Epochs
                // only move forward; a lower value is a stale retransmit.
                let object = u64::decode(args)?;
                let epoch = u64::decode(args)?;
                let mut gates = self.shared.gates.lock();
                let e = gates.epochs.entry(object).or_insert(0);
                if epoch > *e {
                    *e = epoch;
                }
                Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
            }
            "activate_fenced" => {
                // Takeover half of a recovery: the restored incarnation is
                // registered at its bumped epoch before any call can reach
                // it (the epoch lands before the object becomes visible).
                let key = String::decode(args)?;
                let epoch = u64::decode(args)?;
                let (class, state) = self
                    .snapshots
                    .get(&key)
                    .cloned()
                    .ok_or(RemoteError::NoSuchSnapshot { key })?;
                let registry = self.registry.clone();
                let obj = registry.restore(&class, self, &state)?;
                let id = self.shared.alloc_obj_id();
                self.shared.gates.lock().epochs.insert(id, epoch);
                self.shared.insert_object(id, obj);
                Ok(DaemonOutcome::Reply(wire::to_bytes(&id)))
            }
            "fence" => {
                // Kill an old incarnation after a takeover. Idempotent:
                // fencing an already-fenced or never-lived id just
                // (re)installs the epoch and the forwarding stub.
                let object = u64::decode(args)?;
                let epoch = u64::decode(args)?;
                let to = ObjRef::decode(args)?;
                let entry = match self.take_idle_entry(object) {
                    TakeEntry::Busy => return Ok(DaemonOutcome::Busy), // mid-call: fence after
                    TakeEntry::Removed(entry) => Some(entry),
                    TakeEntry::Absent => None,
                };
                {
                    let mut gates = self.shared.gates.lock();
                    gates.migrating.remove(&object);
                    gates.object_calls.remove(&object);
                    let e = gates.epochs.entry(object).or_insert(0);
                    if epoch > *e {
                        *e = epoch;
                    }
                    gates.forwards.insert(object, to);
                }
                // Gates first, then the drain: the queued requests resolve
                // against the forwarding stub installed above.
                if let Some(entry) = entry {
                    self.drain_removed_mailbox(entry);
                }
                Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
            }
            "replica_adopt" => {
                // Materialize a read replica from the primary's shipped
                // snapshot, synced at `rs_epoch` with a fresh coherence
                // lease. The replica is an ordinary object plus a
                // `replica_meta` entry that gates what it may serve.
                let class = String::decode(args)?;
                let state = Bytes::decode(args)?;
                let primary = ObjRef::decode(args)?;
                let rs_epoch = u64::decode(args)?;
                let lease_millis = u64::decode(args)?;
                let registry = self.registry.clone();
                let obj = registry.restore(&class, self, &state.0)?;
                let read_verbs = obj.read_verbs();
                if read_verbs.is_empty() {
                    return Err(RemoteError::app(format!(
                        "replica_adopt: class {class:?} declares no read verbs \
                         (nothing a replica could serve)"
                    )));
                }
                let id = self.shared.alloc_obj_id();
                // Meta before object: the coherence gate must already be
                // in place when the first read can reach the entry.
                self.shared.gates.lock().replica_meta.insert(
                    id,
                    ReplicaMeta {
                        primary,
                        rs_epoch,
                        lease_until: self.clock.now_nanos() + lease_millis * 1_000_000,
                        read_verbs,
                    },
                );
                self.shared.insert_object(id, obj);
                Ok(DaemonOutcome::Reply(wire::to_bytes(&id)))
            }
            "replica_sync" => {
                // Primary→replica write propagation. A sync at or above
                // the replica's epoch replaces its state; an older one
                // (a raced propagation that lost) only renews the lease —
                // state never regresses.
                let object = u64::decode(args)?;
                let state = Bytes::decode(args)?;
                let rs_epoch = u64::decode(args)?;
                let lease_millis = u64::decode(args)?;
                let fresh = match self.shared.gates.lock().replica_meta.get(&object) {
                    None => return self.absent_outcome(object),
                    Some(meta) => rs_epoch >= meta.rs_epoch,
                };
                let class = {
                    let guard = self.shared.shards[shard_of(object)].lock();
                    match guard.get(&object) {
                        None => return self.absent_outcome(object),
                        Some(e) => match e.slot.as_ref() {
                            None => return Ok(DaemonOutcome::Busy), // mid-read: sync after
                            Some(obj) => obj.class_name().to_string(),
                        },
                    }
                };
                if fresh {
                    let registry = self.registry.clone();
                    let replaced = registry.restore(&class, self, &state.0)?;
                    // Re-take the shard lock (restore may itself serve):
                    // if a worker checked the replica out meanwhile, come
                    // back once it is idle rather than swap mid-read.
                    let mut guard = self.shared.shards[shard_of(object)].lock();
                    match guard.get_mut(&object) {
                        None => return self.absent_outcome(object),
                        Some(e) => {
                            if e.slot.is_none() {
                                return Ok(DaemonOutcome::Busy);
                            }
                            e.slot = Some(replaced);
                        }
                    }
                }
                let mut gates = self.shared.gates.lock();
                match gates.replica_meta.get_mut(&object) {
                    None => {
                        drop(gates);
                        self.absent_outcome(object)
                    }
                    Some(meta) => {
                        if rs_epoch > meta.rs_epoch {
                            meta.rs_epoch = rs_epoch;
                        }
                        meta.lease_until = self.clock.now_nanos() + lease_millis * 1_000_000;
                        Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
                    }
                }
            }
            "replica_renew" => {
                // Lease renewal without a state transfer. `false` means
                // the replica has drifted off the asked-for epoch and
                // needs a full `replica_sync` instead.
                let object = u64::decode(args)?;
                let rs_epoch = u64::decode(args)?;
                let lease_millis = u64::decode(args)?;
                let renewed = {
                    let mut gates = self.shared.gates.lock();
                    match gates.replica_meta.get_mut(&object) {
                        None => None,
                        Some(meta) => {
                            let current = meta.rs_epoch == rs_epoch;
                            if current {
                                meta.lease_until =
                                    self.clock.now_nanos() + lease_millis * 1_000_000;
                            }
                            Some(current)
                        }
                    }
                };
                match renewed {
                    None => self.absent_outcome(object),
                    Some(current) => Ok(DaemonOutcome::Reply(wire::to_bytes(&current))),
                }
            }
            "replica_drop" => {
                // Tear down a replica; a forwarding stub toward the
                // primary heals any route still pointing here. Idempotent.
                let object = u64::decode(args)?;
                let entry = {
                    let mut guard = self.shared.shards[shard_of(object)].lock();
                    if matches!(guard.get(&object), Some(e) if e.slot.is_none()) {
                        return Ok(DaemonOutcome::Busy); // mid-read: drop after
                    }
                    // Lock order shard → gates, both held so the removal
                    // and the forwarding stub appear atomically.
                    let mut gates = self.shared.gates.lock();
                    match gates.replica_meta.remove(&object) {
                        Some(meta) => {
                            gates.object_calls.remove(&object);
                            gates.forwards.insert(object, meta.primary);
                            guard.remove(&object)
                        }
                        None => None,
                    }
                };
                if let Some(entry) = entry {
                    self.drain_removed_mailbox(entry);
                }
                Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
            }
            "replica_attach" => {
                // Install the primary-side replica-set record: from here
                // on, write verbs served by `object` bump the replica-set
                // epoch and propagate per the mode.
                let object = u64::decode(args)?;
                let replicas = Vec::<ObjRef>::decode(args)?;
                let rs_epoch = u64::decode(args)?;
                let write_through = bool::decode(args)?;
                let lease_millis = u64::decode(args)?;
                if !self.shared.shards[shard_of(object)]
                    .lock()
                    .contains_key(&object)
                {
                    return self.absent_outcome(object);
                }
                let mut gates = self.shared.gates.lock();
                if replicas.is_empty() && lease_millis == 0 {
                    // Detach: an empty set with no lease is `unreplicate`
                    // tearing the record down — the object becomes a
                    // normal (and movable) single process again.
                    gates.primaries.remove(&object);
                } else {
                    gates.primaries.insert(
                        object,
                        PrimaryMeta {
                            replicas,
                            rs_epoch,
                            write_through,
                            lease_millis,
                        },
                    );
                }
                Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
            }
            "replica_status" => {
                // Introspection for the replica manager: both roles answer.
                let object = u64::decode(args)?;
                let status = {
                    let gates = self.shared.gates.lock();
                    if let Some(pm) = gates.primaries.get(&object) {
                        Some(ReplicaStatus {
                            is_primary: true,
                            rs_epoch: pm.rs_epoch,
                            replicas: pm.replicas.clone(),
                        })
                    } else {
                        gates.replica_meta.get(&object).map(|meta| ReplicaStatus {
                            is_primary: false,
                            rs_epoch: meta.rs_epoch,
                            replicas: vec![meta.primary],
                        })
                    }
                };
                match status {
                    None => self.absent_outcome(object),
                    Some(status) => Ok(DaemonOutcome::Reply(wire::to_bytes(&status))),
                }
            }
            "replica_promote" => {
                // Failover: the replica becomes a normal object fenced at
                // the takeover incarnation epoch; the manager re-attaches
                // the surviving set afterwards.
                let object = u64::decode(args)?;
                let epoch = u64::decode(args)?;
                {
                    let guard = self.shared.shards[shard_of(object)].lock();
                    match guard.get(&object) {
                        None => {
                            drop(guard);
                            return self.absent_outcome(object);
                        }
                        Some(e) if e.slot.is_none() => {
                            return Ok(DaemonOutcome::Busy); // mid-read: promote after
                        }
                        Some(_) => {}
                    }
                }
                let mut gates = self.shared.gates.lock();
                gates.replica_meta.remove(&object);
                let e = gates.epochs.entry(object).or_insert(0);
                if epoch > *e {
                    *e = epoch;
                }
                Ok(DaemonOutcome::Reply(wire::to_bytes(&())))
            }
            other => Err(RemoteError::NoSuchMethod {
                class: "<daemon>".to_string(),
                method: other.to_string(),
            }),
        }
    }

    /// Daemon-side disposition of a lifecycle verb aimed at an object id
    /// with no live entry: mid-migration ids ask the caller to retry
    /// (quiesce), forwarded ids redirect, anything else never existed
    /// here.
    fn absent_outcome(&self, object: ObjectId) -> RemoteResult<DaemonOutcome> {
        let gates = self.shared.gates.lock();
        if gates.migrating.contains_key(&object) {
            return Ok(DaemonOutcome::Busy);
        }
        if let Some(&to) = gates.forwards.get(&object) {
            return Err(RemoteError::Moved { to });
        }
        Err(RemoteError::NoSuchObject {
            machine: self.machine,
            object,
        })
    }

    /// Stamp the moment a request's method body starts executing.
    fn record_dispatch(&self, req: &IncomingReq, method: &str) {
        if let Some(tracer) = &self.tracer {
            tracer.record(
                EventKind::ServerDispatch,
                req.reply_to,
                req.trace_id,
                req.span,
                0,
                req.req_id,
                0,
                0,
                method.into(),
            );
        }
    }

    fn send_response(&mut self, reply_to: MachineId, req_id: u64, result: RemoteResult<Vec<u8>>) {
        // Cache the response so a retransmitted copy of this request is
        // answered without re-executing (at-most-once).
        self.shared
            .dedup
            .lock()
            .complete((reply_to, req_id), &result);
        let frame = Frame::Response {
            req_id,
            result: result.map(Bytes),
        };
        let bytes = wire::to_bytes(&frame);
        if let Some(tracer) = &self.tracer {
            let t = self.shared.serving_spans.lock().remove(&(reply_to, req_id));
            if let Some(t) = t {
                tracer.record(
                    EventKind::ServerReply,
                    reply_to,
                    t.trace_id,
                    t.span,
                    t.parent_span,
                    req_id,
                    0,
                    bytes.len() as u32,
                    t.method,
                );
            }
        }
        // A dead caller is not an error for the server.
        let _ = self.net.send(self.machine, reply_to, bytes);
    }

    /// Register a locally constructed object (used by the runtime to host
    /// driver-side objects and by tests). Returns its reference.
    pub fn adopt(&mut self, obj: Box<dyn ServerObject>) -> ObjRef {
        let id = self.shared.alloc_obj_id();
        self.shared.insert_object(id, obj);
        ObjRef {
            machine: self.machine,
            object: id,
        }
    }

    /// Construct and host an object of class `T` on **this** node directly
    /// (no network round trip). Used by the runtime for built-ins.
    pub fn adopt_new<T: ServerClass>(&mut self, args: Vec<u8>) -> RemoteResult<ObjRef> {
        let mut reader = Reader::new(&args);
        let obj = T::construct(self, &mut reader)?;
        Ok(self.adopt(Box::new(obj)))
    }
}

enum DaemonOutcome {
    Reply(Vec<u8>),
    ReplyThenHalt(Vec<u8>),
    Busy,
}

/// First len-prefixed string of a request payload — the method name. Only
/// the flight recorder calls this; malformed payloads trace as `"?"`.
fn payload_method(payload: &[u8]) -> Arc<str> {
    let mut r = Reader::new(payload);
    match String::decode(&mut r) {
        Ok(m) => m.into(),
        Err(_) => "?".into(),
    }
}
