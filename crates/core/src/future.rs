//! Pending replies: the split-loop transform as an API.
//!
//! §4 of the paper shows the compiler parallelizing
//!
//! ```c++
//! for (i = 0; i < N; i++) device[i]->read(buffer[k[i]], page_address[i]);
//! ```
//!
//! by splitting it into a send-loop and a receive-loop. Here that transform
//! is explicit: `*_async` client methods return a [`Pending<T>`]; issuing
//! all the calls and then [`join`]ing them is exactly the split loop, with
//! all the latencies overlapped.

use std::marker::PhantomData;

use wire::Wire;

use crate::error::RemoteResult;
use crate::ids::ObjRef;
use crate::node::NodeCtx;
use crate::process::RemoteClient;

/// A reply that has been requested but not yet collected.
///
/// Dropping a `Pending` without waiting leaks the (eventual) reply into the
/// caller's stash until the node is dropped — hence `#[must_use]`.
#[must_use = "a Pending reply must be waited on (or the call had no effect you can observe)"]
#[derive(Debug)]
pub struct Pending<T> {
    pub(crate) req_id: u64,
    _result: PhantomData<fn() -> T>,
}

impl<T: Wire> Pending<T> {
    pub(crate) fn new(req_id: u64) -> Self {
        Pending {
            req_id,
            _result: PhantomData,
        }
    }

    /// Block until the reply arrives (serving incoming requests meanwhile)
    /// and decode it.
    pub fn wait(self, ctx: &mut NodeCtx) -> RemoteResult<T> {
        let bytes = ctx.wait_raw(self.req_id)?;
        Ok(wire::from_bytes(&bytes)?)
    }
}

/// Wait for every pending reply, in order. Returns the first error after
/// draining the rest (so no reply is leaked into the stash).
pub fn join<T: Wire>(ctx: &mut NodeCtx, pendings: Vec<Pending<T>>) -> RemoteResult<Vec<T>> {
    let mut out = Vec::with_capacity(pendings.len());
    let mut first_err = None;
    for p in pendings {
        match p.wait(ctx) {
            Ok(v) => out.push(v),
            Err(e) if first_err.is_none() => first_err = Some(e),
            Err(_) => {}
        }
    }
    match first_err {
        None => Ok(out),
        Some(e) => Err(e),
    }
}

/// A remote construction in flight: `new(machine m) T(...)` issued
/// asynchronously. Waiting yields the typed client.
#[must_use = "a pending construction must be waited on to obtain the client"]
#[derive(Debug)]
pub struct PendingClient<C> {
    pub(crate) machine: usize,
    pub(crate) req_id: u64,
    _client: PhantomData<fn() -> C>,
}

impl<C: RemoteClient> PendingClient<C> {
    pub(crate) fn new(machine: usize, req_id: u64) -> Self {
        PendingClient {
            machine,
            req_id,
            _client: PhantomData,
        }
    }

    /// Block until construction completes; returns the typed client.
    pub fn wait(self, ctx: &mut NodeCtx) -> RemoteResult<C> {
        let bytes = ctx.wait_raw(self.req_id)?;
        let object: u64 = wire::from_bytes(&bytes)?;
        Ok(C::from_ref(ObjRef {
            machine: self.machine,
            object,
        }))
    }
}

/// Wait for every pending construction. First error wins, all are drained.
pub fn join_clients<C: RemoteClient>(
    ctx: &mut NodeCtx,
    pendings: Vec<PendingClient<C>>,
) -> RemoteResult<Vec<C>> {
    let mut out = Vec::with_capacity(pendings.len());
    let mut first_err = None;
    for p in pendings {
        match p.wait(ctx) {
            Ok(v) => out.push(v),
            Err(e) if first_err.is_none() => first_err = Some(e),
            Err(_) => {}
        }
    }
    match first_err {
        None => Ok(out),
        Some(e) => Err(e),
    }
}
