//! Symbolic object addresses (§5).
//!
//! The paper: *"Processes can be accessed using a symbolic object address,
//! similar to addresses used by the Data Access Protocol"*, e.g.
//! `"http://data/set/PageDevice/34"`. The [`Directory`] is a name service —
//! itself an ordinary oopp object, hosted on machine 0 by the runtime —
//! mapping `oopp://…` strings to live remote pointers. Combined with the
//! daemon's snapshot store it gives the paper's persistent-process model:
//! bind a name while the process is live, deactivate it, and a later
//! program resolves the name and reactivates the process.

use std::collections::BTreeMap;

use crate::error::RemoteResult;
use crate::ids::ObjRef;
use crate::node::NodeCtx;

/// Conventional scheme prefix for oopp symbolic addresses.
pub const SCHEME: &str = "oopp://";

/// Build a conventional symbolic address from path segments:
/// `symbolic_addr(&["data", "set", "PageDevice", "34"])` →
/// `"oopp://data/set/PageDevice/34"`.
pub fn symbolic_addr(segments: &[&str]) -> String {
    let mut s = String::from(SCHEME);
    for (i, seg) in segments.iter().enumerate() {
        if i > 0 {
            s.push('/');
        }
        s.push_str(seg);
    }
    s
}

/// One directory entry: where the name points, which incarnation epoch
/// that pointer is at (0 = never supervised), and whether the supervisor
/// has given up on the name — a give-up poisons the name so resolvers
/// fail fast instead of re-activating an unrecoverable object forever.
/// A replicated name additionally records its read-replica set and the
/// fenced replica-set epoch (see DESIGN.md §11): `rs_epoch` is bumped by
/// CAS ([`set_replicas`](DirectoryClient::set_replicas)) so of two racing
/// replica managers exactly one installs its set.
#[derive(Debug, Clone)]
struct LeaseRecord {
    target: ObjRef,
    epoch: u64,
    poisoned: bool,
    replicas: Vec<ObjRef>,
    rs_epoch: u64,
}

impl LeaseRecord {
    fn fresh(target: ObjRef, epoch: u64) -> Self {
        LeaseRecord {
            target,
            epoch,
            poisoned: false,
            replicas: Vec::new(),
            rs_epoch: 0,
        }
    }
}

/// Server state of the cluster name service.
#[derive(Debug, Default)]
pub struct Directory {
    entries: BTreeMap<String, LeaseRecord>,
}

remote_class! {
    /// Client for the cluster name service (one instance lives on machine
    /// 0; get it from [`Driver::directory`](crate::Driver::directory)).
    class Directory {
        ctor();
        /// Bind `name` to a live object. Rebinding replaces the old entry
        /// (its epoch, if any, is preserved; a poisoned name is revived).
        fn bind(&mut self, name: String, target: ObjRef) -> ();
        /// Resolve a name, if bound and not poisoned.
        fn lookup(&mut self, name: String) -> Option<ObjRef>;
        /// Remove a binding; true if it existed.
        fn unbind(&mut self, name: String) -> bool;
        /// All bound names with the given prefix (sorted).
        fn list(&mut self, prefix: String) -> Vec<String>;
        /// Number of bindings.
        fn len(&mut self) -> usize;
        /// Full lease record of a name: `(target, epoch, poisoned)`.
        fn lease_of(&mut self, name: String) -> Option<(ObjRef, u64, bool)>;
        /// Atomically bump a name's epoch — the takeover arbiter. Succeeds
        /// (returning the new epoch) only when the recorded epoch still
        /// equals `expect`: of two racing claimants exactly one wins, and
        /// the loser learns the epoch moved under it. Directory calls
        /// serialize (one process per object), which makes this a CAS.
        fn claim(&mut self, name: String, expect: u64) -> Option<u64>;
        /// Bind `name` to a reactivated incarnation at `epoch`. Refused
        /// (false) if the record has meanwhile advanced past `epoch` —
        /// a later takeover must never be overwritten by an earlier one.
        fn bind_fenced(&mut self, name: String, target: ObjRef, epoch: u64) -> bool;
        /// Mark a name as given-up: resolvers see the poison instead of
        /// re-activating an unrecoverable object forever.
        fn poison(&mut self, name: String) -> ();
        /// The name's read-replica set and replica-set epoch, if bound.
        /// An unreplicated name reports `(vec![], 0)`.
        fn replica_set(&mut self, name: String) -> Option<(Vec<ObjRef>, u64)>;
        /// Atomically install a name's replica set — the replica-scaling
        /// arbiter, a CAS exactly like [`claim`](DirectoryClient::claim):
        /// succeeds (returning the bumped replica-set epoch) only when the
        /// recorded `rs_epoch` still equals `expect` and the name is bound
        /// and unpoisoned.
        fn set_replicas(&mut self, name: String, replicas: Vec<ObjRef>, expect: u64) -> Option<u64>;
        /// Purge every replica-set entry pointing at a dead machine: drop
        /// its replicas from every record (bumping the record's `rs_epoch`
        /// so live replicas re-fence) and report how many records changed.
        /// Part of the `declare-dead` purge path; the supervisor calls it
        /// alongside unbinding names homed on the dead machine.
        fn purge_replicas_on(&mut self, machine: usize) -> usize;
    }
}

impl Directory {
    /// Constructor: an empty directory.
    pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(Directory::default())
    }

    fn bind(&mut self, _ctx: &mut NodeCtx, name: String, target: ObjRef) -> RemoteResult<()> {
        let epoch = self.entries.get(&name).map(|r| r.epoch).unwrap_or(0);
        // Rebinding drops any replica set: the replicas mirror the *old*
        // target and must be rebuilt against the new one.
        self.entries.insert(name, LeaseRecord::fresh(target, epoch));
        Ok(())
    }

    fn lookup(&mut self, _ctx: &mut NodeCtx, name: String) -> RemoteResult<Option<ObjRef>> {
        Ok(self
            .entries
            .get(&name)
            .filter(|r| !r.poisoned)
            .map(|r| r.target))
    }

    fn unbind(&mut self, _ctx: &mut NodeCtx, name: String) -> RemoteResult<bool> {
        Ok(self.entries.remove(&name).is_some())
    }

    fn list(&mut self, _ctx: &mut NodeCtx, prefix: String) -> RemoteResult<Vec<String>> {
        Ok(self
            .entries
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn len(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<usize> {
        Ok(self.entries.len())
    }

    fn lease_of(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
    ) -> RemoteResult<Option<(ObjRef, u64, bool)>> {
        Ok(self
            .entries
            .get(&name)
            .map(|r| (r.target, r.epoch, r.poisoned)))
    }

    fn claim(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
        expect: u64,
    ) -> RemoteResult<Option<u64>> {
        match self.entries.get_mut(&name) {
            Some(r) if !r.poisoned && r.epoch == expect => {
                r.epoch += 1;
                Ok(Some(r.epoch))
            }
            _ => Ok(None),
        }
    }

    fn bind_fenced(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
        target: ObjRef,
        epoch: u64,
    ) -> RemoteResult<bool> {
        match self.entries.get_mut(&name) {
            Some(r) if r.epoch <= epoch => {
                r.target = target;
                r.epoch = epoch;
                r.poisoned = false;
                // A takeover installs a fresh incarnation; any replica set
                // mirrored the dead one and must be rebuilt against it.
                r.replicas.clear();
                r.rs_epoch += 1;
                Ok(true)
            }
            Some(_) => Ok(false),
            None => {
                self.entries.insert(name, LeaseRecord::fresh(target, epoch));
                Ok(true)
            }
        }
    }

    fn poison(&mut self, _ctx: &mut NodeCtx, name: String) -> RemoteResult<()> {
        if let Some(r) = self.entries.get_mut(&name) {
            r.poisoned = true;
        }
        Ok(())
    }

    fn replica_set(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
    ) -> RemoteResult<Option<(Vec<ObjRef>, u64)>> {
        Ok(self
            .entries
            .get(&name)
            .map(|r| (r.replicas.clone(), r.rs_epoch)))
    }

    fn set_replicas(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
        replicas: Vec<ObjRef>,
        expect: u64,
    ) -> RemoteResult<Option<u64>> {
        match self.entries.get_mut(&name) {
            Some(r) if !r.poisoned && r.rs_epoch == expect => {
                r.replicas = replicas;
                r.rs_epoch += 1;
                Ok(Some(r.rs_epoch))
            }
            _ => Ok(None),
        }
    }

    fn purge_replicas_on(&mut self, _ctx: &mut NodeCtx, machine: usize) -> RemoteResult<usize> {
        let mut changed = 0;
        for r in self.entries.values_mut() {
            let before = r.replicas.len();
            r.replicas.retain(|rep| rep.machine != machine);
            if r.replicas.len() != before {
                r.rs_epoch += 1;
                changed += 1;
            }
        }
        Ok(changed)
    }
}

/// Dereference a symbolic address — the paper's
/// `PageDevice *pd = "http://data/set/PageDevice/34";`.
///
/// Resolution order: a live binding in the directory wins; otherwise the
/// runtime **activates** the process from the snapshot stored under the
/// same address on `machine` (§5: "the runtime system is responsible for
/// … activating and de-activating processes, as needed") and binds the
/// fresh process so later resolutions find it live.
pub fn resolve_or_activate<C: crate::RemoteClient>(
    ctx: &mut NodeCtx,
    dir: &DirectoryClient,
    machine: usize,
    addr: &str,
) -> RemoteResult<C> {
    if let Some(r) = dir.lookup(ctx, addr.to_string())? {
        return Ok(C::from_ref(r));
    }
    let client: C = ctx.activate(machine, addr)?;
    dir.bind(ctx, addr.to_string(), client.obj_ref())?;
    Ok(client)
}

/// Crash-tolerant name resolution: [`resolve_or_activate`] for a fabric
/// where machines can die.
///
/// A live binding is *verified* (the bound machine's daemon must answer a
/// ping) before it is trusted; a binding to a dead machine is unbound as
/// stale. Activation then walks `candidates` — machines that hold a
/// replica of the snapshot stored under `addr` (see
/// [`NodeCtx::replicate_snapshot`](crate::NodeCtx::replicate_snapshot)) —
/// and reactivates the process on the first one that is alive, rebinding
/// the name so later resolutions find the fresh process directly.
///
/// This is the recovery path for a call that exhausted its retries with
/// [`RemoteError::Timeout`](crate::RemoteError::Timeout): the caller drops
/// its stale remote pointer, resolves the symbolic address again through
/// this function, and resumes against the reactivated process.
///
/// Pings against dead machines cost a full retry cycle each, so keep the
/// [`CallPolicy`](crate::CallPolicy) windows short when supervision is in
/// play.
///
/// Resolutions are cached **per node** (see
/// [`NodeCtx::cached_resolve`](crate::NodeCtx::cached_resolve)), and a
/// cache hit is verified exactly like a directory binding — the bound
/// machine must answer a ping — before it is trusted. Staleness is
/// therefore repaired lazily on *every* machine, not just the one that
/// noticed the crash and re-bound the name: a third machine holding a
/// cached pointer to the dead home fails its own ping, invalidates its
/// own cache entry, and falls through to the directory, which already
/// points at the reactivated process. No invalidation broadcast needed.
pub fn resolve_or_activate_supervised<C: crate::RemoteClient>(
    ctx: &mut NodeCtx,
    dir: &DirectoryClient,
    addr: &str,
    candidates: &[usize],
) -> RemoteResult<C> {
    if let Some(r) = ctx.cached_resolve(addr) {
        if ctx.ping(r.machine).is_ok() {
            return Ok(C::from_ref(r));
        }
        ctx.invalidate_resolve(addr);
    }
    // Recovery is arbitrated through the name's lease epoch: the
    // directory's `claim` is a CAS, so of N clients that all watched the
    // home machine die, exactly one bumps the epoch and activates a
    // replica. A loser's claim fails — the epoch moved under it — and it
    // never claims again in this invocation (claiming the *bumped* epoch
    // would re-open the double-activation it just lost); it waits for the
    // winner's `bind_fenced` and adopts that incarnation, or gives up
    // with [`Fenced`](crate::RemoteError::Fenced) so the caller
    // re-resolves. Without the claim, both clients would activate and the
    // name would flap between two live copies (split-brain).
    let mut last_err = None;
    let mut may_claim = true;
    for _ in 0..6 {
        match dir.lease_of(ctx, addr.to_string())? {
            Some((_, _, true)) => {
                // The supervisor gave up on this name; don't dig it up.
                return Err(crate::RemoteError::app(format!(
                    "{addr}: name is poisoned (supervision gave up)"
                )));
            }
            Some((r, epoch, false)) => {
                if ctx.ping(r.machine).is_ok() {
                    ctx.note_epoch(r, epoch);
                    ctx.cache_resolve(addr, r);
                    return Ok(C::from_ref(r));
                }
                if may_claim {
                    may_claim = false;
                    if let Some(new_epoch) = dir.claim(ctx, addr.to_string(), epoch)? {
                        for &m in candidates {
                            if m == r.machine || ctx.ping(m).is_err() {
                                continue;
                            }
                            match ctx.activate_fenced::<C>(m, addr, new_epoch) {
                                Ok(client) => {
                                    dir.bind_fenced(
                                        ctx,
                                        addr.to_string(),
                                        client.obj_ref(),
                                        new_epoch,
                                    )?;
                                    ctx.cache_resolve(addr, client.obj_ref());
                                    return Ok(client);
                                }
                                Err(e) => last_err = Some(e),
                            }
                        }
                        // We hold the claim but found no live candidate;
                        // surface the activation failure.
                        break;
                    }
                }
                // Claim lost (now or in an earlier round): a concurrent
                // takeover is in flight. Serve for a beat to let the
                // winner's bind land, then re-read.
                last_err = Some(crate::RemoteError::Fenced {
                    current_epoch: epoch,
                });
                ctx.serve_for(std::time::Duration::from_millis(20));
            }
            None => {
                // Never bound: first activation, no incarnation to fence.
                for &m in candidates {
                    if ctx.ping(m).is_err() {
                        continue;
                    }
                    match ctx.activate::<C>(m, addr) {
                        Ok(client) => {
                            dir.bind(ctx, addr.to_string(), client.obj_ref())?;
                            ctx.cache_resolve(addr, client.obj_ref());
                            return Ok(client);
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                break;
            }
        }
    }
    Err(last_err.unwrap_or(crate::RemoteError::NoSuchSnapshot {
        key: addr.to_string(),
    }))
}

/// Re-bind `addr` to an object's post-migration address and migrate it —
/// the placement subsystem's name-aware move. The directory is updated
/// *after* the migration commits, so a resolver racing the move sees
/// either the old binding (whose forward it chases once) or the new one;
/// never a dangling name.
pub fn migrate_bound(
    ctx: &mut NodeCtx,
    dir: &DirectoryClient,
    addr: &str,
    target: usize,
) -> RemoteResult<ObjRef> {
    let old = dir
        .lookup(ctx, addr.to_string())?
        .ok_or_else(|| crate::RemoteError::app(format!("{addr}: not bound")))?;
    let new_ref = ctx.migrate(old, target)?;
    if new_ref != old {
        dir.bind(ctx, addr.to_string(), new_ref)?;
        ctx.cache_resolve(addr, new_ref);
    }
    Ok(new_ref)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbolic_addresses_compose() {
        assert_eq!(
            symbolic_addr(&["data", "set", "PageDevice", "34"]),
            "oopp://data/set/PageDevice/34"
        );
        assert_eq!(symbolic_addr(&[]), "oopp://");
        assert_eq!(symbolic_addr(&["x"]), "oopp://x");
    }
}
