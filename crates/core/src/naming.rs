//! Symbolic object addresses (§5).
//!
//! The paper: *"Processes can be accessed using a symbolic object address,
//! similar to addresses used by the Data Access Protocol"*, e.g.
//! `"http://data/set/PageDevice/34"`. The [`Directory`] is a name service —
//! itself an ordinary oopp object, hosted on machine 0 by the runtime —
//! mapping `oopp://…` strings to live remote pointers. Combined with the
//! daemon's snapshot store it gives the paper's persistent-process model:
//! bind a name while the process is live, deactivate it, and a later
//! program resolves the name and reactivates the process.

use std::collections::BTreeMap;

use crate::error::RemoteResult;
use crate::ids::ObjRef;
use crate::node::NodeCtx;

/// Conventional scheme prefix for oopp symbolic addresses.
pub const SCHEME: &str = "oopp://";

/// Build a conventional symbolic address from path segments:
/// `symbolic_addr(&["data", "set", "PageDevice", "34"])` →
/// `"oopp://data/set/PageDevice/34"`.
pub fn symbolic_addr(segments: &[&str]) -> String {
    let mut s = String::from(SCHEME);
    for (i, seg) in segments.iter().enumerate() {
        if i > 0 {
            s.push('/');
        }
        s.push_str(seg);
    }
    s
}

/// Server state of the cluster name service.
#[derive(Debug, Default)]
pub struct Directory {
    entries: BTreeMap<String, ObjRef>,
}

remote_class! {
    /// Client for the cluster name service (one instance lives on machine
    /// 0; get it from [`Driver::directory`](crate::Driver::directory)).
    class Directory {
        ctor();
        /// Bind `name` to a live object. Rebinding replaces the old entry.
        fn bind(&mut self, name: String, target: ObjRef) -> ();
        /// Resolve a name, if bound.
        fn lookup(&mut self, name: String) -> Option<ObjRef>;
        /// Remove a binding; true if it existed.
        fn unbind(&mut self, name: String) -> bool;
        /// All bound names with the given prefix (sorted).
        fn list(&mut self, prefix: String) -> Vec<String>;
        /// Number of bindings.
        fn len(&mut self) -> usize;
    }
}

impl Directory {
    /// Constructor: an empty directory.
    pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(Directory::default())
    }

    fn bind(&mut self, _ctx: &mut NodeCtx, name: String, target: ObjRef) -> RemoteResult<()> {
        self.entries.insert(name, target);
        Ok(())
    }

    fn lookup(&mut self, _ctx: &mut NodeCtx, name: String) -> RemoteResult<Option<ObjRef>> {
        Ok(self.entries.get(&name).copied())
    }

    fn unbind(&mut self, _ctx: &mut NodeCtx, name: String) -> RemoteResult<bool> {
        Ok(self.entries.remove(&name).is_some())
    }

    fn list(&mut self, _ctx: &mut NodeCtx, prefix: String) -> RemoteResult<Vec<String>> {
        Ok(self
            .entries
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn len(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<usize> {
        Ok(self.entries.len())
    }
}

/// Dereference a symbolic address — the paper's
/// `PageDevice *pd = "http://data/set/PageDevice/34";`.
///
/// Resolution order: a live binding in the directory wins; otherwise the
/// runtime **activates** the process from the snapshot stored under the
/// same address on `machine` (§5: "the runtime system is responsible for
/// … activating and de-activating processes, as needed") and binds the
/// fresh process so later resolutions find it live.
pub fn resolve_or_activate<C: crate::RemoteClient>(
    ctx: &mut NodeCtx,
    dir: &DirectoryClient,
    machine: usize,
    addr: &str,
) -> RemoteResult<C> {
    if let Some(r) = dir.lookup(ctx, addr.to_string())? {
        return Ok(C::from_ref(r));
    }
    let client: C = ctx.activate(machine, addr)?;
    dir.bind(ctx, addr.to_string(), client.obj_ref())?;
    Ok(client)
}

/// Crash-tolerant name resolution: [`resolve_or_activate`] for a fabric
/// where machines can die.
///
/// A live binding is *verified* (the bound machine's daemon must answer a
/// ping) before it is trusted; a binding to a dead machine is unbound as
/// stale. Activation then walks `candidates` — machines that hold a
/// replica of the snapshot stored under `addr` (see
/// [`NodeCtx::replicate_snapshot`](crate::NodeCtx::replicate_snapshot)) —
/// and reactivates the process on the first one that is alive, rebinding
/// the name so later resolutions find the fresh process directly.
///
/// This is the recovery path for a call that exhausted its retries with
/// [`RemoteError::Timeout`](crate::RemoteError::Timeout): the caller drops
/// its stale remote pointer, resolves the symbolic address again through
/// this function, and resumes against the reactivated process.
///
/// Pings against dead machines cost a full retry cycle each, so keep the
/// [`CallPolicy`](crate::CallPolicy) windows short when supervision is in
/// play.
///
/// Resolutions are cached **per node** (see
/// [`NodeCtx::cached_resolve`](crate::NodeCtx::cached_resolve)), and a
/// cache hit is verified exactly like a directory binding — the bound
/// machine must answer a ping — before it is trusted. Staleness is
/// therefore repaired lazily on *every* machine, not just the one that
/// noticed the crash and re-bound the name: a third machine holding a
/// cached pointer to the dead home fails its own ping, invalidates its
/// own cache entry, and falls through to the directory, which already
/// points at the reactivated process. No invalidation broadcast needed.
pub fn resolve_or_activate_supervised<C: crate::RemoteClient>(
    ctx: &mut NodeCtx,
    dir: &DirectoryClient,
    addr: &str,
    candidates: &[usize],
) -> RemoteResult<C> {
    if let Some(r) = ctx.cached_resolve(addr) {
        if ctx.ping(r.machine).is_ok() {
            return Ok(C::from_ref(r));
        }
        ctx.invalidate_resolve(addr);
    }
    if let Some(r) = dir.lookup(ctx, addr.to_string())? {
        if ctx.ping(r.machine).is_ok() {
            ctx.cache_resolve(addr, r);
            return Ok(C::from_ref(r));
        }
        dir.unbind(ctx, addr.to_string())?;
    }
    let mut last_err = None;
    for &m in candidates {
        if ctx.ping(m).is_err() {
            continue;
        }
        match ctx.activate::<C>(m, addr) {
            Ok(client) => {
                dir.bind(ctx, addr.to_string(), client.obj_ref())?;
                ctx.cache_resolve(addr, client.obj_ref());
                return Ok(client);
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or(crate::RemoteError::NoSuchSnapshot {
        key: addr.to_string(),
    }))
}

/// Re-bind `addr` to an object's post-migration address and migrate it —
/// the placement subsystem's name-aware move. The directory is updated
/// *after* the migration commits, so a resolver racing the move sees
/// either the old binding (whose forward it chases once) or the new one;
/// never a dangling name.
pub fn migrate_bound(
    ctx: &mut NodeCtx,
    dir: &DirectoryClient,
    addr: &str,
    target: usize,
) -> RemoteResult<ObjRef> {
    let old = dir
        .lookup(ctx, addr.to_string())?
        .ok_or_else(|| crate::RemoteError::app(format!("{addr}: not bound")))?;
    let new_ref = ctx.migrate(old, target)?;
    if new_ref != old {
        dir.bind(ctx, addr.to_string(), new_ref)?;
        ctx.cache_resolve(addr, new_ref);
    }
    Ok(new_ref)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbolic_addresses_compose() {
        assert_eq!(
            symbolic_addr(&["data", "set", "PageDevice", "34"]),
            "oopp://data/set/PageDevice/34"
        );
        assert_eq!(symbolic_addr(&[]), "oopp://");
        assert_eq!(symbolic_addr(&["x"]), "oopp://x");
    }
}
