//! Symbolic object addresses (§5) and the sharded control plane (§14).
//!
//! The paper: *"Processes can be accessed using a symbolic object address,
//! similar to addresses used by the Data Access Protocol"*, e.g.
//! `"http://data/set/PageDevice/34"`. The [`Directory`] is a name service —
//! itself an ordinary oopp object, hosted on machine 0 by the runtime —
//! mapping `oopp://…` strings to live remote pointers. Combined with the
//! daemon's snapshot store it gives the paper's persistent-process model:
//! bind a name while the process is live, deactivate it, and a later
//! program resolves the name and reactivates the process.
//!
//! At scale one directory object is a choke point and a single point of
//! failure, so the control plane dogfoods the paper's own model: the
//! namespace can be hash-partitioned over N [`DirShard`] objects — each a
//! normal `remote_class!` object holding one partition of the lease
//! records, persistent (snapshot-recoverable) and replicated for reads.
//! [`NameService`] is the client-side router: a `Copy` facade that sends
//! each name to its shard, caches shard locations in the per-node resolve
//! cache, and re-resolves through the root directory when a shard's
//! primary fails over (DESIGN.md §14). `ClusterBuilder::dir_shards(0)`
//! keeps the classic single directory, byte-compatible.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::error::{RemoteError, RemoteResult};
use crate::ids::ObjRef;
use crate::node::NodeCtx;

/// Conventional scheme prefix for oopp symbolic addresses.
pub const SCHEME: &str = "oopp://";

/// Reserved namespace of the control plane itself. Names under this
/// prefix (the shard seats, above all) always resolve through the *root*
/// directory, never through a shard — otherwise locating a shard would
/// require the shard being located.
pub const DIRSVC_PREFIX: &str = "oopp://_dirsvc/";

/// The root-directory name of shard `index`'s seat.
pub fn shard_addr(index: u32) -> String {
    format!("{DIRSVC_PREFIX}shard/{index}")
}

/// Build a conventional symbolic address from path segments:
/// `symbolic_addr(&["data", "set", "PageDevice", "34"])` →
/// `"oopp://data/set/PageDevice/34"`.
pub fn symbolic_addr(segments: &[&str]) -> String {
    let mut s = String::from(SCHEME);
    for (i, seg) in segments.iter().enumerate() {
        if i > 0 {
            s.push('/');
        }
        s.push_str(seg);
    }
    s
}

/// The shard a name routes to: a stable FNV-1a hash of the name's bytes
/// modulo the shard count. Deliberately *not* `std::hash` — the routing
/// function is part of the wire contract (every client must agree, across
/// processes and rust versions) and of the deterministic replay story.
pub fn shard_of_name(name: &str, shards: u32) -> u32 {
    debug_assert!(shards > 0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as u32
}

/// One directory entry: where the name points, which incarnation epoch
/// that pointer is at (0 = never supervised), and whether the supervisor
/// has given up on the name — a give-up poisons the name so resolvers
/// fail fast instead of re-activating an unrecoverable object forever.
/// A replicated name additionally records its read-replica set and the
/// fenced replica-set epoch (see DESIGN.md §11): `rs_epoch` is bumped by
/// CAS ([`set_replicas`](DirectoryClient::set_replicas)) so of two racing
/// replica managers exactly one installs its set.
#[derive(Debug, Clone)]
struct LeaseRecord {
    target: ObjRef,
    epoch: u64,
    poisoned: bool,
    replicas: Vec<ObjRef>,
    rs_epoch: u64,
}

impl LeaseRecord {
    fn fresh(target: ObjRef, epoch: u64) -> Self {
        LeaseRecord {
            target,
            epoch,
            poisoned: false,
            replicas: Vec::new(),
            rs_epoch: 0,
        }
    }
}

/// One partition of lease records — the whole table in the classic
/// single directory, one shard's slice in the sharded control plane. The
/// [`Directory`] and [`DirShard`] server classes are both thin wrappers
/// around this map, so record semantics (CAS rules, poison, replica-set
/// fencing) cannot drift between the two deployments.
#[derive(Debug, Default)]
struct LeaseMap {
    entries: BTreeMap<String, LeaseRecord>,
}

impl LeaseMap {
    fn bind(&mut self, name: String, target: ObjRef) {
        let epoch = self.entries.get(&name).map(|r| r.epoch).unwrap_or(0);
        // Rebinding drops any replica set: the replicas mirror the *old*
        // target and must be rebuilt against the new one.
        self.entries.insert(name, LeaseRecord::fresh(target, epoch));
    }

    fn lookup(&self, name: &str) -> Option<ObjRef> {
        self.entries
            .get(name)
            .filter(|r| !r.poisoned)
            .map(|r| r.target)
    }

    fn unbind(&mut self, name: &str) -> bool {
        self.entries.remove(name).is_some()
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.entries
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn lease_of(&self, name: &str) -> Option<(ObjRef, u64, bool)> {
        self.entries
            .get(name)
            .map(|r| (r.target, r.epoch, r.poisoned))
    }

    fn claim(&mut self, name: &str, expect: u64) -> Option<u64> {
        match self.entries.get_mut(name) {
            Some(r) if !r.poisoned && r.epoch == expect => {
                r.epoch += 1;
                Some(r.epoch)
            }
            _ => None,
        }
    }

    fn bind_fenced(&mut self, name: String, target: ObjRef, epoch: u64) -> bool {
        match self.entries.get_mut(&name) {
            Some(r) if r.epoch <= epoch => {
                r.target = target;
                r.epoch = epoch;
                r.poisoned = false;
                // A takeover installs a fresh incarnation; any replica set
                // mirrored the dead one and must be rebuilt against it.
                r.replicas.clear();
                r.rs_epoch += 1;
                true
            }
            Some(_) => false,
            None => {
                self.entries.insert(name, LeaseRecord::fresh(target, epoch));
                true
            }
        }
    }

    fn poison(&mut self, name: &str) {
        if let Some(r) = self.entries.get_mut(name) {
            r.poisoned = true;
        }
    }

    fn replica_set(&self, name: &str) -> Option<(Vec<ObjRef>, u64)> {
        self.entries
            .get(name)
            .map(|r| (r.replicas.clone(), r.rs_epoch))
    }

    fn set_replicas(&mut self, name: &str, replicas: Vec<ObjRef>, expect: u64) -> Option<u64> {
        match self.entries.get_mut(name) {
            Some(r) if !r.poisoned && r.rs_epoch == expect => {
                r.replicas = replicas;
                r.rs_epoch += 1;
                Some(r.rs_epoch)
            }
            _ => None,
        }
    }

    fn purge_replicas_on(&mut self, machine: usize) -> usize {
        let mut changed = 0;
        for r in self.entries.values_mut() {
            let before = r.replicas.len();
            r.replicas.retain(|rep| rep.machine != machine);
            if r.replicas.len() != before {
                r.rs_epoch += 1;
                changed += 1;
            }
        }
        changed
    }

    fn encode(&self, w: &mut wire::Writer) {
        wire::Wire::encode(&(self.entries.len() as u64), w);
        for (name, r) in &self.entries {
            wire::Wire::encode(name, w);
            wire::Wire::encode(&r.target, w);
            wire::Wire::encode(&r.epoch, w);
            wire::Wire::encode(&r.poisoned, w);
            wire::Wire::encode(&r.replicas, w);
            wire::Wire::encode(&r.rs_epoch, w);
        }
    }

    fn decode(r: &mut wire::Reader<'_>) -> wire::WireResult<Self> {
        let n = <u64 as wire::Wire>::decode(r)?;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let name = <String as wire::Wire>::decode(r)?;
            let target = <ObjRef as wire::Wire>::decode(r)?;
            let epoch = <u64 as wire::Wire>::decode(r)?;
            let poisoned = <bool as wire::Wire>::decode(r)?;
            let replicas = <Vec<ObjRef> as wire::Wire>::decode(r)?;
            let rs_epoch = <u64 as wire::Wire>::decode(r)?;
            entries.insert(
                name,
                LeaseRecord {
                    target,
                    epoch,
                    poisoned,
                    replicas,
                    rs_epoch,
                },
            );
        }
        Ok(LeaseMap { entries })
    }
}

/// Server state of the cluster name service.
#[derive(Debug, Default)]
pub struct Directory {
    map: LeaseMap,
}

remote_class! {
    /// Client for the cluster name service root (one instance lives on
    /// machine 0; user code should usually go through the routing
    /// [`NameService`] from [`Driver::directory`](crate::Driver::directory)
    /// instead of this raw client).
    class Directory {
        ctor();
        /// Bind `name` to a live object. Rebinding replaces the old entry
        /// (its epoch, if any, is preserved; a poisoned name is revived).
        fn bind(&mut self, name: String, target: ObjRef) -> ();
        /// Resolve a name, if bound and not poisoned.
        fn lookup(&mut self, name: String) -> Option<ObjRef>;
        /// Remove a binding; true if it existed.
        fn unbind(&mut self, name: String) -> bool;
        /// All bound names with the given prefix (sorted).
        fn list(&mut self, prefix: String) -> Vec<String>;
        /// Number of bindings.
        fn len(&mut self) -> usize;
        /// Full lease record of a name: `(target, epoch, poisoned)`.
        fn lease_of(&mut self, name: String) -> Option<(ObjRef, u64, bool)>;
        /// Atomically bump a name's epoch — the takeover arbiter. Succeeds
        /// (returning the new epoch) only when the recorded epoch still
        /// equals `expect`: of two racing claimants exactly one wins, and
        /// the loser learns the epoch moved under it. Directory calls
        /// serialize (one process per object), which makes this a CAS.
        fn claim(&mut self, name: String, expect: u64) -> Option<u64>;
        /// Bind `name` to a reactivated incarnation at `epoch`. Refused
        /// (false) if the record has meanwhile advanced past `epoch` —
        /// a later takeover must never be overwritten by an earlier one.
        fn bind_fenced(&mut self, name: String, target: ObjRef, epoch: u64) -> bool;
        /// Mark a name as given-up: resolvers see the poison instead of
        /// re-activating an unrecoverable object forever.
        fn poison(&mut self, name: String) -> ();
        /// The name's read-replica set and replica-set epoch, if bound.
        /// An unreplicated name reports `(vec![], 0)`.
        fn replica_set(&mut self, name: String) -> Option<(Vec<ObjRef>, u64)>;
        /// Atomically install a name's replica set — the replica-scaling
        /// arbiter, a CAS exactly like [`claim`](DirectoryClient::claim):
        /// succeeds (returning the bumped replica-set epoch) only when the
        /// recorded `rs_epoch` still equals `expect` and the name is bound
        /// and unpoisoned.
        fn set_replicas(&mut self, name: String, replicas: Vec<ObjRef>, expect: u64) -> Option<u64>;
        /// Purge every replica-set entry pointing at a dead machine: drop
        /// its replicas from every record (bumping the record's `rs_epoch`
        /// so live replicas re-fence) and report how many records changed.
        /// Part of the `declare-dead` purge path; the supervisor calls it
        /// alongside unbinding names homed on the dead machine.
        fn purge_replicas_on(&mut self, machine: usize) -> usize;
    }
}

impl Directory {
    /// Constructor: an empty directory.
    pub fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(Directory::default())
    }

    fn bind(&mut self, _ctx: &mut NodeCtx, name: String, target: ObjRef) -> RemoteResult<()> {
        self.map.bind(name, target);
        Ok(())
    }

    fn lookup(&mut self, _ctx: &mut NodeCtx, name: String) -> RemoteResult<Option<ObjRef>> {
        Ok(self.map.lookup(&name))
    }

    fn unbind(&mut self, _ctx: &mut NodeCtx, name: String) -> RemoteResult<bool> {
        Ok(self.map.unbind(&name))
    }

    fn list(&mut self, _ctx: &mut NodeCtx, prefix: String) -> RemoteResult<Vec<String>> {
        Ok(self.map.list(&prefix))
    }

    fn len(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<usize> {
        Ok(self.map.len())
    }

    fn lease_of(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
    ) -> RemoteResult<Option<(ObjRef, u64, bool)>> {
        Ok(self.map.lease_of(&name))
    }

    fn claim(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
        expect: u64,
    ) -> RemoteResult<Option<u64>> {
        Ok(self.map.claim(&name, expect))
    }

    fn bind_fenced(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
        target: ObjRef,
        epoch: u64,
    ) -> RemoteResult<bool> {
        Ok(self.map.bind_fenced(name, target, epoch))
    }

    fn poison(&mut self, _ctx: &mut NodeCtx, name: String) -> RemoteResult<()> {
        self.map.poison(&name);
        Ok(())
    }

    fn replica_set(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
    ) -> RemoteResult<Option<(Vec<ObjRef>, u64)>> {
        Ok(self.map.replica_set(&name))
    }

    fn set_replicas(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
        replicas: Vec<ObjRef>,
        expect: u64,
    ) -> RemoteResult<Option<u64>> {
        Ok(self.map.set_replicas(&name, replicas, expect))
    }

    fn purge_replicas_on(&mut self, _ctx: &mut NodeCtx, machine: usize) -> RemoteResult<usize> {
        Ok(self.map.purge_replicas_on(machine))
    }
}

/// One shard of the partitioned control plane: the same lease-record
/// semantics as [`Directory`], over the slice of the namespace whose
/// names hash to `index` (see [`shard_of_name`]). A shard is a perfectly
/// ordinary oopp object — the whole point (§5: the directory "is itself
/// an ordinary oopp object"): it is `persistent` so the supervisor can
/// snapshot-restore it onto a survivor, and it declares its query verbs
/// as `reads(...)` so the replica manager can scale and fail over its
/// partition with write-through coherence.
#[derive(Debug)]
pub struct DirShard {
    index: u64,
    total: u64,
    map: LeaseMap,
}

remote_class! {
    /// Client for one control-plane shard. User code should not hold one
    /// of these directly — [`NameService`] routes to shards and handles
    /// shard failover; this client exists for the management plane
    /// (`crates/dirsvc`) and tests.
    class DirShard {
        persistent;
        reads(lookup, list, len, lease_of, replica_set, shard_info);
        ctor(index: u64, total: u64);
        /// Bind `name` to a live object (see [`DirectoryClient::bind`]).
        fn bind(&mut self, name: String, target: ObjRef) -> ();
        /// Resolve a name, if bound and not poisoned.
        fn lookup(&mut self, name: String) -> Option<ObjRef>;
        /// Remove a binding; true if it existed.
        fn unbind(&mut self, name: String) -> bool;
        /// All names in this shard's partition with the given prefix.
        fn list(&mut self, prefix: String) -> Vec<String>;
        /// Number of bindings in this shard's partition.
        fn len(&mut self) -> usize;
        /// Full lease record of a name: `(target, epoch, poisoned)`.
        fn lease_of(&mut self, name: String) -> Option<(ObjRef, u64, bool)>;
        /// Epoch CAS (see [`DirectoryClient::claim`]).
        fn claim(&mut self, name: String, expect: u64) -> Option<u64>;
        /// Fenced rebind (see [`DirectoryClient::bind_fenced`]).
        fn bind_fenced(&mut self, name: String, target: ObjRef, epoch: u64) -> bool;
        /// Poison a name (see [`DirectoryClient::poison`]).
        fn poison(&mut self, name: String) -> ();
        /// The name's read-replica set and replica-set epoch, if bound.
        fn replica_set(&mut self, name: String) -> Option<(Vec<ObjRef>, u64)>;
        /// Replica-set CAS (see [`DirectoryClient::set_replicas`]).
        fn set_replicas(&mut self, name: String, replicas: Vec<ObjRef>, expect: u64) -> Option<u64>;
        /// Scrub a dead machine's replicas from this partition's records.
        fn purge_replicas_on(&mut self, machine: usize) -> usize;
        /// This shard's `(index, total)` in the shard map — lets a client
        /// audit that a seat really serves the partition it claims.
        fn shard_info(&mut self) -> (u64, u64);
    }
}

impl DirShard {
    /// Constructor: an empty partition `index` of `total`.
    pub fn new(_ctx: &mut NodeCtx, index: u64, total: u64) -> RemoteResult<Self> {
        if total == 0 || index >= total {
            return Err(RemoteError::app(format!(
                "DirShard: seat {index} outside shard map of {total}"
            )));
        }
        Ok(DirShard {
            index,
            total,
            map: LeaseMap::default(),
        })
    }

    /// Snapshot the partition (the `persistent;` contract).
    pub fn save_state(&self) -> Vec<u8> {
        let mut w = wire::Writer::new();
        wire::Wire::encode(&self.index, &mut w);
        wire::Wire::encode(&self.total, &mut w);
        self.map.encode(&mut w);
        w.into_bytes()
    }

    /// Restore a partition from its snapshot (the `persistent;` contract).
    pub fn load_state(_ctx: &mut NodeCtx, state: &[u8]) -> RemoteResult<Self> {
        let mut r = wire::Reader::new(state);
        let index = <u64 as wire::Wire>::decode(&mut r)?;
        let total = <u64 as wire::Wire>::decode(&mut r)?;
        let map = LeaseMap::decode(&mut r)?;
        Ok(DirShard { index, total, map })
    }

    fn guard(&self, name: &str) -> RemoteResult<()> {
        // A request for a name outside this partition means the caller's
        // shard map is wrong (or the seat was rebound to the wrong shard
        // object); answering it would silently fork the namespace.
        if self.total > 1 && shard_of_name(name, self.total as u32) != self.index as u32 {
            return Err(RemoteError::app(format!(
                "{name}: routed to shard {}/{} but hashes elsewhere",
                self.index, self.total
            )));
        }
        Ok(())
    }

    fn bind(&mut self, _ctx: &mut NodeCtx, name: String, target: ObjRef) -> RemoteResult<()> {
        self.guard(&name)?;
        self.map.bind(name, target);
        Ok(())
    }

    fn lookup(&mut self, _ctx: &mut NodeCtx, name: String) -> RemoteResult<Option<ObjRef>> {
        self.guard(&name)?;
        Ok(self.map.lookup(&name))
    }

    fn unbind(&mut self, _ctx: &mut NodeCtx, name: String) -> RemoteResult<bool> {
        self.guard(&name)?;
        Ok(self.map.unbind(&name))
    }

    fn list(&mut self, _ctx: &mut NodeCtx, prefix: String) -> RemoteResult<Vec<String>> {
        Ok(self.map.list(&prefix))
    }

    fn len(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<usize> {
        Ok(self.map.len())
    }

    fn lease_of(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
    ) -> RemoteResult<Option<(ObjRef, u64, bool)>> {
        self.guard(&name)?;
        Ok(self.map.lease_of(&name))
    }

    fn claim(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
        expect: u64,
    ) -> RemoteResult<Option<u64>> {
        self.guard(&name)?;
        Ok(self.map.claim(&name, expect))
    }

    fn bind_fenced(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
        target: ObjRef,
        epoch: u64,
    ) -> RemoteResult<bool> {
        self.guard(&name)?;
        Ok(self.map.bind_fenced(name, target, epoch))
    }

    fn poison(&mut self, _ctx: &mut NodeCtx, name: String) -> RemoteResult<()> {
        self.guard(&name)?;
        self.map.poison(&name);
        Ok(())
    }

    fn replica_set(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
    ) -> RemoteResult<Option<(Vec<ObjRef>, u64)>> {
        self.guard(&name)?;
        Ok(self.map.replica_set(&name))
    }

    fn set_replicas(
        &mut self,
        _ctx: &mut NodeCtx,
        name: String,
        replicas: Vec<ObjRef>,
        expect: u64,
    ) -> RemoteResult<Option<u64>> {
        self.guard(&name)?;
        Ok(self.map.set_replicas(&name, replicas, expect))
    }

    fn purge_replicas_on(&mut self, _ctx: &mut NodeCtx, machine: usize) -> RemoteResult<usize> {
        Ok(self.map.purge_replicas_on(machine))
    }

    fn shard_info(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<(u64, u64)> {
        Ok((self.index, self.total))
    }
}

/// Rounds a routed call retries through re-resolution before surfacing
/// the shard's failure. Each failed round re-reads the shard's seat from
/// the root directory after a short serving beat, so a takeover that
/// rebinds the seat mid-retry is picked up without any invalidation
/// broadcast.
const SHARD_RETRY_ROUNDS: usize = 10;

/// The serving beat between shard-retry rounds.
const SHARD_RETRY_BEAT: Duration = Duration::from_millis(25);

/// The cluster name service, as clients see it: a `Copy` routing facade
/// over either the classic single [`Directory`] (`shards == 0`) or a
/// hash-partitioned set of [`DirShard`]s (DESIGN.md §14).
///
/// Routing rules:
/// * `shards == 0` — every call goes to the root directory object; this
///   is byte-compatible with the pre-sharding protocol.
/// * names under [`DIRSVC_PREFIX`] — always the root (the shard seats
///   live there; routing them through a shard would be circular);
/// * everything else — the shard [`shard_of_name`] picks.
///
/// Shard seats are located lazily through the root and cached in the
/// per-node resolve cache under their [`shard_addr`]; a call that fails
/// with a timeout / fence / double-redirect invalidates the cached seat,
/// re-reads it from the root (which the management plane rebinds after a
/// failover), and retries — bounded by a fixed round budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NameService {
    root: ObjRef,
    shards: u32,
}

impl NameService {
    /// The classic single-directory service: every name lives in `root`.
    pub fn classic(root: ObjRef) -> Self {
        NameService { root, shards: 0 }
    }

    /// A sharded service over `shards` partitions seated in `root`.
    pub fn sharded(root: ObjRef, shards: u32) -> Self {
        NameService { root, shards }
    }

    /// The root directory object (shard seats and reserved names live
    /// there; with `shards() == 0` it holds every name).
    pub fn obj_ref(&self) -> ObjRef {
        self.root
    }

    /// Number of partitions (0 = classic single directory).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The raw root-directory client (management plane and tests).
    pub fn root_client(&self) -> DirectoryClient {
        crate::RemoteClient::from_ref(self.root)
    }

    /// The shard `name` routes to; `None` when the name is served by the
    /// root (classic mode, or a reserved `_dirsvc` name).
    pub fn shard_for(&self, name: &str) -> Option<u32> {
        if self.shards == 0 || name.starts_with(DIRSVC_PREFIX) {
            None
        } else {
            Some(shard_of_name(name, self.shards))
        }
    }

    /// Locate shard `index`'s seat: per-node resolve cache first, root
    /// directory on a miss.
    fn shard_seat(&self, ctx: &mut NodeCtx, index: u32) -> RemoteResult<ObjRef> {
        let addr = shard_addr(index);
        if let Some(r) = ctx.cached_resolve(&addr) {
            return Ok(r);
        }
        match self.root_client().lookup(ctx, addr.clone())? {
            Some(r) => {
                ctx.cache_resolve(&addr, r);
                Ok(r)
            }
            None => Err(RemoteError::app(format!(
                "{addr}: shard seat not bound in the root directory"
            ))),
        }
    }

    /// Run `op` against shard `index`, re-resolving the seat and retrying
    /// on the errors that signal a failed or fenced seat. Errors that are
    /// the *answer* (app errors, missing methods) surface immediately.
    fn with_shard<T>(
        &self,
        ctx: &mut NodeCtx,
        index: u32,
        mut op: impl FnMut(&mut NodeCtx, &DirShardClient) -> RemoteResult<T>,
    ) -> RemoteResult<T> {
        let addr = shard_addr(index);
        let mut last: Option<RemoteError> = None;
        for round in 0..SHARD_RETRY_ROUNDS {
            if round > 0 {
                // Let the failover land (claim, promote/restore, rebind)
                // before re-reading the seat.
                ctx.serve_for(SHARD_RETRY_BEAT);
            }
            let seat = match self.shard_seat(ctx, index) {
                Ok(s) => s,
                Err(e @ RemoteError::Timeout { .. }) => return Err(e), // root gone: unrecoverable here
                Err(e) => {
                    // Seat unbound mid-failover: re-read next round.
                    last = Some(e);
                    continue;
                }
            };
            let client: DirShardClient = crate::RemoteClient::from_ref(seat);
            match op(ctx, &client) {
                Ok(v) => return Ok(v),
                Err(
                    e @ (RemoteError::Timeout { .. }
                    | RemoteError::Fenced { .. }
                    | RemoteError::Moved { .. }
                    | RemoteError::NoSuchObject { .. }),
                ) => {
                    // The seat is dead, fenced, or forwarded past the
                    // chase budget: drop it and re-resolve from the root.
                    ctx.invalidate_resolve(&addr);
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(RemoteError::NoSuchSnapshot { key: addr }))
    }

    /// Bind `name` to a live object (see [`DirectoryClient::bind`]).
    pub fn bind(&self, ctx: &mut NodeCtx, name: String, target: ObjRef) -> RemoteResult<()> {
        match self.shard_for(&name) {
            None => self.root_client().bind(ctx, name, target),
            Some(i) => self.with_shard(ctx, i, |ctx, s| s.bind(ctx, name.clone(), target)),
        }
    }

    /// Resolve a name, if bound and not poisoned.
    pub fn lookup(&self, ctx: &mut NodeCtx, name: String) -> RemoteResult<Option<ObjRef>> {
        match self.shard_for(&name) {
            None => self.root_client().lookup(ctx, name),
            Some(i) => self.with_shard(ctx, i, |ctx, s| s.lookup(ctx, name.clone())),
        }
    }

    /// Remove a binding; true if it existed.
    pub fn unbind(&self, ctx: &mut NodeCtx, name: String) -> RemoteResult<bool> {
        match self.shard_for(&name) {
            None => self.root_client().unbind(ctx, name),
            Some(i) => self.with_shard(ctx, i, |ctx, s| s.unbind(ctx, name.clone())),
        }
    }

    /// All bound names with the given prefix, across every partition
    /// (sorted). In sharded mode the control plane's own reserved names
    /// are reported only when explicitly asked for (a prefix inside
    /// [`DIRSVC_PREFIX`]) — `list("oopp://…")` of user names must not
    /// change meaning when sharding is switched on.
    pub fn list(&self, ctx: &mut NodeCtx, prefix: String) -> RemoteResult<Vec<String>> {
        if self.shards == 0 {
            return self.root_client().list(ctx, prefix);
        }
        let mut names: Vec<String> = self
            .root_client()
            .list(ctx, prefix.clone())?
            .into_iter()
            .filter(|n| prefix.starts_with(DIRSVC_PREFIX) || !n.starts_with(DIRSVC_PREFIX))
            .collect();
        for i in 0..self.shards {
            names.extend(self.with_shard(ctx, i, |ctx, s| s.list(ctx, prefix.clone()))?);
        }
        names.sort();
        names.dedup();
        Ok(names)
    }

    /// Number of user-visible bindings across every partition (reserved
    /// control-plane names excluded in sharded mode).
    pub fn len(&self, ctx: &mut NodeCtx) -> RemoteResult<usize> {
        if self.shards == 0 {
            return self.root_client().len(ctx);
        }
        let reserved = self.root_client().list(ctx, DIRSVC_PREFIX.to_string())?;
        let mut n = self.root_client().len(ctx)? - reserved.len();
        for i in 0..self.shards {
            n += self.with_shard(ctx, i, |ctx, s| s.len(ctx))?;
        }
        Ok(n)
    }

    /// Full lease record of a name: `(target, epoch, poisoned)`.
    pub fn lease_of(
        &self,
        ctx: &mut NodeCtx,
        name: String,
    ) -> RemoteResult<Option<(ObjRef, u64, bool)>> {
        match self.shard_for(&name) {
            None => self.root_client().lease_of(ctx, name),
            Some(i) => self.with_shard(ctx, i, |ctx, s| s.lease_of(ctx, name.clone())),
        }
    }

    /// Epoch CAS (see [`DirectoryClient::claim`]).
    pub fn claim(&self, ctx: &mut NodeCtx, name: String, expect: u64) -> RemoteResult<Option<u64>> {
        match self.shard_for(&name) {
            None => self.root_client().claim(ctx, name, expect),
            Some(i) => self.with_shard(ctx, i, |ctx, s| s.claim(ctx, name.clone(), expect)),
        }
    }

    /// Fenced rebind (see [`DirectoryClient::bind_fenced`]).
    pub fn bind_fenced(
        &self,
        ctx: &mut NodeCtx,
        name: String,
        target: ObjRef,
        epoch: u64,
    ) -> RemoteResult<bool> {
        match self.shard_for(&name) {
            None => self.root_client().bind_fenced(ctx, name, target, epoch),
            Some(i) => self.with_shard(ctx, i, |ctx, s| {
                s.bind_fenced(ctx, name.clone(), target, epoch)
            }),
        }
    }

    /// Poison a name (see [`DirectoryClient::poison`]).
    pub fn poison(&self, ctx: &mut NodeCtx, name: String) -> RemoteResult<()> {
        match self.shard_for(&name) {
            None => self.root_client().poison(ctx, name),
            Some(i) => self.with_shard(ctx, i, |ctx, s| s.poison(ctx, name.clone())),
        }
    }

    /// The name's read-replica set and replica-set epoch, if bound.
    pub fn replica_set(
        &self,
        ctx: &mut NodeCtx,
        name: String,
    ) -> RemoteResult<Option<(Vec<ObjRef>, u64)>> {
        match self.shard_for(&name) {
            None => self.root_client().replica_set(ctx, name),
            Some(i) => self.with_shard(ctx, i, |ctx, s| s.replica_set(ctx, name.clone())),
        }
    }

    /// Replica-set CAS (see [`DirectoryClient::set_replicas`]).
    pub fn set_replicas(
        &self,
        ctx: &mut NodeCtx,
        name: String,
        replicas: Vec<ObjRef>,
        expect: u64,
    ) -> RemoteResult<Option<u64>> {
        match self.shard_for(&name) {
            None => self.root_client().set_replicas(ctx, name, replicas, expect),
            Some(i) => self.with_shard(ctx, i, |ctx, s| {
                s.set_replicas(ctx, name.clone(), replicas.clone(), expect)
            }),
        }
    }

    /// Scrub a dead machine's replicas from every record, in the root and
    /// every partition; returns how many records changed.
    ///
    /// The partition sweep is **best-effort** — this runs on the
    /// declare-dead path, where a shard seated *on* the purged machine
    /// may itself be mid-takeover. Each partition gets exactly one
    /// attempt, no retry rounds: burning the seat-chase budget here would
    /// stall the very supervision step that heals the shard. A partition
    /// that cannot answer is left for its own recovery (the replica
    /// manager's shrink converges any replica routes it held); on a
    /// healthy fabric every shard answers and the count is exact. A root
    /// failure still surfaces — without the arbiter nothing safe can
    /// happen.
    pub fn purge_replicas_on(&self, ctx: &mut NodeCtx, machine: usize) -> RemoteResult<usize> {
        let mut changed = self.root_client().purge_replicas_on(ctx, machine)?;
        for i in 0..self.shards {
            let Ok(seat) = self.shard_seat(ctx, i) else {
                continue;
            };
            let client: DirShardClient = crate::RemoteClient::from_ref(seat);
            match client.purge_replicas_on(ctx, machine) {
                Ok(n) => changed += n,
                // Stale seat: drop it so the next routed op re-resolves.
                Err(_) => ctx.invalidate_resolve(&shard_addr(i)),
            }
        }
        Ok(changed)
    }
}

wire::wire_struct!(NameService { root, shards });

/// Dereference a symbolic address — the paper's
/// `PageDevice *pd = "http://data/set/PageDevice/34";`.
///
/// Resolution order: a live binding in the directory wins; otherwise the
/// runtime **activates** the process from the snapshot stored under the
/// same address on `machine` (§5: "the runtime system is responsible for
/// … activating and de-activating processes, as needed") and binds the
/// fresh process so later resolutions find it live.
pub fn resolve_or_activate<C: crate::RemoteClient>(
    ctx: &mut NodeCtx,
    dir: &NameService,
    machine: usize,
    addr: &str,
) -> RemoteResult<C> {
    if let Some(r) = dir.lookup(ctx, addr.to_string())? {
        return Ok(C::from_ref(r));
    }
    let client: C = ctx.activate(machine, addr)?;
    dir.bind(ctx, addr.to_string(), client.obj_ref())?;
    Ok(client)
}

/// Crash-tolerant name resolution: [`resolve_or_activate`] for a fabric
/// where machines can die.
///
/// A live binding is *verified* (the bound machine's daemon must answer a
/// ping) before it is trusted; a binding to a dead machine is unbound as
/// stale. Activation then walks `candidates` — machines that hold a
/// replica of the snapshot stored under `addr` (see
/// [`NodeCtx::replicate_snapshot`](crate::NodeCtx::replicate_snapshot)) —
/// and reactivates the process on the first one that is alive, rebinding
/// the name so later resolutions find the fresh process directly.
///
/// This is the recovery path for a call that exhausted its retries with
/// [`RemoteError::Timeout`]: the caller drops
/// its stale remote pointer, resolves the symbolic address again through
/// this function, and resumes against the reactivated process.
///
/// Pings against dead machines cost a full retry cycle each, so keep the
/// [`CallPolicy`](crate::CallPolicy) windows short when supervision is in
/// play.
///
/// Resolutions are cached **per node** (see
/// [`NodeCtx::cached_resolve`](crate::NodeCtx::cached_resolve)), and a
/// cache hit is verified exactly like a directory binding — the bound
/// machine must answer a ping — before it is trusted. Staleness is
/// therefore repaired lazily on *every* machine, not just the one that
/// noticed the crash and re-bound the name: a third machine holding a
/// cached pointer to the dead home fails its own ping, invalidates its
/// own cache entry, and falls through to the directory, which already
/// points at the reactivated process. No invalidation broadcast needed.
pub fn resolve_or_activate_supervised<C: crate::RemoteClient>(
    ctx: &mut NodeCtx,
    dir: &NameService,
    addr: &str,
    candidates: &[usize],
) -> RemoteResult<C> {
    if let Some(r) = ctx.cached_resolve(addr) {
        if ctx.ping(r.machine).is_ok() {
            return Ok(C::from_ref(r));
        }
        ctx.invalidate_resolve(addr);
    }
    // Recovery is arbitrated through the name's lease epoch: the
    // directory's `claim` is a CAS, so of N clients that all watched the
    // home machine die, exactly one bumps the epoch and activates a
    // replica. A loser's claim fails — the epoch moved under it — and it
    // never claims again in this invocation (claiming the *bumped* epoch
    // would re-open the double-activation it just lost); it waits for the
    // winner's `bind_fenced` and adopts that incarnation, or gives up
    // with [`Fenced`](crate::RemoteError::Fenced) so the caller
    // re-resolves. Without the claim, both clients would activate and the
    // name would flap between two live copies (split-brain).
    let mut last_err = None;
    let mut may_claim = true;
    for _ in 0..6 {
        match dir.lease_of(ctx, addr.to_string())? {
            Some((_, _, true)) => {
                // The supervisor gave up on this name; don't dig it up.
                return Err(crate::RemoteError::app(format!(
                    "{addr}: name is poisoned (supervision gave up)"
                )));
            }
            Some((r, epoch, false)) => {
                if ctx.ping(r.machine).is_ok() {
                    ctx.note_epoch(r, epoch);
                    ctx.cache_resolve(addr, r);
                    return Ok(C::from_ref(r));
                }
                if may_claim {
                    may_claim = false;
                    if let Some(new_epoch) = dir.claim(ctx, addr.to_string(), epoch)? {
                        for &m in candidates {
                            if m == r.machine || ctx.ping(m).is_err() {
                                continue;
                            }
                            match ctx.activate_fenced::<C>(m, addr, new_epoch) {
                                Ok(client) => {
                                    dir.bind_fenced(
                                        ctx,
                                        addr.to_string(),
                                        client.obj_ref(),
                                        new_epoch,
                                    )?;
                                    ctx.cache_resolve(addr, client.obj_ref());
                                    return Ok(client);
                                }
                                Err(e) => last_err = Some(e),
                            }
                        }
                        // We hold the claim but found no live candidate;
                        // surface the activation failure.
                        break;
                    }
                }
                // Claim lost (now or in an earlier round): a concurrent
                // takeover is in flight. Serve for a beat to let the
                // winner's bind land, then re-read.
                last_err = Some(crate::RemoteError::Fenced {
                    current_epoch: epoch,
                });
                ctx.serve_for(std::time::Duration::from_millis(20));
            }
            None => {
                // Never bound: first activation, no incarnation to fence.
                for &m in candidates {
                    if ctx.ping(m).is_err() {
                        continue;
                    }
                    match ctx.activate::<C>(m, addr) {
                        Ok(client) => {
                            dir.bind(ctx, addr.to_string(), client.obj_ref())?;
                            ctx.cache_resolve(addr, client.obj_ref());
                            return Ok(client);
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                break;
            }
        }
    }
    Err(last_err.unwrap_or(crate::RemoteError::NoSuchSnapshot {
        key: addr.to_string(),
    }))
}

/// Re-bind `addr` to an object's post-migration address and migrate it —
/// the placement subsystem's name-aware move. The directory is updated
/// *after* the migration commits, so a resolver racing the move sees
/// either the old binding (whose forward it chases once) or the new one;
/// never a dangling name.
pub fn migrate_bound(
    ctx: &mut NodeCtx,
    dir: &NameService,
    addr: &str,
    target: usize,
) -> RemoteResult<ObjRef> {
    let old = dir
        .lookup(ctx, addr.to_string())?
        .ok_or_else(|| crate::RemoteError::app(format!("{addr}: not bound")))?;
    let new_ref = ctx.migrate(old, target)?;
    if new_ref != old {
        dir.bind(ctx, addr.to_string(), new_ref)?;
        ctx.cache_resolve(addr, new_ref);
    }
    Ok(new_ref)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbolic_addresses_compose() {
        assert_eq!(
            symbolic_addr(&["data", "set", "PageDevice", "34"]),
            "oopp://data/set/PageDevice/34"
        );
        assert_eq!(symbolic_addr(&[]), "oopp://");
        assert_eq!(symbolic_addr(&["x"]), "oopp://x");
    }

    #[test]
    fn shard_hash_is_stable_and_total() {
        // Pinned values: the routing hash is a wire contract — changing
        // it strands every record in the wrong shard.
        assert_eq!(shard_of_name("oopp://a", 4), shard_of_name("oopp://a", 4));
        for shards in [1u32, 2, 3, 4, 8] {
            for i in 0..64 {
                let name = symbolic_addr(&["spread", &i.to_string()]);
                assert!(shard_of_name(&name, shards) < shards);
            }
        }
        // Every shard of a small map receives some of a modest key set.
        let mut hit = [false; 4];
        for i in 0..64 {
            hit[shard_of_name(&symbolic_addr(&["k", &i.to_string()]), 4) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "FNV-1a must spread keys: {hit:?}");
    }

    #[test]
    fn reserved_names_route_to_the_root() {
        let root = ObjRef {
            machine: 0,
            object: 7,
        };
        let ns = NameService::sharded(root, 8);
        assert_eq!(ns.shard_for(&shard_addr(3)), None);
        assert_eq!(ns.shard_for("oopp://_dirsvc/anything"), None);
        assert!(ns.shard_for("oopp://user/name").is_some());
        let classic = NameService::classic(root);
        assert_eq!(classic.shard_for("oopp://user/name"), None);
        assert_eq!(classic.shards(), 0);
        assert_eq!(classic.obj_ref(), root);
    }
}
