//! Call reliability policy: timeout, retries, backoff.
//!
//! The paper's sequential RMI semantics say nothing about lost messages —
//! on a faulty fabric (see `simnet::FaultPlan`) a request or its response
//! can vanish, and the caller's only recourse is to resend. A [`CallPolicy`]
//! makes that recourse explicit: each attempt gets a reply window of
//! `timeout`; when it lapses the caller waits out a [`Backoff`] delay
//! (still serving incoming requests — the progress engine never stalls)
//! and retransmits the *same* frame, same `req_id`. The server side holds
//! up the other half of the contract: a dedup window keyed on
//! `(reply_to, req_id)` ensures retransmitted requests are executed at
//! most once (see the `dedup` module).

use std::time::Duration;

/// Delay schedule between retransmissions.
///
/// Retry `n` (1-based) sleeps `initial * factor^(n-1)`, capped at `cap`.
/// The schedule is a pure function of `n` — no jitter — so a run under a
/// seeded fault plan is byte-identical on replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before the first retransmission.
    pub initial: Duration,
    /// Multiplier applied per subsequent retry (>= 1.0).
    pub factor: f64,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl Backoff {
    /// The same delay before every retransmission.
    pub const fn fixed(delay: Duration) -> Self {
        Backoff {
            initial: delay,
            factor: 1.0,
            cap: delay,
        }
    }

    /// Exponential schedule: `initial, initial*factor, ...` capped at `cap`.
    ///
    /// `factor` is clamped to `>= 1.0`: a shrinking or negative multiplier
    /// would make the schedule non-monotone (and a negative one would drive
    /// the computed delay below zero, which `Duration` cannot represent).
    /// NaN also clamps to `1.0`.
    pub const fn exponential(initial: Duration, factor: f64, cap: Duration) -> Self {
        Backoff {
            initial,
            factor: Self::clamp_factor(factor),
            cap,
        }
    }

    /// `factor >= 1.0`, with NaN mapped to `1.0`. (`f64::max` keeps the
    /// non-NaN operand, but spell the comparison out so the NaN case is
    /// visible: `NaN >= 1.0` is false.)
    const fn clamp_factor(factor: f64) -> f64 {
        if factor >= 1.0 {
            factor
        } else {
            1.0
        }
    }

    /// Delay before retry `retry` (1-based). `delay(0)` is defined as zero:
    /// the first attempt is never delayed.
    ///
    /// Total for every input: the fields are public, so a hand-built
    /// `Backoff` can carry a junk factor the constructors would have
    /// clamped — re-clamp here rather than let a negative or NaN product
    /// reach `Duration::from_secs_f64`, which panics on both.
    pub fn delay(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let factor = Self::clamp_factor(self.factor);
        // retry can exceed i32::MAX; saturate the exponent instead of
        // letting `as i32` wrap negative (which would shrink the delay).
        let exp = (retry - 1).min(i32::MAX as u32) as i32;
        let scale = factor.powi(exp);
        let secs = self.initial.as_secs_f64() * scale;
        if !secs.is_finite() || secs >= self.cap.as_secs_f64() {
            // Overflow to +inf, 0 * inf = NaN, or simply past the ceiling.
            // Return `cap` itself rather than round-tripping it through f64:
            // `as_secs_f64` rounds up near `Duration::MAX`, and feeding the
            // rounded value back to `from_secs_f64` panics on overflow.
            return self.cap;
        }
        Duration::from_secs_f64(secs).min(self.cap)
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::exponential(Duration::from_millis(10), 2.0, Duration::from_millis(200))
    }
}

/// Circuit-breaker configuration for outbound calls (DESIGN.md §15).
///
/// The breaker is per-destination-machine state on the *calling* node:
/// `failure_threshold` consecutive overload-class failures (timeouts,
/// `Overloaded` rejections, disconnects, deadline expiries) trip it open;
/// while open, calls to that machine fail fast with
/// [`Overloaded`](crate::RemoteError::Overloaded) (`queue_depth == 0`)
/// without touching the network. After `cooldown` (measured on the cluster
/// clock, so virtual-time replay is deterministic) the breaker goes
/// half-open and admits a single trial call; success closes it, failure
/// re-opens it for another cooldown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before a half-open trial.
    pub cooldown: Duration,
}

impl BreakerConfig {
    /// A sensible default: 5 consecutive failures, 100 ms cooldown.
    pub const fn new() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(100),
        }
    }
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig::new()
    }
}

/// Token-bucket retry budget (DESIGN.md §15): caps the *ratio* of
/// retransmissions to first attempts so retries cannot amplify a brownout.
///
/// Accounting is in millitokens per destination machine. Every first
/// attempt deposits `deposit_millitokens` (capped at `max_millitokens`);
/// every retransmission spends 1000. When the bucket cannot cover a
/// retransmission, the retry is suppressed and the call surfaces its
/// timeout immediately — with `deposit_millitokens = 100`, sustained retry
/// volume is capped at ~10% of call volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryBudgetConfig {
    /// Millitokens deposited per first attempt (1000 = one retry banked
    /// per call; 100 = one retry per ten calls).
    pub deposit_millitokens: u32,
    /// Bucket capacity — bounds the burst of retries after an idle period.
    pub max_millitokens: u32,
}

impl RetryBudgetConfig {
    /// A sensible default: 10% sustained retry ratio, burst of 10 retries.
    pub const fn new() -> Self {
        RetryBudgetConfig {
            deposit_millitokens: 100,
            max_millitokens: 10_000,
        }
    }
}

impl Default for RetryBudgetConfig {
    fn default() -> Self {
        RetryBudgetConfig::new()
    }
}

/// Server-side admission-control knobs (DESIGN.md §15), set cluster-wide
/// via `ClusterBuilder::overload`. The defaults are deliberately generous
/// — tier-1 workloads never hit them — so classic behavior is preserved
/// unless a deployment opts into tighter budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Per-object mailbox cap: a request that would make the target's
    /// mailbox longer than this is rejected at admission with
    /// [`Overloaded`](crate::RemoteError::Overloaded) (never queued).
    pub mailbox_cap: usize,
    /// Per-machine budget on admitted-but-unexecuted requests, summed
    /// across all objects. The cheap machine-wide backstop when load is
    /// spread over many objects.
    pub inflight_cap: usize,
    /// CoDel-style sojourn target: admitted work whose queue wait exceeds
    /// this is shed at execution time instead of running late.
    /// `Duration::ZERO` (the default) disables sojourn shedding.
    pub sojourn_target: Duration,
    /// Backoff hint stamped into `Overloaded` rejections
    /// (`retry_after_nanos`).
    pub retry_after: Duration,
}

impl OverloadConfig {
    /// Generous defaults: 4096-deep mailboxes, 65 536 in-flight, sojourn
    /// shedding off, 1 ms retry hint.
    pub const fn new() -> Self {
        OverloadConfig {
            mailbox_cap: 4096,
            inflight_cap: 65_536,
            sojourn_target: Duration::ZERO,
            retry_after: Duration::from_millis(1),
        }
    }
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig::new()
    }
}

/// Reliability contract for outbound calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallPolicy {
    /// Reply window per attempt.
    pub timeout: Duration,
    /// Retransmissions after the first attempt (0 = classic single-shot).
    pub max_retries: u32,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
    /// End-to-end deadline budget, stamped on the request frame as an
    /// absolute cluster-clock time and propagated (decremented) across
    /// nested hops. `Duration::ZERO` (the default) means "no deadline" —
    /// the classic contract, byte-identical on the wire. Nested calls made
    /// while serving a deadlined request inherit the *remaining* budget if
    /// it is tighter than their own policy's.
    pub deadline: Duration,
    /// Per-destination circuit breaker; `None` (the default) disables it.
    pub breaker: Option<BreakerConfig>,
    /// Token-bucket retry budget; `None` (the default) disables it.
    pub retry_budget: Option<RetryBudgetConfig>,
    /// Exempt this call from circuit breakers. Set by
    /// [`CallPolicy::probe`]: supervision probes *are* the evidence that
    /// decides whether a machine is dead — a breaker that swallows them
    /// would turn every brownout into a conviction.
    pub breaker_exempt: bool,
}

impl CallPolicy {
    /// Single-shot semantics: one attempt, fail with
    /// [`Timeout`](crate::RemoteError::Timeout) when the window lapses.
    /// This is the default, and exactly the pre-fault-injection behavior.
    pub const fn no_retry(timeout: Duration) -> Self {
        CallPolicy {
            timeout,
            max_retries: 0,
            backoff: Backoff::fixed(Duration::ZERO),
            deadline: Duration::ZERO,
            breaker: None,
            retry_budget: None,
            breaker_exempt: false,
        }
    }

    /// A policy suited to lossy fabrics: per-attempt window `timeout`,
    /// four retransmissions, default exponential backoff.
    pub fn reliable(timeout: Duration) -> Self {
        CallPolicy {
            max_retries: 4,
            backoff: Backoff::default(),
            ..CallPolicy::no_retry(timeout)
        }
    }

    /// Override the retry budget (builder style).
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Override the backoff schedule (builder style).
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Raise the retry budget to at least `retries`, keeping everything
    /// else. Control-plane sequences that must survive a lossy fabric —
    /// migration's quiesce/transfer/commit RMIs — use this to guarantee a
    /// retransmission floor even under a caller's single-shot policy.
    pub fn with_min_retries(mut self, retries: u32) -> Self {
        self.max_retries = self.max_retries.max(retries);
        self
    }

    /// Set the end-to-end deadline budget (builder style).
    /// `Duration::ZERO` clears it.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Enable the per-destination circuit breaker (builder style).
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Enable the token-bucket retry budget (builder style).
    pub fn with_retry_budget(mut self, budget: RetryBudgetConfig) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// Total attempts this policy allows (first send + retries).
    pub fn max_attempts(&self) -> u32 {
        1 + self.max_retries
    }

    /// A probe policy: one attempt, short window, no backoff. Liveness
    /// checks against possibly-dead machines (supervision pings, the
    /// detector's bookkeeping calls) must fail *fast* — a probe that
    /// inherits a chaos-hardened retry budget turns every dead-machine
    /// touch into seconds of retransmission. Derived from the per-attempt
    /// window so cost scales with the caller's latency expectations.
    /// Probes are also **breaker-exempt**: the probe result is the
    /// evidence that opens or closes the breaker and convicts or acquits
    /// the machine — gating it on the breaker would be circular.
    pub fn probe(timeout: Duration) -> Self {
        CallPolicy {
            breaker_exempt: true,
            ..CallPolicy::no_retry(timeout)
        }
    }
}

impl Default for CallPolicy {
    fn default() -> Self {
        CallPolicy::no_retry(crate::node::DEFAULT_TIMEOUT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_backoff_sequence_is_deterministic() {
        let b = Backoff::exponential(Duration::from_millis(10), 2.0, Duration::from_millis(200));
        let seq: Vec<u64> = (1..=7).map(|n| b.delay(n).as_millis() as u64).collect();
        assert_eq!(seq, vec![10, 20, 40, 80, 160, 200, 200]);
        // Re-evaluating gives the identical sequence: no hidden state.
        let again: Vec<u64> = (1..=7).map(|n| b.delay(n).as_millis() as u64).collect();
        assert_eq!(seq, again);
    }

    #[test]
    fn fixed_backoff_never_grows() {
        let b = Backoff::fixed(Duration::from_millis(25));
        for n in 1..10 {
            assert_eq!(b.delay(n), Duration::from_millis(25));
        }
    }

    #[test]
    fn attempt_zero_is_never_delayed() {
        assert_eq!(Backoff::default().delay(0), Duration::ZERO);
    }

    #[test]
    fn cap_bounds_every_delay() {
        let b = Backoff::exponential(Duration::from_millis(1), 10.0, Duration::from_millis(50));
        assert_eq!(b.delay(1), Duration::from_millis(1));
        assert_eq!(b.delay(2), Duration::from_millis(10));
        assert_eq!(b.delay(3), Duration::from_millis(50)); // 100 capped
        assert_eq!(b.delay(30), Duration::from_millis(50)); // overflow-safe
    }

    #[test]
    fn constructor_clamps_shrinking_and_junk_factors() {
        // Anything below 1.0 — including negatives and NaN — clamps to 1.0,
        // i.e. degrades to a fixed schedule instead of a shrinking (or
        // panicking) one.
        for junk in [0.5, 0.0, -3.0, f64::NEG_INFINITY, f64::NAN] {
            let b =
                Backoff::exponential(Duration::from_millis(10), junk, Duration::from_millis(200));
            assert_eq!(b.factor, 1.0);
            assert_eq!(b.delay(5), Duration::from_millis(10));
        }
        // Legitimate factors pass through untouched.
        assert_eq!(
            Backoff::exponential(Duration::from_millis(1), 3.0, Duration::from_secs(1)).factor,
            3.0
        );
    }

    #[test]
    fn delay_is_total_for_hand_built_backoff() {
        // Fields are public: `delay` must not panic even when the factor
        // bypassed the constructor clamp.
        let b = Backoff {
            initial: Duration::from_millis(10),
            factor: -2.0,
            cap: Duration::from_millis(100),
        };
        for n in 0..10 {
            assert!(b.delay(n) <= b.cap);
        }
        // NaN factor, zero initial with infinite scale, huge retry counts.
        let weird = Backoff {
            initial: Duration::ZERO,
            factor: f64::INFINITY,
            cap: Duration::from_millis(50),
        };
        assert!(weird.delay(3) <= weird.cap);
        assert!(weird.delay(u32::MAX) <= weird.cap);
        let near_max = Backoff {
            initial: Duration::from_secs(1),
            factor: 10.0,
            cap: Duration::MAX,
        };
        let _ = near_max.delay(u32::MAX); // must not panic on f64 rounding
    }

    #[test]
    fn no_retry_matches_classic_semantics() {
        let p = CallPolicy::no_retry(Duration::from_secs(30));
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.max_attempts(), 1);
        assert_eq!(p.timeout, Duration::from_secs(30));
    }

    #[test]
    fn min_retries_is_a_floor_not_an_override() {
        let single = CallPolicy::no_retry(Duration::from_millis(100));
        assert_eq!(single.with_min_retries(3).max_retries, 3);
        let generous = CallPolicy::reliable(Duration::from_millis(100)).with_max_retries(8);
        assert_eq!(generous.with_min_retries(3).max_retries, 8);
    }

    #[test]
    fn probe_is_single_shot_and_cheap() {
        let p = CallPolicy::probe(Duration::from_millis(40));
        assert_eq!(p.max_attempts(), 1);
        assert_eq!(p.timeout, Duration::from_millis(40));
        // No hidden backoff: a probe that fails, fails now.
        assert_eq!(p.backoff.delay(1), Duration::ZERO);
        // Probes bypass circuit breakers — they are the breaker's evidence.
        assert!(p.breaker_exempt);
    }

    #[test]
    fn overload_knobs_default_off_and_compose() {
        let p = CallPolicy::default();
        assert_eq!(p.deadline, Duration::ZERO);
        assert!(p.breaker.is_none());
        assert!(p.retry_budget.is_none());
        assert!(!p.breaker_exempt);

        let p = CallPolicy::reliable(Duration::from_millis(100))
            .with_deadline(Duration::from_millis(250))
            .with_breaker(BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(50),
            })
            .with_retry_budget(RetryBudgetConfig::new());
        assert_eq!(p.deadline, Duration::from_millis(250));
        assert_eq!(p.breaker.unwrap().failure_threshold, 3);
        assert_eq!(p.retry_budget.unwrap().deposit_millitokens, 100);
        // The overload knobs ride along without disturbing retry basics.
        assert_eq!(p.max_attempts(), 5);
    }

    #[test]
    fn reliable_policy_retries() {
        let p = CallPolicy::reliable(Duration::from_millis(100))
            .with_max_retries(7)
            .with_backoff(Backoff::fixed(Duration::from_millis(5)));
        assert_eq!(p.max_attempts(), 8);
        assert_eq!(p.backoff.delay(3), Duration::from_millis(5));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The schedule contract, for *any* bit pattern in `factor`
            /// (NaN, infinities, negatives included): `delay` is total
            /// (never panics), non-decreasing in the retry number, and
            /// never exceeds `cap`.
            #[test]
            fn delay_is_total_monotone_and_capped(
                initial_ns in 0u64..5_000_000_000,
                factor in proptest::num::f64::ANY,
                cap_ns in 0u64..5_000_000_000,
            ) {
                let b = Backoff {
                    initial: Duration::from_nanos(initial_ns),
                    factor,
                    cap: Duration::from_nanos(cap_ns),
                };
                // Total, including extreme retry counts.
                let _ = b.delay(0);
                let _ = b.delay(u32::MAX);
                // Capped and monotone over a representative prefix.
                let mut prev = Duration::ZERO;
                for n in 1..64u32 {
                    let d = b.delay(n);
                    prop_assert!(d <= b.cap);
                    prop_assert!(d >= prev);
                    prev = d;
                }
            }

            /// Constructor clamping means the constructed schedule always
            /// starts at `min(initial, cap)` — a shrinking factor can't
            /// push later delays below the first.
            #[test]
            fn constructed_schedule_floor_is_first_delay(
                initial_ns in 0u64..1_000_000_000,
                factor in proptest::num::f64::ANY,
                cap_ns in 0u64..1_000_000_000,
            ) {
                let b = Backoff::exponential(
                    Duration::from_nanos(initial_ns),
                    factor,
                    Duration::from_nanos(cap_ns),
                );
                let first = b.delay(1);
                for n in 2..32u32 {
                    prop_assert!(b.delay(n) >= first);
                }
            }
        }
    }
}
