//! Call reliability policy: timeout, retries, backoff.
//!
//! The paper's sequential RMI semantics say nothing about lost messages —
//! on a faulty fabric (see `simnet::FaultPlan`) a request or its response
//! can vanish, and the caller's only recourse is to resend. A [`CallPolicy`]
//! makes that recourse explicit: each attempt gets a reply window of
//! `timeout`; when it lapses the caller waits out a [`Backoff`] delay
//! (still serving incoming requests — the progress engine never stalls)
//! and retransmits the *same* frame, same `req_id`. The server side holds
//! up the other half of the contract: a dedup window keyed on
//! `(reply_to, req_id)` ensures retransmitted requests are executed at
//! most once (see [`crate::dedup`]).

use std::time::Duration;

/// Delay schedule between retransmissions.
///
/// Retry `n` (1-based) sleeps `initial * factor^(n-1)`, capped at `cap`.
/// The schedule is a pure function of `n` — no jitter — so a run under a
/// seeded fault plan is byte-identical on replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before the first retransmission.
    pub initial: Duration,
    /// Multiplier applied per subsequent retry (>= 1.0).
    pub factor: f64,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl Backoff {
    /// The same delay before every retransmission.
    pub const fn fixed(delay: Duration) -> Self {
        Backoff { initial: delay, factor: 1.0, cap: delay }
    }

    /// Exponential schedule: `initial, initial*factor, ...` capped at `cap`.
    pub const fn exponential(initial: Duration, factor: f64, cap: Duration) -> Self {
        Backoff { initial, factor, cap }
    }

    /// Delay before retry `retry` (1-based). `delay(0)` is defined as zero:
    /// the first attempt is never delayed.
    pub fn delay(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let scale = self.factor.powi(retry as i32 - 1);
        let nanos = self.initial.as_secs_f64() * scale;
        let d = Duration::from_secs_f64(nanos.min(self.cap.as_secs_f64()));
        d.min(self.cap)
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::exponential(Duration::from_millis(10), 2.0, Duration::from_millis(200))
    }
}

/// Reliability contract for outbound calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallPolicy {
    /// Reply window per attempt.
    pub timeout: Duration,
    /// Retransmissions after the first attempt (0 = classic single-shot).
    pub max_retries: u32,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
}

impl CallPolicy {
    /// Single-shot semantics: one attempt, fail with
    /// [`Timeout`](crate::RemoteError::Timeout) when the window lapses.
    /// This is the default, and exactly the pre-fault-injection behavior.
    pub const fn no_retry(timeout: Duration) -> Self {
        CallPolicy {
            timeout,
            max_retries: 0,
            backoff: Backoff::fixed(Duration::ZERO),
        }
    }

    /// A policy suited to lossy fabrics: per-attempt window `timeout`,
    /// four retransmissions, default exponential backoff.
    pub fn reliable(timeout: Duration) -> Self {
        CallPolicy {
            timeout,
            max_retries: 4,
            backoff: Backoff::default(),
        }
    }

    /// Override the retry budget (builder style).
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Override the backoff schedule (builder style).
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Total attempts this policy allows (first send + retries).
    pub fn max_attempts(&self) -> u32 {
        1 + self.max_retries
    }
}

impl Default for CallPolicy {
    fn default() -> Self {
        CallPolicy::no_retry(crate::node::DEFAULT_TIMEOUT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_backoff_sequence_is_deterministic() {
        let b = Backoff::exponential(
            Duration::from_millis(10),
            2.0,
            Duration::from_millis(200),
        );
        let seq: Vec<u64> = (1..=7).map(|n| b.delay(n).as_millis() as u64).collect();
        assert_eq!(seq, vec![10, 20, 40, 80, 160, 200, 200]);
        // Re-evaluating gives the identical sequence: no hidden state.
        let again: Vec<u64> = (1..=7).map(|n| b.delay(n).as_millis() as u64).collect();
        assert_eq!(seq, again);
    }

    #[test]
    fn fixed_backoff_never_grows() {
        let b = Backoff::fixed(Duration::from_millis(25));
        for n in 1..10 {
            assert_eq!(b.delay(n), Duration::from_millis(25));
        }
    }

    #[test]
    fn attempt_zero_is_never_delayed() {
        assert_eq!(Backoff::default().delay(0), Duration::ZERO);
    }

    #[test]
    fn cap_bounds_every_delay() {
        let b = Backoff::exponential(
            Duration::from_millis(1),
            10.0,
            Duration::from_millis(50),
        );
        assert_eq!(b.delay(1), Duration::from_millis(1));
        assert_eq!(b.delay(2), Duration::from_millis(10));
        assert_eq!(b.delay(3), Duration::from_millis(50)); // 100 capped
        assert_eq!(b.delay(30), Duration::from_millis(50)); // overflow-safe
    }

    #[test]
    fn no_retry_matches_classic_semantics() {
        let p = CallPolicy::no_retry(Duration::from_secs(30));
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.max_attempts(), 1);
        assert_eq!(p.timeout, Duration::from_secs(30));
    }

    #[test]
    fn reliable_policy_retries() {
        let p = CallPolicy::reliable(Duration::from_millis(100))
            .with_max_retries(7)
            .with_backoff(Backoff::fixed(Duration::from_millis(5)));
        assert_eq!(p.max_attempts(), 8);
        assert_eq!(p.backoff.delay(3), Duration::from_millis(5));
    }
}
