//! Call reliability policy: timeout, retries, backoff.
//!
//! The paper's sequential RMI semantics say nothing about lost messages —
//! on a faulty fabric (see `simnet::FaultPlan`) a request or its response
//! can vanish, and the caller's only recourse is to resend. A [`CallPolicy`]
//! makes that recourse explicit: each attempt gets a reply window of
//! `timeout`; when it lapses the caller waits out a [`Backoff`] delay
//! (still serving incoming requests — the progress engine never stalls)
//! and retransmits the *same* frame, same `req_id`. The server side holds
//! up the other half of the contract: a dedup window keyed on
//! `(reply_to, req_id)` ensures retransmitted requests are executed at
//! most once (see the `dedup` module).

use std::time::Duration;

/// Delay schedule between retransmissions.
///
/// Retry `n` (1-based) sleeps `initial * factor^(n-1)`, capped at `cap`.
/// The schedule is a pure function of `n` — no jitter — so a run under a
/// seeded fault plan is byte-identical on replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before the first retransmission.
    pub initial: Duration,
    /// Multiplier applied per subsequent retry (>= 1.0).
    pub factor: f64,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl Backoff {
    /// The same delay before every retransmission.
    pub const fn fixed(delay: Duration) -> Self {
        Backoff {
            initial: delay,
            factor: 1.0,
            cap: delay,
        }
    }

    /// Exponential schedule: `initial, initial*factor, ...` capped at `cap`.
    ///
    /// `factor` is clamped to `>= 1.0`: a shrinking or negative multiplier
    /// would make the schedule non-monotone (and a negative one would drive
    /// the computed delay below zero, which `Duration` cannot represent).
    /// NaN also clamps to `1.0`.
    pub const fn exponential(initial: Duration, factor: f64, cap: Duration) -> Self {
        Backoff {
            initial,
            factor: Self::clamp_factor(factor),
            cap,
        }
    }

    /// `factor >= 1.0`, with NaN mapped to `1.0`. (`f64::max` keeps the
    /// non-NaN operand, but spell the comparison out so the NaN case is
    /// visible: `NaN >= 1.0` is false.)
    const fn clamp_factor(factor: f64) -> f64 {
        if factor >= 1.0 {
            factor
        } else {
            1.0
        }
    }

    /// Delay before retry `retry` (1-based). `delay(0)` is defined as zero:
    /// the first attempt is never delayed.
    ///
    /// Total for every input: the fields are public, so a hand-built
    /// `Backoff` can carry a junk factor the constructors would have
    /// clamped — re-clamp here rather than let a negative or NaN product
    /// reach `Duration::from_secs_f64`, which panics on both.
    pub fn delay(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let factor = Self::clamp_factor(self.factor);
        // retry can exceed i32::MAX; saturate the exponent instead of
        // letting `as i32` wrap negative (which would shrink the delay).
        let exp = (retry - 1).min(i32::MAX as u32) as i32;
        let scale = factor.powi(exp);
        let secs = self.initial.as_secs_f64() * scale;
        if !secs.is_finite() || secs >= self.cap.as_secs_f64() {
            // Overflow to +inf, 0 * inf = NaN, or simply past the ceiling.
            // Return `cap` itself rather than round-tripping it through f64:
            // `as_secs_f64` rounds up near `Duration::MAX`, and feeding the
            // rounded value back to `from_secs_f64` panics on overflow.
            return self.cap;
        }
        Duration::from_secs_f64(secs).min(self.cap)
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::exponential(Duration::from_millis(10), 2.0, Duration::from_millis(200))
    }
}

/// Reliability contract for outbound calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallPolicy {
    /// Reply window per attempt.
    pub timeout: Duration,
    /// Retransmissions after the first attempt (0 = classic single-shot).
    pub max_retries: u32,
    /// Delay schedule between attempts.
    pub backoff: Backoff,
}

impl CallPolicy {
    /// Single-shot semantics: one attempt, fail with
    /// [`Timeout`](crate::RemoteError::Timeout) when the window lapses.
    /// This is the default, and exactly the pre-fault-injection behavior.
    pub const fn no_retry(timeout: Duration) -> Self {
        CallPolicy {
            timeout,
            max_retries: 0,
            backoff: Backoff::fixed(Duration::ZERO),
        }
    }

    /// A policy suited to lossy fabrics: per-attempt window `timeout`,
    /// four retransmissions, default exponential backoff.
    pub fn reliable(timeout: Duration) -> Self {
        CallPolicy {
            timeout,
            max_retries: 4,
            backoff: Backoff::default(),
        }
    }

    /// Override the retry budget (builder style).
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Override the backoff schedule (builder style).
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Raise the retry budget to at least `retries`, keeping everything
    /// else. Control-plane sequences that must survive a lossy fabric —
    /// migration's quiesce/transfer/commit RMIs — use this to guarantee a
    /// retransmission floor even under a caller's single-shot policy.
    pub fn with_min_retries(mut self, retries: u32) -> Self {
        self.max_retries = self.max_retries.max(retries);
        self
    }

    /// Total attempts this policy allows (first send + retries).
    pub fn max_attempts(&self) -> u32 {
        1 + self.max_retries
    }

    /// A probe policy: one attempt, short window, no backoff. Liveness
    /// checks against possibly-dead machines (supervision pings, the
    /// detector's bookkeeping calls) must fail *fast* — a probe that
    /// inherits a chaos-hardened retry budget turns every dead-machine
    /// touch into seconds of retransmission. Derived from the per-attempt
    /// window so cost scales with the caller's latency expectations.
    pub fn probe(timeout: Duration) -> Self {
        CallPolicy::no_retry(timeout)
    }
}

impl Default for CallPolicy {
    fn default() -> Self {
        CallPolicy::no_retry(crate::node::DEFAULT_TIMEOUT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_backoff_sequence_is_deterministic() {
        let b = Backoff::exponential(Duration::from_millis(10), 2.0, Duration::from_millis(200));
        let seq: Vec<u64> = (1..=7).map(|n| b.delay(n).as_millis() as u64).collect();
        assert_eq!(seq, vec![10, 20, 40, 80, 160, 200, 200]);
        // Re-evaluating gives the identical sequence: no hidden state.
        let again: Vec<u64> = (1..=7).map(|n| b.delay(n).as_millis() as u64).collect();
        assert_eq!(seq, again);
    }

    #[test]
    fn fixed_backoff_never_grows() {
        let b = Backoff::fixed(Duration::from_millis(25));
        for n in 1..10 {
            assert_eq!(b.delay(n), Duration::from_millis(25));
        }
    }

    #[test]
    fn attempt_zero_is_never_delayed() {
        assert_eq!(Backoff::default().delay(0), Duration::ZERO);
    }

    #[test]
    fn cap_bounds_every_delay() {
        let b = Backoff::exponential(Duration::from_millis(1), 10.0, Duration::from_millis(50));
        assert_eq!(b.delay(1), Duration::from_millis(1));
        assert_eq!(b.delay(2), Duration::from_millis(10));
        assert_eq!(b.delay(3), Duration::from_millis(50)); // 100 capped
        assert_eq!(b.delay(30), Duration::from_millis(50)); // overflow-safe
    }

    #[test]
    fn constructor_clamps_shrinking_and_junk_factors() {
        // Anything below 1.0 — including negatives and NaN — clamps to 1.0,
        // i.e. degrades to a fixed schedule instead of a shrinking (or
        // panicking) one.
        for junk in [0.5, 0.0, -3.0, f64::NEG_INFINITY, f64::NAN] {
            let b =
                Backoff::exponential(Duration::from_millis(10), junk, Duration::from_millis(200));
            assert_eq!(b.factor, 1.0);
            assert_eq!(b.delay(5), Duration::from_millis(10));
        }
        // Legitimate factors pass through untouched.
        assert_eq!(
            Backoff::exponential(Duration::from_millis(1), 3.0, Duration::from_secs(1)).factor,
            3.0
        );
    }

    #[test]
    fn delay_is_total_for_hand_built_backoff() {
        // Fields are public: `delay` must not panic even when the factor
        // bypassed the constructor clamp.
        let b = Backoff {
            initial: Duration::from_millis(10),
            factor: -2.0,
            cap: Duration::from_millis(100),
        };
        for n in 0..10 {
            assert!(b.delay(n) <= b.cap);
        }
        // NaN factor, zero initial with infinite scale, huge retry counts.
        let weird = Backoff {
            initial: Duration::ZERO,
            factor: f64::INFINITY,
            cap: Duration::from_millis(50),
        };
        assert!(weird.delay(3) <= weird.cap);
        assert!(weird.delay(u32::MAX) <= weird.cap);
        let near_max = Backoff {
            initial: Duration::from_secs(1),
            factor: 10.0,
            cap: Duration::MAX,
        };
        let _ = near_max.delay(u32::MAX); // must not panic on f64 rounding
    }

    #[test]
    fn no_retry_matches_classic_semantics() {
        let p = CallPolicy::no_retry(Duration::from_secs(30));
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.max_attempts(), 1);
        assert_eq!(p.timeout, Duration::from_secs(30));
    }

    #[test]
    fn min_retries_is_a_floor_not_an_override() {
        let single = CallPolicy::no_retry(Duration::from_millis(100));
        assert_eq!(single.with_min_retries(3).max_retries, 3);
        let generous = CallPolicy::reliable(Duration::from_millis(100)).with_max_retries(8);
        assert_eq!(generous.with_min_retries(3).max_retries, 8);
    }

    #[test]
    fn probe_is_single_shot_and_cheap() {
        let p = CallPolicy::probe(Duration::from_millis(40));
        assert_eq!(p.max_attempts(), 1);
        assert_eq!(p.timeout, Duration::from_millis(40));
        // No hidden backoff: a probe that fails, fails now.
        assert_eq!(p.backoff.delay(1), Duration::ZERO);
    }

    #[test]
    fn reliable_policy_retries() {
        let p = CallPolicy::reliable(Duration::from_millis(100))
            .with_max_retries(7)
            .with_backoff(Backoff::fixed(Duration::from_millis(5)));
        assert_eq!(p.max_attempts(), 8);
        assert_eq!(p.backoff.delay(3), Duration::from_millis(5));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The schedule contract, for *any* bit pattern in `factor`
            /// (NaN, infinities, negatives included): `delay` is total
            /// (never panics), non-decreasing in the retry number, and
            /// never exceeds `cap`.
            #[test]
            fn delay_is_total_monotone_and_capped(
                initial_ns in 0u64..5_000_000_000,
                factor in proptest::num::f64::ANY,
                cap_ns in 0u64..5_000_000_000,
            ) {
                let b = Backoff {
                    initial: Duration::from_nanos(initial_ns),
                    factor,
                    cap: Duration::from_nanos(cap_ns),
                };
                // Total, including extreme retry counts.
                let _ = b.delay(0);
                let _ = b.delay(u32::MAX);
                // Capped and monotone over a representative prefix.
                let mut prev = Duration::ZERO;
                for n in 1..64u32 {
                    let d = b.delay(n);
                    prop_assert!(d <= b.cap);
                    prop_assert!(d >= prev);
                    prev = d;
                }
            }

            /// Constructor clamping means the constructed schedule always
            /// starts at `min(initial, cap)` — a shrinking factor can't
            /// push later delays below the first.
            #[test]
            fn constructed_schedule_floor_is_first_delay(
                initial_ns in 0u64..1_000_000_000,
                factor in proptest::num::f64::ANY,
                cap_ns in 0u64..1_000_000_000,
            ) {
                let b = Backoff::exponential(
                    Duration::from_nanos(initial_ns),
                    factor,
                    Duration::from_nanos(cap_ns),
                );
                let first = b.delay(1);
                for n in 2..32u32 {
                    prop_assert!(b.delay(n) >= first);
                }
            }
        }
    }
}
