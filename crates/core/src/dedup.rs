//! Server-side request deduplication: at-most-once execution.
//!
//! A caller under a retrying [`CallPolicy`](crate::CallPolicy) retransmits
//! the same request frame (same `req_id`) when a reply window lapses. The
//! lapse proves nothing about the first copy: it may have been dropped, or
//! executed with only its *response* dropped, or it may still be parked in
//! the server's deferred queue. Executing a retransmitted copy again would
//! break non-idempotent methods (`create`, `activate`, accumulating
//! updates), so every server keeps a [`DedupWindow`] keyed on
//! `(reply_to, req_id)` — unique per caller, since each caller numbers its
//! requests from a private counter.
//!
//! Three states per key:
//! - **new** — never seen: execute it (and remember it is in flight).
//! - **in flight** — received but not yet answered (executing now, or
//!   parked deferred): *suppress* the copy; the original will answer.
//! - **done** — answered already: *replay* the cached response without
//!   re-executing.
//!
//! Completed entries are evicted FIFO once the window exceeds its capacity.
//! An evicted entry makes a very late duplicate executable again — the
//! window trades unbounded memory for a duplicate-suppression horizon, the
//! standard at-most-once compromise.
//!
//! In-flight entries get the same treatment. A request can be admitted and
//! then *never* completed — the canonical case is a deferred reply whose
//! object is destroyed before it answers (a `Barrier` torn down with
//! waiters parked: `enter` returns `NoReply` and the stored `CallInfo` is
//! dropped with the object). Before this bound existed, each such key sat
//! in the in-flight set forever; a long-lived server accumulated them
//! without limit. Now the oldest in-flight keys are evicted FIFO beyond
//! `capacity`, with the same horizon compromise: a duplicate of an evicted
//! in-flight request becomes executable again.

use std::collections::{HashMap, VecDeque};

use simnet::MachineId;

use crate::error::RemoteResult;

/// Identity of a request as the server sees it.
pub(crate) type ReqKey = (MachineId, u64);

/// What to do with a just-received request.
#[derive(Debug, PartialEq)]
pub(crate) enum DedupVerdict {
    /// First sighting: execute.
    New,
    /// A copy is already being served (or parked): drop this one.
    InFlight,
    /// Already executed: re-send this cached response, do not re-execute.
    Done(RemoteResult<Vec<u8>>),
}

/// Completed-call cache capacity. Old enough entries stop being protected
/// against duplicates; 1024 comfortably covers any plausible retry horizon
/// (a caller retransmits at most `max_retries` times, immediately or after
/// millisecond-scale backoff).
pub(crate) const DEFAULT_DEDUP_CAPACITY: usize = 1024;

#[derive(Debug)]
pub(crate) struct DedupWindow {
    /// In-flight keys, each stamped with the admission sequence number that
    /// positions it in `in_flight_order`. The stamp lets eviction tell a
    /// live queue entry from a stale one (completed, or evicted and later
    /// re-admitted under a fresh stamp).
    in_flight: HashMap<ReqKey, u64>,
    in_flight_order: VecDeque<(u64, ReqKey)>,
    next_seq: u64,
    done: HashMap<ReqKey, RemoteResult<Vec<u8>>>,
    order: VecDeque<ReqKey>,
    capacity: usize,
}

impl DedupWindow {
    pub(crate) fn new(capacity: usize) -> Self {
        DedupWindow {
            in_flight: HashMap::new(),
            in_flight_order: VecDeque::new(),
            next_seq: 0,
            done: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Classify an incoming request and, if new, mark it in flight.
    pub(crate) fn admit(&mut self, key: ReqKey) -> DedupVerdict {
        if let Some(result) = self.done.get(&key) {
            return DedupVerdict::Done(clone_result(result));
        }
        if self.in_flight.contains_key(&key) {
            return DedupVerdict::InFlight;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_flight.insert(key, seq);
        self.in_flight_order.push_back((seq, key));
        self.evict_in_flight();
        DedupVerdict::New
    }

    /// Record the response sent for `key`, making later duplicates replay
    /// it. Evicts the oldest completed entries beyond capacity.
    pub(crate) fn complete(&mut self, key: ReqKey, result: &RemoteResult<Vec<u8>>) {
        self.in_flight.remove(&key);
        self.trim_in_flight_order();
        if self.done.insert(key, clone_result(result)).is_none() {
            self.order.push_back(key);
        }
        while self.done.len() > self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            self.done.remove(&oldest);
        }
    }

    /// Bound the in-flight set: drop the oldest live keys beyond capacity
    /// (abandoned deferred calls are the ones that age to the front), and
    /// keep the order queue itself from accumulating stale entries.
    fn evict_in_flight(&mut self) {
        while self.in_flight.len() > self.capacity {
            let Some((seq, key)) = self.in_flight_order.pop_front() else {
                break;
            };
            if self.in_flight.get(&key) == Some(&seq) {
                self.in_flight.remove(&key);
            }
        }
        self.trim_in_flight_order();
        // The queue holds one entry per admission, not per live key; churn
        // (admit + complete) leaves stale entries behind the front. Compact
        // once the backlog dominates, which amortizes to O(1) per call.
        if self.in_flight_order.len() > 2 * self.in_flight.len() + 64 {
            let in_flight = &self.in_flight;
            self.in_flight_order
                .retain(|(seq, key)| in_flight.get(key) == Some(seq));
        }
    }

    /// Pop stale (completed or superseded) entries off the queue front so
    /// eviction always sees the genuinely oldest live key first.
    fn trim_in_flight_order(&mut self) {
        while let Some(&(seq, key)) = self.in_flight_order.front() {
            if self.in_flight.get(&key) == Some(&seq) {
                break;
            }
            self.in_flight_order.pop_front();
        }
    }

    /// Completed entries currently protected against re-execution.
    #[cfg(test)]
    pub(crate) fn done_len(&self) -> usize {
        self.done.len()
    }

    /// Keys admitted but not yet completed.
    #[cfg(test)]
    pub(crate) fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Internal queue length, including stale entries awaiting compaction.
    #[cfg(test)]
    pub(crate) fn in_flight_order_len(&self) -> usize {
        self.in_flight_order.len()
    }
}

impl Default for DedupWindow {
    fn default() -> Self {
        DedupWindow::new(DEFAULT_DEDUP_CAPACITY)
    }
}

fn clone_result(r: &RemoteResult<Vec<u8>>) -> RemoteResult<Vec<u8>> {
    match r {
        Ok(b) => Ok(b.clone()),
        Err(e) => Err(e.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RemoteError;

    #[test]
    fn first_sighting_is_new_then_in_flight() {
        let mut w = DedupWindow::default();
        assert_eq!(w.admit((3, 7)), DedupVerdict::New);
        assert_eq!(w.admit((3, 7)), DedupVerdict::InFlight);
        // A different caller with the same req_id is a different request.
        assert_eq!(w.admit((4, 7)), DedupVerdict::New);
    }

    #[test]
    fn completed_requests_replay_their_response() {
        let mut w = DedupWindow::default();
        assert_eq!(w.admit((0, 1)), DedupVerdict::New);
        w.complete((0, 1), &Ok(vec![9, 9]));
        match w.admit((0, 1)) {
            DedupVerdict::Done(Ok(bytes)) => assert_eq!(bytes, vec![9, 9]),
            other => panic!("expected cached response, got {other:?}"),
        }
        // Errors are cached too: a failed create must not re-run either.
        assert_eq!(w.admit((0, 2)), DedupVerdict::New);
        w.complete((0, 2), &Err(RemoteError::NoSuchClass { class: "X".into() }));
        assert!(matches!(w.admit((0, 2)), DedupVerdict::Done(Err(_))));
    }

    #[test]
    fn forwarding_redirects_replay_like_any_response() {
        // After a migration the source answers forwarded requests with
        // `Moved`. The redirect enters the done cache like any result, so a
        // retransmitted copy of a forwarded request replays the redirect
        // instead of re-executing — the dedup window "survives the move".
        let mut w = DedupWindow::default();
        assert_eq!(w.admit((5, 1)), DedupVerdict::New);
        let moved = Err(RemoteError::Moved {
            to: crate::ids::ObjRef {
                machine: 2,
                object: 9,
            },
        });
        w.complete((5, 1), &moved);
        match w.admit((5, 1)) {
            DedupVerdict::Done(Err(RemoteError::Moved { to })) => {
                assert_eq!(
                    to,
                    crate::ids::ObjRef {
                        machine: 2,
                        object: 9
                    }
                );
            }
            other => panic!("expected cached redirect, got {other:?}"),
        }
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let mut w = DedupWindow::new(3);
        for id in 0..5u64 {
            assert_eq!(w.admit((0, id)), DedupVerdict::New);
            w.complete((0, id), &Ok(vec![id as u8]));
        }
        assert_eq!(w.done_len(), 3);
        // The two oldest were evicted: their duplicates execute again.
        assert_eq!(w.admit((0, 0)), DedupVerdict::New);
        assert_eq!(w.admit((0, 1)), DedupVerdict::New);
        // The newest three still replay.
        assert!(matches!(w.admit((0, 4)), DedupVerdict::Done(Ok(_))));
    }

    #[test]
    fn abandoned_in_flight_entries_are_bounded() {
        // Regression: keys admitted but never completed (e.g. a Barrier
        // destroyed with deferred waiters parked) used to accumulate in the
        // in-flight set forever. They must now be evicted FIFO at capacity.
        let mut w = DedupWindow::new(64);
        for id in 0..5_000u64 {
            assert_eq!(w.admit((0, id)), DedupVerdict::New);
        }
        assert!(
            w.in_flight_len() <= 64,
            "in_flight grew to {}",
            w.in_flight_len()
        );
        assert!(
            w.in_flight_order_len() <= 2 * 64 + 64,
            "order queue grew to {}",
            w.in_flight_order_len()
        );
        // Recent keys are still protected; ancient evicted ones re-execute
        // (the same horizon compromise the done-cache already makes).
        assert_eq!(w.admit((0, 4_999)), DedupVerdict::InFlight);
        assert_eq!(w.admit((0, 0)), DedupVerdict::New);
    }

    #[test]
    fn admit_complete_churn_keeps_order_queue_bounded() {
        // Every admission pushes a queue entry; completion leaves it stale
        // in place. Compaction must keep the queue proportional to the live
        // set, not to the total call count.
        let mut w = DedupWindow::new(32);
        for id in 0..10_000u64 {
            assert_eq!(w.admit((1, id)), DedupVerdict::New);
            w.complete((1, id), &Ok(vec![]));
        }
        assert_eq!(w.in_flight_len(), 0);
        assert!(
            w.in_flight_order_len() <= 2 * 32 + 64,
            "order queue grew to {}",
            w.in_flight_order_len()
        );
    }

    #[test]
    fn completing_an_evicted_in_flight_key_still_caches_the_response() {
        // The original executes, gets evicted from in-flight by pressure,
        // then finishes: its response must still enter the done cache so
        // late duplicates replay instead of re-executing.
        let mut w = DedupWindow::new(4);
        assert_eq!(w.admit((2, 0)), DedupVerdict::New);
        for id in 1..=8u64 {
            assert_eq!(w.admit((2, id)), DedupVerdict::New);
        }
        // (2,0) was evicted; completing it anyway records the response.
        w.complete((2, 0), &Ok(vec![7]));
        assert!(matches!(w.admit((2, 0)), DedupVerdict::Done(Ok(_))));
    }

    #[test]
    fn re_admitted_key_after_eviction_gets_a_fresh_stamp() {
        // Evict (3,0), re-admit it, then evict again: the stale first-stamp
        // queue entry must not cause the fresh admission to be dropped out
        // of order or double-removed.
        let mut w = DedupWindow::new(2);
        assert_eq!(w.admit((3, 0)), DedupVerdict::New);
        assert_eq!(w.admit((3, 1)), DedupVerdict::New);
        assert_eq!(w.admit((3, 2)), DedupVerdict::New); // evicts (3,0)
        assert_eq!(w.admit((3, 0)), DedupVerdict::New); // fresh stamp, evicts (3,1)
        assert_eq!(w.admit((3, 0)), DedupVerdict::InFlight);
        assert!(w.in_flight_len() <= 2);
    }

    #[test]
    fn completing_twice_does_not_double_count() {
        let mut w = DedupWindow::new(2);
        w.admit((1, 1));
        w.complete((1, 1), &Ok(vec![1]));
        w.complete((1, 1), &Ok(vec![2])); // replayed response re-completed
        w.admit((1, 2));
        w.complete((1, 2), &Ok(vec![3]));
        assert_eq!(w.done_len(), 2);
        // (1,1) was not evicted by its own double-complete.
        assert!(matches!(w.admit((1, 1)), DedupVerdict::Done(Ok(_))));
    }
}
