//! Server-side request deduplication: at-most-once execution.
//!
//! A caller under a retrying [`CallPolicy`](crate::CallPolicy) retransmits
//! the same request frame (same `req_id`) when a reply window lapses. The
//! lapse proves nothing about the first copy: it may have been dropped, or
//! executed with only its *response* dropped, or it may still be parked in
//! the server's deferred queue. Executing a retransmitted copy again would
//! break non-idempotent methods (`create`, `activate`, accumulating
//! updates), so every server keeps a [`DedupWindow`] keyed on
//! `(reply_to, req_id)` — unique per caller, since each caller numbers its
//! requests from a private counter.
//!
//! Three states per key:
//! - **new** — never seen: execute it (and remember it is in flight).
//! - **in flight** — received but not yet answered (executing now, or
//!   parked deferred): *suppress* the copy; the original will answer.
//! - **done** — answered already: *replay* the cached response without
//!   re-executing.
//!
//! Completed entries are evicted FIFO once the window exceeds its capacity.
//! An evicted entry makes a very late duplicate executable again — the
//! window trades unbounded memory for a duplicate-suppression horizon, the
//! standard at-most-once compromise.

use std::collections::{HashMap, HashSet, VecDeque};

use simnet::MachineId;

use crate::error::RemoteResult;

/// Identity of a request as the server sees it.
pub(crate) type ReqKey = (MachineId, u64);

/// What to do with a just-received request.
#[derive(Debug, PartialEq)]
pub(crate) enum DedupVerdict {
    /// First sighting: execute.
    New,
    /// A copy is already being served (or parked): drop this one.
    InFlight,
    /// Already executed: re-send this cached response, do not re-execute.
    Done(RemoteResult<Vec<u8>>),
}

/// Completed-call cache capacity. Old enough entries stop being protected
/// against duplicates; 1024 comfortably covers any plausible retry horizon
/// (a caller retransmits at most `max_retries` times, immediately or after
/// millisecond-scale backoff).
pub(crate) const DEFAULT_DEDUP_CAPACITY: usize = 1024;

#[derive(Debug)]
pub(crate) struct DedupWindow {
    in_flight: HashSet<ReqKey>,
    done: HashMap<ReqKey, RemoteResult<Vec<u8>>>,
    order: VecDeque<ReqKey>,
    capacity: usize,
}

impl DedupWindow {
    pub(crate) fn new(capacity: usize) -> Self {
        DedupWindow {
            in_flight: HashSet::new(),
            done: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Classify an incoming request and, if new, mark it in flight.
    pub(crate) fn admit(&mut self, key: ReqKey) -> DedupVerdict {
        if let Some(result) = self.done.get(&key) {
            return DedupVerdict::Done(clone_result(result));
        }
        if !self.in_flight.insert(key) {
            return DedupVerdict::InFlight;
        }
        DedupVerdict::New
    }

    /// Record the response sent for `key`, making later duplicates replay
    /// it. Evicts the oldest completed entries beyond capacity.
    pub(crate) fn complete(&mut self, key: ReqKey, result: &RemoteResult<Vec<u8>>) {
        self.in_flight.remove(&key);
        if self.done.insert(key, clone_result(result)).is_none() {
            self.order.push_back(key);
        }
        while self.done.len() > self.capacity {
            let Some(oldest) = self.order.pop_front() else { break };
            self.done.remove(&oldest);
        }
    }

    /// Completed entries currently protected against re-execution.
    #[cfg(test)]
    pub(crate) fn done_len(&self) -> usize {
        self.done.len()
    }
}

impl Default for DedupWindow {
    fn default() -> Self {
        DedupWindow::new(DEFAULT_DEDUP_CAPACITY)
    }
}

fn clone_result(r: &RemoteResult<Vec<u8>>) -> RemoteResult<Vec<u8>> {
    match r {
        Ok(b) => Ok(b.clone()),
        Err(e) => Err(e.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RemoteError;

    #[test]
    fn first_sighting_is_new_then_in_flight() {
        let mut w = DedupWindow::default();
        assert_eq!(w.admit((3, 7)), DedupVerdict::New);
        assert_eq!(w.admit((3, 7)), DedupVerdict::InFlight);
        // A different caller with the same req_id is a different request.
        assert_eq!(w.admit((4, 7)), DedupVerdict::New);
    }

    #[test]
    fn completed_requests_replay_their_response() {
        let mut w = DedupWindow::default();
        assert_eq!(w.admit((0, 1)), DedupVerdict::New);
        w.complete((0, 1), &Ok(vec![9, 9]));
        match w.admit((0, 1)) {
            DedupVerdict::Done(Ok(bytes)) => assert_eq!(bytes, vec![9, 9]),
            other => panic!("expected cached response, got {other:?}"),
        }
        // Errors are cached too: a failed create must not re-run either.
        assert_eq!(w.admit((0, 2)), DedupVerdict::New);
        w.complete(
            (0, 2),
            &Err(RemoteError::NoSuchClass { class: "X".into() }),
        );
        assert!(matches!(w.admit((0, 2)), DedupVerdict::Done(Err(_))));
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let mut w = DedupWindow::new(3);
        for id in 0..5u64 {
            assert_eq!(w.admit((0, id)), DedupVerdict::New);
            w.complete((0, id), &Ok(vec![id as u8]));
        }
        assert_eq!(w.done_len(), 3);
        // The two oldest were evicted: their duplicates execute again.
        assert_eq!(w.admit((0, 0)), DedupVerdict::New);
        assert_eq!(w.admit((0, 1)), DedupVerdict::New);
        // The newest three still replay.
        assert!(matches!(w.admit((0, 4)), DedupVerdict::Done(Ok(_))));
    }

    #[test]
    fn completing_twice_does_not_double_count() {
        let mut w = DedupWindow::new(2);
        w.admit((1, 1));
        w.complete((1, 1), &Ok(vec![1]));
        w.complete((1, 1), &Ok(vec![2])); // replayed response re-completed
        w.admit((1, 2));
        w.complete((1, 2), &Ok(vec![3]));
        assert_eq!(w.done_len(), 2);
        // (1,1) was not evicted by its own double-complete.
        assert!(matches!(w.admit((1, 1)), DedupVerdict::Done(Ok(_))));
    }
}
