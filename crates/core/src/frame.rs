//! The RMI message protocol carried over simnet packets.
//!
//! Exactly two frame kinds exist: a request targeting an object, and its
//! response. Everything else — object creation, destruction, shutdown,
//! persistence — is a method call on the per-machine **daemon** (object 0),
//! keeping the protocol surface minimal.

use wire::collections::Bytes;
use wire::{wire_struct, V64};

use crate::error::RemoteError;
use crate::ids::{ObjRef, ObjectId};
use crate::trace::TraceCtx;

/// One frame on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Invoke a method on `target`. `payload` is the method name (string)
    /// followed by the encoded arguments.
    Request {
        /// Caller-chosen correlation id, unique per caller.
        req_id: u64,
        /// Machine to send the [`Frame::Response`] to.
        reply_to: usize,
        /// Object being invoked (0 = daemon).
        target: ObjectId,
        /// Method name + encoded arguments.
        payload: Bytes,
        /// Flight-recorder identity (all-zero when tracing is off; costs
        /// two bytes on the wire then — both fields are varints).
        trace: TraceCtx,
        /// Caller's believed incarnation epoch for `target`. `0` means
        /// "unfenced" — the object has never been placed under supervision
        /// and no epoch checks apply (one varint byte on the wire). A
        /// nonzero epoch below the server's is rejected with
        /// [`RemoteError::Fenced`]; above it,
        /// the *server* is the stale party and fences itself.
        epoch: u64,
        /// Caller's believed **replica-set** epoch for `target`. `0` means
        /// "not replica-routed" — the common case, one varint byte on the
        /// wire (hence [`V64`], not fixed-width `u64`). A read replica
        /// serves the request only if it has synced at or past this epoch
        /// (and its coherence lease is live); otherwise it answers
        /// [`RemoteError::StaleReplica`]
        /// and the caller falls back to the primary.
        rs_epoch: V64,
        /// Absolute cluster-clock deadline in nanoseconds, or `0` for
        /// "no deadline" (the classic contract: the call may run whenever
        /// it is admitted). A nonzero deadline is checked at admission
        /// *and* again at execution time under the shard lock; expired
        /// work is dropped with
        /// [`RemoteError::DeadlineExceeded`] instead
        /// of executing after the caller has given up. On the wire this is
        /// an **optional trailing varint**: `0` is encoded by omission, so
        /// deadline-free frames are byte-identical to the pre-deadline
        /// format (see DESIGN.md §15).
        deadline: u64,
    },
    /// The outcome of a previous request.
    Response {
        /// Correlation id from the matching request.
        req_id: u64,
        /// Encoded return value, or the failure.
        result: Result<Bytes, RemoteError>,
    },
}

// Hand-written `Wire` impl instead of `wire_enum!`: the trailing `deadline`
// field is *optional on the wire* (omitted when 0), which the positional
// macro cannot express. Safe because a packet carries exactly one frame and
// `from_bytes` enforces `expect_end()` — "reader empty" unambiguously means
// "field absent". Fields stay in append order; tags are protocol.
impl wire::Wire for Frame {
    fn encode(&self, w: &mut wire::Writer) {
        match self {
            Frame::Request {
                req_id,
                reply_to,
                target,
                payload,
                trace,
                epoch,
                rs_epoch,
                deadline,
            } => {
                w.put_varint(0);
                wire::Wire::encode(req_id, w);
                wire::Wire::encode(reply_to, w);
                wire::Wire::encode(target, w);
                wire::Wire::encode(payload, w);
                wire::Wire::encode(trace, w);
                wire::Wire::encode(epoch, w);
                wire::Wire::encode(rs_epoch, w);
                if *deadline != 0 {
                    w.put_varint(*deadline);
                }
            }
            Frame::Response { req_id, result } => {
                w.put_varint(1);
                wire::Wire::encode(req_id, w);
                wire::Wire::encode(result, w);
            }
        }
    }

    fn decode(r: &mut wire::Reader<'_>) -> wire::WireResult<Self> {
        let tag = r.take_varint()?;
        match tag {
            0 => Ok(Frame::Request {
                req_id: wire::Wire::decode(r)?,
                reply_to: wire::Wire::decode(r)?,
                target: wire::Wire::decode(r)?,
                payload: wire::Wire::decode(r)?,
                trace: wire::Wire::decode(r)?,
                epoch: wire::Wire::decode(r)?,
                rs_epoch: wire::Wire::decode(r)?,
                deadline: if r.is_empty() { 0 } else { r.take_varint()? },
            }),
            1 => Ok(Frame::Response {
                req_id: wire::Wire::decode(r)?,
                result: wire::Wire::decode(r)?,
            }),
            other => Err(wire::WireError::UnknownVariant {
                ty: "Frame",
                tag: other,
            }),
        }
    }
}

/// Methods of the per-machine daemon. Encoded exactly like user-class calls
/// (method-name string + arguments) so the dispatch path is uniform.
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonCall {
    /// Liveness probe. Returns `()`.
    Ping,
    /// `new(machine m) Class(args...)`: construct an object. Returns the new
    /// [`ObjectId`].
    Create { class: String, args: Bytes },
    /// `delete ptr`: run the destructor, terminating the object-process.
    /// Returns `()`.
    Destroy { object: ObjectId },
    /// Stop this machine's serve loop (cluster shutdown). Returns `()`.
    Shutdown,
    /// Serialize an object's state without destroying it. Returns the
    /// snapshot bytes. Fails for non-persistent classes.
    Snapshot { object: ObjectId },
    /// §5 deactivation: snapshot the object under `key`, then destroy it.
    /// Returns `()`.
    Deactivate { object: ObjectId, key: String },
    /// §5 activation: restore the object stored under `key` as a fresh
    /// process. Returns the new [`ObjectId`]. The snapshot stays stored.
    Activate { key: String },
    /// Remove a stored snapshot. Returns `true` if one existed.
    DropSnapshot { key: String },
    /// Store a snapshot taken elsewhere under `key` on this machine —
    /// replication, so a crashed machine's objects can be reactivated from
    /// a surviving replica. Returns `()`.
    PutSnapshot {
        key: String,
        class: String,
        state: Bytes,
    },
    /// Introspection. Returns [`NodeStats`].
    Stats,
    /// Begin a live migration: quiesce the object (defer new calls),
    /// snapshot its state, and park it in the migrating set. Returns a
    /// [`MigrationPayload`]. The object serves nothing until the
    /// coordinator commits or rolls back.
    MigrateOut { object: ObjectId },
    /// Finish a migration on the source: drop the parked state and install
    /// a forwarding stub at the old address pointing at `to`. Returns `()`.
    MigrateCommit { object: ObjectId, to: ObjRef },
    /// Abort a migration on the source: restore the parked state as a live
    /// object under its **original** id, so old pointers stay valid.
    /// Returns `()`.
    MigrateRollback { object: ObjectId },
    /// Target half of a migration: restore `state` as a fresh process of
    /// `class` (like [`DaemonCall::Activate`], but the state travels inline
    /// instead of via the snapshot store). Returns the new [`ObjectId`].
    AdoptState { class: String, state: Bytes },
    /// Per-object served-call counters, the placement subsystem's load
    /// signal. Returns `Vec<(ObjectId, u64)>` sorted by object id.
    Loads,
    /// Supervisor liveness beacon. Renews this machine's serving lease for
    /// `ttl_millis` (see DESIGN.md §10): while the lease is live the
    /// machine may serve its supervised objects; once it expires the
    /// machine self-fences them. Returns `()`.
    Heartbeat { ttl_millis: u64 },
    /// Place `object` under epoch fencing at `epoch` (supervision
    /// registration, or a takeover bumping the incarnation). Returns `()`.
    SetEpoch { object: ObjectId, epoch: u64 },
    /// Takeover half of a recovery: restore the snapshot stored under `key`
    /// as a fresh process *and* register it at `epoch` atomically, so no
    /// call can reach the new incarnation unfenced. Returns the new
    /// [`ObjectId`].
    ActivateFenced { key: String, epoch: u64 },
    /// Fence a (possibly still live) old incarnation after a takeover:
    /// destroy the local object if present, record `epoch` as its fence,
    /// and install a forwarding stub toward `to` so stale pointers learn
    /// the new address via the `Moved` chase. Returns `()`.
    Fence {
        object: ObjectId,
        epoch: u64,
        to: ObjRef,
    },
    /// Materialize a read replica of a primary living elsewhere: restore
    /// `state` as a fresh process of `class` marked replica-of-`primary`,
    /// synced at `rs_epoch`, with a coherence lease of `lease_millis`.
    /// Returns the new [`ObjectId`].
    ReplicaAdopt {
        class: String,
        state: Bytes,
        primary: ObjRef,
        rs_epoch: u64,
        lease_millis: u64,
    },
    /// Primary→replica write propagation: overwrite the replica's state
    /// with `state` at `rs_epoch` and renew its coherence lease. A sync at
    /// or below the replica's current epoch only renews the lease (the
    /// state is already as new). Returns `()`.
    ReplicaSync {
        object: ObjectId,
        state: Bytes,
        rs_epoch: u64,
        lease_millis: u64,
    },
    /// Lease renewal without a state transfer (bounded-staleness mode, or a
    /// write-through primary confirming an idle replica). Renews only if
    /// the replica is already at `rs_epoch`; returns `true` when renewed,
    /// `false` when the replica has fallen behind and needs a full
    /// [`DaemonCall::ReplicaSync`].
    ReplicaRenew {
        object: ObjectId,
        rs_epoch: u64,
        lease_millis: u64,
    },
    /// Tear down a replica: destroy the local copy and install a forwarding
    /// stub toward the primary so stale routes heal through the `Moved`
    /// chase. Returns `()`.
    ReplicaDrop { object: ObjectId },
    /// Install (or replace) the primary-side replica-set record on the
    /// machine hosting `object`: the live replicas, the current replica-set
    /// epoch, the coherence mode, and the lease ttl granted to replicas.
    /// Subsequent write verbs served by `object` bump the epoch and
    /// propagate per the mode. Returns `()`.
    ReplicaAttach {
        object: ObjectId,
        replicas: Vec<ObjRef>,
        rs_epoch: u64,
        write_through: bool,
        lease_millis: u64,
    },
    /// Introspection for the replica manager: returns
    /// `(is_primary, rs_epoch, replicas)` — for a primary, its live set;
    /// for a replica, its sync epoch and its primary as the single entry.
    ReplicaStatus { object: ObjectId },
    /// Failover: convert a local replica into a normal (primary-capable)
    /// object fenced at incarnation `epoch`, clearing its replica metadata.
    /// The replica manager then re-attaches the surviving set. Returns `()`.
    ReplicaPromote { object: ObjectId, epoch: u64 },
}

/// A quiesced object's portable identity: what [`DaemonCall::MigrateOut`]
/// returns and [`DaemonCall::AdoptState`] consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPayload {
    /// Registered class name (picks the restore constructor on the target).
    pub class: String,
    /// Snapshot bytes from the object's persistence codec.
    pub state: Bytes,
}

wire_struct!(MigrationPayload { class, state });

/// What [`DaemonCall::ReplicaStatus`] returns — the replication role and
/// coherence position of one object, for the replica manager's reconcile
/// loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// True for a replicated primary; false for a read replica.
    pub is_primary: bool,
    /// The primary's current replica-set epoch, or the replica's last
    /// synced epoch.
    pub rs_epoch: u64,
    /// The primary's live replica set, or the replica's primary as the
    /// single entry.
    pub replicas: Vec<ObjRef>,
}

wire_struct!(ReplicaStatus {
    is_primary,
    rs_epoch,
    replicas
});

/// Per-machine runtime counters, returned by [`DaemonCall::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStats {
    /// Live (constructed, not yet destroyed) user objects.
    pub objects_live: u64,
    /// Requests this machine has served to completion.
    pub calls_served: u64,
    /// Requests that had to be parked because their target was busy.
    pub calls_deferred: u64,
    /// Snapshots currently stored on this machine.
    pub snapshots_stored: u64,
    /// Outbound requests this machine retransmitted (client role).
    pub calls_retried: u64,
    /// Duplicate requests answered from the dedup window's response cache
    /// (the original executed; only its response had been lost).
    pub dup_replayed: u64,
    /// Duplicate requests dropped because the original was still being
    /// served (or parked deferred) when the copy arrived.
    pub dup_suppressed: u64,
    /// Requests answered with a forwarding redirect because their target
    /// object had migrated away from this machine.
    pub calls_forwarded: u64,
    /// Objects this machine adopted through live migration.
    pub migrated_in: u64,
    /// Objects this machine migrated away (forwarding stubs installed).
    pub migrated_out: u64,
    /// Supervisor heartbeats this machine has answered (lease renewals).
    pub heartbeats_served: u64,
    /// Requests rejected with [`RemoteError::Fenced`] — stale-epoch
    /// callers plus calls refused because the serving lease had expired.
    pub calls_fenced: u64,
    /// Read verbs served by replicas hosted on this machine.
    pub replica_reads_served: u64,
    /// Requests a replica refused with [`RemoteError::StaleReplica`]
    /// (expired coherence lease or caller ahead of the sync epoch).
    pub replica_reads_stale: u64,
    /// Write propagations (`replica_sync`) this machine's primaries pushed.
    pub replica_syncs_sent: u64,
    /// Symbolic-name resolutions answered from this node's resolve cache
    /// (no directory round-trip).
    pub dir_cache_hits: u64,
    /// Resolve-cache misses — resolutions that had to fall through to the
    /// control plane (a directory or shard lookup).
    pub dir_cache_misses: u64,
    /// Requests rejected at admission with
    /// [`RemoteError::Overloaded`] — mailbox cap
    /// or machine in-flight budget exceeded (never queued).
    pub calls_shed_overload: u64,
    /// Admitted requests shed at execution time because their queue
    /// sojourn exceeded the CoDel-style target (DESIGN.md §15).
    pub calls_shed_sojourn: u64,
    /// Requests dropped (at admission or execution) because their
    /// propagated deadline had already expired.
    pub calls_deadline_expired: u64,
    /// Outbound calls failed fast by an open circuit breaker without
    /// touching the network (client role).
    pub breaker_fast_fails: u64,
    /// Retransmissions suppressed by an exhausted retry budget (client
    /// role): the retry would have amplified a brownout, so the call
    /// surfaced its timeout instead.
    pub retries_suppressed: u64,
}

wire_struct!(NodeStats {
    objects_live,
    calls_served,
    calls_deferred,
    snapshots_stored,
    calls_retried,
    dup_replayed,
    dup_suppressed,
    calls_forwarded,
    migrated_in,
    migrated_out,
    heartbeats_served,
    calls_fenced,
    replica_reads_served,
    replica_reads_stale,
    replica_syncs_sent,
    dir_cache_hits,
    dir_cache_misses,
    calls_shed_overload,
    calls_shed_sojourn,
    calls_deadline_expired,
    breaker_fast_fails,
    retries_suppressed
});

impl DaemonCall {
    /// Encode as a standard method payload (name + args).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = wire::Writer::new();
        match self {
            DaemonCall::Ping => w.put_len_prefixed(b"ping"),
            DaemonCall::Create { class, args } => {
                w.put_len_prefixed(b"create");
                wire::Wire::encode(class, &mut w);
                wire::Wire::encode(args, &mut w);
            }
            DaemonCall::Destroy { object } => {
                w.put_len_prefixed(b"destroy");
                wire::Wire::encode(object, &mut w);
            }
            DaemonCall::Shutdown => w.put_len_prefixed(b"shutdown"),
            DaemonCall::Snapshot { object } => {
                w.put_len_prefixed(b"snapshot");
                wire::Wire::encode(object, &mut w);
            }
            DaemonCall::Deactivate { object, key } => {
                w.put_len_prefixed(b"deactivate");
                wire::Wire::encode(object, &mut w);
                wire::Wire::encode(key, &mut w);
            }
            DaemonCall::Activate { key } => {
                w.put_len_prefixed(b"activate");
                wire::Wire::encode(key, &mut w);
            }
            DaemonCall::DropSnapshot { key } => {
                w.put_len_prefixed(b"drop_snapshot");
                wire::Wire::encode(key, &mut w);
            }
            DaemonCall::PutSnapshot { key, class, state } => {
                w.put_len_prefixed(b"put_snapshot");
                wire::Wire::encode(key, &mut w);
                wire::Wire::encode(class, &mut w);
                wire::Wire::encode(state, &mut w);
            }
            DaemonCall::Stats => w.put_len_prefixed(b"stats"),
            DaemonCall::MigrateOut { object } => {
                w.put_len_prefixed(b"migrate_out");
                wire::Wire::encode(object, &mut w);
            }
            DaemonCall::MigrateCommit { object, to } => {
                w.put_len_prefixed(b"migrate_commit");
                wire::Wire::encode(object, &mut w);
                wire::Wire::encode(to, &mut w);
            }
            DaemonCall::MigrateRollback { object } => {
                w.put_len_prefixed(b"migrate_rollback");
                wire::Wire::encode(object, &mut w);
            }
            DaemonCall::AdoptState { class, state } => {
                w.put_len_prefixed(b"adopt_state");
                wire::Wire::encode(class, &mut w);
                wire::Wire::encode(state, &mut w);
            }
            DaemonCall::Loads => w.put_len_prefixed(b"loads"),
            DaemonCall::Heartbeat { ttl_millis } => {
                w.put_len_prefixed(b"heartbeat");
                wire::Wire::encode(ttl_millis, &mut w);
            }
            DaemonCall::SetEpoch { object, epoch } => {
                w.put_len_prefixed(b"set_epoch");
                wire::Wire::encode(object, &mut w);
                wire::Wire::encode(epoch, &mut w);
            }
            DaemonCall::ActivateFenced { key, epoch } => {
                w.put_len_prefixed(b"activate_fenced");
                wire::Wire::encode(key, &mut w);
                wire::Wire::encode(epoch, &mut w);
            }
            DaemonCall::Fence { object, epoch, to } => {
                w.put_len_prefixed(b"fence");
                wire::Wire::encode(object, &mut w);
                wire::Wire::encode(epoch, &mut w);
                wire::Wire::encode(to, &mut w);
            }
            DaemonCall::ReplicaAdopt {
                class,
                state,
                primary,
                rs_epoch,
                lease_millis,
            } => {
                w.put_len_prefixed(b"replica_adopt");
                wire::Wire::encode(class, &mut w);
                wire::Wire::encode(state, &mut w);
                wire::Wire::encode(primary, &mut w);
                wire::Wire::encode(rs_epoch, &mut w);
                wire::Wire::encode(lease_millis, &mut w);
            }
            DaemonCall::ReplicaSync {
                object,
                state,
                rs_epoch,
                lease_millis,
            } => {
                w.put_len_prefixed(b"replica_sync");
                wire::Wire::encode(object, &mut w);
                wire::Wire::encode(state, &mut w);
                wire::Wire::encode(rs_epoch, &mut w);
                wire::Wire::encode(lease_millis, &mut w);
            }
            DaemonCall::ReplicaRenew {
                object,
                rs_epoch,
                lease_millis,
            } => {
                w.put_len_prefixed(b"replica_renew");
                wire::Wire::encode(object, &mut w);
                wire::Wire::encode(rs_epoch, &mut w);
                wire::Wire::encode(lease_millis, &mut w);
            }
            DaemonCall::ReplicaDrop { object } => {
                w.put_len_prefixed(b"replica_drop");
                wire::Wire::encode(object, &mut w);
            }
            DaemonCall::ReplicaAttach {
                object,
                replicas,
                rs_epoch,
                write_through,
                lease_millis,
            } => {
                w.put_len_prefixed(b"replica_attach");
                wire::Wire::encode(object, &mut w);
                wire::Wire::encode(replicas, &mut w);
                wire::Wire::encode(rs_epoch, &mut w);
                wire::Wire::encode(write_through, &mut w);
                wire::Wire::encode(lease_millis, &mut w);
            }
            DaemonCall::ReplicaStatus { object } => {
                w.put_len_prefixed(b"replica_status");
                wire::Wire::encode(object, &mut w);
            }
            DaemonCall::ReplicaPromote { object, epoch } => {
                w.put_len_prefixed(b"replica_promote");
                wire::Wire::encode(object, &mut w);
                wire::Wire::encode(epoch, &mut w);
            }
        }
        w.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{from_bytes, to_bytes, Reader, Wire};

    #[test]
    fn frames_roundtrip() {
        let frames = [
            Frame::Request {
                req_id: 42,
                reply_to: 3,
                target: 7,
                payload: Bytes(b"read".to_vec()),
                trace: TraceCtx::default(),
                epoch: 0,
                rs_epoch: 0.into(),
                deadline: 0,
            },
            Frame::Request {
                req_id: 44,
                reply_to: 1,
                target: 9,
                payload: Bytes(b"write".to_vec()),
                trace: TraceCtx {
                    trace_id: 0x1_0000_0001.into(),
                    span: 0x2_0000_0007.into(),
                },
                epoch: 12,
                rs_epoch: 5.into(),
                deadline: 987_654_321_000,
            },
            Frame::Response {
                req_id: 42,
                result: Ok(Bytes(vec![1, 2, 3])),
            },
            Frame::Response {
                req_id: 43,
                result: Err(RemoteError::NoSuchObject {
                    machine: 1,
                    object: 9,
                }),
            },
        ];
        for f in frames {
            assert_eq!(from_bytes::<Frame>(&to_bytes(&f)).unwrap(), f);
        }
    }

    #[test]
    fn daemon_calls_use_method_name_framing() {
        let payload = DaemonCall::Create {
            class: "PageDevice".into(),
            args: Bytes(vec![9, 9]),
        }
        .encode();
        let mut r = Reader::new(&payload);
        assert_eq!(String::decode(&mut r).unwrap(), "create");
        assert_eq!(String::decode(&mut r).unwrap(), "PageDevice");
        assert_eq!(Bytes::decode(&mut r).unwrap(), Bytes(vec![9, 9]));
        r.expect_end().unwrap();
    }

    #[test]
    fn node_stats_roundtrip() {
        let s = NodeStats {
            objects_live: 3,
            calls_served: 100,
            calls_deferred: 2,
            snapshots_stored: 1,
            calls_retried: 4,
            dup_replayed: 5,
            dup_suppressed: 6,
            calls_forwarded: 7,
            migrated_in: 8,
            migrated_out: 9,
            heartbeats_served: 10,
            calls_fenced: 11,
            replica_reads_served: 12,
            replica_reads_stale: 13,
            replica_syncs_sent: 14,
            dir_cache_hits: 15,
            dir_cache_misses: 16,
            calls_shed_overload: 17,
            calls_shed_sojourn: 18,
            calls_deadline_expired: 19,
            breaker_fast_fails: 20,
            retries_suppressed: 21,
        };
        assert_eq!(from_bytes::<NodeStats>(&to_bytes(&s)).unwrap(), s);
    }

    #[test]
    fn migration_calls_use_method_name_framing() {
        let payload = DaemonCall::MigrateCommit {
            object: 7,
            to: ObjRef {
                machine: 2,
                object: 19,
            },
        }
        .encode();
        let mut r = Reader::new(&payload);
        assert_eq!(String::decode(&mut r).unwrap(), "migrate_commit");
        assert_eq!(u64::decode(&mut r).unwrap(), 7);
        assert_eq!(
            ObjRef::decode(&mut r).unwrap(),
            ObjRef {
                machine: 2,
                object: 19
            }
        );
        r.expect_end().unwrap();

        let payload = DaemonCall::AdoptState {
            class: "DoubleBlock".into(),
            state: Bytes(vec![1, 2, 3]),
        }
        .encode();
        let mut r = Reader::new(&payload);
        assert_eq!(String::decode(&mut r).unwrap(), "adopt_state");
        assert_eq!(String::decode(&mut r).unwrap(), "DoubleBlock");
        assert_eq!(Bytes::decode(&mut r).unwrap(), Bytes(vec![1, 2, 3]));
        r.expect_end().unwrap();
    }

    #[test]
    fn supervision_calls_use_method_name_framing() {
        let payload = DaemonCall::Heartbeat { ttl_millis: 250 }.encode();
        let mut r = Reader::new(&payload);
        assert_eq!(String::decode(&mut r).unwrap(), "heartbeat");
        assert_eq!(u64::decode(&mut r).unwrap(), 250);
        r.expect_end().unwrap();

        let payload = DaemonCall::ActivateFenced {
            key: "oopp://backup/7".into(),
            epoch: 3,
        }
        .encode();
        let mut r = Reader::new(&payload);
        assert_eq!(String::decode(&mut r).unwrap(), "activate_fenced");
        assert_eq!(String::decode(&mut r).unwrap(), "oopp://backup/7");
        assert_eq!(u64::decode(&mut r).unwrap(), 3);
        r.expect_end().unwrap();

        let payload = DaemonCall::Fence {
            object: 7,
            epoch: 3,
            to: ObjRef {
                machine: 2,
                object: 19,
            },
        }
        .encode();
        let mut r = Reader::new(&payload);
        assert_eq!(String::decode(&mut r).unwrap(), "fence");
        assert_eq!(u64::decode(&mut r).unwrap(), 7);
        assert_eq!(u64::decode(&mut r).unwrap(), 3);
        assert_eq!(
            ObjRef::decode(&mut r).unwrap(),
            ObjRef {
                machine: 2,
                object: 19
            }
        );
        r.expect_end().unwrap();
    }

    #[test]
    fn replica_calls_use_method_name_framing() {
        let payload = DaemonCall::ReplicaAdopt {
            class: "HotBlock".into(),
            state: Bytes(vec![7, 7]),
            primary: ObjRef {
                machine: 1,
                object: 4,
            },
            rs_epoch: 3,
            lease_millis: 200,
        }
        .encode();
        let mut r = Reader::new(&payload);
        assert_eq!(String::decode(&mut r).unwrap(), "replica_adopt");
        assert_eq!(String::decode(&mut r).unwrap(), "HotBlock");
        assert_eq!(Bytes::decode(&mut r).unwrap(), Bytes(vec![7, 7]));
        assert_eq!(
            ObjRef::decode(&mut r).unwrap(),
            ObjRef {
                machine: 1,
                object: 4
            }
        );
        assert_eq!(u64::decode(&mut r).unwrap(), 3);
        assert_eq!(u64::decode(&mut r).unwrap(), 200);
        r.expect_end().unwrap();

        let payload = DaemonCall::ReplicaAttach {
            object: 4,
            replicas: vec![ObjRef {
                machine: 2,
                object: 9,
            }],
            rs_epoch: 1,
            write_through: true,
            lease_millis: 200,
        }
        .encode();
        let mut r = Reader::new(&payload);
        assert_eq!(String::decode(&mut r).unwrap(), "replica_attach");
        assert_eq!(u64::decode(&mut r).unwrap(), 4);
        assert_eq!(
            Vec::<ObjRef>::decode(&mut r).unwrap(),
            vec![ObjRef {
                machine: 2,
                object: 9
            }]
        );
        assert_eq!(u64::decode(&mut r).unwrap(), 1);
        assert!(bool::decode(&mut r).unwrap());
        assert_eq!(u64::decode(&mut r).unwrap(), 200);
        r.expect_end().unwrap();

        let payload = DaemonCall::ReplicaPromote {
            object: 9,
            epoch: 2,
        }
        .encode();
        let mut r = Reader::new(&payload);
        assert_eq!(String::decode(&mut r).unwrap(), "replica_promote");
        assert_eq!(u64::decode(&mut r).unwrap(), 9);
        assert_eq!(u64::decode(&mut r).unwrap(), 2);
        r.expect_end().unwrap();
    }

    #[test]
    fn migration_payload_roundtrips() {
        let p = MigrationPayload {
            class: "Counter".into(),
            state: Bytes(vec![9; 40]),
        };
        assert_eq!(from_bytes::<MigrationPayload>(&to_bytes(&p)).unwrap(), p);
    }

    #[test]
    fn put_snapshot_encodes_all_fields() {
        let payload = DaemonCall::PutSnapshot {
            key: "oopp://backup/7".into(),
            class: "DoubleBlock".into(),
            state: Bytes(vec![1, 2, 3]),
        }
        .encode();
        let mut r = Reader::new(&payload);
        assert_eq!(String::decode(&mut r).unwrap(), "put_snapshot");
        assert_eq!(String::decode(&mut r).unwrap(), "oopp://backup/7");
        assert_eq!(String::decode(&mut r).unwrap(), "DoubleBlock");
        assert_eq!(Bytes::decode(&mut r).unwrap(), Bytes(vec![1, 2, 3]));
        r.expect_end().unwrap();
    }

    #[test]
    fn request_with_large_payload_is_dominated_by_payload() {
        let payload = Bytes(vec![0u8; 10_000]);
        let f = Frame::Request {
            req_id: 1,
            reply_to: 0,
            target: 1,
            payload,
            trace: TraceCtx::default(),
            epoch: 0,
            rs_epoch: 0.into(),
            deadline: 0,
        };
        let encoded = to_bytes(&f);
        assert!(
            encoded.len() < 10_000 + 33,
            "framing overhead too large: {} bytes",
            encoded.len()
        );
    }

    #[test]
    fn untraced_request_pays_two_bytes_for_the_trace_ctx() {
        let mk = |trace| Frame::Request {
            req_id: 1,
            reply_to: 0,
            target: 1,
            payload: Bytes(b"ping".to_vec()),
            trace,
            epoch: 0,
            rs_epoch: 0.into(),
            deadline: 0,
        };
        let untraced = to_bytes(&mk(TraceCtx::default()));
        let traced = to_bytes(&mk(TraceCtx {
            trace_id: (1u64 << 48).into(),
            span: (1u64 << 48).into(),
        }));
        // Zero trace ids are single-byte varints each.
        assert_eq!(untraced.len() + 12, traced.len());
    }

    /// Encode exactly what the pre-deadline `wire_enum!` emitted for a
    /// request: tag + the seven original fields, no trailing deadline.
    fn classic_request_bytes(
        req_id: u64,
        reply_to: usize,
        target: ObjectId,
        payload: &[u8],
        trace: TraceCtx,
        epoch: u64,
        rs_epoch: u64,
    ) -> Vec<u8> {
        let mut w = wire::Writer::new();
        w.put_varint(0);
        req_id.encode(&mut w);
        reply_to.encode(&mut w);
        target.encode(&mut w);
        Bytes(payload.to_vec()).encode(&mut w);
        trace.encode(&mut w);
        epoch.encode(&mut w);
        V64::from(rs_epoch).encode(&mut w);
        w.into_bytes()
    }

    #[test]
    fn pre_deadline_frame_decodes_identically() {
        // Wire backward-compat regression: a frame encoded by a pre-PR-9
        // peer (no deadline field) must decode to the same request with
        // deadline = 0, and re-encoding it must reproduce the same bytes.
        let classic = classic_request_bytes(
            42,
            3,
            7,
            b"read",
            TraceCtx {
                trace_id: 0x1_0000_0001.into(),
                span: 0x2_0000_0007.into(),
            },
            12,
            5,
        );
        let decoded = from_bytes::<Frame>(&classic).unwrap();
        assert_eq!(
            decoded,
            Frame::Request {
                req_id: 42,
                reply_to: 3,
                target: 7,
                payload: Bytes(b"read".to_vec()),
                trace: TraceCtx {
                    trace_id: 0x1_0000_0001.into(),
                    span: 0x2_0000_0007.into(),
                },
                epoch: 12,
                rs_epoch: 5.into(),
                deadline: 0,
            }
        );
        // Deadline-free frames stay byte-identical to the classic format.
        assert_eq!(to_bytes(&decoded), classic);
    }

    mod frame_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Requests with and without a deadline round-trip, and the
            /// deadline-absent encoding is byte-identical to the classic
            /// (pre-PR-9) wire format.
            #[test]
            fn request_roundtrips_with_and_without_deadline(
                req_id in any::<u64>(),
                reply_to in 0usize..1024,
                target in any::<u64>(),
                payload in proptest::collection::vec(any::<u8>(), 0..64),
                epoch in any::<u64>(),
                rs_epoch in any::<u64>(),
                deadline in any::<u64>(),
            ) {
                let mk = |deadline| Frame::Request {
                    req_id,
                    reply_to,
                    target,
                    payload: Bytes(payload.clone()),
                    trace: TraceCtx::default(),
                    epoch,
                    rs_epoch: rs_epoch.into(),
                    deadline,
                };
                for f in [mk(0), mk(deadline)] {
                    prop_assert_eq!(from_bytes::<Frame>(&to_bytes(&f)).unwrap(), f);
                }
                let classic = classic_request_bytes(
                    req_id, reply_to, target, &payload,
                    TraceCtx::default(), epoch, rs_epoch,
                );
                prop_assert_eq!(to_bytes(&mk(0)), classic.clone());
                prop_assert_eq!(from_bytes::<Frame>(&classic).unwrap(), mk(0));
            }
        }
    }
}
