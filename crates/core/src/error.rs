//! The error type that crosses the wire.
//!
//! A remote method can fail on the *far* side (no such object, application
//! error, bad arguments) or on the *near* side (network down, timeout).
//! Both kinds surface as [`RemoteError`], which is itself wire-encodable so
//! servers can ship failures back to callers.

use std::fmt;

use wire::{wire_enum, WireError};

use crate::ids::ObjRef;

/// Any failure of a remote operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// The target object id does not exist on the target machine (it was
    /// never created, or its destructor already ran).
    NoSuchObject { machine: usize, object: u64 },
    /// `new(machine i) T(...)` named a class the runtime has never heard of
    /// — the class was not registered with the cluster builder.
    NoSuchClass { class: String },
    /// The target class has no method with this name (protocol mismatch, or
    /// a call to a derived-class method through a base object).
    NoSuchMethod { class: String, method: String },
    /// A payload failed to decode; carries the decoder's message.
    Decode { detail: String },
    /// The destination machine id is outside the cluster.
    BadMachine { machine: usize, machines: usize },
    /// The far machine has shut down or its inbox is gone.
    Disconnected { machine: usize },
    /// No reply within the configured window, across every attempt the
    /// [`CallPolicy`](crate::CallPolicy) allowed. With a single-attempt
    /// policy the usual cause in oopp programs is distributed deadlock:
    /// object A's method is blocked on a call to object B while B's method
    /// is blocked on a call back to A (each request parked in the other's
    /// deferred queue). With retries enabled, exhausting them usually means
    /// the target machine is crashed or partitioned away — the caller can
    /// fail over via snapshot reactivation (see
    /// [`resolve_or_activate_supervised`](crate::naming::resolve_or_activate_supervised)).
    Timeout {
        /// Machine the unanswered call targeted.
        machine: usize,
        /// Object the unanswered call targeted (0 = daemon).
        object: u64,
        /// Send attempts made (1 = no retries were configured).
        attempts: u32,
        /// Total time spent waiting, summed over all attempts.
        millis: u64,
    },
    /// The class is not persistent: no snapshot/restore support.
    NotPersistent { class: String },
    /// No stored snapshot under this key on this machine.
    NoSuchSnapshot { key: String },
    /// Application-level failure raised by a server method body.
    App { detail: String },
    /// The object was migrated away; a forwarding stub at its old address
    /// redirects the caller to `to` (see
    /// [`NodeCtx::migrate`](crate::NodeCtx::migrate)). Callers normally
    /// never observe this: the engine chases one forward transparently and
    /// only surfaces `Moved` when the forward itself points at a second
    /// forward — the signal to re-resolve through the naming directory.
    Moved { to: ObjRef },
    /// The request carried an incarnation epoch below (or above) the one the
    /// server holds for the target object — the caller's pointer refers to a
    /// superseded incarnation, or the server itself has been superseded and
    /// self-fenced. Either way the write must not happen here: the caller
    /// re-resolves through the naming directory, which records the epoch of
    /// the live incarnation (see DESIGN.md §10).
    Fenced { current_epoch: u64 },
    /// A read replica refused the call because its coherence lease had
    /// expired or the caller's replica-set epoch is ahead of the replica's —
    /// the replica can no longer prove it has seen every acknowledged write.
    /// The caller retries at the `primary`, which is always coherent, and
    /// drops the replica from its local route until the replica manager
    /// re-syncs it (see DESIGN.md §11).
    StaleReplica {
        /// The primary (authoritative) copy to retry against.
        primary: ObjRef,
        /// Replica-set epoch the replica last synced at.
        rs_epoch: u64,
    },
    /// The object is the primary of a live replica set and therefore
    /// unmovable: migrating it would strand the replicas' write-through
    /// routes. Unreplicate first, or use
    /// `ReplicaManager::unreplicate_then_migrate` to do both in one step.
    Replicated { object: u64 },
    /// The call's propagated deadline expired before the work ran — at the
    /// client (budget spent waiting), at admission, or at execution time
    /// under the shard lock (see DESIGN.md §15). The work was **not**
    /// executed; retrying with the same deadline is pointless.
    DeadlineExceeded {
        /// Nanoseconds past the deadline when the call was dropped
        /// (0 = the budget was already zero on arrival).
        elapsed_nanos: u64,
    },
    /// The server refused to queue the request — its mailbox cap or the
    /// machine's in-flight budget was exceeded (cheap reject, never
    /// queued), or a client-side circuit breaker for the destination is
    /// open and failed the call without touching the network
    /// (`queue_depth == 0` in that case). Back off for at least
    /// `retry_after_nanos` before retrying; blind immediate retries
    /// amplify the brownout.
    Overloaded {
        /// Queue depth observed at the rejecting server (its mailbox or
        /// in-flight count), 0 for client-side breaker fast-fails.
        queue_depth: u64,
        /// Server's backoff hint before the caller should retry.
        retry_after_nanos: u64,
    },
}

wire_enum!(RemoteError {
    0 => NoSuchObject { machine, object },
    1 => NoSuchClass { class },
    2 => NoSuchMethod { class, method },
    3 => Decode { detail },
    4 => BadMachine { machine, machines },
    5 => Disconnected { machine },
    6 => Timeout { machine, object, attempts, millis },
    7 => NotPersistent { class },
    8 => NoSuchSnapshot { key },
    9 => App { detail },
    10 => Moved { to },
    11 => Fenced { current_epoch },
    12 => StaleReplica { primary, rs_epoch },
    13 => Replicated { object },
    14 => DeadlineExceeded { elapsed_nanos },
    15 => Overloaded { queue_depth, retry_after_nanos },
});

impl RemoteError {
    /// Construct an application-level error from anything printable.
    pub fn app(detail: impl fmt::Display) -> Self {
        RemoteError::App {
            detail: detail.to_string(),
        }
    }
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::NoSuchObject { machine, object } => {
                write!(f, "no object {object} on machine {machine}")
            }
            RemoteError::NoSuchClass { class } => {
                write!(f, "class {class:?} is not registered with this cluster")
            }
            RemoteError::NoSuchMethod { class, method } => {
                write!(f, "class {class:?} has no method {method:?}")
            }
            RemoteError::Decode { detail } => write!(f, "wire decode failed: {detail}"),
            RemoteError::BadMachine { machine, machines } => {
                write!(f, "machine {machine} out of range (cluster has {machines})")
            }
            RemoteError::Disconnected { machine } => {
                write!(f, "machine {machine} is disconnected")
            }
            RemoteError::Timeout {
                machine,
                object,
                attempts,
                millis,
            } => {
                if *attempts <= 1 {
                    write!(
                        f,
                        "no reply from machine {machine} object {object} after \
                         {millis} ms (possible distributed deadlock)"
                    )
                } else {
                    write!(
                        f,
                        "no reply from machine {machine} object {object} after \
                         {attempts} attempts over {millis} ms (machine crashed \
                         or partitioned?)"
                    )
                }
            }
            RemoteError::NotPersistent { class } => {
                write!(f, "class {class:?} does not support persistence")
            }
            RemoteError::NoSuchSnapshot { key } => {
                write!(f, "no snapshot stored under key {key:?}")
            }
            RemoteError::App { detail } => write!(f, "application error: {detail}"),
            RemoteError::Moved { to } => {
                write!(
                    f,
                    "object migrated to machine {} object {} (stale pointer; re-resolve)",
                    to.machine, to.object
                )
            }
            RemoteError::Fenced { current_epoch } => {
                write!(
                    f,
                    "request fenced: object is at incarnation epoch {current_epoch} \
                     (stale or superseded pointer; re-resolve)"
                )
            }
            RemoteError::StaleReplica { primary, rs_epoch } => {
                write!(
                    f,
                    "read replica stale at replica-set epoch {rs_epoch}; retry \
                     at primary machine {} object {}",
                    primary.machine, primary.object
                )
            }
            RemoteError::Replicated { object } => {
                write!(
                    f,
                    "object {object} is replicated and unmovable; unreplicate                      first (or scale the replica set instead)"
                )
            }
            RemoteError::DeadlineExceeded { elapsed_nanos } => {
                write!(
                    f,
                    "deadline exceeded: call dropped {elapsed_nanos} ns past \
                     its propagated deadline (work was not executed)"
                )
            }
            RemoteError::Overloaded {
                queue_depth,
                retry_after_nanos,
            } => {
                if *queue_depth == 0 {
                    write!(
                        f,
                        "destination overloaded: circuit breaker open, retry \
                         after {retry_after_nanos} ns"
                    )
                } else {
                    write!(
                        f,
                        "server overloaded: request rejected at admission \
                         (queue depth {queue_depth}), retry after \
                         {retry_after_nanos} ns"
                    )
                }
            }
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<WireError> for RemoteError {
    fn from(e: WireError) -> Self {
        RemoteError::Decode {
            detail: e.to_string(),
        }
    }
}

/// Result alias for remote operations.
pub type RemoteResult<T> = Result<T, RemoteError>;

#[cfg(test)]
mod tests {
    use super::*;
    use wire::{from_bytes, to_bytes};

    #[test]
    fn errors_roundtrip_the_wire() {
        for e in [
            RemoteError::NoSuchObject {
                machine: 3,
                object: 17,
            },
            RemoteError::NoSuchClass {
                class: "FFT".into(),
            },
            RemoteError::NoSuchMethod {
                class: "PageDevice".into(),
                method: "frobnicate".into(),
            },
            RemoteError::Decode {
                detail: "bad varint".into(),
            },
            RemoteError::BadMachine {
                machine: 9,
                machines: 4,
            },
            RemoteError::Disconnected { machine: 1 },
            RemoteError::Timeout {
                machine: 2,
                object: 11,
                attempts: 3,
                millis: 10_000,
            },
            RemoteError::NotPersistent {
                class: "Barrier".into(),
            },
            RemoteError::NoSuchSnapshot {
                key: "oopp://x".into(),
            },
            RemoteError::app("page index 99 out of range"),
            RemoteError::Moved {
                to: ObjRef {
                    machine: 2,
                    object: 41,
                },
            },
            RemoteError::Fenced { current_epoch: 7 },
            RemoteError::StaleReplica {
                primary: ObjRef {
                    machine: 0,
                    object: 13,
                },
                rs_epoch: 4,
            },
            RemoteError::Replicated { object: 99 },
            RemoteError::DeadlineExceeded {
                elapsed_nanos: 1_500_000,
            },
            RemoteError::Overloaded {
                queue_depth: 4096,
                retry_after_nanos: 2_000_000,
            },
        ] {
            assert_eq!(from_bytes::<RemoteError>(&to_bytes(&e)).unwrap(), e);
        }
    }

    #[test]
    fn wire_errors_convert() {
        let we = WireError::InvalidUtf8;
        let re: RemoteError = we.into();
        assert!(matches!(re, RemoteError::Decode { .. }));
        assert!(re.to_string().contains("UTF-8"));
    }

    #[test]
    fn display_mentions_key_facts() {
        let e = RemoteError::NoSuchObject {
            machine: 2,
            object: 5,
        };
        assert!(e.to_string().contains("machine 2"));
        let e = RemoteError::Timeout {
            machine: 0,
            object: 4,
            attempts: 1,
            millis: 250,
        };
        assert!(e.to_string().contains("deadlock"));
        assert!(e.to_string().contains("machine 0"));
        let e = RemoteError::Timeout {
            machine: 3,
            object: 4,
            attempts: 5,
            millis: 900,
        };
        assert!(e.to_string().contains("5 attempts"), "got {e}");
        assert!(!e.to_string().contains("deadlock"));
    }
}
