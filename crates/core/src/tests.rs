//! End-to-end tests of the oopp runtime: every §2–§5 construct of the paper
//! exercised against a real (simulated) cluster.
#![allow(clippy::approx_constant)] // 3.1415 is the paper's own literal

use std::time::Duration;

use wire::collections::F64s;

use crate::*;

// ---------------------------------------------------------------------
// Test classes
// ---------------------------------------------------------------------

/// A worker process that computes against other remote objects — used to
/// exercise nested calls, groups, and barriers.
#[derive(Debug)]
pub struct Computer {
    id: u64,
    peers: Vec<ComputerClient>,
    scratch: f64,
}

remote_class! {
    class Computer {
        ctor(id: u64);
        /// §4 SetGroup, deep-copy variant: store the whole table of remote
        /// pointers locally.
        fn set_group(&mut self, peers: Vec<ComputerClient>) -> ();
        /// Who am I (and how many peers do I know)?
        fn describe(&mut self) -> (u64, usize);
        /// Nested RMI: read `data[i]`, add my id, store into `data[i]`.
        fn bump(&mut self, data: DoubleBlockClient, i: usize) -> f64;
        /// Enter a barrier, then return my id (exercises deferred replies
        /// under load).
        fn sync_then_id(&mut self, barrier: BarrierClient) -> u64;
        /// Store a value locally (cheap call for pipelining tests).
        fn stash(&mut self, v: f64) -> ();
        /// Read the stashed value.
        fn stashed(&mut self) -> f64;
        /// Ask peer `p` for its stashed value (worker-to-worker RMI).
        fn peer_stashed(&mut self, p: usize) -> f64;
        /// Deliberately fail.
        fn explode(&mut self) -> ();
    }
}

impl Computer {
    fn new(_ctx: &mut NodeCtx, id: u64) -> RemoteResult<Self> {
        Ok(Computer {
            id,
            peers: Vec::new(),
            scratch: 0.0,
        })
    }

    fn set_group(&mut self, _ctx: &mut NodeCtx, peers: Vec<ComputerClient>) -> RemoteResult<()> {
        self.peers = peers;
        Ok(())
    }

    fn describe(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<(u64, usize)> {
        Ok((self.id, self.peers.len()))
    }

    fn bump(&mut self, ctx: &mut NodeCtx, data: DoubleBlockClient, i: usize) -> RemoteResult<f64> {
        let old = data.get(ctx, i)?;
        let new = old + self.id as f64;
        data.set(ctx, i, new)?;
        Ok(new)
    }

    fn sync_then_id(&mut self, ctx: &mut NodeCtx, barrier: BarrierClient) -> RemoteResult<u64> {
        barrier.enter(ctx)?;
        Ok(self.id)
    }

    fn stash(&mut self, _ctx: &mut NodeCtx, v: f64) -> RemoteResult<()> {
        self.scratch = v;
        Ok(())
    }

    fn stashed(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<f64> {
        Ok(self.scratch)
    }

    fn peer_stashed(&mut self, ctx: &mut NodeCtx, p: usize) -> RemoteResult<f64> {
        let peer = *self
            .peers
            .get(p)
            .ok_or_else(|| RemoteError::app(format!("no peer {p}")))?;
        peer.stashed(ctx)
    }

    fn explode(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<()> {
        Err(RemoteError::app("kaboom"))
    }
}

/// Base class for the inheritance tests (§3): a counter.
#[derive(Debug)]
pub struct Counter {
    count: i64,
}

remote_class! {
    class Counter {
        ctor(start: i64);
        fn increment(&mut self, by: i64) -> i64;
        fn value(&mut self) -> i64;
    }
}

impl Counter {
    fn new(_ctx: &mut NodeCtx, start: i64) -> RemoteResult<Self> {
        Ok(Counter { count: start })
    }
    fn increment(&mut self, _ctx: &mut NodeCtx, by: i64) -> RemoteResult<i64> {
        self.count += by;
        Ok(self.count)
    }
    fn value(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<i64> {
        Ok(self.count)
    }
}

/// Derived class (§3): adds a scaled read on top of `Counter`.
#[derive(Debug)]
pub struct ScaledCounter {
    base: Counter,
    scale: i64,
}

remote_class! {
    class ScaledCounter: Counter {
        ctor(start: i64, scale: i64);
        fn scaled_value(&mut self) -> i64;
    }
}

impl ScaledCounter {
    fn new(ctx: &mut NodeCtx, start: i64, scale: i64) -> RemoteResult<Self> {
        Ok(ScaledCounter {
            base: Counter::new(ctx, start)?,
            scale,
        })
    }
    fn scaled_value(&mut self, ctx: &mut NodeCtx) -> RemoteResult<i64> {
        Ok(self.base.value(ctx)? * self.scale)
    }
}

fn cluster(workers: usize) -> (Cluster, Driver) {
    ClusterBuilder::new(workers)
        .register::<Computer>()
        .register::<Counter>()
        .register::<ScaledCounter>()
        .timeout(Duration::from_secs(10))
        .build()
}

// ---------------------------------------------------------------------
// §2: processes, remote new, sequential semantics, destructors
// ---------------------------------------------------------------------

#[test]
fn ping_every_machine() {
    let (cluster, mut driver) = cluster(3);
    for m in 0..3 {
        driver.ping(m).unwrap();
    }
    cluster.shutdown(driver);
}

#[test]
fn paper_listing_remote_double_array() {
    // double *data = new(machine 2) double[1024];
    // data[7] = 3.1415;  double x = data[2];
    let (cluster, mut driver) = cluster(3);
    let data = DoubleBlockClient::new_on(&mut driver, 2, 1024).unwrap();
    data.set(&mut driver, 7, 3.1415).unwrap();
    assert_eq!(data.get(&mut driver, 2).unwrap(), 0.0);
    assert_eq!(data.get(&mut driver, 7).unwrap(), 3.1415);
    assert_eq!(data.len(&mut driver).unwrap(), 1024);
    data.destroy(&mut driver).unwrap();
    cluster.shutdown(driver);
}

#[test]
fn destroy_terminates_the_process() {
    let (cluster, mut driver) = cluster(2);
    let data = DoubleBlockClient::new_on(&mut driver, 0, 8).unwrap();
    data.set(&mut driver, 0, 1.0).unwrap();
    data.destroy(&mut driver).unwrap();
    // The process is gone: further dereferences fail.
    match data.get(&mut driver, 0) {
        Err(RemoteError::NoSuchObject { machine: 0, .. }) => {}
        other => panic!("expected NoSuchObject, got {other:?}"),
    }
    // Double delete is also an error.
    assert!(matches!(
        data.destroy(&mut driver),
        Err(RemoteError::NoSuchObject { .. })
    ));
    cluster.shutdown(driver);
}

#[test]
fn unknown_class_is_reported() {
    let (cluster, mut driver) = ClusterBuilder::new(1).build();
    let err = driver.create_object(0, "Phantom", vec![]).unwrap_err();
    assert_eq!(
        err,
        RemoteError::NoSuchClass {
            class: "Phantom".into()
        }
    );
    cluster.shutdown(driver);
}

#[test]
fn unknown_method_is_reported() {
    let (cluster, mut driver) = cluster(1);
    let c = CounterClient::new_on(&mut driver, 0, 5).unwrap();
    let err: RemoteResult<()> = driver.call_method(c.obj_ref(), "frobnicate", |_| {});
    assert_eq!(
        err.unwrap_err(),
        RemoteError::NoSuchMethod {
            class: "Counter".into(),
            method: "frobnicate".into()
        }
    );
    cluster.shutdown(driver);
}

#[test]
fn bad_machine_is_rejected_locally() {
    let (cluster, mut driver) = cluster(2);
    let err = DoubleBlockClient::new_on(&mut driver, 99, 8).unwrap_err();
    assert!(matches!(err, RemoteError::BadMachine { machine: 99, .. }));
    cluster.shutdown(driver);
}

#[test]
fn application_errors_propagate() {
    let (cluster, mut driver) = cluster(1);
    let c = ComputerClient::new_on(&mut driver, 0, 1).unwrap();
    let err = c.explode(&mut driver).unwrap_err();
    assert_eq!(err, RemoteError::app("kaboom"));
    // Out-of-bounds block access is an App error, not a panic.
    let d = DoubleBlockClient::new_on(&mut driver, 0, 4).unwrap();
    assert!(matches!(
        d.get(&mut driver, 4),
        Err(RemoteError::App { .. })
    ));
    cluster.shutdown(driver);
}

#[test]
fn objects_on_every_machine_including_driver_host() {
    let (cluster, mut driver) = cluster(4);
    // The driver endpoint can host objects too; they are served while the
    // driver waits inside calls.
    let mut blocks = Vec::new();
    for m in 0..5 {
        blocks.push(DoubleBlockClient::new_on(&mut driver, m, 4).unwrap());
    }
    for (i, b) in blocks.iter().enumerate() {
        b.set(&mut driver, 0, i as f64).unwrap();
    }
    for (i, b) in blocks.iter().enumerate() {
        assert_eq!(b.get(&mut driver, 0).unwrap(), i as f64);
    }
    cluster.shutdown(driver);
}

#[test]
fn bulk_ranges_roundtrip() {
    let (cluster, mut driver) = cluster(1);
    let d = DoubleBlockClient::new_on(&mut driver, 0, 100).unwrap();
    let payload: Vec<f64> = (0..50).map(|i| i as f64 * 0.5).collect();
    d.write_range(&mut driver, 25, F64s(payload.clone()))
        .unwrap();
    let back = d.read_range(&mut driver, 25, 50).unwrap();
    assert_eq!(back.0, payload);
    // Device-side reductions (§3 "move the computation to the data").
    let s = d.sum_range(&mut driver, 25, 50).unwrap();
    assert_eq!(s, payload.iter().sum::<f64>());
    let dot = d.dot_range(&mut driver, 25, F64s(vec![2.0; 50])).unwrap();
    assert!((dot - 2.0 * s).abs() < 1e-9);
    d.axpy_range(&mut driver, 25, -1.0, F64s(payload.clone()))
        .unwrap();
    assert_eq!(d.sum_range(&mut driver, 0, 100).unwrap(), 0.0);
    cluster.shutdown(driver);
}

#[test]
fn byte_blocks_work() {
    let (cluster, mut driver) = cluster(1);
    let b = ByteBlockClient::new_on(&mut driver, 0, 16).unwrap();
    b.set(&mut driver, 3, 0xab).unwrap();
    assert_eq!(b.get(&mut driver, 3).unwrap(), 0xab);
    b.write_range(&mut driver, 8, wire::collections::Bytes(vec![1, 2, 3]))
        .unwrap();
    assert_eq!(b.read_range(&mut driver, 8, 3).unwrap().0, vec![1, 2, 3]);
    assert_eq!(b.len(&mut driver).unwrap(), 16);
    cluster.shutdown(driver);
}

// ---------------------------------------------------------------------
// §3: inheritance
// ---------------------------------------------------------------------

#[test]
fn derived_class_dispatches_own_and_base_methods() {
    let (cluster, mut driver) = cluster(2);
    let sc = ScaledCounterClient::new_on(&mut driver, 1, 10, 3).unwrap();
    // Own method.
    assert_eq!(sc.scaled_value(&mut driver).unwrap(), 30);
    // Base methods through the base-typed view — §3 substitutability.
    let as_counter: CounterClient = sc.as_base();
    assert_eq!(as_counter.increment(&mut driver, 5).unwrap(), 15);
    assert_eq!(as_counter.value(&mut driver).unwrap(), 15);
    // The derived view observes the mutation made through the base view.
    assert_eq!(sc.scaled_value(&mut driver).unwrap(), 45);
    // From conversion works too.
    let c2: CounterClient = sc.into();
    assert_eq!(c2.value(&mut driver).unwrap(), 15);
    cluster.shutdown(driver);
}

#[test]
fn base_client_cannot_reach_derived_methods_of_pure_base_object() {
    let (cluster, mut driver) = cluster(1);
    let c = CounterClient::new_on(&mut driver, 0, 0).unwrap();
    // Asking a pure Counter for a ScaledCounter method fails cleanly.
    let err: RemoteResult<i64> = driver.call_method(c.obj_ref(), "scaled_value", |_| {});
    assert!(matches!(err.unwrap_err(), RemoteError::NoSuchMethod { .. }));
    cluster.shutdown(driver);
}

// ---------------------------------------------------------------------
// §4: parallelism — split loops, groups, barriers
// ---------------------------------------------------------------------

#[test]
fn split_loop_collects_all_replies() {
    let (cluster, mut driver) = cluster(4);
    let blocks: Vec<_> = (0..4)
        .map(|m| DoubleBlockClient::new_on(&mut driver, m, 8).unwrap())
        .collect();
    // Send phase: issue all writes without waiting.
    let writes: Vec<_> = blocks
        .iter()
        .enumerate()
        .map(|(i, b)| b.set_async(&mut driver, 0, i as f64 * 2.0).unwrap())
        .collect();
    // Receive phase.
    join(&mut driver, writes).unwrap();
    // Same for reads.
    let reads: Vec<_> = blocks
        .iter()
        .map(|b| b.get_async(&mut driver, 0).unwrap())
        .collect();
    let values = join(&mut driver, reads).unwrap();
    assert_eq!(values, vec![0.0, 2.0, 4.0, 6.0]);
    cluster.shutdown(driver);
}

#[test]
fn join_surfaces_the_first_error_and_drains_the_rest() {
    let (cluster, mut driver) = cluster(2);
    let good = DoubleBlockClient::new_on(&mut driver, 0, 8).unwrap();
    let pendings = vec![
        good.get_async(&mut driver, 0).unwrap(),
        good.get_async(&mut driver, 999).unwrap(), // out of bounds
        good.get_async(&mut driver, 1).unwrap(),
    ];
    assert!(matches!(
        join(&mut driver, pendings),
        Err(RemoteError::App { .. })
    ));
    // The node must not have leaked replies: further calls still work.
    assert_eq!(good.get(&mut driver, 0).unwrap(), 0.0);
    cluster.shutdown(driver);
}

#[test]
fn process_group_create_and_set_group() {
    // The paper's FFT master code: create N processes, tell each the group.
    let (cluster, mut driver) = cluster(4);
    let group: ProcessGroup<ComputerClient> =
        ProcessGroup::create(&mut driver, 4, |id| wire::to_bytes(&(id as u64))).unwrap();
    assert_eq!(group.len(), 4);
    let members = group.members().to_vec();
    group
        .par_each(&mut driver, |ctx, m, _| {
            m.set_group_async(ctx, members.clone())
        })
        .unwrap();
    let descriptions = group
        .par_each(&mut driver, |ctx, m, _| m.describe_async(ctx))
        .unwrap();
    for (id, (got_id, peer_count)) in descriptions.iter().enumerate() {
        assert_eq!(*got_id, id as u64);
        assert_eq!(*peer_count, 4);
    }
    cluster.shutdown(driver);
}

#[test]
fn workers_call_each_other_through_remote_pointers() {
    let (cluster, mut driver) = cluster(3);
    let group: ProcessGroup<ComputerClient> =
        ProcessGroup::create(&mut driver, 3, |id| wire::to_bytes(&(id as u64))).unwrap();
    let members = group.members().to_vec();
    group
        .par_each(&mut driver, |ctx, m, _| {
            m.set_group_async(ctx, members.clone())
        })
        .unwrap();
    // Stash a value on worker 2, then ask worker 0 to fetch it from its
    // peer table: a worker→worker remote call.
    group.member(2).stash(&mut driver, 42.5).unwrap();
    let fetched = group.member(0).peer_stashed(&mut driver, 2).unwrap();
    assert_eq!(fetched, 42.5);
    cluster.shutdown(driver);
}

#[test]
fn nested_calls_through_shared_data() {
    // §2's shared-memory sketch: computing processes share one data block.
    let (cluster, mut driver) = cluster(3);
    let data = DoubleBlockClient::new_on(&mut driver, 0, 1).unwrap();
    let computers: Vec<_> = (1..3)
        .map(|m| ComputerClient::new_on(&mut driver, m, m as u64).unwrap())
        .collect();
    // Sequential semantics: each bump completes before the next starts.
    for c in &computers {
        c.bump(&mut driver, data, 0).unwrap();
    }
    assert_eq!(data.get(&mut driver, 0).unwrap(), 3.0); // 1 + 2
    cluster.shutdown(driver);
}

#[test]
fn barrier_synchronizes_group_and_driver() {
    let (cluster, mut driver) = cluster(3);
    let barrier = BarrierClient::new_on(&mut driver, 0, 4).unwrap(); // 3 workers + driver
    let group: ProcessGroup<ComputerClient> =
        ProcessGroup::create(&mut driver, 3, |id| wire::to_bytes(&(id as u64))).unwrap();
    // Send phase: every worker enters the barrier (their dispatch blocks).
    let pendings: Vec<_> = group
        .members()
        .iter()
        .map(|m| m.sync_then_id_async(&mut driver, barrier).unwrap())
        .collect();
    // Driver is the last party; everyone is released.
    barrier.enter(&mut driver).unwrap();
    let mut ids = join(&mut driver, pendings).unwrap();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2]);
    assert_eq!(barrier.generations(&mut driver).unwrap(), 1);
    cluster.shutdown(driver);
}

#[test]
fn barrier_is_reusable_across_generations() {
    let (cluster, mut driver) = cluster(2);
    let barrier = BarrierClient::new_on(&mut driver, 0, 3).unwrap();
    let group: ProcessGroup<ComputerClient> =
        ProcessGroup::create(&mut driver, 2, |id| wire::to_bytes(&(id as u64))).unwrap();
    for round in 1..=3u64 {
        let pendings: Vec<_> = group
            .members()
            .iter()
            .map(|m| m.sync_then_id_async(&mut driver, barrier).unwrap())
            .collect();
        barrier.enter(&mut driver).unwrap();
        join(&mut driver, pendings).unwrap();
        assert_eq!(barrier.generations(&mut driver).unwrap(), round);
    }
    cluster.shutdown(driver);
}

#[test]
fn busy_object_defers_requests_instead_of_failing() {
    let (cluster, mut driver) = cluster(2);
    let barrier = BarrierClient::new_on(&mut driver, 0, 2).unwrap();
    let c = ComputerClient::new_on(&mut driver, 1, 7).unwrap();
    // Request 1 parks the Computer inside the barrier.
    let p1 = c.sync_then_id_async(&mut driver, barrier).unwrap();
    // Request 2 arrives while the Computer is checked out — it must be
    // deferred, not rejected.
    let p2 = c.stashed_async(&mut driver).unwrap();
    // Release the barrier; both replies now arrive.
    barrier.enter(&mut driver).unwrap();
    assert_eq!(p1.wait(&mut driver).unwrap(), 7);
    assert_eq!(p2.wait(&mut driver).unwrap(), 0.0);
    let stats = driver.stats_of(1).unwrap();
    assert!(
        stats.calls_deferred >= 1,
        "expected a deferred call, got {stats:?}"
    );
    cluster.shutdown(driver);
}

#[test]
fn self_call_deadlock_times_out() {
    // An object calling a method on *itself* through its own remote pointer
    // is the minimal distributed deadlock: its own request sits in the
    // deferred queue while it waits. The engine must convert this to a
    // Timeout, not hang.
    #[derive(Debug)]
    pub struct Narcissist;
    remote_class! {
        class Narcissist {
            ctor();
            fn admire(&mut self, me: NarcissistClient) -> ();
            fn nop(&mut self) -> ();
        }
    }
    impl Narcissist {
        fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
            Ok(Narcissist)
        }
        fn admire(&mut self, ctx: &mut NodeCtx, me: NarcissistClient) -> RemoteResult<()> {
            me.nop(ctx) // deadlock: our own request can never be served
        }
        fn nop(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<()> {
            Ok(())
        }
    }

    let (cluster, mut driver) = ClusterBuilder::new(1)
        .register::<Narcissist>()
        .timeout(Duration::from_millis(300))
        .build();
    let n = NarcissistClient::new_on(&mut driver, 0).unwrap();
    let err = n.admire(&mut driver, n).unwrap_err();
    assert!(matches!(err, RemoteError::Timeout { .. }), "got {err:?}");
    // The machine recovered: it can serve fresh calls afterwards.
    n.nop(&mut driver).unwrap();
    cluster.shutdown(driver);
}

// ---------------------------------------------------------------------
// §5: persistence and symbolic addresses
// ---------------------------------------------------------------------

#[test]
fn snapshot_deactivate_activate_cycle() {
    let (cluster, mut driver) = cluster(2);
    let d = DoubleBlockClient::new_on(&mut driver, 1, 4).unwrap();
    d.write_range(&mut driver, 0, F64s(vec![1.0, 2.0, 3.0, 4.0]))
        .unwrap();

    // Deactivate: state stored under a symbolic key, process destroyed.
    let key = symbolic_addr(&["data", "set", "DoubleBlock", "0"]);
    driver.deactivate(d.obj_ref(), &key).unwrap();
    assert!(matches!(
        d.get(&mut driver, 0),
        Err(RemoteError::NoSuchObject { .. })
    ));

    // Activate: a fresh process with the same state.
    let revived: DoubleBlockClient = driver.activate(1, &key).unwrap();
    assert_eq!(
        revived.read_range(&mut driver, 0, 4).unwrap().0,
        vec![1.0, 2.0, 3.0, 4.0]
    );

    // Activation is non-destructive: a second activation yields another copy.
    let twin: DoubleBlockClient = driver.activate(1, &key).unwrap();
    twin.set(&mut driver, 0, 9.0).unwrap();
    assert_eq!(
        revived.get(&mut driver, 0).unwrap(),
        1.0,
        "copies are independent"
    );

    assert!(driver.drop_snapshot(1, &key).unwrap());
    assert!(!driver.drop_snapshot(1, &key).unwrap());
    let err = driver.activate::<DoubleBlockClient>(1, &key).unwrap_err();
    assert!(matches!(err, RemoteError::NoSuchSnapshot { .. }));
    cluster.shutdown(driver);
}

#[test]
fn snapshot_of_live_object_without_destroying_it() {
    let (cluster, mut driver) = cluster(1);
    let d = DoubleBlockClient::new_on(&mut driver, 0, 2).unwrap();
    d.set(&mut driver, 1, 5.5).unwrap();
    let state = driver.snapshot_of(d.obj_ref()).unwrap();
    assert!(!state.is_empty());
    // Still alive.
    assert_eq!(d.get(&mut driver, 1).unwrap(), 5.5);
    cluster.shutdown(driver);
}

#[test]
fn non_persistent_classes_refuse_snapshots() {
    let (cluster, mut driver) = cluster(1);
    let c = CounterClient::new_on(&mut driver, 0, 1).unwrap();
    let err = driver.snapshot_of(c.obj_ref()).unwrap_err();
    assert_eq!(
        err,
        RemoteError::NotPersistent {
            class: "Counter".into()
        }
    );
    cluster.shutdown(driver);
}

#[test]
fn directory_binds_symbolic_names() {
    let (cluster, mut driver) = cluster(2);
    let dir = driver.directory();
    let d = DoubleBlockClient::new_on(&mut driver, 1, 8).unwrap();
    d.set(&mut driver, 0, 3.25).unwrap();

    let name = symbolic_addr(&["data", "set", "DoubleBlock", "34"]);
    dir.bind(&mut driver, name.clone(), d.obj_ref()).unwrap();

    // Another part of the program resolves the address and uses the object
    // — the paper's `PageDevice *pd = "http://data/set/PageDevice/34"`.
    let resolved = dir.lookup(&mut driver, name.clone()).unwrap().unwrap();
    let d2 = DoubleBlockClient::from_ref(resolved);
    assert_eq!(d2.get(&mut driver, 0).unwrap(), 3.25);

    assert_eq!(
        dir.lookup(&mut driver, "oopp://missing".into()).unwrap(),
        None
    );
    assert_eq!(
        dir.list(&mut driver, "oopp://data/".into()).unwrap(),
        vec![name.clone()]
    );
    assert_eq!(dir.len(&mut driver).unwrap(), 1);
    assert!(dir.unbind(&mut driver, name.clone()).unwrap());
    assert!(!dir.unbind(&mut driver, name).unwrap());
    cluster.shutdown(driver);
}

// ---------------------------------------------------------------------
// Runtime mechanics
// ---------------------------------------------------------------------

#[test]
fn stats_reflect_activity() {
    let (cluster, mut driver) = cluster(1);
    let before = driver.stats_of(0).unwrap();
    let d = DoubleBlockClient::new_on(&mut driver, 0, 4).unwrap();
    d.set(&mut driver, 0, 1.0).unwrap();
    d.set(&mut driver, 1, 2.0).unwrap();
    let after = driver.stats_of(0).unwrap();
    assert_eq!(after.objects_live, before.objects_live + 1);
    assert!(after.calls_served >= before.calls_served + 3);
    cluster.shutdown(driver);
}

#[test]
fn cluster_drop_without_explicit_shutdown_does_not_hang() {
    let (cluster, mut driver) = cluster(2);
    let d = DoubleBlockClient::new_on(&mut driver, 0, 4).unwrap();
    d.set(&mut driver, 0, 1.0).unwrap();
    drop(driver);
    drop(cluster); // emergency shutdown path
}

#[test]
fn simnet_metrics_visible_through_cluster() {
    let (cluster, mut driver) = cluster(2);
    let before = cluster.snapshot();
    let d = DoubleBlockClient::new_on(&mut driver, 0, 4).unwrap();
    d.set(&mut driver, 0, 1.0).unwrap();
    let delta = cluster.snapshot().since(&before);
    // create req/resp + set req/resp = at least 4 messages.
    assert!(
        delta.messages_sent >= 4,
        "saw {} messages",
        delta.messages_sent
    );
    assert!(delta.bytes_sent > 0);
    cluster.shutdown(driver);
}

#[test]
fn many_small_objects_lifecycle() {
    let (cluster, mut driver) = cluster(4);
    let mut clients = Vec::new();
    for i in 0..100 {
        clients.push(CounterClient::new_on(&mut driver, i % 4, i as i64).unwrap());
    }
    for (i, c) in clients.iter().enumerate() {
        assert_eq!(c.value(&mut driver).unwrap(), i as i64);
    }
    for c in clients {
        c.destroy(&mut driver).unwrap();
    }
    for m in 0..4 {
        let stats = driver.stats_of(m).unwrap();
        // Machine 0 also hosts the cluster directory.
        let expected = if m == 0 { 1 } else { 0 };
        assert_eq!(stats.objects_live, expected, "machine {m}");
    }
    cluster.shutdown(driver);
}

#[test]
fn cross_machine_call_cycle_times_out() {
    // A on machine 0, B on machine 1. A.volley(2) calls B.volley(1), which
    // calls back A.volley(0) — but A is checked out, so the callback parks
    // forever: the distributed deadlock of DESIGN.md §4.1, surfaced as a
    // Timeout.
    #[derive(Debug)]
    pub struct Player {
        peer: Option<PlayerClient>,
    }
    crate::remote_class! {
        class Player {
            ctor();
            fn set_peer(&mut self, peer: PlayerClient) -> ();
            fn volley(&mut self, n: u64) -> u64;
        }
    }
    impl Player {
        fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
            Ok(Player { peer: None })
        }
        fn set_peer(&mut self, _ctx: &mut NodeCtx, peer: PlayerClient) -> RemoteResult<()> {
            self.peer = Some(peer);
            Ok(())
        }
        fn volley(&mut self, ctx: &mut NodeCtx, n: u64) -> RemoteResult<u64> {
            if n == 0 {
                return Ok(0);
            }
            let peer = self.peer.ok_or_else(|| RemoteError::app("no peer"))?;
            Ok(peer.volley(ctx, n - 1)? + 1)
        }
    }

    let (cluster, mut driver) = ClusterBuilder::new(2)
        .register::<Player>()
        .timeout(Duration::from_millis(400))
        .build();
    let a = PlayerClient::new_on(&mut driver, 0).unwrap();
    let b = PlayerClient::new_on(&mut driver, 1).unwrap();
    a.set_peer(&mut driver, b).unwrap();
    b.set_peer(&mut driver, a).unwrap();
    // One hop is fine: A → B → return.
    assert_eq!(a.volley(&mut driver, 1).unwrap(), 1);
    // Two hops cycle back into the checked-out A: timeout.
    let err = a.volley(&mut driver, 2).unwrap_err();
    assert!(matches!(err, RemoteError::Timeout { .. }), "got {err:?}");
    // Both machines recover afterwards.
    assert_eq!(a.volley(&mut driver, 0).unwrap(), 0);
    assert_eq!(b.volley(&mut driver, 1).unwrap(), 1);
    cluster.shutdown(driver);
}

#[test]
fn mismatched_return_type_is_a_decode_error() {
    let (cluster, mut driver) = cluster(1);
    let c = CounterClient::new_on(&mut driver, 0, 3).unwrap();
    // `value` returns i64 (8 bytes); decoding it as a String must fail
    // cleanly, not panic.
    let err: RemoteResult<String> = driver.call_method(c.obj_ref(), "value", |_| {});
    assert!(matches!(err.unwrap_err(), RemoteError::Decode { .. }));
    // And the object is still usable.
    assert_eq!(c.value(&mut driver).unwrap(), 3);
    cluster.shutdown(driver);
}

#[test]
fn malformed_arguments_are_a_decode_error() {
    let (cluster, mut driver) = cluster(1);
    let c = CounterClient::new_on(&mut driver, 0, 0).unwrap();
    // `increment` wants an i64; send it a truncated payload.
    let err: RemoteResult<i64> = driver.call_method(c.obj_ref(), "increment", |w| w.put_u8(1));
    assert!(matches!(err.unwrap_err(), RemoteError::Decode { .. }));
    cluster.shutdown(driver);
}

#[test]
fn stats_count_snapshots() {
    let (cluster, mut driver) = cluster(1);
    let d = DoubleBlockClient::new_on(&mut driver, 0, 4).unwrap();
    driver.deactivate(d.obj_ref(), "k1").unwrap();
    assert_eq!(driver.stats_of(0).unwrap().snapshots_stored, 1);
    let revived: DoubleBlockClient = driver.activate(0, "k1").unwrap();
    assert_eq!(
        driver.stats_of(0).unwrap().snapshots_stored,
        1,
        "activate keeps the snapshot"
    );
    driver.drop_snapshot(0, "k1").unwrap();
    assert_eq!(driver.stats_of(0).unwrap().snapshots_stored, 0);
    revived.destroy(&mut driver).unwrap();
    cluster.shutdown(driver);
}

#[test]
fn resolve_or_activate_finds_live_then_dormant() {
    let (cluster, mut driver) = cluster(2);
    let dir = driver.directory();
    let addr = symbolic_addr(&["data", "block", "1"]);

    let d = DoubleBlockClient::new_on(&mut driver, 1, 4).unwrap();
    d.set(&mut driver, 0, 2.5).unwrap();
    dir.bind(&mut driver, addr.clone(), d.obj_ref()).unwrap();

    // Live resolution.
    let got: DoubleBlockClient = resolve_or_activate(&mut driver, &dir, 1, &addr).unwrap();
    assert_eq!(got.get(&mut driver, 0).unwrap(), 2.5);

    // Deactivate under the SAME address, drop the binding: resolution now
    // activates from the snapshot and rebinds.
    driver.deactivate(d.obj_ref(), &addr).unwrap();
    dir.unbind(&mut driver, addr.clone()).unwrap();
    let revived: DoubleBlockClient = resolve_or_activate(&mut driver, &dir, 1, &addr).unwrap();
    assert_eq!(revived.get(&mut driver, 0).unwrap(), 2.5);
    // The fresh process is bound: a second resolve returns the same object.
    let again: DoubleBlockClient = resolve_or_activate(&mut driver, &dir, 1, &addr).unwrap();
    assert_eq!(again.obj_ref(), revived.obj_ref());

    // Unknown address with no snapshot: clean error.
    let err =
        resolve_or_activate::<DoubleBlockClient>(&mut driver, &dir, 1, "oopp://nope").unwrap_err();
    assert!(matches!(err, RemoteError::NoSuchSnapshot { .. }));
    cluster.shutdown(driver);
}

#[test]
fn group_destroy_removes_all_members() {
    let (cluster, mut driver) = cluster(3);
    let group: ProcessGroup<ComputerClient> =
        ProcessGroup::create(&mut driver, 3, |id| wire::to_bytes(&(id as u64))).unwrap();
    let refs = group.refs();
    group.destroy(&mut driver).unwrap();
    for r in refs {
        let c = ComputerClient::from_ref(r);
        assert!(matches!(
            c.stashed(&mut driver),
            Err(RemoteError::NoSuchObject { .. })
        ));
    }
    cluster.shutdown(driver);
}

#[test]
fn seq_each_preserves_order_and_sequencing() {
    let (cluster, mut driver) = cluster(2);
    let group: ProcessGroup<ComputerClient> =
        ProcessGroup::create(&mut driver, 2, |id| wire::to_bytes(&(id as u64))).unwrap();
    let ids = group
        .seq_each(&mut driver, |ctx, m, _| m.describe(ctx).map(|(id, _)| id))
        .unwrap();
    assert_eq!(ids, vec![0, 1]);
    cluster.shutdown(driver);
}

#[test]
fn directory_rebind_replaces() {
    let (cluster, mut driver) = cluster(1);
    let dir = driver.directory();
    let a = ObjRef {
        machine: 0,
        object: 10,
    };
    let b = ObjRef {
        machine: 0,
        object: 20,
    };
    dir.bind(&mut driver, "x".into(), a).unwrap();
    dir.bind(&mut driver, "x".into(), b).unwrap();
    assert_eq!(dir.lookup(&mut driver, "x".into()).unwrap(), Some(b));
    assert_eq!(dir.len(&mut driver).unwrap(), 1);
    cluster.shutdown(driver);
}

#[test]
fn clients_travel_the_wire_inside_collections() {
    // Remote pointers nest in arbitrary wire structures (§4 deep copy).
    let c = ComputerClient::from_ref(ObjRef {
        machine: 2,
        object: 9,
    });
    let table = vec![Some((c, "label".to_string())), None];
    let bytes = wire::to_bytes(&table);
    let back: Vec<Option<(ComputerClient, String)>> = wire::from_bytes(&bytes).unwrap();
    assert_eq!(back, table);
}
