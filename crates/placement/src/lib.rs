//! Adaptive object placement: move hot objects to idle machines.
//!
//! The paper's programs place every object explicitly (`new(machine 1)
//! PageDevice(...)`) and the placement is then fixed for the object's
//! lifetime. Under a skewed workload that static choice is the whole
//! performance story: one machine serializes the hot objects while the
//! rest of the cluster idles. This crate closes the loop. A [`Balancer`]
//! polls per-machine load signals — served calls and queueing pressure
//! from the daemons' runtime counters, per-object call counts from the
//! `loads` probe, sender-side bytes from the simnet metrics — feeds them
//! to a pluggable [`PlacementPolicy`], and executes the resulting
//! [`MigrationPlan`]s with the core's live migration
//! ([`NodeCtx::migrate`]): quiesce, transfer, commit, forward.
//!
//! Planning is **pure** (`policy.plan(&samples)` is a function of the
//! samples and nothing else), so policies are unit-testable without a
//! cluster, and the balancer's decisions under a seeded workload are
//! deterministic. Execution adds two dampers the pure plan can't express:
//! a **cooldown** (after any round that migrates, the balancer sits out
//! the next `cooldown_rounds` polls, so two policies reacting to each
//! other's traffic can't thrash an object back and forth) and an
//! **unmovable set** (objects whose migration failed — e.g. a
//! non-persistent class — are not proposed again).

use std::collections::{HashMap, HashSet};

use oopp::{NodeCtx, ObjRef, RemoteError, RemoteResult};
use simnet::MetricsSnapshot;

/// One machine's load over the window since the previous poll.
///
/// All counters are **deltas**, not lifetime totals: the balancer diffs
/// each poll against the last so a machine that was hot an hour ago and
/// idle now looks idle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineSample {
    /// Machine id.
    pub machine: usize,
    /// Object calls served this window (the primary load signal).
    pub calls: u64,
    /// Calls that had to be parked this window — queueing pressure; a
    /// machine can show few served calls precisely because it is
    /// saturated.
    pub deferred: u64,
    /// Payload bytes this machine injected into the fabric this window
    /// (reply traffic of hot objects), when a [`MetricsSnapshot`] was
    /// supplied.
    pub bytes_sent: u64,
    /// Requests this machine *shed* this window — `Overloaded` admission
    /// rejections plus CoDel-style sojourn drops (DESIGN.md §15). Shed
    /// calls are demand the machine turned away, so they never show up in
    /// `calls`; without this term an overloaded machine that rejects most
    /// of its traffic can look *idle* to the planner.
    pub shed: u64,
    /// Per-object served-call deltas, sorted by object id.
    pub objects: Vec<(u64, u64)>,
}

impl MachineSample {
    /// Extra weight of one shed call in [`load`](MachineSample::load):
    /// shedding means demand already exceeded capacity, which is a
    /// stronger overload signal than a parked (deferred) call.
    pub const SHED_WEIGHT: u64 = 4;

    /// Scalar load: served calls plus queueing pressure plus shed demand.
    /// Deferred calls count double — they mean the machine is not keeping
    /// up, which is worse than being busy — and shed calls count
    /// [`SHED_WEIGHT`](MachineSample::SHED_WEIGHT)-fold: the machine is
    /// already refusing work, so the planner must steer load away even
    /// when the served-call count looks modest.
    pub fn load(&self) -> u64 {
        self.calls + 2 * self.deferred + Self::SHED_WEIGHT * self.shed
    }
}

/// Pick the machine that should adopt an object whose home died.
///
/// Pure, like [`PlacementPolicy::plan`]: the least-loaded sampled machine
/// that is not in `excluded` (the dead machine itself, plus any peers the
/// supervisor currently suspects), ties broken by the lower machine id so
/// a seeded recovery is deterministic. Returns `None` when every sampled
/// machine is excluded — the caller should treat that as "no survivors"
/// and escalate rather than reactivate onto a corpse.
///
/// The supervisor uses this instead of [`PlacementPolicy`] because
/// reactivation is not rebalancing: the object *must* land somewhere even
/// on a perfectly balanced cluster, and it must never land on a machine
/// the failure detector distrusts.
pub fn reactivation_target(samples: &[MachineSample], excluded: &[usize]) -> Option<usize> {
    samples
        .iter()
        .filter(|s| !excluded.contains(&s.machine))
        .min_by_key(|s| (s.load(), s.machine))
        .map(|s| s.machine)
}

/// One planned move: migrate `object` to `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPlan {
    /// The object to move (at its current address).
    pub object: ObjRef,
    /// Destination machine.
    pub target: usize,
    /// The load (per-object call delta) that motivated the move.
    pub load: u64,
}

/// How the balancer turns samples into moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementPolicy {
    /// Never move anything — the paper's fixed placement, and the
    /// experimental control.
    Static,
    /// Move the hottest object off any machine whose load exceeds
    /// `overload_ratio` × the cluster mean, onto the least-loaded
    /// machine. One move per overloaded machine per round.
    Threshold {
        /// Overload trigger as a multiple of mean load (e.g. `2.0`).
        overload_ratio: f64,
    },
    /// Repeatedly move the best-fitting object from the most- to the
    /// least-loaded machine while the extremes differ by more than
    /// `imbalance_ratio`, up to `max_moves_per_round` moves. Each
    /// candidate object must actually shrink the gap: its load must be
    /// less than the load difference, else moving it would just swap
    /// which machine is hot.
    GreedyRebalance {
        /// Keep rebalancing while `max_load > imbalance_ratio * min_load`.
        imbalance_ratio: f64,
        /// Upper bound on moves per planning round.
        max_moves_per_round: usize,
    },
}

impl PlacementPolicy {
    /// Plan migrations for one poll window. Pure: no I/O, no hidden
    /// state; the same samples always produce the same plans.
    pub fn plan(&self, samples: &[MachineSample]) -> Vec<MigrationPlan> {
        match *self {
            PlacementPolicy::Static => Vec::new(),
            PlacementPolicy::Threshold { overload_ratio } => {
                Self::plan_threshold(samples, overload_ratio)
            }
            PlacementPolicy::GreedyRebalance {
                imbalance_ratio,
                max_moves_per_round,
            } => Self::plan_greedy(samples, imbalance_ratio, max_moves_per_round),
        }
    }

    fn plan_threshold(samples: &[MachineSample], overload_ratio: f64) -> Vec<MigrationPlan> {
        if samples.len() < 2 {
            return Vec::new();
        }
        let mean = samples.iter().map(|s| s.load()).sum::<u64>() as f64 / samples.len() as f64;
        if mean == 0.0 {
            return Vec::new();
        }
        let mut plans = Vec::new();
        // Overload is judged on the *measured* loads; the working copy
        // only steers targets, so a machine that just received a move
        // doesn't become a source in the same round.
        let mut loads: Vec<u64> = samples.iter().map(|s| s.load()).collect();
        for (i, s) in samples.iter().enumerate() {
            if (s.load() as f64) <= overload_ratio * mean {
                continue;
            }
            let Some(&(object, load)) = s.objects.iter().max_by_key(|&&(o, c)| (c, o)) else {
                continue;
            };
            if load == 0 {
                continue;
            }
            let (coolest, _) = loads
                .iter()
                .enumerate()
                .min_by_key(|&(m, &l)| (l, m))
                .expect("non-empty");
            if coolest == i {
                continue;
            }
            plans.push(MigrationPlan {
                object: ObjRef {
                    machine: s.machine,
                    object,
                },
                target: samples[coolest].machine,
                load,
            });
            loads[i] -= load.min(loads[i]);
            loads[coolest] += load;
        }
        plans
    }

    fn plan_greedy(
        samples: &[MachineSample],
        imbalance_ratio: f64,
        max_moves_per_round: usize,
    ) -> Vec<MigrationPlan> {
        if samples.len() < 2 {
            return Vec::new();
        }
        let ratio = imbalance_ratio.max(1.0);
        let mut loads: Vec<u64> = samples.iter().map(|s| s.load()).collect();
        // Working copy of per-object loads, so one round can plan several
        // moves off the same machine without proposing the same object
        // twice.
        let mut objects: Vec<Vec<(u64, u64)>> = samples.iter().map(|s| s.objects.clone()).collect();
        let mut plans = Vec::new();
        while plans.len() < max_moves_per_round {
            let (hot, _) = match loads
                .iter()
                .enumerate()
                .max_by_key(|&(m, &l)| (l, usize::MAX - m))
            {
                Some(x) => x,
                None => break,
            };
            let (cool, _) = match loads.iter().enumerate().min_by_key(|&(m, &l)| (l, m)) {
                Some(x) => x,
                None => break,
            };
            if hot == cool || (loads[hot] as f64) <= ratio * (loads[cool].max(1) as f64) {
                break;
            }
            let gap = loads[hot] - loads[cool];
            // Hottest object that still shrinks the gap when moved.
            let candidate = objects[hot]
                .iter()
                .enumerate()
                .filter(|&(_, &(_, c))| c > 0 && c < gap)
                .max_by_key(|&(_, &(o, c))| (c, o))
                .map(|(idx, &(o, c))| (idx, o, c));
            let Some((idx, object, load)) = candidate else {
                break;
            };
            plans.push(MigrationPlan {
                object: ObjRef {
                    machine: samples[hot].machine,
                    object,
                },
                target: samples[cool].machine,
                load,
            });
            objects[hot].remove(idx);
            loads[hot] -= load;
            loads[cool] += load;
        }
        plans
    }
}

/// One planned scale-out: give `object` a read replica on each machine
/// in `targets` (see the `replica` crate for execution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalePlan {
    /// The read-hot object, at its primary address.
    pub object: ObjRef,
    /// Machines that should each host one new read replica, coolest
    /// first.
    pub targets: Vec<usize>,
    /// The load (per-object call delta) that motivated the scale-out.
    pub load: u64,
}

/// Plan read-replication for hot objects — the scale-*out* alternative to
/// the scale-*sideways* migration policies. Migration helps when a
/// machine hosts several warm objects; it cannot help when **one** object
/// carries the load (moving it just relocates the hotspot — see
/// `greedy_never_swaps_hot_for_hot`). Replication splits that object's
/// read traffic instead.
///
/// Pure, like [`PlacementPolicy::plan`]: any object whose call delta
/// exceeds `hot_ratio` × the mean *machine* load is proposed for one
/// replica on each of the `fanout` least-loaded machines other than its
/// own (ties broken by machine id), hottest objects first. `occupied`
/// filters machines that already hold a copy of the object (its current
/// footprint, from `replica::ReplicaManager::footprint`). Whether the
/// class has read verbs at all is the executor's check, not the
/// planner's — samples don't carry class information.
pub fn plan_scale_out(
    samples: &[MachineSample],
    hot_ratio: f64,
    fanout: usize,
    occupied: &dyn Fn(ObjRef) -> Vec<usize>,
) -> Vec<ScalePlan> {
    if samples.len() < 2 || fanout == 0 {
        return Vec::new();
    }
    let mean = samples.iter().map(|s| s.load()).sum::<u64>() as f64 / samples.len() as f64;
    if mean == 0.0 {
        return Vec::new();
    }
    let mut hot: Vec<(ObjRef, u64)> = samples
        .iter()
        .flat_map(|s| {
            s.objects.iter().map(|&(o, c)| {
                (
                    ObjRef {
                        machine: s.machine,
                        object: o,
                    },
                    c,
                )
            })
        })
        .filter(|&(_, c)| c as f64 > hot_ratio * mean)
        .collect();
    hot.sort_by_key(|&(r, c)| (u64::MAX - c, r.machine, r.object));
    let mut coolest: Vec<(u64, usize)> = samples.iter().map(|s| (s.load(), s.machine)).collect();
    coolest.sort_unstable();
    hot.into_iter()
        .filter_map(|(object, load)| {
            let taken = occupied(object);
            let targets: Vec<usize> = coolest
                .iter()
                .map(|&(_, m)| m)
                .filter(|&m| m != object.machine && !taken.contains(&m))
                .take(fanout)
                .collect();
            (!targets.is_empty()).then_some(ScalePlan {
                object,
                targets,
                load,
            })
        })
        .collect()
}

/// Closed-loop placement controller for one cluster.
///
/// Owns the polling state (previous counter values, so each round works
/// on deltas), the hysteresis, and the set of objects that refused to
/// move. Drive it from the machine that coordinates the workload —
/// typically the driver — by calling [`step`](Balancer::step) between
/// workload rounds.
#[derive(Debug)]
pub struct Balancer {
    policy: PlacementPolicy,
    machines: Vec<usize>,
    cooldown_rounds: u32,
    cooldown: u32,
    prev_object_calls: HashMap<usize, HashMap<u64, u64>>,
    prev_node: HashMap<usize, (u64, u64, u64)>,
    prev_bytes_sent: Vec<u64>,
    unmovable: HashSet<ObjRef>,
    pinned: HashSet<ObjRef>,
    replicated: HashSet<ObjRef>,
    moves_executed: u64,
    moves_failed: u64,
    moves_skipped_replicated: u64,
}

impl Balancer {
    /// A balancer managing `machines` under `policy`, with a default
    /// hysteresis of one round.
    pub fn new(policy: PlacementPolicy, machines: Vec<usize>) -> Self {
        Balancer {
            policy,
            machines,
            cooldown_rounds: 1,
            cooldown: 0,
            prev_object_calls: HashMap::new(),
            prev_node: HashMap::new(),
            prev_bytes_sent: Vec::new(),
            unmovable: HashSet::new(),
            pinned: HashSet::new(),
            replicated: HashSet::new(),
            moves_executed: 0,
            moves_failed: 0,
            moves_skipped_replicated: 0,
        }
    }

    /// Rounds to sit out after a round that migrated (0 disables the
    /// damper).
    pub fn with_cooldown(mut self, rounds: u32) -> Self {
        self.cooldown_rounds = rounds;
        self
    }

    /// Never propose moving `obj` (e.g. an object with machine-local
    /// state such as an open device, or the naming directory).
    pub fn pin(&mut self, obj: ObjRef) {
        self.pinned.insert(obj);
    }

    /// Install the current replica footprint: the primaries of replicated
    /// objects, which refuse migration while their replica set exists
    /// (DESIGN.md §11). Call with the primaries reported by
    /// `replica::ReplicaManager` before each [`step`](Balancer::step);
    /// the whole set is replaced, so an object whose replicas were torn
    /// down becomes movable again at the next feed. Plans against these
    /// objects are *skipped* (counted in
    /// [`moves_skipped_replicated`](Balancer::moves_skipped_replicated))
    /// instead of being attempted, failing with
    /// [`RemoteError::Replicated`], and blacklisting the object forever.
    pub fn set_replicated(&mut self, primaries: impl IntoIterator<Item = ObjRef>) {
        self.replicated = primaries.into_iter().collect();
    }

    /// Migrations executed over this balancer's lifetime.
    pub fn moves_executed(&self) -> u64 {
        self.moves_executed
    }

    /// Planned migrations that failed (and blacklisted their object).
    pub fn moves_failed(&self) -> u64 {
        self.moves_failed
    }

    /// Plans skipped because their object is a replicated primary — via
    /// the [`set_replicated`](Balancer::set_replicated) footprint, or via
    /// a `Replicated` refusal when the footprint feed was stale.
    pub fn moves_skipped_replicated(&self) -> u64 {
        self.moves_skipped_replicated
    }

    /// Poll every managed machine and return this window's load deltas.
    /// `net` is the cluster's current metrics snapshot, if the caller
    /// wants byte counts in the samples.
    pub fn sample(
        &mut self,
        ctx: &mut NodeCtx,
        net: Option<&MetricsSnapshot>,
    ) -> RemoteResult<Vec<MachineSample>> {
        let mut samples = Vec::with_capacity(self.machines.len());
        for &m in &self.machines.clone() {
            let stats = ctx.stats_of(m)?;
            let loads = ctx.loads_of(m)?;
            // Both admission rejections and sojourn drops are turned-away
            // demand; either alone means the machine is past saturation.
            let shed_total = stats.calls_shed_overload + stats.calls_shed_sojourn;
            let prev = self
                .prev_node
                .insert(m, (stats.calls_served, stats.calls_deferred, shed_total));
            let (pc, pd, ps) = prev.unwrap_or((0, 0, 0));
            let prev_objects = self.prev_object_calls.entry(m).or_default();
            let mut objects = Vec::with_capacity(loads.len());
            for &(o, c) in &loads {
                let before = prev_objects.insert(o, c).unwrap_or(0);
                objects.push((o, c.saturating_sub(before)));
            }
            // Objects that disappeared (destroyed or migrated away) drop
            // out of the previous-poll table too.
            prev_objects.retain(|o, _| loads.binary_search_by_key(o, |&(id, _)| id).is_ok());
            let bytes_now = net
                .and_then(|s| s.per_machine_bytes_sent.get(m).copied())
                .unwrap_or(0);
            let bytes_before = self.prev_bytes_sent.get(m).copied().unwrap_or(0);
            if self.prev_bytes_sent.len() <= m {
                self.prev_bytes_sent.resize(m + 1, 0);
            }
            self.prev_bytes_sent[m] = bytes_now;
            samples.push(MachineSample {
                machine: m,
                calls: stats.calls_served.saturating_sub(pc),
                deferred: stats.calls_deferred.saturating_sub(pd),
                bytes_sent: bytes_now.saturating_sub(bytes_before),
                shed: shed_total.saturating_sub(ps),
                objects,
            });
        }
        Ok(samples)
    }

    /// One control round: poll, plan, execute. Returns the plans that
    /// were actually executed. During a cooldown the balancer still polls
    /// (so the deltas stay one window wide) but plans nothing.
    pub fn step(
        &mut self,
        ctx: &mut NodeCtx,
        net: Option<&MetricsSnapshot>,
    ) -> RemoteResult<Vec<MigrationPlan>> {
        let samples = self.sample(ctx, net)?;
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return Ok(Vec::new());
        }
        let mut executed = Vec::new();
        for plan in self.policy.plan(&samples) {
            if self.unmovable.contains(&plan.object) || self.pinned.contains(&plan.object) {
                continue;
            }
            if self.replicated.contains(&plan.object) {
                // A replicated primary refuses migration by contract;
                // skip the plan outright instead of burning a round trip
                // on a guaranteed `Replicated` refusal.
                self.moves_skipped_replicated += 1;
                continue;
            }
            match ctx.migrate(plan.object, plan.target) {
                Ok(_) => {
                    self.moves_executed += 1;
                    // The object's counters live on its new machine now;
                    // forget the old identity.
                    if let Some(prev) = self.prev_object_calls.get_mut(&plan.object.machine) {
                        prev.remove(&plan.object.object);
                    }
                    executed.push(plan);
                }
                Err(RemoteError::Replicated { .. }) => {
                    // The footprint feed was stale (or absent): learn the
                    // object here rather than blacklisting it — it becomes
                    // movable again once its replica set is torn down and
                    // the next set_replicated() drops it from the set.
                    self.moves_skipped_replicated += 1;
                    self.replicated.insert(plan.object);
                }
                Err(_) => {
                    // NotPersistent, dead target, mid-move crash — the
                    // core rolled back; don't propose this object again.
                    self.moves_failed += 1;
                    self.unmovable.insert(plan.object);
                }
            }
        }
        if !executed.is_empty() {
            self.cooldown = self.cooldown_rounds;
        }
        Ok(executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(machine: usize, objects: &[(u64, u64)]) -> MachineSample {
        MachineSample {
            machine,
            calls: objects.iter().map(|&(_, c)| c).sum(),
            deferred: 0,
            bytes_sent: 0,
            shed: 0,
            objects: objects.to_vec(),
        }
    }

    fn max_load(samples: &[MachineSample]) -> u64 {
        samples.iter().map(|s| s.load()).max().unwrap_or(0)
    }

    fn apply(samples: &mut [MachineSample], plans: &[MigrationPlan]) {
        for p in plans {
            let src = samples
                .iter_mut()
                .find(|s| s.machine == p.object.machine)
                .expect("source sampled");
            let idx = src
                .objects
                .iter()
                .position(|&(o, _)| o == p.object.object)
                .expect("object sampled");
            let (_, load) = src.objects.remove(idx);
            src.calls -= load;
            let dst = samples
                .iter_mut()
                .find(|s| s.machine == p.target)
                .expect("target sampled");
            dst.calls += load;
            dst.objects.push((p.object.object, load));
        }
    }

    #[test]
    fn static_policy_never_moves() {
        let samples = vec![
            sample(0, &[(1, 1000), (2, 900)]),
            sample(1, &[]),
            sample(2, &[(3, 1)]),
        ];
        assert!(PlacementPolicy::Static.plan(&samples).is_empty());
    }

    #[test]
    fn greedy_moves_hot_objects_to_idle_machines_and_reduces_imbalance() {
        let mut samples = vec![
            sample(0, &[(1, 400), (2, 300), (3, 200), (4, 100)]),
            sample(1, &[(5, 10)]),
            sample(2, &[]),
        ];
        let policy = PlacementPolicy::GreedyRebalance {
            imbalance_ratio: 1.5,
            max_moves_per_round: 8,
        };
        let before = max_load(&samples);
        let plans = policy.plan(&samples);
        assert!(!plans.is_empty());
        // Every move leaves the hot machine, none enters it.
        assert!(plans.iter().all(|p| p.object.machine == 0 && p.target != 0));
        apply(&mut samples, &plans);
        assert!(
            max_load(&samples) < before,
            "rebalancing must shrink the peak"
        );
    }

    #[test]
    fn greedy_never_swaps_hot_for_hot() {
        // One object carries all the load: moving it would just relocate
        // the hotspot, so the plan must be empty.
        let samples = vec![sample(0, &[(1, 1000)]), sample(1, &[])];
        let policy = PlacementPolicy::GreedyRebalance {
            imbalance_ratio: 1.2,
            max_moves_per_round: 8,
        };
        assert!(policy.plan(&samples).is_empty());
    }

    #[test]
    fn greedy_respects_move_budget() {
        let samples = vec![
            sample(
                0,
                &[(1, 100), (2, 100), (3, 100), (4, 100), (5, 100), (6, 100)],
            ),
            sample(1, &[]),
        ];
        let policy = PlacementPolicy::GreedyRebalance {
            imbalance_ratio: 1.1,
            max_moves_per_round: 2,
        };
        assert!(policy.plan(&samples).len() <= 2);
    }

    #[test]
    fn greedy_is_deterministic() {
        let samples = vec![
            sample(0, &[(1, 250), (2, 250), (3, 100)]),
            sample(1, &[(7, 20)]),
            sample(2, &[]),
        ];
        let policy = PlacementPolicy::GreedyRebalance {
            imbalance_ratio: 1.3,
            max_moves_per_round: 4,
        };
        assert_eq!(policy.plan(&samples), policy.plan(&samples));
    }

    #[test]
    fn balanced_cluster_plans_nothing() {
        let samples = vec![
            sample(0, &[(1, 100)]),
            sample(1, &[(2, 110)]),
            sample(2, &[(3, 95)]),
        ];
        let policy = PlacementPolicy::GreedyRebalance {
            imbalance_ratio: 1.5,
            max_moves_per_round: 8,
        };
        assert!(policy.plan(&samples).is_empty());
        let threshold = PlacementPolicy::Threshold {
            overload_ratio: 2.0,
        };
        assert!(threshold.plan(&samples).is_empty());
    }

    #[test]
    fn threshold_moves_hottest_object_off_the_overloaded_machine() {
        let samples = vec![
            sample(0, &[(1, 50), (2, 800)]),
            sample(1, &[(3, 40)]),
            sample(2, &[(4, 30)]),
        ];
        let plans = PlacementPolicy::Threshold {
            overload_ratio: 1.5,
        }
        .plan(&samples);
        assert_eq!(plans.len(), 1);
        assert_eq!(
            plans[0].object,
            ObjRef {
                machine: 0,
                object: 2
            }
        );
        assert_eq!(plans[0].target, 2); // least loaded
        assert_eq!(plans[0].load, 800);
    }

    #[test]
    fn reactivation_target_picks_least_loaded_survivor() {
        let samples = vec![
            sample(0, &[(1, 500)]),
            sample(1, &[(2, 10)]),
            sample(2, &[(3, 200)]),
        ];
        // Machine 1 is the coolest survivor once the dead machine is out.
        assert_eq!(reactivation_target(&samples, &[0]), Some(1));
        // Excluding the coolest too falls through to the next one.
        assert_eq!(reactivation_target(&samples, &[0, 1]), Some(2));
        // No survivors at all: refuse rather than pick a corpse.
        assert_eq!(reactivation_target(&samples, &[0, 1, 2]), None);
    }

    #[test]
    fn reactivation_target_breaks_ties_deterministically() {
        let samples = vec![sample(2, &[]), sample(1, &[]), sample(3, &[])];
        // Equal loads: lowest machine id wins regardless of sample order.
        assert_eq!(reactivation_target(&samples, &[]), Some(1));
    }

    #[test]
    fn scale_out_targets_coolest_machines_for_the_hot_object() {
        // Exactly the shape migration cannot fix: one object is the load.
        let samples = vec![
            sample(0, &[(1, 1000)]),
            sample(1, &[(5, 10)]),
            sample(2, &[]),
            sample(3, &[(6, 40)]),
        ];
        let plans = plan_scale_out(&samples, 2.0, 2, &|_| Vec::new());
        assert_eq!(plans.len(), 1);
        assert_eq!(
            plans[0].object,
            ObjRef {
                machine: 0,
                object: 1
            }
        );
        // Coolest first, never the object's own machine.
        assert_eq!(plans[0].targets, vec![2, 1]);
        assert_eq!(plans[0].load, 1000);
    }

    #[test]
    fn scale_out_skips_machines_already_holding_a_copy() {
        let samples = vec![
            sample(0, &[(1, 1000)]),
            sample(1, &[]),
            sample(2, &[]),
            sample(3, &[]),
        ];
        let plans = plan_scale_out(&samples, 2.0, 3, &|_| vec![1, 2]);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].targets, vec![3]);
        // Footprint covering every other machine: nothing left to plan.
        assert!(plan_scale_out(&samples, 2.0, 3, &|_| vec![1, 2, 3]).is_empty());
    }

    #[test]
    fn scale_out_plans_nothing_on_a_balanced_or_idle_cluster() {
        let balanced = vec![
            sample(0, &[(1, 100)]),
            sample(1, &[(2, 110)]),
            sample(2, &[(3, 95)]),
        ];
        assert!(plan_scale_out(&balanced, 2.0, 2, &|_| Vec::new()).is_empty());
        let idle = vec![sample(0, &[]), sample(1, &[])];
        assert!(plan_scale_out(&idle, 2.0, 2, &|_| Vec::new()).is_empty());
    }

    #[test]
    fn scale_out_is_deterministic_and_ranks_hottest_first() {
        let samples = vec![
            sample(0, &[(1, 500), (2, 800)]),
            sample(1, &[]),
            sample(2, &[]),
        ];
        // Mean machine load is (1300+0+0)/3 ≈ 433; ratio 1.0 makes both
        // objects hot (500 and 800 exceed it).
        let a = plan_scale_out(&samples, 1.0, 1, &|_| Vec::new());
        let b = plan_scale_out(&samples, 1.0, 1, &|_| Vec::new());
        assert_eq!(a, b);
        assert!(a.len() >= 2);
        assert_eq!(a[0].object.object, 2, "hottest object must lead");
        assert!(a[0].load >= a[1].load);
    }

    #[test]
    fn deferred_calls_count_as_extra_load() {
        let busy = MachineSample {
            deferred: 10,
            calls: 5,
            ..Default::default()
        };
        assert_eq!(busy.load(), 25);
    }

    #[test]
    fn shed_calls_count_heaviest_in_the_load_signal() {
        // A machine rejecting most of its demand serves few calls; the
        // shed term must still make it the hottest in the sample set.
        let shedding = MachineSample {
            calls: 5,
            shed: 10,
            ..Default::default()
        };
        assert_eq!(shedding.load(), 5 + MachineSample::SHED_WEIGHT * 10);
        let busy = MachineSample {
            calls: 30,
            ..Default::default()
        };
        assert!(shedding.load() > busy.load());
    }

    #[test]
    fn greedy_steers_load_off_a_shedding_machine() {
        // Served calls alone say machine 1 is the hot one (300 vs 120),
        // but machine 0 is *shedding*: its admission control turned away
        // 200 requests this window. The shed-aware load signal must make
        // machine 0 the source of every move.
        let mut shedding = sample(0, &[(1, 80), (2, 40)]);
        shedding.shed = 200;
        let samples = vec![shedding, sample(1, &[(3, 300)]), sample(2, &[])];
        let plans = PlacementPolicy::GreedyRebalance {
            imbalance_ratio: 1.3,
            max_moves_per_round: 4,
        }
        .plan(&samples);
        assert!(!plans.is_empty());
        assert!(
            plans.iter().all(|p| p.object.machine == 0 && p.target != 0),
            "moves must leave the shedding machine, got {plans:?}"
        );
    }

    #[test]
    fn threshold_trips_on_shed_rate_alone() {
        // Without the shed term machine 0 looks mid-pack (60 served
        // calls); with it the machine is far past the 1.5x-mean trigger.
        let mut shedding = sample(0, &[(1, 60)]);
        shedding.shed = 100;
        let samples = vec![shedding, sample(1, &[(2, 50)]), sample(2, &[(3, 40)])];
        let plans = PlacementPolicy::Threshold {
            overload_ratio: 1.5,
        }
        .plan(&samples);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].object.machine, 0);

        // The same samples with the shed zeroed: balanced, no plans.
        let mut calm = samples.clone();
        calm[0].shed = 0;
        assert!(PlacementPolicy::Threshold {
            overload_ratio: 1.5,
        }
        .plan(&calm)
        .is_empty());
    }
}
