//! Shared machinery for the experiment harness: costed cluster
//! configurations, timing helpers, table rendering, and two small remote
//! classes the ablation experiments need.

use std::time::{Duration, Instant};

use oopp::{remote_class, BarrierClient, NodeCtx, ObjRef, RemoteResult};
use simnet::{ClusterConfig, DiskConfig, NetCost, TopologySpec};

pub mod experiments;

/// The canonical costed network of the experiments: 50 µs one-way latency,
/// 10 Gb/s links — a commodity cluster interconnect.
pub fn lan_config() -> ClusterConfig {
    ClusterConfig {
        machines: 0, // set by the builder / world
        topology: TopologySpec::Uniform(NetCost::lan(50, 10.0)),
        disk: DiskConfig::nvme(),
        disks_per_machine: 1,
        disk_capacity: 256 << 20,
        faults: simnet::FaultPlan::none(),
        // Benches measure modeled time against wall time: real mode, with
        // the spin tail for sub-100us delay precision.
        time: simnet::TimeMode::Real { spin_tail: true },
    }
}

/// A slower, seek-dominated disk profile for the I/O-parallelism
/// experiments (1 ms positioning, 400 MB/s transfer).
pub fn spinny_disk() -> DiskConfig {
    DiskConfig {
        seek: Duration::from_millis(1),
        bytes_per_sec: 400e6,
        backend: simnet::DiskBackend::Memory,
    }
}

/// Render a merged flight-recorder trace as a per-method table: how many
/// calls each method made, how many wire transmissions they cost, and the
/// client-observed latency distribution (see `oopp::trace`).
pub fn method_stats_table(trace: &oopp::Trace) -> Table {
    let mut t = Table::new(&[
        "method", "calls", "attempts", "retx", "dups", "p50 us", "p99 us", "queue us", "svc us",
        "KiB out", "KiB in",
    ]);
    for s in trace.method_stats() {
        t.row(&[
            s.method.clone(),
            s.calls.to_string(),
            s.attempts.to_string(),
            s.retransmits.to_string(),
            s.dups.to_string(),
            s.p50_micros.to_string(),
            s.p99_micros.to_string(),
            s.queue_micros.to_string(),
            s.service_micros.to_string(),
            format!("{:.1}", s.bytes_out as f64 / 1024.0),
            format!("{:.1}", s.bytes_in as f64 / 1024.0),
        ]);
    }
    if trace.dropped > 0 {
        t.row(&[
            format!("({} events dropped to ring wrap)", trace.dropped),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    t
}

/// Time one closure invocation.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed(), r)
}

/// Median of `reps` timed invocations (the harness's robust statistic —
/// cheap experiments repeat, expensive ones run once).
pub fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    assert!(reps >= 1);
    let mut times: Vec<Duration> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let _ = f();
            t0.elapsed()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Fixed-width experiment table writer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a `Duration` as microseconds with 1 decimal.
pub fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// Format a `Duration` as milliseconds with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

// ---------------------------------------------------------------------
// Remote classes used by the ablation experiments
// ---------------------------------------------------------------------

/// A worker that can enter barriers on request (A2: oopp group barrier).
#[derive(Debug)]
pub struct Syncer;

remote_class! {
    /// Client for [`Syncer`].
    class Syncer {
        ctor();
        /// Enter `barrier` and return once released.
        fn sync(&mut self, barrier: BarrierClient) -> ();
    }
}

impl Syncer {
    fn new(_ctx: &mut NodeCtx) -> RemoteResult<Self> {
        Ok(Syncer)
    }
    fn sync(&mut self, ctx: &mut NodeCtx, barrier: BarrierClient) -> RemoteResult<()> {
        barrier.enter(ctx)
    }
}

/// A table of remote pointers held by ONE process (A3: the shallow
/// `SetGroup` the paper advises against — every peer lookup is a remote
/// call back to this table).
#[derive(Debug)]
pub struct GroupTable {
    entries: Vec<ObjRef>,
}

remote_class! {
    /// Client for [`GroupTable`].
    class GroupTable {
        ctor(entries: Vec<ObjRef>);
        /// Look up entry `i`.
        fn get(&mut self, i: usize) -> ObjRef;
        /// Table length.
        fn len(&mut self) -> usize;
    }
}

impl GroupTable {
    fn new(_ctx: &mut NodeCtx, entries: Vec<ObjRef>) -> RemoteResult<Self> {
        Ok(GroupTable { entries })
    }
    fn get(&mut self, _ctx: &mut NodeCtx, i: usize) -> RemoteResult<ObjRef> {
        self.entries
            .get(i)
            .copied()
            .ok_or_else(|| oopp::RemoteError::app(format!("no entry {i}")))
    }
    fn len(&mut self, _ctx: &mut NodeCtx) -> RemoteResult<usize> {
        Ok(self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["n", "time"]);
        t.row(&["1".into(), "10.0".into()]);
        t.row(&["128".into(), "3.5".into()]);
        let s = t.render();
        assert!(s.contains("n  time") || s.contains("  n  time"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn median_is_stable() {
        let d = time_median(5, || std::hint::black_box(1 + 1));
        assert!(d < Duration::from_millis(50));
    }

    #[test]
    fn duration_formatters() {
        assert_eq!(us(Duration::from_micros(1500)), "1500.0");
        assert_eq!(ms(Duration::from_micros(1500)), "1.50");
    }

    #[test]
    fn syncer_and_table_classes_work() {
        let (cluster, mut driver) = oopp::ClusterBuilder::new(2)
            .register::<Syncer>()
            .register::<GroupTable>()
            .build();
        let barrier = BarrierClient::new_on(&mut driver, 0, 3).unwrap();
        let s0 = SyncerClient::new_on(&mut driver, 0).unwrap();
        let s1 = SyncerClient::new_on(&mut driver, 1).unwrap();
        let p0 = s0.sync_async(&mut driver, barrier).unwrap();
        let p1 = s1.sync_async(&mut driver, barrier).unwrap();
        barrier.enter(&mut driver).unwrap();
        p0.wait(&mut driver).unwrap();
        p1.wait(&mut driver).unwrap();

        let table = GroupTableClient::new_on(
            &mut driver,
            0,
            vec![
                oopp::RemoteClient::obj_ref(&s0),
                oopp::RemoteClient::obj_ref(&s1),
            ],
        )
        .unwrap();
        assert_eq!(table.len(&mut driver).unwrap(), 2);
        assert_eq!(
            table.get(&mut driver, 1).unwrap(),
            oopp::RemoteClient::obj_ref(&s1)
        );
        assert!(table.get(&mut driver, 5).is_err());
        cluster.shutdown(driver);
    }
}
