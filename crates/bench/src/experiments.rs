//! The experiments: one function per claim of the paper. Each returns a
//! [`Table`] that the `reproduce` binary prints and EXPERIMENTS.md records.
//!
//! The paper (a conceptual framework paper) has no numbered tables or
//! figures; the experiment ids E1–E8 index the *claims and worked examples*
//! of its sections, as laid out in DESIGN.md §3.

use std::time::Duration;

use distarray::{register_classes, Array, BlockStorage, Domain, PageMap};
use fft::{c64, Complex, Direction, DistributedFft3, Fft3, Grid3};
use mplite::apps::{fft_run, pageio_run, IoMode};
use mplite::{MpiWorld, Op};
use oopp::{
    join, Backoff, BarrierClient, BreakerConfig, CallPolicy, ClusterBuilder, DoubleBlockClient,
    OverloadConfig, RemoteClient, RemoteError,
};
use pagestore::{ArrayPage, ArrayPageDevice, ArrayPageDeviceClient, Page, PageDevice};
use placement::{Balancer, PlacementPolicy};
use simnet::{ClusterConfig, FaultPlan};
use wire::collections::F64s;

use crate::{
    lan_config, method_stats_table, ms, spinny_disk, time_median, time_once, us, GroupTable,
    GroupTableClient, Syncer, SyncerClient, Table,
};

/// E1 (§2): cost of remote object semantics — creation, method call,
/// element access — against the substrate's analytic cost model. Runs with
/// the flight recorder on; the second table is the per-method account of
/// the same run (attempts, p50/p99 latency, bytes).
pub fn e1_rmi_overhead() -> Vec<Table> {
    let mut t = Table::new(&[
        "operation",
        "payload B",
        "median us",
        "model us (2*lat + b/bw)",
    ]);
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .sim_config(lan_config())
        .tracing(true)
        .build();
    let lat_us = 50.0;
    let bw = 10e9 / 8.0;

    // Remote creation + destruction.
    let create = time_median(9, || {
        let b = DoubleBlockClient::new_on(&mut driver, 0, 16).unwrap();
        b.destroy(&mut driver).unwrap();
    });
    t.row(&[
        "new+delete".into(),
        "~32".into(),
        us(create / 2),
        format!("{:.1}", 2.0 * lat_us),
    ]);

    // data[i] = v and x = data[i] — the paper's element accesses (the
    // constant is the paper's own literal, not an approximation of pi).
    let block = DoubleBlockClient::new_on(&mut driver, 0, 1 << 17).unwrap();
    #[allow(clippy::approx_constant)]
    let set = time_median(19, || block.set(&mut driver, 7, 3.1415).unwrap());
    t.row(&[
        "data[7]=v".into(),
        "~20".into(),
        us(set),
        format!("{:.1}", 2.0 * lat_us),
    ]);
    let get = time_median(19, || block.get(&mut driver, 2).unwrap());
    t.row(&[
        "x=data[2]".into(),
        "~16".into(),
        us(get),
        format!("{:.1}", 2.0 * lat_us),
    ]);

    // Bulk payload sweep: read_range of increasing size.
    for elems in [16usize, 1 << 10, 1 << 14, 1 << 17] {
        let bytes = elems * 8;
        let d = time_median(9, || {
            let _ = block.read_range(&mut driver, 0, elems).unwrap();
        });
        let model = 2.0 * lat_us + bytes as f64 / bw * 1e6;
        t.row(&[
            "read_range".into(),
            bytes.to_string(),
            us(d),
            format!("{model:.1}"),
        ]);
    }
    let recorder = cluster.recorder().expect("tracing enabled");
    cluster.shutdown(driver);
    vec![t, method_stats_table(&recorder.merge())]
}

/// E2 (§3): "moving the data to the computation" vs "moving the computation
/// to the data" for the page-sum, across page sizes.
pub fn e2_move_compute() -> Table {
    let mut t = Table::new(&[
        "page (doubles)",
        "page KiB",
        "ship-data ms",
        "device-sum ms",
        "ratio",
    ]);
    for side in [8usize, 16, 32, 64] {
        let (cluster, mut driver) = ClusterBuilder::new(1)
            .register::<PageDevice>()
            .register::<ArrayPageDevice>()
            .sim_config(lan_config())
            .build();
        let dev = ArrayPageDeviceClient::new_on(
            &mut driver,
            0,
            "e2".into(),
            2,
            side as u64,
            side as u64,
            side as u64,
            0,
            None,
        )
        .unwrap();
        dev.write_array(
            &mut driver,
            0,
            ArrayPage::generate(side, side, side, 1).into_f64s(),
        )
        .unwrap();

        let ship = time_median(5, || {
            let data = dev.read_array(&mut driver, 0).unwrap();
            std::hint::black_box(data.0.iter().sum::<f64>())
        });
        let device = time_median(5, || dev.sum(&mut driver, 0).unwrap());
        let n = side * side * side;
        t.row(&[
            format!("{side}^3"),
            (n * 8 / 1024).to_string(),
            ms(ship),
            ms(device),
            format!("{:.1}x", ship.as_secs_f64() / device.as_secs_f64()),
        ]);
        cluster.shutdown(driver);
    }
    t
}

/// E3 (§4): the split-loop transformation — one page from each of N
/// devices, sequential vs split, plus the hand-written message-passing
/// pipeline on identical hardware.
pub fn e3_parallel_io() -> Vec<Table> {
    let mut t = Table::new(&[
        "devices",
        "sequential ms",
        "split-loop ms",
        "speedup",
        "mplite pipelined ms",
    ]);
    let page_elems = 1 << 14; // 128 KiB pages
    let mut last_trace = None;
    for n in [1usize, 2, 4, 8, 16] {
        let mut cfg = lan_config();
        cfg.disk = spinny_disk();
        let (cluster, mut driver) = ClusterBuilder::new(n)
            .register::<PageDevice>()
            .register::<ArrayPageDevice>()
            .sim_config(cfg.clone())
            .tracing(true)
            .build();
        let devices: Vec<_> = (0..n)
            .map(|m| {
                let d = ArrayPageDeviceClient::new_on(
                    &mut driver,
                    m,
                    format!("e3.{m}"),
                    4,
                    32,
                    32,
                    16,
                    0,
                    None,
                )
                .unwrap();
                d.write_array(
                    &mut driver,
                    1,
                    ArrayPage::generate(32, 32, 16, m as u64).into_f64s(),
                )
                .unwrap();
                d
            })
            .collect();

        // The unsplit loop: each read completes before the next is issued.
        let seq = time_median(3, || {
            for d in &devices {
                let _ = d.read_array(&mut driver, 1).unwrap();
            }
        });
        // The compiler-split loop.
        let split = time_median(3, || {
            let pending: Vec<_> = devices
                .iter()
                .map(|d| d.read_array_async(&mut driver, 1).unwrap())
                .collect();
            let _ = join(&mut driver, pending).unwrap();
        });
        let recorder = cluster.recorder().expect("tracing enabled");
        cluster.shutdown(driver);
        // One per-method table is enough; keep the widest configuration.
        last_trace = Some(recorder.merge());

        // The message-passing baseline: n servers + 1 client.
        let mut mp_cfg = cfg.clone();
        mp_cfg.machines = n + 1;
        let (mp, _) = pageio_run(mp_cfg, page_elems * 8, 4, IoMode::Pipelined);

        t.row(&[
            n.to_string(),
            ms(seq),
            ms(split),
            format!("{:.1}x", seq.as_secs_f64() / split.as_secs_f64()),
            ms(mp),
        ]);
    }
    vec![t, method_stats_table(&last_trace.expect("loop ran"))]
}

/// E4 (§4): the distributed FFT — scaling with process count, oopp RMI vs.
/// the message-passing baseline vs. a single node.
pub fn e4_fft() -> Table {
    let shape = [64usize, 64, 64];
    let data: Vec<Complex> = (0..shape.iter().product::<usize>())
        .map(|i| c64((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect();
    let mut t = Table::new(&[
        "processes",
        "oopp ms",
        "mplite ms",
        "local ms",
        "oopp msgs",
        "oopp MB moved",
    ]);

    let (local_time, _) = time_once(|| {
        Fft3::new(shape).transform(&Grid3::new(shape, data.clone()), Direction::Forward)
    });

    for parts in [1usize, 2, 4, 8] {
        let (cluster, mut driver) = DistributedFft3::register(ClusterBuilder::new(parts))
            .sim_config(lan_config())
            .build();
        let dfft = DistributedFft3::new(
            &mut driver,
            [shape[0] as u64, shape[1] as u64, shape[2] as u64],
            parts,
        )
        .unwrap();
        dfft.scatter(&mut driver, &data).unwrap();
        let before = cluster.snapshot();
        let (oopp_time, _) = time_once(|| dfft.transform(&mut driver, Direction::Forward).unwrap());
        let delta = cluster.snapshot().since(&before);
        cluster.shutdown(driver);

        let mut cfg = lan_config();
        cfg.machines = parts;
        let (mpi_time, _) = time_once(|| fft_run(cfg, shape, data.clone(), Direction::Forward));

        t.row(&[
            parts.to_string(),
            ms(oopp_time),
            ms(mpi_time),
            ms(local_time),
            delta.messages_sent.to_string(),
            format!("{:.1}", delta.bytes_sent as f64 / 1e6),
        ]);
    }
    t
}

/// E5 (§5): "the PageMap determines the degree of parallelism of the I/O":
/// the same slab read under four layouts.
pub fn e5_pagemap() -> Table {
    let mut t = Table::new(&["page map", "read ms", "devices touched", "disk parallelism"]);
    let n = [64u64, 32, 32];
    let p = [4u64, 32, 32]; // pages stack along axis 0: grid [16,1,1]
    let grid = [16u64, 1, 1];
    let devices = 4u64;
    // Four consecutive pages: a contiguous slab. Blocked keeps all four on
    // one device (ceil(16/4) = 4 per device); round-robin spreads them.
    let slab = Domain::new(0, 16, 0, 32, 0, 32);

    for (name, map) in [
        ("round-robin", PageMap::round_robin(grid, devices)),
        ("blocked", PageMap::blocked(grid, devices)),
        ("hashed", PageMap::hashed(grid, devices, 7)),
        ("z-curve", PageMap::zcurve(grid, devices)),
    ] {
        let mut cfg = lan_config();
        cfg.disk = spinny_disk();
        let (cluster, mut driver) = register_classes(ClusterBuilder::new(devices as usize))
            .sim_config(cfg)
            .build();
        let storage = BlockStorage::create(
            &mut driver,
            "e5",
            devices as usize,
            map.pages_per_device(),
            p[0],
            p[1],
            p[2],
            1,
        )
        .unwrap();
        let array = Array::new(n, p, storage, map).unwrap();
        array.fill(&mut driver, &array.whole(), 1.0).unwrap();

        let before = cluster.snapshot();
        let (d, _) = time_once(|| array.read(&mut driver, &slab).unwrap());
        let delta = cluster.snapshot().since(&before);
        let wall = d.as_secs_f64();
        let parallelism = delta.disk_busy_nanos as f64 / 1e9 / wall;
        t.row(&[
            name.into(),
            ms(d),
            array.devices_touched(&slab).to_string(),
            format!("{parallelism:.1}"),
        ]);
        cluster.shutdown(driver);
    }
    t
}

/// E6 (§5): "deploying multiple Array clients in parallel" — a read-heavy
/// reduction where a single client's link is the bottleneck, so adding
/// coordinating Array client processes spreads the transfer.
pub fn e6_array_sum() -> Table {
    let mut t = Table::new(&[
        "clients",
        "checksum ms",
        "speedup vs 1",
        "device-side sum ms",
    ]);
    let devices = 8usize;
    // 1 Gb/s links: the transfer term dominates, so the bottleneck is each
    // client's receive link — exactly the regime where extra clients help.
    let mut cfg = lan_config();
    cfg.topology = simnet::TopologySpec::Uniform(simnet::NetCost::lan(50, 1.0));
    let (cluster, mut driver) = register_classes(ClusterBuilder::new(devices))
        .sim_config(cfg)
        .build();
    let _ = &cluster;
    // 32 MiB of doubles in eight 4-MiB pages, one device per machine.
    let grid = [8u64, 1, 1];
    let map = PageMap::round_robin(grid, devices as u64);
    let storage = BlockStorage::create(
        &mut driver,
        "e6",
        devices,
        map.pages_per_device(),
        8,
        256,
        256,
        1,
    )
    .unwrap();
    let array = Array::new([64, 256, 256], [8, 256, 256], storage, map).unwrap();
    array.fill(&mut driver, &array.whole(), 0.5).unwrap();
    let whole = array.whole();

    // Reference: the device-side sum (ships 8 bytes per page — the cheap
    // direction, shown for contrast).
    let device_side = time_median(3, || array.sum(&mut driver, &whole).unwrap());

    let mut base: Option<Duration> = None;
    for clients in [1usize, 2, 4, 8] {
        // Deploy the client processes once per row (setup excluded from the
        // timed region).
        let mut pending = Vec::new();
        for i in 0..clients {
            pending.push(
                distarray::ArrayWorkerClient::new_on_async(&mut driver, i % devices, array.clone())
                    .unwrap(),
            );
        }
        let workers = oopp::join_clients(&mut driver, pending).unwrap();
        let slabs = whole.split_axis0(clients as u64);
        let d = time_median(3, || {
            let pending: Vec<_> = slabs
                .iter()
                .enumerate()
                .map(|(i, slab)| {
                    workers[i % workers.len()]
                        .read_checksum_async(&mut driver, *slab)
                        .unwrap()
                })
                .collect();
            let _total: f64 = join(&mut driver, pending).unwrap().into_iter().sum();
        });
        for w in workers {
            w.destroy(&mut driver).unwrap();
        }
        let baseline = *base.get_or_insert(d);
        t.row(&[
            clients.to_string(),
            ms(d),
            format!("{:.1}x", baseline.as_secs_f64() / d.as_secs_f64()),
            ms(device_side),
        ]);
    }
    cluster.shutdown(driver);
    t
}

/// E7 (§5): persistence — deactivate/activate cycles vs. state size, and
/// symbolic-address resolution.
pub fn e7_persistence() -> Table {
    let mut t = Table::new(&["state KiB", "deactivate ms", "activate ms", "lookup us"]);
    let (cluster, mut driver) = ClusterBuilder::new(1).sim_config(lan_config()).build();
    let dir = driver.directory();
    for elems in [1usize << 7, 1 << 10, 1 << 13, 1 << 16, 1 << 19] {
        let block = DoubleBlockClient::new_on(&mut driver, 0, elems).unwrap();
        block.fill(&mut driver, 1.5).unwrap();
        let key = oopp::symbolic_addr(&["bench", "block", &elems.to_string()]);
        dir.bind(&mut driver, key.clone(), block.obj_ref()).unwrap();

        let (deact, _) = time_once(|| driver.deactivate(block.obj_ref(), &key).unwrap());
        let (act, revived) = time_once(|| driver.activate::<DoubleBlockClient>(0, &key).unwrap());
        assert_eq!(revived.get(&mut driver, 0).unwrap(), 1.5);
        let lookup = time_median(9, || {
            dir.lookup(&mut driver, key.clone()).unwrap();
        });
        t.row(&[
            (elems * 8 / 1024).to_string(),
            ms(deact),
            ms(act),
            us(lookup),
        ]);
        revived.destroy(&mut driver).unwrap();
    }
    cluster.shutdown(driver);
    t
}

/// E8 (§2/§4): N object-processes vs one — the split loop parallelizes
/// across *distinct* processes, while the same N calls aimed at a single
/// object serialize (one process per object). Device work (1 ms seek per
/// page sum) makes the serialization visible above the link latency.
pub fn e8_shared_memory() -> Table {
    let mut t = Table::new(&[
        "calls",
        "sequential ms",
        "N objects parallel ms",
        "speedup",
        "1 object parallel ms",
    ]);
    for n in [2usize, 4, 8] {
        let mut cfg = lan_config();
        cfg.disk = spinny_disk();
        let (cluster, mut driver) = ClusterBuilder::new(n)
            .register::<PageDevice>()
            .register::<ArrayPageDevice>()
            .sim_config(cfg)
            .build();
        let devices: Vec<_> = (0..n)
            .map(|m| {
                let d = ArrayPageDeviceClient::new_on(
                    &mut driver,
                    m,
                    format!("e8.{m}"),
                    2,
                    16,
                    16,
                    16,
                    0,
                    None,
                )
                .unwrap();
                d.write_array(
                    &mut driver,
                    0,
                    ArrayPage::generate(16, 16, 16, m as u64).into_f64s(),
                )
                .unwrap();
                d
            })
            .collect();

        // The unsplit loop over N device-processes.
        let seq = time_median(3, || {
            for d in &devices {
                let _ = d.sum(&mut driver, 0).unwrap();
            }
        });
        // The split loop over N device-processes: seeks overlap.
        let par = time_median(3, || {
            let pending: Vec<_> = devices
                .iter()
                .map(|d| d.sum_async(&mut driver, 0).unwrap())
                .collect();
            let _ = join(&mut driver, pending).unwrap();
        });
        // The same N calls at ONE device-process: one process per object,
        // so its seeks serialize even under the split loop.
        let one = &devices[0];
        let one_obj = time_median(3, || {
            let pending: Vec<_> = (0..n)
                .map(|_| one.sum_async(&mut driver, 0).unwrap())
                .collect();
            let _ = join(&mut driver, pending).unwrap();
        });
        t.row(&[
            n.to_string(),
            ms(seq),
            ms(par),
            format!("{:.1}x", seq.as_secs_f64() / par.as_secs_f64()),
            ms(one_obj),
        ]);
        cluster.shutdown(driver);
    }
    t
}

/// E9 (robustness): completion time of an E3-style split-loop workload as
/// the seeded per-packet drop rate rises, under a retrying [`CallPolicy`].
///
/// The fabric drops request and response frames silently; callers recover
/// by retransmitting after a short reply window, and servers suppress the
/// resulting duplicates, so every run computes the same answer — losses
/// buy latency, never wrong results. Zero-cost substrate: all reported
/// time is retry windows and backoff, none of it simulated wire time.
pub fn e9_faults() -> Vec<Table> {
    let mut t = Table::new(&[
        "drop rate",
        "completion ms",
        "retries",
        "frames dropped",
        "matches 0% run",
    ]);
    let workers = 4usize;
    let n = 256usize;
    let rounds = 6usize;

    let run = |plan: FaultPlan| -> (Vec<f64>, u64, u64, Duration, oopp::Trace) {
        // Short windows: a drop costs ~55 ms, not DEFAULT_TIMEOUT.
        let policy = CallPolicy::reliable(Duration::from_millis(50))
            .with_max_retries(8)
            .with_backoff(Backoff::fixed(Duration::from_millis(5)));
        let (cluster, mut driver) = ClusterBuilder::new(workers)
            .sim_config(ClusterConfig::zero_cost(0).with_faults(plan))
            .call_policy(policy)
            .tracing(true)
            .build();
        let t0 = std::time::Instant::now();
        let blocks: Vec<_> = (0..workers)
            .map(|m| {
                let b = DoubleBlockClient::new_on(&mut driver, m, n).unwrap();
                b.fill(&mut driver, (m + 1) as f64).unwrap();
                b
            })
            .collect();
        for round in 0..rounds {
            let addend = F64s(vec![round as f64 + 0.25; n]);
            let pending: Vec<_> = blocks
                .iter()
                .map(|b| {
                    b.axpy_range_async(&mut driver, 0, 0.5, addend.clone())
                        .unwrap()
                })
                .collect();
            join(&mut driver, pending).unwrap();
        }
        let mut data = Vec::with_capacity(workers * n);
        for b in &blocks {
            data.extend(b.read_range(&mut driver, 0, n).unwrap().0);
        }
        let elapsed = t0.elapsed();
        let retries = driver.local_stats().calls_retried;
        // Quiesce the fault plan so the shutdown frames cannot be dropped.
        cluster.sim().faults().calm();
        let drops = cluster.snapshot().total_fault_drops();
        let recorder = cluster.recorder().expect("tracing enabled");
        cluster.shutdown(driver);
        (data, retries, drops, elapsed, recorder.merge())
    };

    let (baseline, ..) = run(FaultPlan::none());
    let mut lossiest_trace = None;
    for p in [0.0f64, 0.01, 0.05, 0.10] {
        let plan = if p == 0.0 {
            FaultPlan::none()
        } else {
            FaultPlan::seeded(0xE9).with_drop(p)
        };
        let (data, retries, drops, elapsed, trace) = run(plan);
        t.row(&[
            format!("{:.0}%", p * 100.0),
            ms(elapsed),
            retries.to_string(),
            drops.to_string(),
            if data == baseline { "yes" } else { "NO" }.into(),
        ]);
        lossiest_trace = Some(trace);
    }
    // Per-method account of the 10%-drop run: where the retries landed and
    // what they did to tail latency.
    vec![t, method_stats_table(&lossiest_trace.expect("loop ran"))]
}

/// E10's workload object: modest state (so migrations are cheap) with a
/// *modeled* device-side service cost per call. Like the substrate's
/// network and disk, compute is costed analytically — a calibrated
/// [`precise_sleep`](simnet::time::precise_sleep) — so each simulated
/// machine's service capacity is independent of how many host cores the
/// harness happens to get (machine threads sleep concurrently even on one
/// core, exactly as real cluster machines would compute concurrently).
#[derive(Debug)]
pub struct HotBlock {
    data: Vec<f64>,
}

oopp::remote_class! {
    class HotBlock {
        persistent;
        ctor(n: usize);
        /// Fill the whole block with `v`.
        fn fill(&mut self, v: f64) -> ();
        /// The synthetic hot method: one reduction over the block plus
        /// `micros` of modeled compute.
        fn work(&mut self, micros: u64) -> f64;
        /// Deterministic state mutation (adds `delta` to every element).
        fn bump(&mut self, delta: f64) -> ();
        /// The whole block, for the byte-identical witness.
        fn read(&mut self) -> F64s;
        /// Cheap no-op; called once as the steady-state trace marker.
        fn probe(&mut self) -> u64;
    }
}

impl HotBlock {
    pub fn new(_ctx: &mut oopp::NodeCtx, n: usize) -> oopp::RemoteResult<Self> {
        Ok(HotBlock { data: vec![0.0; n] })
    }

    fn fill(&mut self, _ctx: &mut oopp::NodeCtx, v: f64) -> oopp::RemoteResult<()> {
        self.data.fill(v);
        Ok(())
    }

    fn work(&mut self, _ctx: &mut oopp::NodeCtx, micros: u64) -> oopp::RemoteResult<f64> {
        // Dependent chain so the reduction isn't folded away; the result
        // is a pure function of the state, so it is placement-invariant.
        let mut s = 0.0f64;
        for &x in &self.data {
            s = s * 0.999_999_9 + x;
        }
        simnet::time::precise_sleep(Duration::from_micros(micros));
        Ok(s)
    }

    fn bump(&mut self, _ctx: &mut oopp::NodeCtx, delta: f64) -> oopp::RemoteResult<()> {
        for x in &mut self.data {
            *x += delta;
        }
        Ok(())
    }

    fn read(&mut self, _ctx: &mut oopp::NodeCtx) -> oopp::RemoteResult<F64s> {
        Ok(F64s(self.data.clone()))
    }

    fn probe(&mut self, _ctx: &mut oopp::NodeCtx) -> oopp::RemoteResult<u64> {
        Ok(self.data.len() as u64)
    }

    fn save_state(&self) -> Vec<u8> {
        wire::to_bytes(&F64s(self.data.clone()))
    }

    fn load_state(_ctx: &mut oopp::NodeCtx, state: &[u8]) -> oopp::RemoteResult<Self> {
        Ok(HotBlock {
            data: wire::from_bytes::<F64s>(state)?.0,
        })
    }
}

/// E10 (DESIGN.md §9): adaptive placement under a Zipf-skewed workload.
///
/// Every object is born on machine 0 — the paper's static placement — and
/// a skewed client stream hammers them while the rest of the cluster
/// idles. With the balancer off ([`PlacementPolicy::Static`]) machine 0
/// serializes everything; with [`PlacementPolicy::GreedyRebalance`] the
/// hot objects are live-migrated to the idle machines between rounds. The
/// chaos variant reruns the balanced workload under 5% seeded loss and
/// forces one migration into a crashed machine mid-run: the move must
/// roll back and the final data must stay byte-identical to the
/// fault-free runs — a migration never loses or duplicates an object.
pub fn e10_placement() -> Vec<Table> {
    const WORKERS: usize = 4;
    const NOBJ: usize = 16;
    const N: usize = 4096; // 32 KiB of f64 state per object
    const SERVICE_US: u64 = 300; // modeled device-side compute per call
    const ROUNDS: usize = 16;
    const CALLS: usize = 48;
    const ZIPF_S: f64 = 0.9;

    // Zipf(s) CDF over object ranks; sampled with a splitmix64 stream so
    // every run draws the identical schedule.
    let mut cdf = Vec::with_capacity(NOBJ);
    let mut acc = 0.0f64;
    for k in 0..NOBJ {
        acc += 1.0 / ((k + 1) as f64).powf(ZIPF_S);
        cdf.push(acc);
    }
    let total = acc;
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    struct Outcome {
        data: Vec<f64>,
        p50: u64,
        p99: u64,
        elapsed: Duration,
        moves: u64,
        per_machine: Vec<u64>,
        rolled_back: Option<bool>,
        trace: oopp::Trace,
    }

    let run = |policy: PlacementPolicy, plan: FaultPlan, chaos: bool| -> Outcome {
        let call_policy = CallPolicy::reliable(Duration::from_millis(50))
            .with_max_retries(8)
            .with_backoff(Backoff::fixed(Duration::from_millis(5)));
        let (cluster, mut driver) = ClusterBuilder::new(WORKERS)
            .register::<HotBlock>()
            .sim_config(ClusterConfig::zero_cost(0).with_faults(plan))
            .call_policy(call_policy)
            .tracing(true)
            .build();
        let blocks: Vec<_> = (0..NOBJ)
            .map(|k| {
                let b = HotBlockClient::new_on(&mut driver, 0, N).unwrap();
                b.fill(&mut driver, (k + 1) as f64 * 0.5).unwrap();
                b
            })
            .collect();
        let mut balancer = Balancer::new(policy, (0..WORKERS).collect()).with_cooldown(1);
        balancer.pin(driver.directory().obj_ref());
        // The coldest object stays put in every run so the chaos variant
        // can deterministically aim a migration at the crashed machine.
        balancer.pin(blocks[NOBJ - 1].obj_ref());

        let mut rng = 0xE10_2026u64;
        let mut rolled_back = None;
        let t0 = std::time::Instant::now();
        for round in 0..ROUNDS {
            if round == ROUNDS / 2 {
                // Steady-state marker: `probe` is called exactly once,
                // here, so the trace can be sliced at the point where the
                // balancer has converged (latency columns below exclude
                // the convergence transient the Static run doesn't pay).
                blocks[0].probe(&mut driver).unwrap();
            }
            if chaos && round == ROUNDS / 2 {
                // A crash races the transfer: migrate_out quiesces the
                // object, adopt_state hits a dark machine, the core must
                // roll back to the original address.
                cluster.sim().faults().crash(WORKERS - 1);
                let refused = driver
                    .migrate(blocks[NOBJ - 1].obj_ref(), WORKERS - 1)
                    .is_err();
                cluster.sim().faults().restart(WORKERS - 1);
                rolled_back = Some(refused);
            }
            let sums: Vec<_> = (0..CALLS)
                .map(|_| {
                    let u = (splitmix(&mut rng) >> 11) as f64 / (1u64 << 53) as f64 * total;
                    let k = cdf.iter().position(|&c| u < c).unwrap_or(NOBJ - 1);
                    blocks[k].work_async(&mut driver, SERVICE_US).unwrap()
                })
                .collect();
            // One mutation per round, totally ordered by the round joins,
            // so the final state is identical however objects are placed.
            let write = blocks[round % NOBJ]
                .bump_async(&mut driver, round as f64 * 0.5 + 0.125)
                .unwrap();
            join(&mut driver, sums).unwrap();
            join(&mut driver, vec![write]).unwrap();
            balancer
                .step(&mut driver, Some(&cluster.snapshot()))
                .unwrap();
        }
        let elapsed = t0.elapsed();
        let mut data = Vec::with_capacity(NOBJ * N);
        for b in &blocks {
            data.extend(b.read(&mut driver).unwrap().0);
        }
        let per_machine: Vec<u64> = (0..WORKERS)
            .map(|m| driver.stats_of(m).unwrap().calls_served)
            .collect();
        cluster.sim().faults().calm();
        let recorder = cluster.recorder().expect("tracing enabled");
        let moves = balancer.moves_executed();
        cluster.shutdown(driver);
        let trace = recorder.merge();
        // Slice at the marker: per-call latency over the second half of
        // the run, after the balancer converged.
        let cutoff = trace
            .events
            .iter()
            .find(|e| &*e.method == "probe")
            .map(|e| e.at_nanos)
            .unwrap_or(0);
        let steady = oopp::Trace {
            events: trace
                .events
                .iter()
                .filter(|e| e.at_nanos >= cutoff)
                .cloned()
                .collect(),
            dropped: trace.dropped,
        };
        let stats = steady
            .method_stats()
            .into_iter()
            .find(|s| s.method == "work")
            .expect("hot method traced");
        Outcome {
            data,
            p50: stats.p50_micros,
            p99: stats.p99_micros,
            elapsed,
            moves,
            per_machine,
            rolled_back,
            trace,
        }
    };

    let greedy = PlacementPolicy::GreedyRebalance {
        imbalance_ratio: 1.3,
        max_moves_per_round: 3,
    };
    let baseline = run(PlacementPolicy::Static, FaultPlan::none(), false);
    let balanced = run(greedy, FaultPlan::none(), false);
    let chaotic = run(greedy, FaultPlan::seeded(0xE10).with_drop(0.05), true);

    let mut t = Table::new(&[
        "policy",
        "steady p50 us",
        "steady p99 us",
        "wall ms",
        "moves",
        "calls/machine",
        "mid-move crash",
        "matches static",
    ]);
    for (name, o) in [
        ("Static", &baseline),
        ("GreedyRebalance", &balanced),
        ("Greedy + 5% loss", &chaotic),
    ] {
        let spread = o
            .per_machine
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("/");
        t.row(&[
            name.into(),
            o.p50.to_string(),
            o.p99.to_string(),
            ms(o.elapsed),
            o.moves.to_string(),
            spread,
            match o.rolled_back {
                None => "-".into(),
                Some(true) => "rolled back".into(),
                Some(false) => "NOT ROLLED BACK".into(),
            },
            if o.data == baseline.data { "yes" } else { "NO" }.into(),
        ]);
    }
    // Per-method account of the balanced run: migration markers included.
    vec![t, method_stats_table(&balanced.trace)]
}

/// E11 (DESIGN.md §10): self-healing under the E10-style Zipf workload.
///
/// Supervised [`HotBlock`]s live on machines 1–3 (machine 0 keeps the
/// naming directory) while a skewed client stream works them and one
/// deterministic write per round mutates state. Mid-run, the hottest
/// object's home is killed — a real crash in one variant, a full
/// partition (a *false* suspicion: the machine is alive but unreachable)
/// in the other. The supervisor must detect the silence, reactivate the
/// lost objects from replicated snapshots at a bumped lease epoch, and
/// the run must end **byte-identical** to the fault-free baseline: every
/// acknowledged write applied exactly once, zero split-brain writes from
/// the stale incarnation. The table reports the MTTR split into its
/// detection and reactivation components, straight from the supervisor's
/// recovery ledger.
pub fn e11_self_healing() -> Vec<Table> {
    use oopp::symbolic_addr;
    use supervision::{DetectorConfig, RestartPolicy, Supervisor, SupervisorConfig};

    const WORKERS: usize = 4;
    const NOBJ: usize = 6;
    const N: usize = 2048; // 16 KiB of f64 state per object
    const SERVICE_US: u64 = 150;
    const ROUNDS: usize = 12;
    const CALLS: usize = 24;
    const ZIPF_S: f64 = 0.9;
    const HOMES: [usize; 3] = [1, 2, 3];

    let mut cdf = Vec::with_capacity(NOBJ);
    let mut acc = 0.0f64;
    for k in 0..NOBJ {
        acc += 1.0 / ((k + 1) as f64).powf(ZIPF_S);
        cdf.push(acc);
    }
    let total = acc;
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Fault {
        None,
        Crash,
        Partition,
    }

    struct Outcome {
        data: Vec<f64>,
        elapsed: Duration,
        detect: Duration,
        reactivate: Duration,
        recovered: u64,
        false_suspicions: u64,
        fenced: u64,
        write_retries: u64,
        failed_reads: u64,
    }

    let run = |fault: Fault| -> Outcome {
        // Single-shot 40 ms windows: on a zero-cost fabric a live machine
        // answers in microseconds, and a call into a dead one must fail
        // *faster than the lease*, or the blocked driver would starve the
        // heartbeat pump and take the healthy machines down with it.
        let call_policy = CallPolicy::no_retry(Duration::from_millis(40));
        let (cluster, mut driver) = ClusterBuilder::new(WORKERS)
            .register::<HotBlock>()
            .sim_config(ClusterConfig::zero_cost(0))
            .call_policy(call_policy)
            .build();
        let dir = driver.directory();
        let heartbeat_interval = Duration::from_millis(10);
        let config = SupervisorConfig {
            heartbeat_interval,
            lease_ttl: Duration::from_millis(250),
            detector: DetectorConfig {
                expected_interval: heartbeat_interval,
                ..DetectorConfig::default()
            },
            restart: RestartPolicy::Retries {
                max_retries: 2,
                backoff: Backoff::fixed(Duration::from_millis(10)),
            },
        };
        let mut sup =
            Supervisor::new(config, HOMES.to_vec(), dir).with_metrics(cluster.metrics().clone());

        // Object k lives on HOMES[k % 3]; the hottest (k = 0) on machine 1,
        // which is the machine every fault variant kills.
        let mut addrs = Vec::with_capacity(NOBJ);
        for k in 0..NOBJ {
            let home = HOMES[k % HOMES.len()];
            let addr = symbolic_addr(&["e11", "HotBlock", &k.to_string()]);
            let b = HotBlockClient::new_on(&mut driver, home, N).unwrap();
            b.fill(&mut driver, (k + 1) as f64 * 0.5).unwrap();
            let backups: Vec<usize> = HOMES.iter().copied().filter(|&m| m != home).collect();
            sup.register(&mut driver, &addr, &b, &backups).unwrap();
            addrs.push(addr);
        }
        const VICTIM: usize = 1;
        let peers: Vec<usize> = (0..=WORKERS).filter(|&p| p != VICTIM).collect();
        // Warm the detector with a few real heartbeat rounds.
        for _ in 0..8 {
            sup.step(&mut driver).unwrap();
            driver.serve_for(Duration::from_millis(3));
        }

        let mut rng = 0xE11_2026u64;
        let mut recoveries = Vec::new();
        let mut write_retries = 0u64;
        let mut failed_reads = 0u64;
        let t0 = std::time::Instant::now();
        for round in 0..ROUNDS {
            if fault != Fault::None && round == ROUNDS / 2 {
                // Checkpoint, then strike: every acknowledged write is in a
                // replicated snapshot before the home goes dark, so the
                // takeover incarnation resumes with nothing lost.
                sup.checkpoint(&mut driver);
                match fault {
                    Fault::Crash => cluster.sim().faults().crash(VICTIM),
                    Fault::Partition => cluster.sim().faults().isolate(VICTIM, &peers),
                    Fault::None => unreachable!(),
                }
            }
            for _ in 0..CALLS {
                // A driver-resident supervisor is a cooperative controller:
                // it must be stepped *within* the round too, or a long
                // round of synchronous calls would starve the heartbeat
                // pump past the lease and fail the whole cluster.
                recoveries.extend(sup.step(&mut driver).unwrap());
                let u = (splitmix(&mut rng) >> 11) as f64 / (1u64 << 53) as f64 * total;
                let k = cdf.iter().position(|&c| u < c).unwrap_or(NOBJ - 1);
                let target = HotBlockClient::from_ref(sup.current_of(&addrs[k]).unwrap());
                // `work` is read-only; a call that dies with the machine is
                // counted and dropped, not replayed (the client would
                // re-issue it in a real system — either way no state moves).
                if target.work(&mut driver, SERVICE_US).is_err() {
                    failed_reads += 1;
                    recoveries.extend(sup.step(&mut driver).unwrap());
                }
            }
            // The one mutation per round must land exactly once: retry
            // through re-resolution until an incarnation acknowledges it.
            // At-most-once dedup plus epoch fencing make the retries safe.
            let delta = round as f64 * 0.5 + 0.125;
            let kw = round % NOBJ;
            loop {
                let target = HotBlockClient::from_ref(sup.current_of(&addrs[kw]).unwrap());
                match target.bump(&mut driver, delta) {
                    Ok(()) => break,
                    Err(_) => {
                        write_retries += 1;
                        recoveries.extend(sup.step(&mut driver).unwrap());
                        driver.serve_for(Duration::from_millis(5));
                    }
                }
            }
            recoveries.extend(sup.step(&mut driver).unwrap());
        }
        let elapsed = t0.elapsed();

        // Heal and readmit, so shutdown finds every machine reachable.
        match fault {
            Fault::Crash => cluster.sim().faults().restart(VICTIM),
            Fault::Partition => cluster.sim().faults().rejoin(VICTIM, &peers),
            Fault::None => {}
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while fault != Fault::None && sup.is_dead(VICTIM) {
            assert!(std::time::Instant::now() < deadline, "readmission stalled");
            sup.step(&mut driver).unwrap();
            driver.serve_for(Duration::from_millis(2));
        }

        let mut data = Vec::with_capacity(NOBJ * N);
        for addr in &addrs {
            let b = HotBlockClient::from_ref(sup.current_of(addr).unwrap());
            data.extend(b.read(&mut driver).unwrap().0);
        }
        let fenced: u64 = (0..WORKERS)
            .map(|m| driver.stats_of(m).unwrap().calls_fenced)
            .sum();
        let stats = sup.stats();
        assert_eq!(stats.names_poisoned, 0, "supervision gave up: {stats:?}");
        let recovered = recoveries.len() as u64;
        let (detect, reactivate) = if recoveries.is_empty() {
            (Duration::ZERO, Duration::ZERO)
        } else {
            let d: Duration = recoveries.iter().map(|r| r.detect).sum();
            let t: Duration = recoveries.iter().map(|r| r.total).sum();
            (d / recovered as u32, (t - d) / recovered as u32)
        };
        cluster.shutdown(driver);
        Outcome {
            data,
            elapsed,
            detect,
            reactivate,
            recovered,
            false_suspicions: stats.false_suspicions,
            fenced,
            write_retries,
            failed_reads,
        }
    };

    let baseline = run(Fault::None);
    let crashed = run(Fault::Crash);
    let partitioned = run(Fault::Partition);

    let mut t = Table::new(&[
        "variant",
        "wall ms",
        "recovered",
        "MTTR detect ms",
        "MTTR reactivate ms",
        "false suspicions",
        "fenced calls",
        "write retries",
        "dropped reads",
        "matches fault-free",
    ]);
    for (name, o) in [
        ("fault-free", &baseline),
        ("crash mid-Zipf", &crashed),
        ("partition (false suspicion)", &partitioned),
    ] {
        t.row(&[
            name.into(),
            ms(o.elapsed),
            o.recovered.to_string(),
            format!("{:.1}", o.detect.as_secs_f64() * 1e3),
            format!("{:.1}", o.reactivate.as_secs_f64() * 1e3),
            o.false_suspicions.to_string(),
            o.fenced.to_string(),
            o.write_retries.to_string(),
            o.failed_reads.to_string(),
            if o.data == baseline.data { "yes" } else { "NO" }.into(),
        ]);
    }
    vec![t]
}

/// E12's workload object: a read-hot block whose `work`/`version`/`read`
/// verbs are declared replica-servable, while `bump` stays a write that
/// only the primary executes. State is versioned so every acknowledged
/// write has an exactly-once witness (the version counts acks; the data
/// bytes would diverge on any double-apply).
#[derive(Debug)]
pub struct RepBlock {
    data: Vec<f64>,
    version: u64,
}

oopp::remote_class! {
    class RepBlock {
        persistent;
        reads(work, version, read);
        ctor(n: usize);
        /// The hot read: one reduction over the block plus `micros` of
        /// modeled device-side compute (see [`HotBlock::work`]).
        fn work(&mut self, micros: u64) -> f64;
        /// Write counter — the read-your-writes probe.
        fn version(&mut self) -> u64;
        /// The whole block, for the byte-identical witness.
        fn read(&mut self) -> F64s;
        /// The write verb: add `delta` everywhere; returns the version.
        fn bump(&mut self, delta: f64) -> u64;
    }
}

impl RepBlock {
    pub fn new(_ctx: &mut oopp::NodeCtx, n: usize) -> oopp::RemoteResult<Self> {
        Ok(RepBlock {
            data: vec![0.0; n],
            version: 0,
        })
    }

    fn work(&mut self, _ctx: &mut oopp::NodeCtx, micros: u64) -> oopp::RemoteResult<f64> {
        let mut s = 0.0f64;
        for &x in &self.data {
            s = s * 0.999_999_9 + x;
        }
        simnet::time::precise_sleep(Duration::from_micros(micros));
        Ok(s)
    }

    fn version(&mut self, _ctx: &mut oopp::NodeCtx) -> oopp::RemoteResult<u64> {
        Ok(self.version)
    }

    fn read(&mut self, _ctx: &mut oopp::NodeCtx) -> oopp::RemoteResult<F64s> {
        Ok(F64s(self.data.clone()))
    }

    fn bump(&mut self, _ctx: &mut oopp::NodeCtx, delta: f64) -> oopp::RemoteResult<u64> {
        for x in &mut self.data {
            *x += delta;
        }
        self.version += 1;
        Ok(self.version)
    }

    fn save_state(&self) -> Vec<u8> {
        wire::to_bytes(&(self.version, F64s(self.data.clone())))
    }

    fn load_state(_ctx: &mut oopp::NodeCtx, state: &[u8]) -> oopp::RemoteResult<Self> {
        let (version, data) = wire::from_bytes::<(u64, F64s)>(state)?;
        Ok(RepBlock {
            data: data.0,
            version,
        })
    }
}

/// E12 (DESIGN.md §11): coherent read replication under a read-heavy
/// Zipf workload.
///
/// The head of the Zipf distribution is one read-hot object whose `work`
/// verb costs modeled device time; the tail objects are cheap metadata
/// reads on other machines. One process per object means the head
/// serializes behind a single mailbox no matter where placement puts it
/// — so the replica subsystem materializes k read replicas and the same
/// split-loop read batches fan out across them, scaling read throughput
/// ~linearly with k while ~2% writes keep landing at the primary under
/// write-through coherence (every read-your-writes probe must hit).
///
/// The chaos variant reruns the 4-replica workload and kills a replica
/// machine and then the *primary's* machine mid-run: the manager shrinks
/// the set, CAS-promotes a surviving replica, and the run must end with
/// the exact version count (exactly-once writes) and data byte-identical
/// to every fault-free variant.
pub fn e12_replication() -> Vec<Table> {
    use oopp::symbolic_addr;
    use replica::{CoherenceMode, ReplicaConfig, ReplicaManager};

    const WORKERS: usize = 6;
    const NOBJ: usize = 4; // Zipf universe: the hot head + 3 cheap tails
    const N: usize = 2048; // 16 KiB of f64 state in the hot object
    const SERVICE_US: u64 = 250;
    const ROUNDS: usize = 12;
    const READS: usize = 48; // per round; one write per round = ~2% writes
    const ZIPF_S: f64 = 1.2;
    const HOT_HOME: usize = 1; // machine 0 keeps the directory
    const COLD_HOMES: [usize; 3] = [2, 3, 4];
    const REPLICA_HOMES: [usize; 4] = [2, 3, 4, 5];

    let mut cdf = Vec::with_capacity(NOBJ);
    let mut acc = 0.0f64;
    for k in 0..NOBJ {
        acc += 1.0 / ((k + 1) as f64).powf(ZIPF_S);
        cdf.push(acc);
    }
    let total = acc;
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    struct Outcome {
        data: Vec<f64>,
        version: u64,
        elapsed: Duration,
        hot_reads: u64,
        replica_served: u64,
        syncs: u64,
        promotions: u64,
        ryw_misses: u64,
    }

    let run = |replicas: usize, chaos: bool| -> Outcome {
        let call_policy = CallPolicy::reliable(Duration::from_millis(60))
            .with_max_retries(2)
            .with_backoff(Backoff::fixed(Duration::from_millis(5)));
        let (cluster, mut driver) = ClusterBuilder::new(WORKERS)
            .register::<RepBlock>()
            .sim_config(ClusterConfig::zero_cost(0))
            .call_policy(call_policy)
            .build();
        let dir = driver.directory();
        let name = symbolic_addr(&["e12", "RepBlock", "hot"]);
        let hot = RepBlockClient::new_on(&mut driver, HOT_HOME, N).unwrap();
        dir.bind(&mut driver, name.clone(), hot.obj_ref()).unwrap();
        let cold: Vec<RepBlockClient> = COLD_HOMES
            .iter()
            .map(|&m| RepBlockClient::new_on(&mut driver, m, 8).unwrap())
            .collect();
        let mut mgr = ReplicaManager::new(
            ReplicaConfig {
                mode: CoherenceMode::WriteThrough,
                lease: Duration::from_secs(30),
            },
            dir,
        );
        if replicas > 0 {
            mgr.replicate(&mut driver, &name, &hot, &REPLICA_HOMES[..replicas])
                .unwrap();
        }

        let mut rng = 0xE12_2026u64;
        let mut hot_reads = 0u64;
        let mut ryw_misses = 0u64;
        let mut dead: Vec<usize> = Vec::new();
        let t0 = std::time::Instant::now();
        for round in 0..ROUNDS {
            // The chaos schedule: first a replica dies, later the primary
            // itself. The harness plays the supervisor's declare-dead role
            // (E11 already proved detection); the manager does the rest.
            if chaos && (round == ROUNDS / 3 || round == 2 * ROUNDS / 3) {
                let victim = if round == ROUNDS / 3 {
                    REPLICA_HOMES[replicas - 1]
                } else {
                    mgr.primary_of(&name).unwrap().machine
                };
                let was_primary = mgr.primary_of(&name).unwrap().machine == victim;
                cluster.sim().faults().crash(victim);
                dead.push(victim);
                let promoted = mgr.handle_dead_machine(&mut driver, victim).unwrap();
                assert_eq!(
                    promoted.len(),
                    usize::from(was_primary),
                    "a dead primary must promote exactly one replica"
                );
            }
            let primary = mgr.primary_of(&name).unwrap_or(hot.obj_ref());
            let hot_now = RepBlockClient::from_ref(primary);

            // The split-loop read batch: issue every request before
            // awaiting any reply. Hot reads fan out over the replica set.
            let mut hot_pending = Vec::new();
            let mut cold_pending = Vec::new();
            for _ in 0..READS {
                let u = (splitmix(&mut rng) >> 11) as f64 / (1u64 << 53) as f64 * total;
                let k = cdf.iter().position(|&c| u < c).unwrap_or(NOBJ - 1);
                if k == 0 {
                    hot_pending.push(hot_now.work_async(&mut driver, SERVICE_US).unwrap());
                } else {
                    cold_pending.push(cold[k - 1].version_async(&mut driver).unwrap());
                }
            }
            hot_reads += hot_pending.len() as u64;
            join(&mut driver, hot_pending).unwrap();
            join(&mut driver, cold_pending).unwrap();

            // The round's one write, and its read-your-writes witness: the
            // very next read — routed to a replica — must see the ack.
            let v = hot_now
                .bump(&mut driver, round as f64 * 0.5 + 0.125)
                .unwrap();
            if hot_now.version(&mut driver).unwrap() != v {
                ryw_misses += 1;
            }
        }
        let elapsed = t0.elapsed();

        let primary = mgr.primary_of(&name).unwrap_or(hot.obj_ref());
        let hot_now = RepBlockClient::from_ref(primary);
        let data = hot_now.read(&mut driver).unwrap().0;
        let version = hot_now.version(&mut driver).unwrap();
        let live = (0..WORKERS).filter(|m| !dead.contains(m));
        let (mut replica_served, mut syncs) = (0u64, 0u64);
        for m in live {
            let s = driver.stats_of(m).unwrap();
            replica_served += s.replica_reads_served;
            syncs += s.replica_syncs_sent;
        }
        for &m in &dead {
            cluster.sim().faults().restart(m);
        }
        let promotions = mgr.stats().promotions;
        cluster.shutdown(driver);
        Outcome {
            data,
            version,
            elapsed,
            hot_reads,
            replica_served,
            syncs,
            promotions,
            ryw_misses,
        }
    };

    let single = run(0, false);
    let two = run(2, false);
    let four = run(4, false);
    let chaos = run(4, true);

    let tp = |o: &Outcome| o.hot_reads as f64 / o.elapsed.as_secs_f64();
    let mut t = Table::new(&[
        "variant",
        "wall ms",
        "hot reads",
        "hot reads/s",
        "speedup",
        "RYW misses",
        "replica-served",
        "syncs",
        "promotions",
        "matches primary-only",
    ]);
    for (label, o) in [
        ("primary only", &single),
        ("2 replicas", &two),
        ("4 replicas", &four),
        ("4 replicas + chaos", &chaos),
    ] {
        assert_eq!(o.ryw_misses, 0, "{label}: read-your-writes violated");
        assert_eq!(
            o.version, ROUNDS as u64,
            "{label}: write acked more or less than once"
        );
        t.row(&[
            label.into(),
            ms(o.elapsed),
            o.hot_reads.to_string(),
            format!("{:.0}", tp(o)),
            format!("{:.1}x", tp(o) / tp(&single)),
            o.ryw_misses.to_string(),
            o.replica_served.to_string(),
            o.syncs.to_string(),
            o.promotions.to_string(),
            if o.data == single.data { "yes" } else { "NO" }.into(),
        ]);
    }
    assert_eq!(chaos.promotions, 1, "chaos run must promote a replica");
    assert!(
        chaos.data == single.data && four.data == single.data && two.data == single.data,
        "replicated runs must stay byte-identical to the primary-only run"
    );
    assert!(
        tp(&four) >= 3.0 * tp(&single),
        "4 replicas must lift read throughput >= 3x, got {:.2}x",
        tp(&four) / tp(&single)
    );
    vec![t]
}

/// A1: wire codec throughput (the cost of the "compiler-generated"
/// protocol layer itself, no network).
pub fn a1_wire() -> Table {
    let mut t = Table::new(&["payload", "bytes", "encode GB/s", "decode GB/s"]);
    for elems in [1usize << 10, 1 << 14, 1 << 18, 1 << 21] {
        let payload = F64s((0..elems).map(|i| i as f64).collect());
        let bytes = elems * 8;
        let reps = (1 << 24) / bytes.max(1) + 1;
        let enc = time_median(3, || {
            for _ in 0..reps {
                std::hint::black_box(wire::to_bytes(&payload));
            }
        });
        let encoded = wire::to_bytes(&payload);
        let dec = time_median(3, || {
            for _ in 0..reps {
                std::hint::black_box(wire::from_bytes::<F64s>(&encoded).unwrap());
            }
        });
        let gbps = |d: Duration| (bytes * reps) as f64 / d.as_secs_f64() / 1e9;
        t.row(&[
            format!("F64s[{elems}]"),
            bytes.to_string(),
            format!("{:.2}", gbps(enc)),
            format!("{:.2}", gbps(dec)),
        ]);
    }
    // A page of raw bytes.
    let page = Page::generate(1 << 20, 3).into_bytes();
    let reps = 32;
    let enc = time_median(3, || {
        for _ in 0..reps {
            std::hint::black_box(wire::to_bytes(&page));
        }
    });
    let encoded = wire::to_bytes(&page);
    let dec = time_median(3, || {
        for _ in 0..reps {
            std::hint::black_box(wire::from_bytes::<wire::collections::Bytes>(&encoded).unwrap());
        }
    });
    let gbps = |d: Duration| ((1usize << 20) * reps) as f64 / d.as_secs_f64() / 1e9;
    t.row(&[
        "Bytes[1MiB]".into(),
        (1 << 20).to_string(),
        format!("{:.2}", gbps(enc)),
        format!("{:.2}", gbps(dec)),
    ]);
    t
}

/// A2: synchronization primitives — the oopp group barrier vs. the mplite
/// dissemination barrier and allreduce, same link costs.
pub fn a2_collectives() -> Table {
    let mut t = Table::new(&[
        "parties",
        "oopp barrier ms",
        "mplite barrier ms",
        "mplite allreduce ms",
    ]);
    for n in [2usize, 4, 8, 16] {
        // oopp: n Syncers + the driver entering a Barrier.
        let (cluster, mut driver) = ClusterBuilder::new(n)
            .register::<Syncer>()
            .sim_config(lan_config())
            .build();
        let barrier = BarrierClient::new_on(&mut driver, 0, n + 1).unwrap();
        let syncers: Vec<_> = (0..n)
            .map(|m| SyncerClient::new_on(&mut driver, m).unwrap())
            .collect();
        let oopp_time = time_median(5, || {
            let pending: Vec<_> = syncers
                .iter()
                .map(|s| s.sync_async(&mut driver, barrier).unwrap())
                .collect();
            barrier.enter(&mut driver).unwrap();
            join(&mut driver, pending).unwrap();
        });
        cluster.shutdown(driver);

        // mplite barrier + allreduce.
        let mut cfg = lan_config();
        cfg.machines = n;
        let world = MpiWorld::new(cfg);
        let (times, _) = world.run(|c| {
            let t0 = std::time::Instant::now();
            for _ in 0..5 {
                c.barrier().unwrap();
            }
            let b = t0.elapsed() / 5;
            let t0 = std::time::Instant::now();
            for _ in 0..5 {
                c.allreduce_f64(c.rank() as f64, Op::Sum).unwrap();
            }
            (b, t0.elapsed() / 5)
        });
        let mp_barrier = times.iter().map(|(b, _)| *b).max().unwrap();
        let mp_allred = times.iter().map(|(_, a)| *a).max().unwrap();

        t.row(&[
            (n + 1).to_string(),
            ms(oopp_time),
            ms(mp_barrier),
            ms(mp_allred),
        ]);
    }
    t
}

/// A3 (§4): the `SetGroup` deep copy the paper recommends vs. the shallow
/// remote table it warns about — M peer dereferences each.
pub fn a3_deepcopy() -> Table {
    let mut t = Table::new(&["fan-out calls", "deep-copy ms", "shallow ms", "penalty"]);
    let n = 8usize;
    let (cluster, mut driver) = ClusterBuilder::new(n)
        .register::<GroupTable>()
        .sim_config(lan_config())
        .build();
    // The "group": one DoubleBlock per machine.
    let members: Vec<_> = (0..n)
        .map(|m| DoubleBlockClient::new_on(&mut driver, m, 64).unwrap())
        .collect();
    let table = GroupTableClient::new_on(
        &mut driver,
        0,
        members.iter().map(|m| m.obj_ref()).collect::<Vec<_>>(),
    )
    .unwrap();

    for calls in [8usize, 32, 128] {
        // Deep copy: the peer table is local; one round trip per call.
        let deep = time_median(3, || {
            for i in 0..calls {
                let _ = members[i % n].get(&mut driver, 0).unwrap();
            }
        });
        // Shallow: every call first dereferences the remote table.
        let shallow = time_median(3, || {
            for i in 0..calls {
                let r = table.get(&mut driver, i % n).unwrap();
                let _ = DoubleBlockClient::from_ref(r).get(&mut driver, 0).unwrap();
            }
        });
        t.row(&[
            calls.to_string(),
            ms(deep),
            ms(shallow),
            format!("{:.1}x", shallow.as_secs_f64() / deep.as_secs_f64()),
        ]);
    }
    cluster.shutdown(driver);
    t
}

/// E13's workload object: tiny state with per-call compute charged on the
/// *cluster clock* (`ctx.clock().sleep`) instead of the host clock that
/// `HotBlock::work` burns. Under `TimeMode::Virtual` a worker lane
/// serving this call parks in the discrete-event clock for the modeled
/// duration, so lanes overlap their service time exactly as real cores
/// would — and the virtual makespan measures pool scaling on any host,
/// including the single-core CI runner.
#[derive(Debug, Default)]
pub struct SchedCell {
    hits: u64,
    acc: f64,
}

oopp::remote_class! {
    class SchedCell {
        ctor();
        /// One Zipf-stream call: fold `x` into the accumulator, charge
        /// `micros` of modeled compute, return the hit count at execution
        /// (the sequential-server witness: per object these are 1..=n).
        fn work(&mut self, micros: u64, x: f64) -> u64;
        /// `(hits, accumulator)` for the cross-engine state witness.
        fn snapshot(&mut self) -> F64s;
    }
}

impl SchedCell {
    pub fn new(_ctx: &mut oopp::NodeCtx) -> oopp::RemoteResult<Self> {
        Ok(SchedCell::default())
    }

    fn work(&mut self, ctx: &mut oopp::NodeCtx, micros: u64, x: f64) -> oopp::RemoteResult<u64> {
        self.hits += 1;
        // Order-sensitive fold: a reordered or doubled call changes the
        // accumulator, so byte-identical snapshots across engines certify
        // per-object execution order, not just call counts.
        self.acc = self.acc * 0.75 + x;
        ctx.clock().sleep(Duration::from_micros(micros));
        Ok(self.hits)
    }

    fn snapshot(&mut self, _ctx: &mut oopp::NodeCtx) -> oopp::RemoteResult<F64s> {
        Ok(F64s(vec![self.hits as f64, self.acc]))
    }
}

/// E13 (DESIGN.md §13): M:N work-stealing scheduler throughput on a skewed
/// workload, at 100× the E10 object population.
///
/// 1600 objects spread over 4 machines, a Zipf(0.9) client stream of
/// pipelined calls, each call costing 200µs of modeled compute. The run
/// repeats under the classic single-threaded engine and under pools of 1,
/// 2 and 4 worker lanes per machine; everything rides one virtual clock,
/// so "makespan" is the modeled completion time and the speedup column is
/// host-independent. The final per-object `(hits, acc)` snapshot must be
/// byte-identical across engines: however lanes steal the mailboxes, every
/// object stays one sequential server.
pub fn e13_sched() -> Vec<Table> {
    const MACHINES: usize = 4;
    const NOBJ: usize = 1600; // 100x E10's population
    const SERVICE_US: u64 = 200;
    const ROUNDS: usize = 24;
    const WINDOW: usize = 64; // pipelined calls in flight per round
    const ZIPF_S: f64 = 0.9;
    const SEED: u64 = 0xE13_2026;

    // Zipf(s) CDF over object ranks, sampled with a splitmix64 stream:
    // every engine replays the identical call schedule.
    let mut cdf = Vec::with_capacity(NOBJ);
    let mut acc = 0.0f64;
    for k in 0..NOBJ {
        acc += 1.0 / ((k + 1) as f64).powf(ZIPF_S);
        cdf.push(acc);
    }
    let total = acc;
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    struct Outcome {
        makespan_nanos: u64,
        state: Vec<f64>,
    }

    // `lanes == 0` is the classic single-threaded engine; otherwise an
    // M:N pool of `lanes` worker lanes per machine.
    let run = |lanes: usize| -> Outcome {
        let (cluster, mut driver) = ClusterBuilder::new(MACHINES)
            .sched_workers(lanes)
            .register::<SchedCell>()
            .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(SEED))
            .call_policy(CallPolicy::reliable(Duration::from_millis(500)))
            .build();
        // Rank k lives on machine k % MACHINES, so the hottest ranks land
        // on distinct machines and the bottleneck is per-machine service
        // capacity — the thing the pool is supposed to multiply.
        let cells: Vec<_> = (0..NOBJ)
            .map(|k| SchedCellClient::new_on(&mut driver, k % MACHINES).unwrap())
            .collect();

        let mut rng = SEED;
        let t0 = driver.now_nanos();
        for _ in 0..ROUNDS {
            let pending: Vec<_> = (0..WINDOW)
                .map(|_| {
                    let u = (splitmix(&mut rng) >> 11) as f64 / (1u64 << 53) as f64 * total;
                    let k = cdf.iter().position(|&c| u < c).unwrap_or(NOBJ - 1);
                    cells[k]
                        .work_async(&mut driver, SERVICE_US, (k + 1) as f64 * 0.25)
                        .unwrap()
                })
                .collect();
            join(&mut driver, pending).unwrap();
        }
        let makespan_nanos = driver.now_nanos() - t0;
        let mut state = Vec::with_capacity(NOBJ * 2);
        for c in &cells {
            state.extend(c.snapshot(&mut driver).unwrap().0);
        }
        cluster.shutdown(driver);
        Outcome {
            makespan_nanos,
            state,
        }
    };

    let calls = (ROUNDS * WINDOW) as f64;
    let mut t = Table::new(&[
        "engine",
        "lanes/machine",
        "virtual makespan",
        "modeled calls/s",
        "speedup vs 1 lane",
        "state identical",
    ]);
    let mut baseline_state: Option<Vec<f64>> = None;
    let mut one_lane_nanos = 0u64;
    for lanes in [0usize, 1, 2, 4] {
        let out = run(lanes);
        let same = match &baseline_state {
            None => {
                baseline_state = Some(out.state.clone());
                true
            }
            Some(b) => *b == out.state,
        };
        if lanes == 1 {
            one_lane_nanos = out.makespan_nanos;
        }
        let speedup = if lanes >= 1 && out.makespan_nanos > 0 {
            format!("{:.2}x", one_lane_nanos as f64 / out.makespan_nanos as f64)
        } else {
            "-".into()
        };
        t.row(&[
            if lanes == 0 { "inline" } else { "pool" }.into(),
            if lanes == 0 {
                "-".into()
            } else {
                lanes.to_string()
            },
            ms(Duration::from_nanos(out.makespan_nanos)),
            format!("{:.0}", calls / (out.makespan_nanos as f64 / 1e9)),
            speedup,
            if same { "yes" } else { "NO" }.into(),
        ]);
    }
    vec![t]
}

/// E14's workload object: a directory client that hammers the sharded
/// name service from its *own* machine, so load on the control plane is
/// concurrent across machines instead of pipelined out of the single
/// driver. The [`oopp::NameService`] facade is `Copy` and wire-encodable,
/// so the hammer receives the routing view by value in its constructor —
/// the same handle any application client holds.
#[derive(Debug)]
pub struct DirHammer {
    ns: oopp::NameService,
    prefix: String,
    count: u64,
    latencies_us: Vec<f64>,
    failed: u64,
}

oopp::remote_class! {
    class DirHammer {
        ctor(ns: oopp::NameService, prefix: String, count: u64);
        /// Resolve `ops` names round-robin through the facade, timing
        /// each on the cluster clock. Returns how many resolved; failed
        /// resolutions are counted, not fatal (a crash episode is part of
        /// the workload).
        fn run(&mut self, ops: u64) -> u64;
        /// `(failed, per-op latencies µs)` accumulated by `run` since the
        /// last drain — fetched after the measured window so the reply
        /// payload never rides inside it.
        fn drain(&mut self) -> F64s;
    }
}

impl DirHammer {
    pub fn new(
        _ctx: &mut oopp::NodeCtx,
        ns: oopp::NameService,
        prefix: String,
        count: u64,
    ) -> oopp::RemoteResult<Self> {
        Ok(DirHammer {
            ns,
            prefix,
            count,
            latencies_us: Vec::new(),
            failed: 0,
        })
    }

    fn run(&mut self, ctx: &mut oopp::NodeCtx, ops: u64) -> oopp::RemoteResult<u64> {
        let mut ok = 0;
        for i in 0..ops {
            let name = format!("{}/{}", self.prefix, i % self.count);
            let t0 = ctx.now_nanos();
            match self.ns.lookup(ctx, name) {
                Ok(Some(_)) => {
                    ok += 1;
                    self.latencies_us
                        .push(ctx.now_nanos().saturating_sub(t0) as f64 / 1e3);
                }
                Ok(None) | Err(_) => self.failed += 1,
            }
        }
        Ok(ok)
    }

    fn drain(&mut self, _ctx: &mut oopp::NodeCtx) -> oopp::RemoteResult<F64s> {
        let mut out = vec![self.failed as f64];
        out.append(&mut self.latencies_us);
        self.failed = 0;
        Ok(F64s(out))
    }
}

/// Percentile over a drained latency set (µs). `q` in [0, 1].
fn percentile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[i.min(sorted.len() - 1)]
}

/// E14 (DESIGN.md §14): sharded control plane — directory ops/s vs shard
/// count, and resolve latency through a shard-primary crash.
///
/// The fabric is deliberately thin (20 µs latency, 10 Mb/s links) so the
/// *directory machine's inbound link* is the bottleneck, the way a real
/// control-plane node saturates. Eight hammer objects resolve pre-bound
/// names concurrently through the `NameService` facade; with one shard
/// every stream converges on the root's machine and serializes on its
/// link, with `n` shards the same traffic spreads over `n` machines'
/// links. The scaling table must show ≥ 2× ops/s at 4 shards vs 1 (the
/// PR's acceptance gate, asserted here so `reproduce e14` enforces it).
///
/// The chaos table re-runs a 4-shard layout under a `DirService` control
/// loop and crashes shard 1's machine mid-wave: resolves that hit the
/// lost shard ride `NameService`'s re-resolve/retry loop through
/// detection, snapshot takeover, and the seat rebind — the p99 stays at
/// the healthy tail and the worst op costs one detection + takeover
/// window. Everything runs on the seeded virtual clock, so every number
/// in both tables is deterministic.
pub fn e14_dirsvc() -> Vec<Table> {
    use dirsvc::{DirService, DirServiceConfig};
    use supervision::{DetectorConfig, RestartPolicy, SupervisorConfig};

    const MACHINES: usize = 8;
    const NAMES: u64 = 64;
    const WAVE: u64 = 400;
    const SEED: u64 = 0xE14_2026;
    const PREFIX: &str = "oopp://e14/name";

    // 20 µs one-way, 10 Mb/s: a control-plane frame of ~100 B costs ~80 µs
    // of per-receiver transfer, so concurrent resolves aimed at one
    // machine queue on its link — the resource sharding multiplies.
    let thin_net = || ClusterConfig::lan(0, 20, 0.01);

    let bind_names = |ns: &oopp::NameService, driver: &mut oopp::Driver| {
        for i in 0..NAMES {
            ns.bind(
                driver,
                format!("{PREFIX}/{i}"),
                oopp::ObjRef {
                    machine: i as usize % MACHINES,
                    object: 40_000 + i,
                },
            )
            .unwrap();
        }
    };

    struct Run {
        ops_per_sec: f64,
        lat_us: Vec<f64>, // sorted
        failed: u64,
        cache_hits: u64,
        cache_misses: u64,
    }

    // One scaling measurement: `shards == 0` is the classic single
    // directory, otherwise a partitioned one. No faults, no control loop —
    // this phase measures the data path alone.
    let scale_run = |shards: u32| -> Run {
        let (cluster, mut driver) = ClusterBuilder::new(MACHINES)
            .dir_shards(shards)
            .register::<DirHammer>()
            .sim_config(thin_net().with_virtual_time(SEED))
            .call_policy(CallPolicy::reliable(Duration::from_millis(250)))
            .build();
        let ns = driver.directory();
        bind_names(&ns, &mut driver);
        let hammers: Vec<_> = (0..MACHINES)
            .map(|m| DirHammerClient::new_on(&mut driver, m, ns, PREFIX.into(), NAMES).unwrap())
            .collect();
        // Warm pass: fill every hammer's resolve cache with the shard
        // seats, then discard the warm latencies.
        for h in &hammers {
            h.run(&mut driver, NAMES).unwrap();
            h.drain(&mut driver).unwrap();
        }
        let t0 = driver.now_nanos();
        let pending: Vec<_> = hammers
            .iter()
            .map(|h| h.run_async(&mut driver, WAVE).unwrap())
            .collect();
        let done: u64 = join(&mut driver, pending).unwrap().into_iter().sum();
        let makespan = driver.now_nanos() - t0;

        let mut lat_us = Vec::new();
        let mut failed = (MACHINES as u64 * WAVE) - done;
        for h in &hammers {
            let mut d = h.drain(&mut driver).unwrap().0;
            failed += d.remove(0) as u64;
            lat_us.extend(d);
        }
        lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (mut cache_hits, mut cache_misses) = (0, 0);
        for m in 0..MACHINES {
            let st = driver.stats_of(m).unwrap();
            cache_hits += st.dir_cache_hits;
            cache_misses += st.dir_cache_misses;
        }
        cluster.shutdown(driver);
        Run {
            ops_per_sec: (MACHINES as u64 * WAVE) as f64 / (makespan as f64 / 1e9),
            lat_us,
            failed,
            cache_hits,
            cache_misses,
        }
    };

    let mut scaling = Table::new(&[
        "directory",
        "shards",
        "resolves/s",
        "speedup vs 1 shard",
        "p50 us",
        "p99 us",
        "cache hits",
        "cache misses",
        "failed",
    ]);
    let mut base_ops = 0.0;
    let mut ops_at_4 = 0.0;
    for shards in [0u32, 1, 2, 4, 8] {
        let r = scale_run(shards);
        if shards == 1 {
            base_ops = r.ops_per_sec;
        }
        if shards == 4 {
            ops_at_4 = r.ops_per_sec;
        }
        let speedup = if shards >= 1 && base_ops > 0.0 {
            format!("{:.2}x", r.ops_per_sec / base_ops)
        } else {
            "-".into()
        };
        scaling.row(&[
            if shards == 0 { "classic" } else { "sharded" }.into(),
            if shards == 0 {
                "-".into()
            } else {
                shards.to_string()
            },
            format!("{:.0}", r.ops_per_sec),
            speedup,
            format!("{:.0}", percentile_us(&r.lat_us, 0.50)),
            format!("{:.0}", percentile_us(&r.lat_us, 0.99)),
            r.cache_hits.to_string(),
            r.cache_misses.to_string(),
            r.failed.to_string(),
        ]);
    }
    assert!(
        ops_at_4 >= 2.0 * base_ops,
        "E14 gate: 4 shards must deliver >= 2x the resolves/s of 1 shard \
         (got {ops_at_4:.0} vs {base_ops:.0})"
    );

    // Chaos phase: 4 shards on machines 0–3, hammers on 4–7, a DirService
    // control loop stepped by the driver, and (in the crash row) machine 1
    // — shard 1's primary — crashed 100 ms into the wave.
    const CHAOS_SHARDS: u32 = 4;
    const CHAOS_OPS: u64 = 2000;
    let chaos_run = |crash: bool| -> (Run, u64, u64) {
        let (cluster, mut driver) = ClusterBuilder::new(MACHINES)
            .dir_shards(CHAOS_SHARDS)
            .register::<DirHammer>()
            .sim_config(thin_net().with_virtual_time(SEED ^ 0xC4A5))
            .call_policy(
                CallPolicy::reliable(Duration::from_millis(100))
                    .with_max_retries(2)
                    .with_backoff(Backoff::fixed(Duration::from_millis(5))),
            )
            .build();
        let ns = driver.directory();
        let mut svc = DirService::new(
            DirServiceConfig {
                read_replicas: 0,
                snapshot_backups: 2,
                supervisor: SupervisorConfig {
                    heartbeat_interval: Duration::from_millis(10),
                    lease_ttl: Duration::from_millis(500),
                    detector: DetectorConfig {
                        expected_interval: Duration::from_millis(10),
                        ..DetectorConfig::default()
                    },
                    restart: RestartPolicy::Retries {
                        max_retries: 2,
                        backoff: Backoff::fixed(Duration::from_millis(10)),
                    },
                },
                ..DirServiceConfig::default()
            },
            vec![1, 2, 3],
            ns,
        );
        assert_eq!(svc.attach(&mut driver).unwrap(), CHAOS_SHARDS as usize);
        bind_names(&ns, &mut driver);
        let hammers: Vec<_> = (4..MACHINES)
            .map(|m| DirHammerClient::new_on(&mut driver, m, ns, PREFIX.into(), NAMES).unwrap())
            .collect();
        for h in &hammers {
            h.run(&mut driver, NAMES).unwrap();
            h.drain(&mut driver).unwrap();
        }
        // Warm the detector, then snapshot every partition: takeover
        // restores the last checkpoint, which must include every binding.
        loop {
            svc.step(&mut driver).unwrap();
            let warm = [1usize, 2, 3]
                .iter()
                .all(|&m| svc.supervisor().detector().last_heartbeat(m).is_some());
            if warm {
                break;
            }
            driver.serve_for(Duration::from_millis(2));
        }
        assert_eq!(svc.checkpoint(&mut driver), CHAOS_SHARDS as usize);

        let t0 = driver.now_nanos();
        let pending: Vec<_> = hammers
            .iter()
            .map(|h| h.run_async(&mut driver, CHAOS_OPS).unwrap())
            .collect();
        let step_until = |driver: &mut oopp::Driver, svc: &mut DirService, until: u64| {
            while driver.now_nanos() < until {
                svc.step(driver).unwrap();
                driver.serve_for(Duration::from_millis(2));
            }
        };
        step_until(&mut driver, &mut svc, t0 + 100_000_000);
        if crash {
            cluster.sim().faults().crash(1);
        }
        // Fixed drive-out window — detection (one lease), takeover, and
        // the post-heal tail all fit; fixed so the schedule is replayable.
        step_until(&mut driver, &mut svc, t0 + 2_000_000_000);
        let done: u64 = join(&mut driver, pending).unwrap().into_iter().sum();
        let makespan = driver.now_nanos() - t0;

        let mut lat_us = Vec::new();
        let mut failed = (hammers.len() as u64 * CHAOS_OPS) - done;
        for h in &hammers {
            let mut d = h.drain(&mut driver).unwrap().0;
            failed += d.remove(0) as u64;
            lat_us.extend(d);
        }
        lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let stats = svc.stats();
        let run = Run {
            ops_per_sec: done as f64 / (makespan as f64 / 1e9),
            lat_us,
            failed,
            cache_hits: 0,
            cache_misses: 0,
        };
        // Heal and readmit before teardown: shutdown joins every machine
        // thread, and a still-crashed machine's thread never parks out.
        if crash {
            cluster.sim().faults().restart(1);
        }
        cluster.sim().faults().calm();
        cluster.shutdown(driver);
        (run, stats.shard_takeovers, stats.machines_declared_dead)
    };

    let mut chaos = Table::new(&[
        "episode",
        "resolves",
        "failed",
        "p50 us",
        "p99 us",
        "max ms",
        "takeovers",
        "dead machines",
    ]);
    for crash in [false, true] {
        let (r, takeovers, dead) = chaos_run(crash);
        let n = r.lat_us.len();
        chaos.row(&[
            if crash {
                "shard-1 primary crash at t+100ms"
            } else {
                "calm"
            }
            .into(),
            n.to_string(),
            r.failed.to_string(),
            format!("{:.0}", percentile_us(&r.lat_us, 0.50)),
            format!("{:.0}", percentile_us(&r.lat_us, 0.99)),
            format!("{:.1}", percentile_us(&r.lat_us, 1.0) / 1e3),
            takeovers.to_string(),
            dead.to_string(),
        ]);
    }

    vec![scaling, chaos]
}

/// E15 (DESIGN.md §15): graceful degradation under overload.
///
/// Three claims, three tables, all on the seeded virtual clock:
///
/// **Goodput sweep.** A closed-loop Zipf(0.9) stream over 16 `SchedCell`
/// objects (200 µs of modeled service each) on 4 machines × 2 lanes, with
/// per-call 2 ms deadlines and 16-deep mailbox caps. The in-flight window
/// sweeps from far below saturation to 4× past it; the offered column is
/// the window relative to the ~1× saturation point. Past capacity the
/// *extra* offered load is shed — at admission (`Overloaded`) when a
/// mailbox is full, at execution (`DeadlineExceeded`) when queued work
/// outlives its budget — so goodput plateaus instead of collapsing, the
/// completion tail of *successful* calls stays bounded near the deadline,
/// and a shed request costs its caller microseconds, not a queue drain
/// (the fail-fast probe column). Latencies are closed-loop completion
/// times observed at the driver (FIFO wait order), so they upper-bound
/// the true reply latency.
///
/// **Bounded tail.** The 4×-overload point re-run with shedding disabled
/// (default generous caps, no deadline): every call eventually lands, but
/// the p99 rides the hot object's unbounded queue. The degradation knobs
/// buy a bounded tail at the same order of goodput.
///
/// **Load-spike episode.** One machine's inbound link spiked a full
/// second; a 20 ms / 1-retry policy with a circuit breaker (trip at 3,
/// 50 ms cooldown) degrades in the documented order — enriched timeouts
/// (attempts + elapsed, the columns of this table), then client-side
/// breaker fast-fails that never touch the network, then a half-open
/// trial re-closes the breaker after the spike lifts and every call lands
/// again.
pub fn e15_overload() -> Vec<Table> {
    use std::collections::VecDeque;

    const MACHINES: usize = 4;
    const LANES: usize = 2;
    const NOBJ: usize = 16;
    const SERVICE_US: u64 = 200;
    const TOTAL_CALLS: usize = 3000;
    const BASE_WINDOW: usize = 32; // ~saturation: 8 lanes + queue headroom
    const ZIPF_S: f64 = 0.9;
    const SEED: u64 = 0xE15_2026;
    const DEADLINE: Duration = Duration::from_millis(2);
    const MAILBOX_CAP: usize = 16;

    let mut cdf = Vec::with_capacity(NOBJ);
    let mut acc = 0.0f64;
    for k in 0..NOBJ {
        acc += 1.0 / ((k + 1) as f64).powf(ZIPF_S);
        cdf.push(acc);
    }
    let zipf_total = acc;
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[derive(Default)]
    struct Run {
        ok: u64,
        overloaded: u64,
        deadline: u64,
        timeout: u64,
        goodput: f64,
        ok_lat_us: Vec<f64>,   // sorted closed-loop completion times
        shed_lat_us: Vec<f64>, // sorted fail-fast probe rejections
        sample_overloaded: Option<String>,
        sample_deadline: Option<String>,
    }

    // One closed-loop measurement at a fixed in-flight window. `shed`
    // arms the degradation knobs; `false` is the fail-slow baseline.
    let run = |window: usize, shed: bool| -> Run {
        let overload = if shed {
            OverloadConfig {
                mailbox_cap: MAILBOX_CAP,
                ..OverloadConfig::new()
            }
        } else {
            OverloadConfig::new()
        };
        let (cluster, mut driver) = ClusterBuilder::new(MACHINES)
            .sched_workers(LANES)
            .register::<SchedCell>()
            .overload(overload)
            .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(SEED))
            .call_policy(CallPolicy::reliable(Duration::from_millis(250)))
            .build();
        let cells: Vec<_> = (0..NOBJ)
            .map(|k| SchedCellClient::new_on(&mut driver, k % MACHINES).unwrap())
            .collect();
        let policy = CallPolicy::reliable(Duration::from_millis(250));
        driver.set_call_policy(if shed {
            policy.with_deadline(DEADLINE)
        } else {
            policy
        });

        let mut out = Run::default();
        let mut rng = SEED ^ (window as u64) << 1 ^ shed as u64;
        let mut inflight = VecDeque::new();
        let mut issued = 0usize;
        let t0 = driver.now_nanos();
        while issued < TOTAL_CALLS || !inflight.is_empty() {
            if issued < TOTAL_CALLS && inflight.len() < window {
                let u = (splitmix(&mut rng) >> 11) as f64 / (1u64 << 53) as f64 * zipf_total;
                let k = cdf.iter().position(|&c| u < c).unwrap_or(NOBJ - 1);
                let p = cells[k]
                    .work_async(&mut driver, SERVICE_US, (k + 1) as f64 * 0.25)
                    .unwrap();
                inflight.push_back((p, driver.now_nanos()));
                issued += 1;
                // Fail-fast witness: every 64th issue, one *synchronous*
                // call at the hottest object, timed in isolation. When its
                // mailbox is full the rejection must cost the caller far
                // less than one service time.
                if shed && issued.is_multiple_of(64) {
                    let s0 = driver.now_nanos();
                    if let Err(RemoteError::Overloaded { .. }) =
                        cells[0].work(&mut driver, SERVICE_US, 0.5)
                    {
                        out.shed_lat_us
                            .push(driver.now_nanos().saturating_sub(s0) as f64 / 1e3);
                    }
                }
                continue;
            }
            let (p, t_issue) = inflight.pop_front().unwrap();
            let r = p.wait(&mut driver);
            let elapsed_us = driver.now_nanos().saturating_sub(t_issue) as f64 / 1e3;
            match r {
                Ok(_) => {
                    out.ok += 1;
                    out.ok_lat_us.push(elapsed_us);
                }
                Err(e @ RemoteError::Overloaded { .. }) => {
                    out.overloaded += 1;
                    out.sample_overloaded.get_or_insert_with(|| e.to_string());
                }
                Err(e @ RemoteError::DeadlineExceeded { .. }) => {
                    out.deadline += 1;
                    out.sample_deadline.get_or_insert_with(|| e.to_string());
                }
                Err(RemoteError::Timeout { .. }) => out.timeout += 1,
                Err(e) => panic!("unexpected E15 error class: {e}"),
            }
        }
        let makespan = driver.now_nanos() - t0;
        out.goodput = out.ok as f64 / (makespan as f64 / 1e9);
        out.ok_lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out.shed_lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        cluster.shutdown(driver);
        out
    };

    let mut sweep = Table::new(&[
        "offered",
        "window",
        "ok",
        "shed overload",
        "shed deadline",
        "timeout",
        "goodput calls/s",
        "ok p50 us",
        "ok p99 us",
        "reject p99 us",
    ]);
    let mut peak = 0.0f64;
    let mut past_capacity: Vec<(usize, Run)> = Vec::new();
    for window in [8usize, 16, 32, 64, 128] {
        let r = run(window, true);
        peak = peak.max(r.goodput);
        sweep.row(&[
            format!("{:.2}x", window as f64 / BASE_WINDOW as f64),
            window.to_string(),
            r.ok.to_string(),
            r.overloaded.to_string(),
            r.deadline.to_string(),
            r.timeout.to_string(),
            format!("{:.0}", r.goodput),
            format!("{:.0}", percentile_us(&r.ok_lat_us, 0.50)),
            format!("{:.0}", percentile_us(&r.ok_lat_us, 0.99)),
            format!("{:.1}", percentile_us(&r.shed_lat_us, 0.99)),
        ]);
        if window >= 2 * BASE_WINDOW {
            past_capacity.push((window, r));
        }
    }
    for (window, r) in &past_capacity {
        assert!(
            r.goodput >= 0.8 * peak,
            "E15 gate: goodput at {window} in-flight ({:.0}/s) must stay within \
             20% of the peak ({peak:.0}/s) — shedding failed to protect capacity",
            r.goodput
        );
        assert!(
            percentile_us(&r.ok_lat_us, 0.99) <= 5.0 * DEADLINE.as_micros() as f64,
            "E15 gate: past capacity the successful-call p99 must stay near the \
             deadline, got {:.0} us",
            percentile_us(&r.ok_lat_us, 0.99)
        );
    }
    let top = &past_capacity.last().unwrap().1;
    assert!(
        top.overloaded + top.deadline > 0,
        "E15 gate: the 4x point must actually shed load"
    );
    assert!(
        !top.shed_lat_us.is_empty() && percentile_us(&top.shed_lat_us, 0.99) < SERVICE_US as f64,
        "E15 gate: a shed request must fail fast (p99 {:.1} us vs {SERVICE_US} us \
         of service)",
        percentile_us(&top.shed_lat_us, 0.99)
    );

    // Bounded-tail comparison at the 4x point: shedding on vs off.
    let mut tail = Table::new(&[
        "config",
        "ok",
        "shed",
        "goodput calls/s",
        "ok p99 us",
        "ok max us",
    ]);
    let unbounded = run(4 * BASE_WINDOW, false);
    for (label, r) in [
        ("shed + 2ms deadline", top),
        ("fail-slow baseline", &unbounded),
    ] {
        tail.row(&[
            label.into(),
            r.ok.to_string(),
            (r.overloaded + r.deadline).to_string(),
            format!("{:.0}", r.goodput),
            format!("{:.0}", percentile_us(&r.ok_lat_us, 0.99)),
            format!("{:.0}", percentile_us(&r.ok_lat_us, 1.0)),
        ]);
    }
    assert_eq!(
        unbounded.overloaded + unbounded.deadline,
        0,
        "the baseline must queue everything"
    );
    assert!(
        percentile_us(&top.ok_lat_us, 0.99) < percentile_us(&unbounded.ok_lat_us, 0.99),
        "E15 gate: degradation knobs must buy a strictly better tail than the \
         fail-slow baseline"
    );

    // Load-spike episode: enriched timeouts, breaker fast-fails, recovery.
    const PHASE_CALLS: usize = 10;
    struct Phase {
        label: &'static str,
        ok: u64,
        timeout: u64,
        fast_fail: u64,
        attempts: Vec<f64>,
        elapsed_ms: Vec<f64>,
        sample_timeout: Option<String>,
        sample_fast_fail: Option<String>,
    }
    let (cluster, mut driver) = ClusterBuilder::new(2)
        .register::<SchedCell>()
        .sim_config(ClusterConfig::zero_cost(0).with_virtual_time(SEED ^ 0x5B1))
        .call_policy(CallPolicy::reliable(Duration::from_millis(100)))
        .build();
    let cell = SchedCellClient::new_on(&mut driver, 1).unwrap();
    driver.set_call_policy(
        CallPolicy::reliable(Duration::from_millis(20))
            .with_max_retries(1)
            .with_backoff(Backoff::fixed(Duration::from_millis(5)))
            .with_breaker(BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(50),
            }),
    );
    let mut phases = Vec::new();
    for label in ["healthy", "spiked 1s", "spike lifted"] {
        match label {
            "spiked 1s" => cluster.sim().faults().spike(1, Duration::from_secs(1)),
            "spike lifted" => {
                cluster.sim().faults().unspike(1);
                driver.serve_for(Duration::from_secs(3)); // drain + cooldown
            }
            _ => {}
        }
        let mut ph = Phase {
            label,
            ok: 0,
            timeout: 0,
            fast_fail: 0,
            attempts: Vec::new(),
            elapsed_ms: Vec::new(),
            sample_timeout: None,
            sample_fast_fail: None,
        };
        for _ in 0..PHASE_CALLS {
            match cell.work(&mut driver, 50, 0.5) {
                Ok(_) => ph.ok += 1,
                Err(e @ RemoteError::Timeout { .. }) => {
                    if let RemoteError::Timeout {
                        attempts, millis, ..
                    } = e
                    {
                        ph.attempts.push(attempts as f64);
                        ph.elapsed_ms.push(millis as f64);
                    }
                    ph.timeout += 1;
                    ph.sample_timeout.get_or_insert_with(|| e.to_string());
                }
                Err(e @ RemoteError::Overloaded { queue_depth: 0, .. }) => {
                    ph.fast_fail += 1;
                    ph.sample_fast_fail.get_or_insert_with(|| e.to_string());
                }
                Err(e) => panic!("unexpected spike-episode error: {e}"),
            }
        }
        phases.push(ph);
    }
    cluster.sim().faults().calm();
    cluster.shutdown(driver);

    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let mut spike = Table::new(&[
        "phase",
        "calls",
        "ok",
        "timeout",
        "breaker fast-fail",
        "timeout attempts (mean)",
        "timeout elapsed ms (mean)",
    ]);
    for ph in &phases {
        spike.row(&[
            ph.label.into(),
            PHASE_CALLS.to_string(),
            ph.ok.to_string(),
            ph.timeout.to_string(),
            ph.fast_fail.to_string(),
            format!("{:.1}", mean(&ph.attempts)),
            format!("{:.1}", mean(&ph.elapsed_ms)),
        ]);
    }
    assert_eq!(phases[0].ok, PHASE_CALLS as u64, "healthy phase must land");
    assert!(
        phases[1].timeout >= 3 && phases[1].fast_fail >= 1,
        "the spike must cost enriched timeouts, then breaker fast-fails"
    );
    assert!(
        phases[1].attempts.iter().all(|&a| a == 2.0),
        "every spiked timeout must report its retransmission (attempts == 2)"
    );
    assert_eq!(
        phases[2].ok, PHASE_CALLS as u64,
        "after the spike the breaker must re-close and serve"
    );

    // Degradation anatomy: every failure class with its rendered error —
    // queue depths, backoff hints, budget overshoots, attempt counts all
    // ride the wire and land in the caller's hands.
    let mut anatomy = Table::new(&["class", "count", "example (as seen by the caller)"]);
    let spiked = &phases[1];
    for (class, count, example) in [
        (
            "server shed: mailbox/in-flight",
            top.overloaded,
            top.sample_overloaded.clone(),
        ),
        (
            "server shed: deadline expired",
            top.deadline,
            top.sample_deadline.clone(),
        ),
        (
            "client timeout (enriched)",
            spiked.timeout,
            spiked.sample_timeout.clone(),
        ),
        (
            "client breaker fast-fail",
            spiked.fast_fail,
            spiked.sample_fast_fail.clone(),
        ),
    ] {
        anatomy.row(&[
            class.into(),
            count.to_string(),
            example.unwrap_or_else(|| "-".into()),
        ]);
    }

    vec![sweep, tail, spike, anatomy]
}

/// E16: the macro-workload serving scenario — every subsystem shipped so
/// far composed under one SLO-judged closed loop (DESIGN.md §16).
///
/// A social-graph session store (users, sessions, feeds; Zipf-popular
/// keys, read-heavy with write bursts) runs on the sharded directory
/// with the hot feed read-replicated, the balancer rebalancing around
/// the replicated primary, and admission control + deadlines + breakers
/// armed — while the fault injector kills the hot feed's home machine
/// and latency-spikes the replica that inherits its reads. The asserted
/// claims: the SLO gates (read/write p99 and goodput floors) hold
/// through the chaos schedule, the dead primary promotes exactly once,
/// and the entire run — tables, percentiles, verdicts — replays
/// byte-identically from one seed.
///
/// Scale knobs: `SIMNET_SEED` replays a different schedule;
/// `OOPP_E16_LONG=1` runs the nightly-sized scenario (10x requests).
pub fn e16_workload() -> Vec<Table> {
    use workload::{config::ScenarioSpec, loadgen::ArrivalCurve, runner};

    let long = std::env::var("OOPP_E16_LONG").is_ok_and(|v| v == "1");
    let spec = ScenarioSpec {
        requests: if long { 24_000 } else { 2_400 },
        curve: ArrivalCurve::Diurnal {
            period_ms: 400,
            trough: 0.4,
        },
        crash_at_ms: 15,
        spike_at_ms: 30,
        spike_dur_ms: if long { 150 } else { 10 },
        spike_extra_ms: 2,
        ..ScenarioSpec::default()
    };

    let a = runner::run(&spec);
    let b = runner::run(&spec);

    // The composition claims, asserted.
    assert_eq!(
        a.promotions, 1,
        "the crashed hot-feed home must promote exactly one replica"
    );
    assert!(
        a.report.passed(),
        "SLO gates must hold through crash + spike:\n{}",
        a.report.render()
    );
    assert_eq!(
        a.report.render(),
        b.report.render(),
        "same-seed E16 runs must produce byte-identical reports"
    );
    assert_eq!(
        a.ledger.to_csv(),
        b.ledger.to_csv(),
        "same-seed E16 runs must produce byte-identical ledgers"
    );
    if a.account.dropped_events == 0 {
        assert_eq!(
            a.trace_ledger.read.ok + a.trace_ledger.write.ok,
            a.ledger.read.ok + a.ledger.write.ok,
            "trace-derived completions must match the client ledger"
        );
    }

    // Re-render the workload report's sections as bench tables so E16
    // prints like every other experiment.
    let mut out = Vec::new();
    for (_title, tt) in &a.report.sections {
        let headers: Vec<&str> = tt.headers().iter().map(String::as_str).collect();
        let mut t = Table::new(&headers);
        for row in tt.rows() {
            t.row(row);
        }
        out.push(t);
    }
    let mut verdicts = Table::new(&["objective", "target", "observed", "verdict"]);
    for v in &a.report.verdicts {
        verdicts.row(&[
            v.name.clone(),
            v.target.clone(),
            v.observed.clone(),
            if v.pass { "pass" } else { "FAIL" }.into(),
        ]);
    }
    out.push(verdicts);
    out
}

/// Sanity config used by the experiment smoke tests.
pub fn tiny_zero_cost(n: usize) -> ClusterConfig {
    ClusterConfig::zero_cost(n)
}
