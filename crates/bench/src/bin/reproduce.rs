//! Regenerate every experiment table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p bench --bin reproduce            # all experiments
//! cargo run --release -p bench --bin reproduce e3 e4     # a subset
//! ```

use bench::experiments as ex;
use bench::Table;

// Experiments return one or more tables (e.g. a main table plus a
// per-method flight-recorder account, or E16's report sections);
// single-table experiments are wrapped by capture-less closures so
// everything shares one signature.
type Experiment = (&'static str, &'static str, fn() -> Vec<Table>);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    let all: &[Experiment] = &[
        (
            "E1",
            "remote object semantics: creation, calls, element access (§2)",
            ex::e1_rmi_overhead,
        ),
        (
            "E2",
            "move data vs move computation: page sum (§3)",
            || vec![ex::e2_move_compute()],
        ),
        (
            "E3",
            "split-loop parallel I/O over N devices (§4)",
            ex::e3_parallel_io,
        ),
        ("E4", "distributed 3-D FFT scaling (§4)", || {
            vec![ex::e4_fft()]
        }),
        ("E5", "PageMap determines I/O parallelism (§5)", || {
            vec![ex::e5_pagemap()]
        }),
        (
            "E6",
            "parallel Array clients summing a distributed array (§5)",
            || vec![ex::e6_array_sum()],
        ),
        (
            "E7",
            "persistent processes: deactivate/activate, symbolic lookup (§5)",
            || vec![ex::e7_persistence()],
        ),
        (
            "E8",
            "N computing processes vs one shared object (§2/§4)",
            || vec![ex::e8_shared_memory()],
        ),
        (
            "E9",
            "fault injection: completion time vs drop rate under retrying RMI",
            ex::e9_faults,
        ),
        (
            "E10",
            "adaptive placement: live migration vs static placement on a Zipf workload",
            ex::e10_placement,
        ),
        (
            "E11",
            "self-healing: crash/partition mid-Zipf, supervised recovery with bounded MTTR",
            ex::e11_self_healing,
        ),
        (
            "E12",
            "coherent read replication: Zipf read throughput vs replica count, chaos exactly-once",
            ex::e12_replication,
        ),
        (
            "E13",
            "M:N work-stealing scheduler: Zipf throughput vs worker lanes at 100x objects",
            ex::e13_sched,
        ),
        (
            "E14",
            "sharded control plane: directory resolves/s vs shard count, p99 through a primary crash",
            ex::e14_dirsvc,
        ),
        (
            "E15",
            "graceful degradation: goodput plateau and bounded tail past capacity, breaker through a load spike",
            ex::e15_overload,
        ),
        (
            "E16",
            "macro-workload serving: SLO gates through crash + spike, byte-identical replay",
            ex::e16_workload,
        ),
        ("A1", "ablation: wire codec throughput", || {
            vec![ex::a1_wire()]
        }),
        ("A2", "ablation: oopp barrier vs mplite collectives", || {
            vec![ex::a2_collectives()]
        }),
        (
            "A3",
            "ablation: deep-copy vs shallow SetGroup (§4)",
            || vec![ex::a3_deepcopy()],
        ),
    ];

    println!("oopp reproduction harness — experiment tables");
    println!("(substrate: simulated cluster; costs per DESIGN.md; shapes, not absolute numbers)");
    for (id, title, run) in all {
        if !want(id) {
            continue;
        }
        println!("\n=== {id}: {title} ===");
        let t0 = std::time::Instant::now();
        let tables = run();
        for (i, table) in tables.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", table.render());
        }
        println!("[{id} took {:.1?}]", t0.elapsed());
    }
}
