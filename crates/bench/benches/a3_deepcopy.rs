//! A3 (§4): deep-copied `SetGroup` peer tables vs shallow remote tables.

use bench::{GroupTable, GroupTableClient};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oopp::{ClusterBuilder, DoubleBlockClient, RemoteClient};

fn bench_deepcopy(c: &mut Criterion) {
    let n = 4usize;
    let (_cluster, mut driver) = ClusterBuilder::new(n).register::<GroupTable>().build();
    let members: Vec<_> = (0..n)
        .map(|m| DoubleBlockClient::new_on(&mut driver, m, 16).unwrap())
        .collect();
    let table = GroupTableClient::new_on(
        &mut driver,
        0,
        members.iter().map(|m| m.obj_ref()).collect::<Vec<_>>(),
    )
    .unwrap();

    let mut g = c.benchmark_group("a3_deepcopy");
    for calls in [16usize, 64] {
        g.bench_with_input(
            BenchmarkId::new("deep_local_table", calls),
            &calls,
            |b, &k| {
                b.iter(|| {
                    for i in 0..k {
                        std::hint::black_box(members[i % n].get(&mut driver, 0).unwrap());
                    }
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("shallow_remote_table", calls),
            &calls,
            |b, &k| {
                b.iter(|| {
                    for i in 0..k {
                        let r = table.get(&mut driver, i % n).unwrap();
                        std::hint::black_box(
                            DoubleBlockClient::from_ref(r).get(&mut driver, 0).unwrap(),
                        );
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Fast profile: the experiment tables come from `reproduce`; these
    // benches track framework overhead, so short measurements suffice.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_deepcopy
}
criterion_main!(benches);
