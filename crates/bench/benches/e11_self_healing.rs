//! E11: cost of the self-healing machinery itself, zero-cost substrate.
//!
//! The experiment table (Zipf workload, crash/partition variants, MTTR
//! breakdown) comes from `reproduce e11`; these benches track the price
//! of the pieces on the hot path: one supervisor step over a healthy
//! cluster (heartbeat pump + reply reaping + verdicts), and a stale-epoch
//! call that bounces off the fence and transparently retries at the
//! taught epoch.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use oopp::{symbolic_addr, Backoff, CallPolicy, ClusterBuilder, DoubleBlockClient, RemoteClient};
use supervision::{DetectorConfig, RestartPolicy, Supervisor, SupervisorConfig};

fn policy() -> CallPolicy {
    CallPolicy::reliable(Duration::from_millis(100))
        .with_max_retries(6)
        .with_backoff(Backoff::fixed(Duration::from_millis(5)))
}

fn config() -> SupervisorConfig {
    let heartbeat_interval = Duration::from_millis(5);
    SupervisorConfig {
        heartbeat_interval,
        lease_ttl: Duration::from_millis(500),
        detector: DetectorConfig {
            expected_interval: heartbeat_interval,
            ..DetectorConfig::default()
        },
        restart: RestartPolicy::Retries {
            max_retries: 2,
            backoff: Backoff::fixed(Duration::from_millis(10)),
        },
    }
}

fn bench_self_healing(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_self_healing");

    // One supervisor step over a healthy 3-worker cluster. Most steps
    // send nothing (the heartbeat interval gates the pump); the figure is
    // the amortized per-step cost of liveness monitoring.
    {
        let (_cluster, mut driver) = ClusterBuilder::new(3).call_policy(policy()).build();
        let dir = driver.directory();
        let mut sup = Supervisor::new(config(), vec![1, 2], dir);
        let b = DoubleBlockClient::new_on(&mut driver, 1, 64).unwrap();
        sup.register(&mut driver, &symbolic_addr(&["bench", "b"]), &b, &[2])
            .unwrap();
        g.bench_function("supervisor_step_healthy", |bch| {
            bch.iter(|| {
                std::hint::black_box(sup.step(&mut driver).unwrap());
                driver.serve_for(Duration::from_micros(200));
            })
        });
    }

    // A call carrying a stale epoch: the server fences it, the client
    // learns the live epoch and re-issues under a fresh request id. Two
    // round trips instead of one — the price of being taught.
    {
        let (_cluster, mut driver) = ClusterBuilder::new(2).call_policy(policy()).build();
        let b = DoubleBlockClient::new_on(&mut driver, 1, 64).unwrap();
        b.fill(&mut driver, 3.0).unwrap();
        let r = b.obj_ref();
        driver.set_epoch_of(r, 5).unwrap();
        g.bench_function("fenced_then_retried_get", |bch| {
            bch.iter(|| {
                // Reset the belief to a stale epoch so every iteration
                // pays the bounce, not just the first.
                driver.forget_epoch(r);
                driver.note_epoch(r, 4);
                std::hint::black_box(b.get(&mut driver, 7).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_self_healing
}
criterion_main!(benches);
