//! E8 (§2/§4): N computing processes — sequential vs parallel dispatch,
//! and serialization at a single shared object.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oopp::{join, ClusterBuilder, DoubleBlockClient};

fn bench_shared_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_shared_memory");

    for n in [2usize, 4, 8] {
        let (_cluster, mut driver) = ClusterBuilder::new(n).build();
        let blocks: Vec<_> = (0..n)
            .map(|m| {
                let b = DoubleBlockClient::new_on(&mut driver, m, 1 << 12).unwrap();
                b.fill(&mut driver, 1.0).unwrap();
                b
            })
            .collect();

        g.bench_with_input(BenchmarkId::new("sequential", n), &blocks, |b, blocks| {
            b.iter(|| {
                for blk in blocks {
                    std::hint::black_box(blk.sum_range(&mut driver, 0, 1 << 12).unwrap());
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("parallel", n), &blocks, |b, blocks| {
            b.iter(|| {
                let pending: Vec<_> = blocks
                    .iter()
                    .map(|blk| blk.sum_range_async(&mut driver, 0, 1 << 12).unwrap())
                    .collect();
                std::hint::black_box(join(&mut driver, pending).unwrap());
            })
        });
        g.bench_with_input(BenchmarkId::new("one_object", n), &blocks, |b, blocks| {
            let one = &blocks[0];
            b.iter(|| {
                let pending: Vec<_> = (0..blocks.len())
                    .map(|_| one.sum_range_async(&mut driver, 0, 1 << 12).unwrap())
                    .collect();
                std::hint::black_box(join(&mut driver, pending).unwrap());
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Fast profile: the experiment tables come from `reproduce`; these
    // benches track framework overhead, so short measurements suffice.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_shared_memory
}
criterion_main!(benches);
