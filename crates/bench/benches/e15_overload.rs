//! E15: the price of the graceful-degradation machinery.
//!
//! The experiment table (goodput plateau, bounded tail, spike episode)
//! comes from `reproduce e15`; these benches track the raw costs the
//! knobs add to every call — the client-side deadline/breaker/budget
//! bookkeeping on a healthy call, the machine-wide in-flight gauge, and
//! the admission-control checks on the server's hot path — so a
//! regression here shows up as nanoseconds before it shows up as lost
//! goodput there.
//!
//! CI runs this file with `OOPP_BENCH_SMOKE=1` (one iteration per bench,
//! no measurement window), which is enough to catch a degradation path
//! that panics or rejects healthy traffic without spending CI minutes on
//! timing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oopp::{
    BreakerConfig, CallPolicy, ClusterBuilder, DoubleBlockClient, OverloadConfig, RetryBudgetConfig,
};
use sched::DepthGauge;

/// A healthy synchronous call under increasingly armed policies: the
/// delta over `plain` is the per-call client bookkeeping of PR 9's knobs
/// (deadline arithmetic, breaker lookup, budget deposit) when nothing is
/// failing.
fn bench_armed_call(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_overload/armed_call");

    let policies: [(&str, CallPolicy); 3] = [
        ("plain", CallPolicy::reliable(Duration::from_secs(5))),
        (
            "deadline",
            CallPolicy::reliable(Duration::from_secs(5)).with_deadline(Duration::from_secs(1)),
        ),
        (
            "deadline+breaker+budget",
            CallPolicy::reliable(Duration::from_secs(5))
                .with_deadline(Duration::from_secs(1))
                .with_breaker(BreakerConfig::new())
                .with_retry_budget(RetryBudgetConfig::new()),
        ),
    ];
    for (label, policy) in policies {
        let (_cluster, mut driver) = ClusterBuilder::new(2).build();
        let b = DoubleBlockClient::new_on(&mut driver, 1, 8).unwrap();
        driver.set_call_policy(policy);
        g.bench_function(BenchmarkId::new("get", label), |bch| {
            bch.iter(|| std::hint::black_box(b.get(&mut driver, 0).unwrap()))
        });
    }
    g.finish();
}

/// The machine-wide in-flight gauge in isolation: one admit/release pair,
/// the cost every admitted request pays twice.
fn bench_depth_gauge(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_overload/gauge");
    let gauge = DepthGauge::new();
    g.bench_function("acquire_release", |b| {
        b.iter(|| {
            let d = gauge.try_acquire(u64::MAX).unwrap();
            gauge.release(1);
            std::hint::black_box(d)
        })
    });
    // The reject path must be cheaper still: a single failed CAS-free read.
    g.bench_function("reject", |b| {
        b.iter(|| std::hint::black_box(gauge.try_acquire(0).unwrap_err()))
    });
    g.finish();
}

/// Server-side admission with tight-but-unbinding caps vs the generous
/// defaults: the delta is the cap bookkeeping on the serve hot path.
fn bench_admission(c: &mut Criterion) {
    let mut g = c.benchmark_group("e15_overload/admission");
    for (label, config) in [
        ("defaults", OverloadConfig::new()),
        (
            "tight_caps",
            OverloadConfig {
                mailbox_cap: 8,
                inflight_cap: 64,
                sojourn_target: Duration::from_millis(50),
                ..OverloadConfig::new()
            },
        ),
    ] {
        let (_cluster, mut driver) = ClusterBuilder::new(2).overload(config).build();
        let b = DoubleBlockClient::new_on(&mut driver, 1, 8).unwrap();
        g.bench_function(BenchmarkId::new("serve", label), |bch| {
            bch.iter(|| std::hint::black_box(b.get(&mut driver, 0).unwrap()))
        });
    }
    g.finish();
}

/// `OOPP_BENCH_SMOKE=1` shrinks every bench to a single untimed iteration
/// — the CI smoke profile.
fn config() -> Criterion {
    if std::env::var_os("OOPP_BENCH_SMOKE").is_some() {
        Criterion::default()
            .sample_size(1)
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1))
    } else {
        Criterion::default()
            .sample_size(20)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_armed_call, bench_depth_gauge, bench_admission
}
criterion_main!(benches);
