//! E7 (§5): snapshot / deactivate / activate cost vs. state size, and
//! symbolic-address lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oopp::{ClusterBuilder, DoubleBlockClient, RemoteClient};

fn bench_persistence(c: &mut Criterion) {
    let (_cluster, mut driver) = ClusterBuilder::new(1).build();
    let dir = driver.directory();

    let mut g = c.benchmark_group("e7_persistence");

    for elems in [1usize << 10, 1 << 14, 1 << 17] {
        let block = DoubleBlockClient::new_on(&mut driver, 0, elems).unwrap();
        block.fill(&mut driver, 1.0).unwrap();
        g.throughput(Throughput::Bytes((elems * 8) as u64));
        g.bench_with_input(BenchmarkId::new("snapshot", elems * 8), &block, |b, blk| {
            b.iter(|| driver.snapshot_of(blk.obj_ref()).unwrap())
        });

        // One full deactivate → activate cycle per iteration; the revived
        // client becomes the next iteration's victim.
        let mut cur = block;
        g.bench_with_input(
            BenchmarkId::new("deactivate_activate", elems * 8),
            &elems,
            |b, _| {
                b.iter(|| {
                    driver.deactivate(cur.obj_ref(), "e7").unwrap();
                    cur = driver.activate::<DoubleBlockClient>(0, "e7").unwrap();
                })
            },
        );
        cur.destroy(&mut driver).unwrap();
        driver.drop_snapshot(0, "e7").unwrap();
    }

    g.bench_function("directory_lookup", |b| {
        dir.bind(
            &mut driver,
            "oopp://x".into(),
            oopp::ObjRef {
                machine: 0,
                object: 1,
            },
        )
        .unwrap();
        b.iter(|| dir.lookup(&mut driver, "oopp://x".into()).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Fast profile: the experiment tables come from `reproduce`; these
    // benches track framework overhead, so short measurements suffice.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_persistence
}
criterion_main!(benches);
