//! E3 (§4): sequential vs split-loop reads over N devices, plus the
//! message-passing pipeline, zero-cost substrate (framework overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mplite::apps::{pageio_run, IoMode};
use oopp::{join, ClusterBuilder};
use pagestore::{Page, PageDevice, PageDeviceClient};
use simnet::ClusterConfig;

const PAGE: usize = 16 << 10;

fn bench_parallel_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_parallel_io");

    for n in [2usize, 4, 8] {
        let (_cluster, mut driver) = ClusterBuilder::new(n).register::<PageDevice>().build();
        let devices: Vec<_> = (0..n)
            .map(|m| {
                let d =
                    PageDeviceClient::new_on(&mut driver, m, format!("d{m}"), 4, PAGE as u64, 0)
                        .unwrap();
                d.write(&mut driver, 1, Page::generate(PAGE, m as u64).into_bytes())
                    .unwrap();
                d
            })
            .collect();

        g.bench_with_input(BenchmarkId::new("sequential", n), &devices, |b, devices| {
            b.iter(|| {
                for d in devices {
                    std::hint::black_box(d.read(&mut driver, 1).unwrap());
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("split_loop", n), &devices, |b, devices| {
            b.iter(|| {
                let pending: Vec<_> = devices
                    .iter()
                    .map(|d| d.read_async(&mut driver, 1).unwrap())
                    .collect();
                std::hint::black_box(join(&mut driver, pending).unwrap());
            })
        });
        g.bench_with_input(BenchmarkId::new("mplite_pipelined", n), &n, |b, &n| {
            b.iter(|| pageio_run(ClusterConfig::zero_cost(n + 1), PAGE, 4, IoMode::Pipelined))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Fast profile: the experiment tables come from `reproduce`; these
    // benches track framework overhead, so short measurements suffice.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_parallel_io
}
criterion_main!(benches);
