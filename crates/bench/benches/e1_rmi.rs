//! E1 (§2): framework cost of remote method invocation — create/destroy,
//! element access, and bulk range reads — on the zero-cost substrate, so
//! Criterion measures the runtime itself rather than modeled link delays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oopp::{ClusterBuilder, DoubleBlockClient};

fn bench_rmi(c: &mut Criterion) {
    let (_cluster, mut driver) = ClusterBuilder::new(2).build();
    let block = DoubleBlockClient::new_on(&mut driver, 0, 1 << 18).unwrap();

    let mut g = c.benchmark_group("e1_rmi");

    g.bench_function("create_destroy", |b| {
        b.iter(|| {
            let x = DoubleBlockClient::new_on(&mut driver, 1, 16).unwrap();
            x.destroy(&mut driver).unwrap();
        })
    });
    // The constant is the paper's own literal, not an approximation of pi.
    #[allow(clippy::approx_constant)]
    g.bench_function("set_element", |b| {
        b.iter(|| block.set(&mut driver, 7, 3.1415).unwrap())
    });
    g.bench_function("get_element", |b| {
        b.iter(|| block.get(&mut driver, 2).unwrap())
    });

    for elems in [1usize << 10, 1 << 14, 1 << 18] {
        g.throughput(Throughput::Bytes((elems * 8) as u64));
        g.bench_with_input(
            BenchmarkId::new("read_range", elems * 8),
            &elems,
            |b, &n| b.iter(|| block.read_range(&mut driver, 0, n).unwrap()),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Fast profile: the experiment tables come from `reproduce`; these
    // benches track framework overhead, so short measurements suffice.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_rmi
}
criterion_main!(benches);
