//! E9: per-call cost of the reliability layer itself, zero-cost substrate.
//!
//! Two axes: the bookkeeping a retrying [`CallPolicy`] adds to calls that
//! never need a retry (outstanding-frame tracking + server-side dedup),
//! and the cost of actually riding out seeded packet loss. The experiment
//! table (completion time vs drop rate) comes from `reproduce e9`; these
//! benches track the framework overhead.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oopp::{Backoff, CallPolicy, ClusterBuilder, DoubleBlockClient};
use simnet::{ClusterConfig, FaultPlan};

fn policy() -> CallPolicy {
    CallPolicy::reliable(Duration::from_millis(50))
        .with_max_retries(8)
        .with_backoff(Backoff::fixed(Duration::from_millis(5)))
}

fn bench_faults(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_faults");

    // Reliability bookkeeping on a loss-free fabric: no-retry vs retrying
    // policy, same call. The difference is pure dedup/retransmit overhead.
    for (name, pol) in [
        ("no_retry_policy", CallPolicy::default()),
        ("retry_policy", policy()),
    ] {
        let (_cluster, mut driver) = ClusterBuilder::new(1).call_policy(pol).build();
        let block = DoubleBlockClient::new_on(&mut driver, 0, 64).unwrap();
        g.bench_function(BenchmarkId::new("clean_get", name), |b| {
            b.iter(|| std::hint::black_box(block.get(&mut driver, 7).unwrap()))
        });
    }

    // Riding out real loss: median per-call time at increasing drop rates.
    // Retry windows dominate, so keep the sample counts small.
    for drop_p in [0.01f64, 0.05] {
        let (cluster, mut driver) = ClusterBuilder::new(1)
            .sim_config(
                ClusterConfig::zero_cost(0).with_faults(FaultPlan::seeded(0xE9).with_drop(drop_p)),
            )
            .call_policy(policy())
            .build();
        let block = DoubleBlockClient::new_on(&mut driver, 0, 64).unwrap();
        g.bench_with_input(
            BenchmarkId::new("lossy_get", format!("{drop_p}")),
            &drop_p,
            |b, _| b.iter(|| std::hint::black_box(block.get(&mut driver, 7).unwrap())),
        );
        cluster.sim().faults().calm();
        cluster.shutdown(driver);
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Fast profile: the experiment tables come from `reproduce`; these
    // benches track framework overhead, so short measurements suffice.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_faults
}
criterion_main!(benches);
