//! E5 (§5): the same slab read under the four page-map layouts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distarray::{register_classes, Array, BlockStorage, Domain, PageMap};
use oopp::ClusterBuilder;

fn bench_pagemap(c: &mut Criterion) {
    let n = [32u64, 16, 16];
    let p = [4u64, 16, 16];
    let grid = [8u64, 1, 1];
    let devices = 4u64;
    let slab = Domain::new(0, 16, 0, 16, 0, 16);

    let mut g = c.benchmark_group("e5_pagemap");

    for (name, map) in [
        ("round_robin", PageMap::round_robin(grid, devices)),
        ("blocked", PageMap::blocked(grid, devices)),
        ("hashed", PageMap::hashed(grid, devices, 7)),
        ("zcurve", PageMap::zcurve(grid, devices)),
    ] {
        let (_cluster, mut driver) =
            register_classes(ClusterBuilder::new(devices as usize)).build();
        let storage = BlockStorage::create(
            &mut driver,
            "e5",
            devices as usize,
            map.pages_per_device(),
            p[0],
            p[1],
            p[2],
            1,
        )
        .unwrap();
        let array = Array::new(n, p, storage, map).unwrap();
        array.fill(&mut driver, &array.whole(), 1.0).unwrap();

        g.bench_with_input(BenchmarkId::new("slab_read", name), &array, |b, array| {
            b.iter(|| array.read(&mut driver, &slab).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Fast profile: the experiment tables come from `reproduce`; these
    // benches track framework overhead, so short measurements suffice.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_pagemap
}
criterion_main!(benches);
