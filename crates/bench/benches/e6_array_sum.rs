//! E6 (§5): distributed-array sum with 1..N parallel Array clients.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use distarray::{parallel_sum, register_classes, Array, BlockStorage, PageMap};
use oopp::ClusterBuilder;

fn bench_array_sum(c: &mut Criterion) {
    let devices = 4usize;
    let (_cluster, mut driver) = register_classes(ClusterBuilder::new(devices)).build();
    let grid = [4u64, 2, 2];
    let map = PageMap::round_robin(grid, devices as u64);
    let storage = BlockStorage::create(
        &mut driver,
        "e6",
        devices,
        map.pages_per_device(),
        8,
        8,
        8,
        1,
    )
    .unwrap();
    let array = Array::new([32, 16, 16], [8, 8, 8], storage, map).unwrap();
    array.fill(&mut driver, &array.whole(), 0.5).unwrap();
    let whole = array.whole();

    let mut g = c.benchmark_group("e6_array_sum");
    g.bench_function("driver_device_side", |b| {
        b.iter(|| array.sum(&mut driver, &whole).unwrap())
    });
    g.bench_function("driver_ship_data", |b| {
        b.iter(|| array.sum_by_moving_data(&mut driver, &whole).unwrap())
    });
    for clients in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("parallel_clients", clients),
            &clients,
            |b, &k| b.iter(|| parallel_sum(&mut driver, &array, &whole, k).unwrap()),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Fast profile: the experiment tables come from `reproduce`; these
    // benches track framework overhead, so short measurements suffice.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_array_sum
}
criterion_main!(benches);
