//! E16: the cost of the macro-workload harness itself.
//!
//! The SLO-judged serving scenario comes from `reproduce e16`; these
//! benches track the harness's own hot paths — drawing a request from
//! the Zipf/class mix, recording an observation into the ledger, and
//! distilling a sealed ledger into verdicts + burn rows — so a
//! regression in the measurement machinery shows up as nanoseconds
//! here before it distorts the scenario numbers there. The last bench
//! runs a miniature end-to-end scenario (calm, no faults), the
//! coarse-grained cost of one composed run.
//!
//! CI runs this file with `OOPP_BENCH_SMOKE=1` (one iteration per
//! bench, no measurement window), which is enough to catch a harness
//! path that panics without spending CI minutes on timing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use workload::{
    config::ScenarioSpec,
    loadgen::{ArrivalCurve, Observation, Outcome, ReqClass, RequestMix},
    runner,
    slo::Ledger,
};

/// Drawing one request from the popularity/class mix: the per-issue
/// cost every virtual client pays.
fn bench_request_mix(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16_workload/mix");
    let mut mix = RequestMix::new(0xE16, 12, 1.1, 120);
    g.bench_function("next", |b| {
        b.iter(|| std::hint::black_box(mix.next(24, 24)))
    });
    g.finish();
}

/// Recording one observation, and sealing + judging a populated ledger.
fn bench_ledger(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16_workload/ledger");
    let obs = Observation {
        issued_nanos: 1_000,
        done_nanos: 251_000,
        class: ReqClass::Read,
        outcome: Outcome::Ok,
    };
    let mut ledger = Ledger::new(0);
    g.bench_function("record", |b| {
        b.iter(|| ledger.record(std::hint::black_box(&obs)))
    });

    let spec = ScenarioSpec::default();
    let mut full = Ledger::new(0);
    for i in 0..10_000u64 {
        full.record(&Observation {
            issued_nanos: i * 10_000,
            done_nanos: i * 10_000 + 150_000 + (i % 97) * 1_000,
            class: if i % 8 == 0 {
                ReqClass::Write
            } else {
                ReqClass::Read
            },
            outcome: if i % 211 == 0 {
                Outcome::Overloaded
            } else {
                Outcome::Ok
            },
        });
    }
    full.seal(100_000_000);
    g.bench_function("evaluate+burn", |b| {
        b.iter(|| {
            let slos = spec.slos();
            std::hint::black_box((full.evaluate(&slos), full.burn_rows(8, &slos)))
        })
    });
    g.finish();
}

/// A miniature calm scenario end to end: cluster up, deploy, replicate,
/// closed loop, judge, shut down. The coarse cost of one composed run.
fn bench_mini_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("e16_workload/run");
    let spec = ScenarioSpec {
        users: 4,
        sessions: 4,
        feeds: 4,
        clients: 4,
        requests: 200,
        curve: ArrivalCurve::Steady,
        ..ScenarioSpec::default()
    };
    g.bench_function("calm_mini", |b| {
        b.iter(|| std::hint::black_box(runner::run(&spec).report.passed()))
    });
    g.finish();
}

/// `OOPP_BENCH_SMOKE=1` shrinks every bench to a single untimed iteration
/// — the CI smoke profile.
fn config() -> Criterion {
    if std::env::var_os("OOPP_BENCH_SMOKE").is_some() {
        Criterion::default()
            .sample_size(1)
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1))
    } else {
        Criterion::default()
            .sample_size(20)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_request_mix, bench_ledger, bench_mini_run
}
criterion_main!(benches);
