//! E14: the price of the sharded control plane's moving parts.
//!
//! The experiment table (resolves/s vs shard count, p99 through a primary
//! crash) comes from `reproduce e14`; these benches track the raw costs
//! underneath — the FNV route hash, a resolve through the routed facade
//! against the classic root directory, the warm resolve-cache path, and a
//! pipelined resolve window at 1 vs 4 shards — so a regression in the
//! routing hot path shows up as nanoseconds here before it shows up as
//! lost scaling there.
//!
//! CI runs this file with `OOPP_BENCH_SMOKE=1` (one iteration per bench,
//! no measurement window), which is enough to catch a routing path that
//! panics or misroutes without spending CI minutes on timing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oopp::{shard_of_name, ClusterBuilder, ObjRef};

fn bench_route_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_dirsvc/route");

    // The pure routing decision: FNV-1a over the name, mod shard count.
    let names: Vec<String> = (0..64).map(|i| format!("oopp://bench/route/{i}")).collect();
    for shards in [4u32, 64] {
        g.bench_with_input(
            BenchmarkId::new("shard_of_name", shards),
            &shards,
            |b, &s| {
                b.iter(|| {
                    let mut acc = 0u32;
                    for n in &names {
                        acc ^= shard_of_name(n, s);
                    }
                    std::hint::black_box(acc)
                })
            },
        );
    }
    g.finish();
}

fn bench_resolve(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_dirsvc/resolve");

    // One warm resolve through the facade: classic root vs a routed shard
    // (seat already in the resolve cache). The delta is the facade's
    // routing overhead when nothing is failing.
    for shards in [0u32, 4] {
        let (_cluster, mut driver) = ClusterBuilder::new(4).dir_shards(shards).build();
        let ns = driver.directory();
        ns.bind(
            &mut driver,
            "oopp://bench/resolve/x".into(),
            ObjRef {
                machine: 1,
                object: 7,
            },
        )
        .unwrap();
        let label = if shards == 0 { "classic" } else { "sharded4" };
        g.bench_function(BenchmarkId::new("lookup_warm", label), |b| {
            b.iter(|| {
                std::hint::black_box(
                    ns.lookup(&mut driver, "oopp://bench/resolve/x".into())
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_resolve_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_dirsvc/window");

    // A pipelined window of 64 resolves spread over 16 names: the shape
    // the E14 hammers drive, minus the modeled network (zero-cost sim), so
    // this isolates the per-call bookkeeping at 1 vs 4 partitions.
    for shards in [1u32, 4] {
        let (_cluster, mut driver) = ClusterBuilder::new(4).dir_shards(shards).build();
        let ns = driver.directory();
        let names: Vec<String> = (0..16).map(|i| format!("oopp://bench/win/{i}")).collect();
        for (i, n) in names.iter().enumerate() {
            ns.bind(
                &mut driver,
                n.clone(),
                ObjRef {
                    machine: i % 4,
                    object: 100 + i as u64,
                },
            )
            .unwrap();
        }
        g.bench_function(BenchmarkId::new("resolve64", shards), |b| {
            b.iter(|| {
                for k in 0..64usize {
                    std::hint::black_box(
                        ns.lookup(&mut driver, names[k % names.len()].clone())
                            .unwrap(),
                    );
                }
            })
        });
    }
    g.finish();
}

/// `OOPP_BENCH_SMOKE=1` shrinks every bench to a single untimed iteration
/// — the CI smoke profile.
fn config() -> Criterion {
    if std::env::var_os("OOPP_BENCH_SMOKE").is_some() {
        Criterion::default()
            .sample_size(1)
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1))
    } else {
        Criterion::default()
            .sample_size(20)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_route_hash, bench_resolve, bench_resolve_window
}
criterion_main!(benches);
