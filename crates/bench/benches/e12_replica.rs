//! E12: cost of the replication machinery itself, zero-cost substrate.
//!
//! The experiment table (Zipf workload, read throughput vs replica count,
//! chaos variant) comes from `reproduce e12`; these benches track the
//! price of the pieces on the hot path: a read served by a replica versus
//! the same read at an unreplicated primary (the routing + coherence-gate
//! overhead), and a write-through write as the replica set grows (the
//! synchronous state push is the write's coherence tax).

use std::time::Duration;

use bench::experiments::{RepBlock, RepBlockClient};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oopp::{symbolic_addr, Backoff, CallPolicy, ClusterBuilder, RemoteClient};
use replica::{CoherenceMode, ReplicaConfig, ReplicaManager};

fn policy() -> CallPolicy {
    CallPolicy::reliable(Duration::from_millis(100))
        .with_max_retries(6)
        .with_backoff(Backoff::fixed(Duration::from_millis(5)))
}

fn config() -> ReplicaConfig {
    ReplicaConfig {
        mode: CoherenceMode::WriteThrough,
        lease: Duration::from_secs(60),
    }
}

fn bench_replication(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_replica");
    const N: usize = 256;

    // Baseline: a read at an unreplicated primary — one plain RMI.
    {
        let (_cluster, mut driver) = ClusterBuilder::new(2)
            .register::<RepBlock>()
            .call_policy(policy())
            .build();
        let b = RepBlockClient::new_on(&mut driver, 1, N).unwrap();
        g.bench_function("read_unreplicated_primary", |bch| {
            bch.iter(|| std::hint::black_box(b.work(&mut driver, 0).unwrap()))
        });
    }

    // The same read with one replica registered: the caller's route
    // redirects the verb, the replica checks its lease and epoch gate.
    {
        let (_cluster, mut driver) = ClusterBuilder::new(3)
            .register::<RepBlock>()
            .call_policy(policy())
            .build();
        let dir = driver.directory();
        let name = symbolic_addr(&["bench", "e12", "read"]);
        let b = RepBlockClient::new_on(&mut driver, 1, N).unwrap();
        dir.bind(&mut driver, name.clone(), b.obj_ref()).unwrap();
        let mut mgr = ReplicaManager::new(config(), dir);
        mgr.replicate(&mut driver, &name, &b, &[2]).unwrap();
        g.bench_function("read_via_replica", |bch| {
            bch.iter(|| std::hint::black_box(b.work(&mut driver, 0).unwrap()))
        });
    }

    // A write-through write as the set grows: the primary pushes fresh
    // state to every replica before acking, so the write's latency grows
    // with the set — the coherence price the read scaling is bought with.
    for replicas in [0usize, 1, 2, 3] {
        let (_cluster, mut driver) = ClusterBuilder::new(5)
            .register::<RepBlock>()
            .call_policy(policy())
            .build();
        let dir = driver.directory();
        let name = symbolic_addr(&["bench", "e12", "write"]);
        let b = RepBlockClient::new_on(&mut driver, 1, N).unwrap();
        dir.bind(&mut driver, name.clone(), b.obj_ref()).unwrap();
        let mut mgr = ReplicaManager::new(config(), dir);
        if replicas > 0 {
            mgr.replicate(&mut driver, &name, &b, &[2, 3, 4][..replicas])
                .unwrap();
        }
        g.bench_with_input(
            BenchmarkId::new("write_through_bump", replicas),
            &replicas,
            |bch, _| bch.iter(|| std::hint::black_box(b.bump(&mut driver, 0.5).unwrap())),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_replication
}
criterion_main!(benches);
