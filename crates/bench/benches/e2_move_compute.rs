//! E2 (§3): ship-the-page vs sum-on-the-device, page size sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oopp::ClusterBuilder;
use pagestore::{ArrayPage, ArrayPageDevice, ArrayPageDeviceClient, PageDevice};

fn bench_move_compute(c: &mut Criterion) {
    let (_cluster, mut driver) = ClusterBuilder::new(1)
        .register::<PageDevice>()
        .register::<ArrayPageDevice>()
        .build();

    let mut g = c.benchmark_group("e2_move_compute");

    for side in [8usize, 16, 32] {
        let dev = ArrayPageDeviceClient::new_on(
            &mut driver,
            0,
            format!("e2-{side}"),
            1,
            side as u64,
            side as u64,
            side as u64,
            0,
            None,
        )
        .unwrap();
        dev.write_array(
            &mut driver,
            0,
            ArrayPage::generate(side, side, side, 1).into_f64s(),
        )
        .unwrap();
        let bytes = (side * side * side * 8) as u64;

        g.throughput(Throughput::Bytes(bytes));
        g.bench_with_input(BenchmarkId::new("ship_data", side), &dev, |b, dev| {
            b.iter(|| {
                let data = dev.read_array(&mut driver, 0).unwrap();
                std::hint::black_box(data.0.iter().sum::<f64>())
            })
        });
        g.bench_with_input(BenchmarkId::new("device_sum", side), &dev, |b, dev| {
            b.iter(|| dev.sum(&mut driver, 0).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Fast profile: the experiment tables come from `reproduce`; these
    // benches track framework overhead, so short measurements suffice.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_move_compute
}
criterion_main!(benches);
