//! E13: the price of the scheduler machinery itself.
//!
//! The experiment table (Zipf stream, modeled compute, virtual-time
//! makespan vs worker-lane count) comes from `reproduce e13`; these benches
//! track the raw cost of the pieces under it — the Chase–Lev deque's
//! owner-side push/pop, a thief's steal, the shared injector, the seeded
//! victim permutation — and one end-to-end round trip through a pooled
//! machine, so a regression in the hot path shows up as nanoseconds here
//! before it shows up as lost scaling there.
//!
//! CI runs this file with `OOPP_BENCH_SMOKE=1` (one iteration per bench,
//! no measurement window), which is enough to catch a scheduler hot path
//! that panics or deadlocks without spending CI minutes on timing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oopp::{join, ClusterBuilder, DoubleBlockClient};
use sched::{Injector, StealOrder, Worker};

fn bench_deque(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_sched/deque");

    // Owner-side LIFO: the run_object re-park path — push a batch, pop it
    // back, no thieves in sight.
    for n in [16usize, 256] {
        let w: Worker<usize> = Worker::new();
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                for i in 0..n {
                    w.push(i);
                }
                while let Some(v) = w.pop() {
                    std::hint::black_box(v);
                }
            })
        });
    }

    // Thief-side FIFO: one stealer draining what the owner pushed — the
    // uncontended CAS cost an idle lane pays per stolen mailbox.
    let w: Worker<usize> = Worker::new();
    let s = w.stealer();
    g.bench_function("steal", |b| {
        b.iter(|| {
            for i in 0..64usize {
                w.push(i);
            }
            loop {
                match s.steal() {
                    sched::Steal::Success(v) => {
                        std::hint::black_box(v);
                    }
                    sched::Steal::Empty => break,
                    sched::Steal::Retry => {}
                }
            }
        })
    });

    // The dispatcher's admission path: shared FIFO push + a worker's pop.
    let inj: Injector<usize> = Injector::new();
    g.bench_function("injector_push_pop", |b| {
        b.iter(|| {
            for i in 0..64usize {
                inj.push(i);
            }
            while let Some(v) = inj.pop() {
                std::hint::black_box(v);
            }
        })
    });

    // The seeded permutation an idle worker walks before parking.
    let order = StealOrder::new(sched::mix64(0xE13));
    g.bench_function("steal_order_victims", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round = round.wrapping_add(1);
            std::hint::black_box(order.victims(1, round, 8));
        })
    });
    g.finish();
}

fn bench_pool_round_trip(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_sched/pool");

    // One pipelined window of calls through a machine, inline engine vs a
    // 2-lane pool: the delta is the admission/injector/wakeup overhead per
    // call when the work itself is trivial.
    for lanes in [0usize, 2] {
        let (_cluster, mut driver) = ClusterBuilder::new(2).sched_workers(lanes).build();
        let blocks: Vec<_> = (0..8)
            .map(|_| DoubleBlockClient::new_on(&mut driver, 1, 16).unwrap())
            .collect();
        let label = if lanes == 0 { "inline" } else { "pool2" };
        g.bench_function(BenchmarkId::new("window32", label), |b| {
            b.iter(|| {
                let pending: Vec<_> = (0..32)
                    .map(|i| blocks[i % 8].get_async(&mut driver, 0).unwrap())
                    .collect();
                std::hint::black_box(join(&mut driver, pending).unwrap());
            })
        });
    }
    g.finish();
}

/// `OOPP_BENCH_SMOKE=1` shrinks every bench to a single untimed iteration
/// — the CI smoke profile.
fn config() -> Criterion {
    if std::env::var_os("OOPP_BENCH_SMOKE").is_some() {
        Criterion::default()
            .sample_size(1)
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_millis(1))
    } else {
        Criterion::default()
            .sample_size(20)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_deque, bench_pool_round_trip
}
criterion_main!(benches);
