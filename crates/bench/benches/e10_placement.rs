//! E10: cost of the migration machinery itself, zero-cost substrate.
//!
//! The experiment table (Zipf workload, Static vs GreedyRebalance, chaos
//! variant) comes from `reproduce e10`; these benches track the price of
//! one live migration round trip — quiesce, transfer, commit — and of a
//! call that lands on a forwarding stub and chases one redirect.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oopp::{Backoff, CallPolicy, ClusterBuilder, DoubleBlockClient, RemoteClient};

fn policy() -> CallPolicy {
    CallPolicy::reliable(Duration::from_millis(100))
        .with_max_retries(6)
        .with_backoff(Backoff::fixed(Duration::from_millis(5)))
}

fn bench_migration(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_placement");

    // One full migration round trip, ping-ponging a block between two
    // machines, at increasing state sizes.
    for n in [1usize << 8, 1 << 12, 1 << 16] {
        let (_cluster, mut driver) = ClusterBuilder::new(2).call_policy(policy()).build();
        let block = DoubleBlockClient::new_on(&mut driver, 0, n).unwrap();
        block.fill(&mut driver, 1.5).unwrap();
        let mut at = block.obj_ref();
        g.bench_with_input(BenchmarkId::new("migrate", n * 8), &n, |b, _| {
            b.iter(|| {
                let to = 1 - at.machine;
                at = driver.migrate(at, to).unwrap();
                std::hint::black_box(at);
            })
        });
    }

    // A call through a forwarding stub: the stale pointer costs one extra
    // hop (Moved redirect + re-send) over a direct call.
    let (_cluster, mut driver) = ClusterBuilder::new(2).call_policy(policy()).build();
    let block = DoubleBlockClient::new_on(&mut driver, 0, 64).unwrap();
    block.fill(&mut driver, 2.0).unwrap();
    let direct = block.obj_ref();
    driver.migrate(direct, 1).unwrap();
    g.bench_function("forwarded_get", |b| {
        b.iter(|| {
            // Re-point the client at the stale address each iteration so
            // every call pays the redirect, not just the first.
            driver.forget_move(direct);
            std::hint::black_box(
                DoubleBlockClient::from_ref(direct)
                    .get(&mut driver, 7)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_migration
}
criterion_main!(benches);
