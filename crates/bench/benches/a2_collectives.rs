//! A2: synchronization primitives — oopp group barrier vs mplite
//! collectives.

use bench::{Syncer, SyncerClient};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mplite::{MpiWorld, Op};
use oopp::{join, BarrierClient, ClusterBuilder};
use simnet::ClusterConfig;

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("a2_collectives");

    for n in [2usize, 4, 8] {
        // oopp barrier: n workers + driver.
        let (_cluster, mut driver) = ClusterBuilder::new(n).register::<Syncer>().build();
        let barrier = BarrierClient::new_on(&mut driver, 0, n + 1).unwrap();
        let syncers: Vec<_> = (0..n)
            .map(|m| SyncerClient::new_on(&mut driver, m).unwrap())
            .collect();
        g.bench_with_input(
            BenchmarkId::new("oopp_barrier", n),
            &syncers,
            |b, syncers| {
                b.iter(|| {
                    let pending: Vec<_> = syncers
                        .iter()
                        .map(|s| s.sync_async(&mut driver, barrier).unwrap())
                        .collect();
                    barrier.enter(&mut driver).unwrap();
                    join(&mut driver, pending).unwrap();
                })
            },
        );

        // mplite: whole-world run of K barriers (amortizes spawn).
        g.bench_with_input(BenchmarkId::new("mplite_barrier_x16", n), &n, |b, &n| {
            b.iter(|| {
                MpiWorld::new(ClusterConfig::zero_cost(n)).run(|c| {
                    for _ in 0..16 {
                        c.barrier().unwrap();
                    }
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("mplite_allreduce_x16", n), &n, |b, &n| {
            b.iter(|| {
                MpiWorld::new(ClusterConfig::zero_cost(n)).run(|c| {
                    let mut acc = 0.0;
                    for _ in 0..16 {
                        acc = c.allreduce_f64(acc + c.rank() as f64, Op::Sum).unwrap();
                    }
                    acc
                })
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Fast profile: the experiment tables come from `reproduce`; these
    // benches track framework overhead, so short measurements suffice.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_collectives
}
criterion_main!(benches);
