//! E4 (§4): distributed 3-D FFT — oopp process group vs message-passing
//! ranks vs the single-node transform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fft::{c64, Complex, Direction, DistributedFft3, Fft3, Grid3};
use mplite::apps::fft_run;
use oopp::ClusterBuilder;
use simnet::ClusterConfig;

const SHAPE: [usize; 3] = [16, 16, 16];

fn sample() -> Vec<Complex> {
    (0..SHAPE.iter().product::<usize>())
        .map(|i| c64((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let data = sample();
    let mut g = c.benchmark_group("e4_fft");

    g.bench_function("local", |b| {
        let plan = Fft3::new(SHAPE);
        let grid = Grid3::new(SHAPE, data.clone());
        b.iter(|| plan.transform(&grid, Direction::Forward))
    });

    for parts in [2usize, 4] {
        // oopp: persistent group, repeated transforms.
        let (_cluster, mut driver) = DistributedFft3::register(ClusterBuilder::new(parts)).build();
        let dfft = DistributedFft3::new(
            &mut driver,
            [SHAPE[0] as u64, SHAPE[1] as u64, SHAPE[2] as u64],
            parts,
        )
        .unwrap();
        dfft.scatter(&mut driver, &data).unwrap();
        g.bench_with_input(BenchmarkId::new("oopp", parts), &parts, |b, _| {
            b.iter(|| dfft.transform(&mut driver, Direction::Forward).unwrap())
        });

        // mplite: whole world per iteration (includes spawn cost; noted in
        // EXPERIMENTS.md).
        g.bench_with_input(BenchmarkId::new("mplite_world", parts), &parts, |b, &p| {
            b.iter(|| {
                fft_run(
                    ClusterConfig::zero_cost(p),
                    SHAPE,
                    data.clone(),
                    Direction::Forward,
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Fast profile: the experiment tables come from `reproduce`; these
    // benches track framework overhead, so short measurements suffice.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_fft
}
criterion_main!(benches);
