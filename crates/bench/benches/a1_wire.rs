//! A1: wire codec throughput — the protocol layer the paper's compiler
//! would emit, measured without any network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wire::collections::{Bytes, F64s};
use wire::{wire_enum, wire_struct};

#[derive(Debug, PartialEq)]
struct CallHeader {
    req_id: u64,
    target: u64,
    method: String,
}
wire_struct!(CallHeader {
    req_id,
    target,
    method
});

#[derive(Debug, PartialEq)]
enum SampleCall {
    Read { page: u64 },
    Write { page: u64, data: Vec<u8> },
}
wire_enum!(SampleCall {
    0 => Read { page },
    1 => Write { page, data },
});

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_wire");

    // Small structured messages (per-call framing cost).
    let header = CallHeader {
        req_id: 42,
        target: 7,
        method: "read_sub".into(),
    };
    g.bench_function("encode_call_header", |b| b.iter(|| wire::to_bytes(&header)));
    let header_bytes = wire::to_bytes(&header);
    g.bench_function("decode_call_header", |b| {
        b.iter(|| wire::from_bytes::<CallHeader>(&header_bytes).unwrap())
    });

    let call = SampleCall::Write {
        page: 3,
        data: vec![7u8; 256],
    };
    g.bench_function("encode_enum_call", |b| b.iter(|| wire::to_bytes(&call)));
    let call_bytes = wire::to_bytes(&call);
    g.bench_function("decode_enum_call", |b| {
        b.iter(|| wire::from_bytes::<SampleCall>(&call_bytes).unwrap())
    });

    // Bulk payloads: the F64s/Bytes fast paths vs the elementwise Vec path.
    for elems in [1usize << 12, 1 << 16, 1 << 20] {
        let bytes = (elems * 8) as u64;
        let doubles = F64s((0..elems).map(|i| i as f64).collect());
        let plain: Vec<f64> = doubles.0.clone();
        g.throughput(Throughput::Bytes(bytes));
        g.bench_with_input(
            BenchmarkId::new("encode_f64s_bulk", bytes),
            &doubles,
            |b, d| b.iter(|| wire::to_bytes(d)),
        );
        g.bench_with_input(
            BenchmarkId::new("encode_vec_f64_elementwise", bytes),
            &plain,
            |b, d| b.iter(|| wire::to_bytes(d)),
        );
        let encoded = wire::to_bytes(&doubles);
        g.bench_with_input(
            BenchmarkId::new("decode_f64s_bulk", bytes),
            &encoded,
            |b, e| b.iter(|| wire::from_bytes::<F64s>(e).unwrap()),
        );
    }

    let page = Bytes(vec![0xa5u8; 1 << 20]);
    g.throughput(Throughput::Bytes(1 << 20));
    g.bench_function("encode_bytes_1MiB", |b| b.iter(|| wire::to_bytes(&page)));
    g.finish();
}

criterion_group! {
    name = benches;
    // Fast profile: the experiment tables come from `reproduce`; these
    // benches track framework overhead, so short measurements suffice.
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_wire
}
criterion_main!(benches);
