//! Time arithmetic and precise sleeping for the cost model.
//!
//! The network and disk models charge microsecond-scale delays. A bare
//! `thread::sleep` has ~50µs–1ms of jitter depending on the OS timer slack,
//! which would swamp the quantities the benchmarks measure, so
//! [`precise_sleep`] combines a coarse sleep with a short spin tail.

use std::time::{Duration, Instant};

/// Spin tail length: sleep coarsely until this close to the deadline, then
/// spin. 120µs covers typical Linux timer slack without burning real CPU.
const SPIN_TAIL: Duration = Duration::from_micros(120);

/// Sleep until `deadline` with sub-timer-slack precision.
///
/// Deadlines already in the past return immediately.
pub fn sleep_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > SPIN_TAIL {
            std::thread::sleep(remaining - SPIN_TAIL);
        } else {
            // Short tail: spin. `spin_loop` hints the CPU to relax.
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
            return;
        }
    }
}

/// Sleep for `dur` with sub-timer-slack precision.
pub fn precise_sleep(dur: Duration) {
    if dur.is_zero() {
        return;
    }
    sleep_until(Instant::now() + dur);
}

/// A monotonic clock anchored at a fixed epoch, for stamping trace events.
///
/// Every machine in a cluster shares one `TraceClock` (it is `Copy` and
/// epoch-anchored, so clones agree), which makes timestamps taken on
/// different simulated machines directly comparable — the property a
/// cross-machine span merge needs. Nanosecond resolution in a `u64` covers
/// ~584 years of run time, far past any simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceClock {
    epoch: Instant,
}

impl TraceClock {
    /// A clock whose epoch is "now". Create once per cluster, then share.
    pub fn new() -> Self {
        TraceClock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the epoch.
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Nanoseconds from the epoch to `at` (zero if `at` precedes it).
    pub fn nanos_at(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_nanos() as u64
    }
}

impl Default for TraceClock {
    fn default() -> Self {
        TraceClock::new()
    }
}

/// Time to push `bytes` through a link or device of `bytes_per_sec`.
///
/// An infinite (or non-positive — treated as "uncosted") rate yields zero.
pub fn transfer_time(bytes: usize, bytes_per_sec: f64) -> Duration {
    if bytes == 0 || !bytes_per_sec.is_finite() || bytes_per_sec <= 0.0 {
        return Duration::ZERO;
    }
    Duration::from_secs_f64(bytes as f64 / bytes_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_linear_in_bytes() {
        let bw = 1_000_000.0; // 1 MB/s
        assert_eq!(transfer_time(0, bw), Duration::ZERO);
        assert_eq!(transfer_time(1_000_000, bw), Duration::from_secs(1));
        assert_eq!(transfer_time(500_000, bw), Duration::from_millis(500));
    }

    #[test]
    fn infinite_bandwidth_is_free() {
        assert_eq!(transfer_time(1 << 30, f64::INFINITY), Duration::ZERO);
        assert_eq!(transfer_time(1 << 30, 0.0), Duration::ZERO);
        assert_eq!(transfer_time(1 << 30, -5.0), Duration::ZERO);
    }

    #[test]
    fn precise_sleep_zero_returns_immediately() {
        let t0 = Instant::now();
        precise_sleep(Duration::ZERO);
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn precise_sleep_hits_target_within_tolerance() {
        let target = Duration::from_micros(300);
        let t0 = Instant::now();
        precise_sleep(target);
        let elapsed = t0.elapsed();
        assert!(elapsed >= target, "slept {elapsed:?} < {target:?}");
        // Generous upper bound: CI machines can be noisy.
        assert!(
            elapsed < target + Duration::from_millis(10),
            "overslept: {elapsed:?}"
        );
    }

    #[test]
    fn sleep_until_past_deadline_is_noop() {
        let t0 = Instant::now();
        sleep_until(t0); // already-elapsed deadline
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn trace_clock_is_monotone_and_shared() {
        let clock = TraceClock::new();
        let copy = clock; // all copies share the epoch
        let a = clock.now_nanos();
        precise_sleep(Duration::from_micros(200));
        let b = copy.now_nanos();
        assert!(b > a, "clock went backwards: {a} -> {b}");
        assert!(
            b - a >= 200_000,
            "slept 200us but clock advanced {}ns",
            b - a
        );
    }

    #[test]
    fn trace_clock_nanos_at_saturates_before_epoch() {
        let before = Instant::now();
        precise_sleep(Duration::from_micros(200));
        let clock = TraceClock::new();
        assert_eq!(clock.nanos_at(before), 0);
        let later = Instant::now() + Duration::from_millis(1);
        assert!(clock.nanos_at(later) > 0);
    }
}
