//! Time arithmetic and precise sleeping for the cost model.
//!
//! The network and disk models charge microsecond-scale delays. A bare
//! `thread::sleep` has ~50µs–1ms of jitter depending on the OS timer slack,
//! which would swamp the quantities the benchmarks measure, so
//! [`precise_sleep`] combines a coarse sleep with a short spin tail.

use std::time::{Duration, Instant};

/// Spin tail length: sleep coarsely until this close to the deadline, then
/// spin. 120µs covers typical Linux timer slack without burning real CPU.
const SPIN_TAIL: Duration = Duration::from_micros(120);

/// Sleep until `deadline` with sub-timer-slack precision.
///
/// Deadlines already in the past return immediately.
pub fn sleep_until(deadline: Instant) {
    sleep_until_with(deadline, true);
}

/// Sleep until `deadline`, spinning the final `SPIN_TAIL` only if `spin`.
///
/// Without the spin tail the sleep still never *undershoots* (it keeps
/// sleeping until `Instant::now() >= deadline`), it just tolerates the OS
/// timer slack as overshoot — the right trade when many machine threads
/// sleep modeled delays concurrently and burning a core per sleeper would
/// distort the run more than a little oversleep.
pub fn sleep_until_with(deadline: Instant, spin: bool) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if !spin {
            std::thread::sleep(remaining);
        } else if remaining > SPIN_TAIL {
            std::thread::sleep(remaining - SPIN_TAIL);
        } else {
            // Short tail: spin. `spin_loop` hints the CPU to relax.
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
            return;
        }
    }
}

/// Sleep for `dur` with sub-timer-slack precision.
pub fn precise_sleep(dur: Duration) {
    precise_sleep_with(dur, true);
}

/// Sleep for `dur`; `spin` selects the precision spin tail (see
/// [`sleep_until_with`]).
pub fn precise_sleep_with(dur: Duration, spin: bool) {
    if dur.is_zero() {
        return;
    }
    sleep_until_with(Instant::now() + dur, spin);
}

/// A monotonic clock anchored at a fixed epoch, for stamping trace events.
///
/// Every machine in a cluster shares one `TraceClock` (clones share the
/// epoch, so they agree), which makes timestamps taken on different
/// simulated machines directly comparable — the property a cross-machine
/// span merge needs. Under a virtual-time [`Clock`](crate::Clock) the
/// stamps are *virtual* nanoseconds, so Perfetto exports and percentile
/// tables from a simulated run stay internally coherent. Nanosecond
/// resolution in a `u64` covers ~584 years of run time, far past any
/// simulation.
#[derive(Debug, Clone)]
pub struct TraceClock {
    clock: crate::clock::Clock,
    epoch: Instant,
}

impl TraceClock {
    /// A real-time clock whose epoch is "now". Create once per cluster,
    /// then share.
    pub fn new() -> Self {
        TraceClock {
            clock: crate::clock::Clock::real(false),
            epoch: Instant::now(),
        }
    }

    /// A trace clock stamping from the given cluster clock — virtual nanos
    /// when the cluster runs in virtual time.
    pub fn from_clock(clock: &crate::clock::Clock) -> Self {
        TraceClock {
            clock: clock.clone(),
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the epoch.
    pub fn now_nanos(&self) -> u64 {
        if self.clock.is_virtual() {
            return self.clock.now_nanos();
        }
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Nanoseconds from the epoch to `at` (zero if `at` precedes it).
    /// Only meaningful for real-time clocks; under virtual time an
    /// `Instant` has no relation to the logical now, so this returns the
    /// current virtual reading instead.
    pub fn nanos_at(&self, at: Instant) -> u64 {
        if self.clock.is_virtual() {
            return self.clock.now_nanos();
        }
        at.saturating_duration_since(self.epoch).as_nanos() as u64
    }
}

impl Default for TraceClock {
    fn default() -> Self {
        TraceClock::new()
    }
}

/// Time to push `bytes` through a link or device of `bytes_per_sec`.
///
/// An infinite (or non-positive — treated as "uncosted") rate yields zero.
pub fn transfer_time(bytes: usize, bytes_per_sec: f64) -> Duration {
    if bytes == 0 || !bytes_per_sec.is_finite() || bytes_per_sec <= 0.0 {
        return Duration::ZERO;
    }
    Duration::from_secs_f64(bytes as f64 / bytes_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_linear_in_bytes() {
        let bw = 1_000_000.0; // 1 MB/s
        assert_eq!(transfer_time(0, bw), Duration::ZERO);
        assert_eq!(transfer_time(1_000_000, bw), Duration::from_secs(1));
        assert_eq!(transfer_time(500_000, bw), Duration::from_millis(500));
    }

    #[test]
    fn infinite_bandwidth_is_free() {
        assert_eq!(transfer_time(1 << 30, f64::INFINITY), Duration::ZERO);
        assert_eq!(transfer_time(1 << 30, 0.0), Duration::ZERO);
        assert_eq!(transfer_time(1 << 30, -5.0), Duration::ZERO);
    }

    #[test]
    fn precise_sleep_zero_returns_immediately() {
        let t0 = Instant::now();
        precise_sleep(Duration::ZERO);
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn precise_sleep_hits_target_within_tolerance() {
        let target = Duration::from_micros(300);
        let t0 = Instant::now();
        precise_sleep(target);
        let elapsed = t0.elapsed();
        assert!(elapsed >= target, "slept {elapsed:?} < {target:?}");
        // Generous upper bound: CI machines can be noisy.
        assert!(
            elapsed < target + Duration::from_millis(10),
            "overslept: {elapsed:?}"
        );
    }

    #[test]
    fn sleep_until_past_deadline_is_noop() {
        let t0 = Instant::now();
        sleep_until(t0); // already-elapsed deadline
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn trace_clock_is_monotone_and_shared() {
        let clock = TraceClock::new();
        let copy = clock.clone(); // all clones share the epoch
        let a = clock.now_nanos();
        precise_sleep(Duration::from_micros(200));
        let b = copy.now_nanos();
        assert!(b > a, "clock went backwards: {a} -> {b}");
        assert!(
            b - a >= 200_000,
            "slept 200us but clock advanced {}ns",
            b - a
        );
    }

    #[test]
    fn trace_clock_stamps_virtual_nanos_from_a_virtual_clock() {
        let sim = crate::clock::Clock::virtual_time(9);
        let tc = TraceClock::from_clock(&sim);
        assert_eq!(tc.now_nanos(), 0);
        sim.sleep(Duration::from_millis(2)); // unregistered: jumps now
        assert_eq!(tc.now_nanos(), 2_000_000);
        assert_eq!(tc.nanos_at(Instant::now()), 2_000_000);
    }

    #[test]
    fn sleep_until_with_no_spin_never_undershoots() {
        let target = Duration::from_micros(300);
        let t0 = Instant::now();
        precise_sleep_with(target, false);
        assert!(t0.elapsed() >= target, "undershot without spin tail");
    }

    #[test]
    fn trace_clock_nanos_at_saturates_before_epoch() {
        let before = Instant::now();
        precise_sleep(Duration::from_micros(200));
        let clock = TraceClock::new();
        assert_eq!(clock.nanos_at(before), 0);
        let later = Instant::now() + Duration::from_millis(1);
        assert!(clock.nanos_at(later) > 0);
    }
}
