//! Property tests for the substrate: cost-model arithmetic, topology
//! classification, metrics accounting, and disk allocation invariants.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use crate::config::{DiskConfig, NetCost, TopologySpec};
use crate::disk::SimDisk;
use crate::metrics::Metrics;
use crate::time::transfer_time;
use crate::topology::{build, Racks, Topology, Uniform};

proptest! {
    /// transfer_time is monotone in bytes and inversely monotone in rate.
    #[test]
    fn transfer_time_monotone(a in 0usize..1_000_000, b in 0usize..1_000_000,
                              rate in 1.0f64..1e12) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(transfer_time(lo, rate) <= transfer_time(hi, rate));
        prop_assert!(transfer_time(hi, rate * 2.0) <= transfer_time(hi, rate));
    }

    /// Uniform topology: loopback free, all distinct pairs equal.
    #[test]
    fn uniform_topology_is_uniform(src in 0usize..64, dst in 0usize..64,
                                   lat_us in 0u64..1000) {
        let t = Uniform::new(NetCost::lan(lat_us, 1.0));
        let c = t.cost(src, dst);
        if src == dst {
            prop_assert!(c.is_zero());
        } else {
            prop_assert_eq!(c.latency, Duration::from_micros(lat_us));
            // Symmetric.
            prop_assert_eq!(t.cost(dst, src).latency, c.latency);
        }
    }

    /// Rack topology classifies by rack id, symmetrically.
    #[test]
    fn rack_topology_classifies(src in 0usize..64, dst in 0usize..64,
                                rack in 1usize..9) {
        let intra = NetCost::lan(5, 10.0);
        let inter = NetCost::lan(50, 1.0);
        let t = Racks::new(rack, intra, inter);
        let c = t.cost(src, dst);
        if src == dst {
            prop_assert!(c.is_zero());
        } else if src / rack == dst / rack {
            prop_assert_eq!(c.latency, intra.latency);
        } else {
            prop_assert_eq!(c.latency, inter.latency);
        }
        prop_assert_eq!(t.cost(dst, src).latency, c.latency);
    }

    /// Metrics deltas equal what was recorded between snapshots.
    #[test]
    fn metrics_deltas_add_up(sends in proptest::collection::vec((0usize..4, 1usize..5000), 0..20)) {
        let m = Metrics::new(4);
        let before = m.snapshot();
        let mut total_bytes = 0u64;
        for (src, bytes) in &sends {
            m.record_send(*src, *bytes);
            total_bytes += *bytes as u64;
        }
        let delta = m.snapshot().since(&before);
        prop_assert_eq!(delta.messages_sent, sends.len() as u64);
        prop_assert_eq!(delta.bytes_sent, total_bytes);
        prop_assert_eq!(delta.per_machine_sent.iter().sum::<u64>(), sends.len() as u64);
    }

    /// Disk allocations never overlap and never exceed capacity.
    #[test]
    fn disk_allocations_are_disjoint(sizes in proptest::collection::vec(1usize..4096, 1..32)) {
        let capacity = 64 << 10;
        let disk = SimDisk::new(DiskConfig::zero(), capacity, Arc::new(Metrics::new(0)));
        let mut regions: Vec<(usize, usize)> = Vec::new();
        for size in sizes {
            match disk.alloc(size) {
                Ok(base) => {
                    prop_assert!(base + size <= capacity);
                    for (b, s) in &regions {
                        prop_assert!(base >= b + s || base + size <= *b,
                            "regions overlap: ({base},{size}) vs ({b},{s})");
                    }
                    regions.push((base, size));
                }
                Err(_) => {
                    // Once full, must stay full for anything at least as big.
                    let used: usize = regions.iter().map(|(_, s)| s).sum();
                    prop_assert!(used + size > capacity);
                }
            }
        }
    }

    /// Writes to disjoint regions read back independently.
    #[test]
    fn disk_regions_are_independent(data_a in proptest::collection::vec(any::<u8>(), 1..256),
                                    data_b in proptest::collection::vec(any::<u8>(), 1..256)) {
        let disk = SimDisk::new(DiskConfig::zero(), 4096, Arc::new(Metrics::new(0)));
        let a = disk.alloc(data_a.len()).unwrap();
        let b = disk.alloc(data_b.len()).unwrap();
        disk.write(a, &data_a).unwrap();
        disk.write(b, &data_b).unwrap();
        let mut got_a = vec![0u8; data_a.len()];
        disk.read(a, &mut got_a).unwrap();
        let mut got_b = vec![0u8; data_b.len()];
        disk.read(b, &mut got_b).unwrap();
        prop_assert_eq!(got_a, data_a);
        prop_assert_eq!(got_b, data_b);
    }

    /// The topology builder honours the spec kind.
    #[test]
    fn build_matches_spec(lat in 0u64..100, rack in 1usize..5) {
        let uni = build(&TopologySpec::Uniform(NetCost::lan(lat, 1.0)));
        prop_assert_eq!(uni.cost(0, 1).latency, Duration::from_micros(lat));
        let racks = build(&TopologySpec::Racks {
            rack_size: rack,
            intra: NetCost::zero(),
            inter: NetCost::lan(lat, 1.0),
        });
        prop_assert!(racks.cost(0, rack).latency >= racks.cost(0, 0).latency);
    }
}
